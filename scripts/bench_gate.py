#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against its committed baseline.

Usage:
    scripts/bench_gate.py --baseline bench/baselines/BENCH_des.json \
                          --current build/BENCH_des.json [--tol 0.05]

Compares every throughput metric the two files share (events/sec and
Mev/s rate columns) and exits nonzero if any current rate falls more
than `tol` below the baseline (default 0.05 = 5%; override with --tol
or the BENCH_GATE_TOL env var -- CI uses a looser value because shared
runners are noisy).

Provenance rules (from bench/bench_meta.hpp's "meta" stamp):
  * refuses to gate when build_type or san differ between baseline and
    current -- a Debug or TSan number vs a RelWithDebInfo baseline is a
    config mismatch, not a regression;
  * refuses to gate a --smoke run against a full baseline (and vice
    versa) -- smoke workloads are sized for sanity, not for timing;
  * metrics present in the baseline but missing from the current file
    fail the gate (a silently dropped workload is a regression too);
    metrics only in the current file are reported as informational.
Faster-than-baseline results always pass; this is a one-sided gate.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def rates(doc):
    """Flatten a BENCH_*.json into {metric_name: events_per_sec}.

    Understands the three gated shapes: bench_des_queue's "workloads"
    rows (ladder_events_per_sec -- the production kernel; the reference
    heap column is context, not a gate), bench_pdes's "rows"
    (mev_per_sec keyed by workload name + worker count), and
    bench_multiregion's "scenarios" ladder (goodput_qps per policy rung
    -- a rung whose goodput collapses is a simulation regression even
    when wall-clock time is fine).
    """
    out = {}
    for row in doc.get("workloads", []):
        if "ladder_events_per_sec" in row:
            out[f"{row['name']}.ladder_events_per_sec"] = float(
                row["ladder_events_per_sec"]
            )
    for row in doc.get("rows", []):
        label = "serial" if row.get("workers", 0) == 0 else f"w{row['workers']}"
        out[f"{row['name']}.{label}.mev_per_sec"] = float(row["mev_per_sec"])
    for row in doc.get("scenarios", []):
        if "goodput_qps" in row:
            out[f"{row['name']}.goodput_qps"] = float(row["goodput_qps"])
    return out


def meta_mismatch(base, cur):
    """Return a human-readable reason the two runs are not comparable,
    or None if they are."""
    bm, cm = base.get("meta", {}), cur.get("meta", {})
    for key in ("build_type", "san"):
        if bm.get(key, "") != cm.get(key, ""):
            return (
                f"meta.{key} differs: baseline={bm.get(key, '')!r} "
                f"current={cm.get(key, '')!r}"
            )
    if bool(base.get("smoke", False)) != bool(cur.get("smoke", False)):
        return (
            f"smoke flag differs: baseline={base.get('smoke', False)} "
            f"current={cur.get('smoke', False)}"
        )
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tol",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOL", "0.05")),
        help="allowed fractional slowdown vs baseline (default 0.05 "
        "or $BENCH_GATE_TOL)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    reason = meta_mismatch(base, cur)
    if reason is not None:
        print(f"bench_gate: REFUSING to gate: {reason}", file=sys.stderr)
        return 2

    base_rates = rates(base)
    cur_rates = rates(cur)
    if not base_rates:
        print(
            f"bench_gate: no gateable metrics in baseline {args.baseline}",
            file=sys.stderr,
        )
        return 2

    failures = []
    print(
        f"bench_gate: {args.current} vs {args.baseline} "
        f"(tolerance {args.tol:.0%})"
    )
    for name, base_v in sorted(base_rates.items()):
        if name not in cur_rates:
            failures.append(f"{name}: present in baseline, missing from current")
            continue
        cur_v = cur_rates[name]
        delta = (cur_v - base_v) / base_v if base_v > 0 else 0.0
        ok = delta >= -args.tol
        print(
            f"  {'ok  ' if ok else 'FAIL'} {name}: "
            f"{base_v:.3g} -> {cur_v:.3g} ({delta:+.1%})"
        )
        if not ok:
            failures.append(f"{name}: {delta:+.1%} (limit -{args.tol:.0%})")
    for name in sorted(set(cur_rates) - set(base_rates)):
        print(f"  new  {name}: {cur_rates[name]:.3g} (no baseline, not gated)")

    if failures:
        print("bench_gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
