#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against its committed baseline.

Usage:
    scripts/bench_gate.py --baseline bench/baselines/BENCH_des.json \
                          --current build/BENCH_des.json [--tol 0.05]

Compares every throughput metric the two files share (events/sec and
Mev/s rate columns) and exits nonzero if any current rate falls more
than `tol` below the baseline (default 0.05 = 5%; override with --tol
or the BENCH_GATE_TOL env var -- CI uses a looser value because shared
runners are noisy).  Cost metrics (per-scenario p99 latency, bench wall
clock) are gated the other way: they fail when the current value rises
more than `tol` above the baseline.

Provenance rules (from bench/bench_meta.hpp's "meta" stamp):
  * refuses to gate when build_type or san differ between baseline and
    current -- a Debug or TSan number vs a RelWithDebInfo baseline is a
    config mismatch, not a regression;
  * refuses to gate a --smoke run against a full baseline (and vice
    versa) -- smoke workloads are sized for sanity, not for timing;
  * metrics present in the baseline but missing from the current file
    fail the gate (a silently dropped workload is a regression too);
    metrics only in the current file are reported as informational.
Faster-than-baseline results always pass; this is a one-sided gate.

With --history PATH, every gated run (pass or fail, but not refusals)
appends one JSON line to PATH: the timestamp, both file names, every
metric compared, the verdict, and the current run's meta stamp --
bench/history.jsonl accumulates a greppable trend line per commit.
"""

import argparse
import datetime
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def rates(doc):
    """Flatten a BENCH_*.json into {metric_name: events_per_sec}.

    Understands the gated shapes: bench_des_queue's "workloads" rows
    (ladder_events_per_sec -- the production kernel; the reference heap
    column is context, not a gate), bench_pdes's "rows" (mev_per_sec
    keyed by workload name + worker count), and the cluster ladders'
    "scenarios" rows (bench_multiregion / bench_resilience /
    bench_overload): goodput_qps per policy rung, plus availability
    (resilience) and pre-burst qps / post-burst recovery ratio
    (overload), and goodput-per-joule (power).  The scenario simulations
    are seeded and bit-exact, so a drop in any of these is a behavior
    change, not timing noise -- a rung whose goodput, recovery, or
    energy efficiency collapses is a simulation regression even when
    wall-clock time is fine.
    """
    out = {}
    for row in doc.get("workloads", []):
        if "ladder_events_per_sec" in row:
            out[f"{row['name']}.ladder_events_per_sec"] = float(
                row["ladder_events_per_sec"]
            )
    for row in doc.get("rows", []):
        label = "serial" if row.get("workers", 0) == 0 else f"w{row['workers']}"
        out[f"{row['name']}.{label}.mev_per_sec"] = float(row["mev_per_sec"])
    for row in doc.get("scenarios", []):
        for key in (
            "goodput_qps",
            "availability",
            "pre_qps",
            "recovery",
            "containment",
            "goodput_per_joule",
        ):
            if key in row:
                out[f"{row['name']}.{key}"] = float(row[key])
    return out


def costs(doc):
    """Flatten lower-is-better metrics into {metric_name: value}.

    Per-scenario p99 latency and charged energy (both deterministic: the
    seeded simulation replays bit-exactly, so any rise is a behavior
    change -- joules gate UP, because a capped rung that starts burning
    more energy for the same work has regressed its contract) and the
    bench's own wall clock (noisy: the one genuinely host-timed shape
    here, kept under the same loose CI tolerance as the rates).
    """
    out = {}
    if "wall_s" in doc:
        out["wall_s"] = float(doc["wall_s"])
    for row in doc.get("scenarios", []):
        for key in ("p99_ms", "energy_j"):
            if key in row:
                out[f"{row['name']}.{key}"] = float(row[key])
    return out


def meta_mismatch(base, cur):
    """Return a human-readable reason the two runs are not comparable,
    or None if they are."""
    bm, cm = base.get("meta", {}), cur.get("meta", {})
    for key in ("build_type", "san"):
        if bm.get(key, "") != cm.get(key, ""):
            return (
                f"meta.{key} differs: baseline={bm.get(key, '')!r} "
                f"current={cm.get(key, '')!r}"
            )
    if bool(base.get("smoke", False)) != bool(cur.get("smoke", False)):
        return (
            f"smoke flag differs: baseline={base.get('smoke', False)} "
            f"current={cur.get('smoke', False)}"
        )
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tol",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOL", "0.05")),
        help="allowed fractional slowdown vs baseline (default 0.05 "
        "or $BENCH_GATE_TOL)",
    )
    ap.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="append one JSON line per gated run to PATH "
        "(e.g. bench/history.jsonl) -- every metric compared, the "
        "verdict, and the run's meta stamp, for trend analysis across "
        "commits without digging through CI artifacts",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    reason = meta_mismatch(base, cur)
    if reason is not None:
        print(f"bench_gate: REFUSING to gate: {reason}", file=sys.stderr)
        return 2

    base_rates = rates(base)
    cur_rates = rates(cur)
    base_costs = costs(base)
    cur_costs = costs(cur)
    if not base_rates and not base_costs:
        print(
            f"bench_gate: no gateable metrics in baseline {args.baseline}",
            file=sys.stderr,
        )
        return 2

    failures = []
    print(
        f"bench_gate: {args.current} vs {args.baseline} "
        f"(tolerance {args.tol:.0%})"
    )
    for name, base_v in sorted(base_rates.items()):
        if name not in cur_rates:
            failures.append(f"{name}: present in baseline, missing from current")
            continue
        cur_v = cur_rates[name]
        delta = (cur_v - base_v) / base_v if base_v > 0 else 0.0
        ok = delta >= -args.tol
        print(
            f"  {'ok  ' if ok else 'FAIL'} {name}: "
            f"{base_v:.3g} -> {cur_v:.3g} ({delta:+.1%})"
        )
        if not ok:
            failures.append(f"{name}: {delta:+.1%} (limit -{args.tol:.0%})")
    for name, base_v in sorted(base_costs.items()):
        if name not in cur_costs:
            failures.append(f"{name}: present in baseline, missing from current")
            continue
        cur_v = cur_costs[name]
        delta = (cur_v - base_v) / base_v if base_v > 0 else 0.0
        ok = delta <= args.tol
        print(
            f"  {'ok  ' if ok else 'FAIL'} {name}: "
            f"{base_v:.3g} -> {cur_v:.3g} ({delta:+.1%}, lower is better)"
        )
        if not ok:
            failures.append(f"{name}: {delta:+.1%} (limit +{args.tol:.0%})")
    for name in sorted(set(cur_rates) - set(base_rates)):
        print(f"  new  {name}: {cur_rates[name]:.3g} (no baseline, not gated)")
    for name in sorted(set(cur_costs) - set(base_costs)):
        print(f"  new  {name}: {cur_costs[name]:.3g} (no baseline, not gated)")

    if args.history:
        record = {
            "utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "baseline": args.baseline,
            "current": args.current,
            "tol": args.tol,
            "ok": not failures,
            "failures": failures,
            "meta": cur.get("meta", {}),
            "rates": cur_rates,
            "costs": cur_costs,
        }
        with open(args.history, "a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    if failures:
        print("bench_gate: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
