#!/usr/bin/env bash
# Tier-1 gate: full build + full test suite, then a ThreadSanitizer pass
# over the concurrency-bearing tests (thread pool, parallel engines, and
# their heaviest consumer).  Fails on any test failure or reported race.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

echo "== tier-1: DES queue differential (ladder vs reference heap) =="
cmake --build build -j "$(nproc)" --target bench_des_queue
(cd build && ./bench/bench_des_queue --smoke)

echo "== tier-1: PDES differential (parallel engine vs serial loopback) =="
cmake --build build -j "$(nproc)" --target bench_pdes
(cd build && ./bench/bench_pdes --smoke)

echo "== tier-1: multi-region drill smoke (WAN + failover ladder) =="
cmake --build build -j "$(nproc)" --target bench_multiregion
(cd build && ./bench/bench_multiregion --smoke)

echo "== tier-1: gray-failure drill smoke (fail-slow ladder, E34) =="
cmake --build build -j "$(nproc)" --target bench_grayfail
(cd build && ./bench/bench_grayfail --smoke)

echo "== tier-1: power-cap drill smoke (energy contract + policy ladder) =="
cmake --build build -j "$(nproc)" --target bench_power
(cd build && ./bench/bench_power --smoke)

echo "== tier-1: ThreadSanitizer pass =="
cmake -B build-tsan -S . -DARCH21_SAN=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  test_thread_pool test_cloud_tail test_parallel_determinism test_resilience \
  test_overload test_grayfail test_multiregion test_pdes test_power \
  bench_des_queue bench_pdes bench_multiregion bench_power bench_grayfail
for t in test_thread_pool test_cloud_tail test_parallel_determinism \
         test_resilience test_overload test_grayfail test_multiregion \
         test_pdes test_power; do
  echo "-- tsan: $t"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done
echo "-- tsan: bench_des_queue --smoke"
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ./bench/bench_des_queue --smoke)
echo "-- tsan: bench_pdes --smoke"
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ./bench/bench_pdes --smoke)
echo "-- tsan: bench_multiregion --smoke"
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ./bench/bench_multiregion --smoke)
# The powercap trials fan out across the pool while each trial's gates
# and window events mutate per-leaf state -- the exact sharing TSan
# proves stays trial-local.
echo "-- tsan: bench_power --smoke"
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ./bench/bench_power --smoke)
# The grayfail trials run the detection/mitigation state machine inside
# every pooled trial (EWMA scores, eviction state, adaptive deadline) --
# TSan proves the per-trial detectors never share state across workers.
echo "-- tsan: bench_grayfail --smoke"
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ./bench/bench_grayfail --smoke)

echo "== tier-1: AddressSanitizer smoke (overload-protection paths) =="
# The overload layer moves InlineCallbacks through a bounded ring, kills
# jobs mid-service (fail_all), and short-circuits sends through breaker
# state -- exactly the lifetime bugs ASan catches.  bench_overload
# --smoke drives the whole ladder end to end.
cmake -B build-asan -S . -DARCH21_SAN=address >/dev/null
cmake --build build-asan -j "$(nproc)" --target \
  test_des_queue test_resilience test_overload test_grayfail bench_overload
for t in test_des_queue test_resilience test_overload test_grayfail; do
  echo "-- asan: $t"
  ASAN_OPTIONS="halt_on_error=1" "./build-asan/tests/$t"
done
echo "-- asan: bench_overload --smoke"
(cd build-asan && ASAN_OPTIONS="halt_on_error=1" ./bench/bench_overload --smoke)

echo "== tier-1: UndefinedBehaviorSanitizer smoke (histogram + obs) =="
# Guards the PR4 bugfixes: NaN samples used to reach bucket_of(), where
# log(NaN) -> size_t is UB; the obs suite exercises the metrics shards
# and trace ring end to end under UBSan.
cmake -B build-ubsan -S . -DARCH21_SAN=undefined >/dev/null
cmake --build build-ubsan -j "$(nproc)" --target test_histogram test_obs
for t in test_histogram test_obs; do
  echo "-- ubsan: $t"
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" "./build-ubsan/tests/$t"
done

echo "tier-1 OK"
