// E11 -- Section 2.3: "Die stacking promises lower latency, higher
// bandwidth"; "Photonics and 3D chip stacking change communication costs
// radically enough to affect the entire system design."
//
// Regenerates: (a) the layer-count sweep -- bandwidth/energy gains vs the
// thermal tax on logic power, and (b) the link-technology table with the
// photonic/electrical crossover utilization.

#include <benchmark/benchmark.h>

#include <iostream>

#include "noc/link.hpp"
#include "noc/stacking.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::noc;

void print_stacking() {
  std::cout << "\n=== E11a: 3D stacking sweep (layer 0 = off-chip DDR) ===\n";
  TextTable t({"DRAM layers", "BW GB/s", "pJ/bit", "logic power cap W",
               "capacity x"});
  std::uint32_t layer = 0;
  for (const auto& row : stacking_sweep(StackConfig{}, 8)) {
    t.row({layer++ == 0 ? "0 (off-chip)" : std::to_string(layer - 1),
           TextTable::num(row.bandwidth_gbs),
           TextTable::num(row.energy_pj_bit),
           TextTable::num(row.logic_power_cap_w),
           TextTable::num(row.capacity_factor)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: stacked DRAM delivers ~40x bandwidth at ~1/9\n"
               "  the energy/bit -- but each layer lowers the thermally\n"
               "  sustainable logic power (the design tension the paper's\n"
               "  EDA/thermal challenges refer to).\n";
}

void print_links() {
  std::cout << "\n=== E11b: link technologies and crossovers ===\n";
  const auto cat = link_catalog();
  TextTable t({"link", "BW Gbps", "latency ns", "pJ/bit marginal",
               "fixed W", "eff pJ/bit @10%", "eff pJ/bit @90%"});
  for (const auto& l : cat) {
    t.row({l.name, TextTable::num(l.bandwidth_gbps),
           TextTable::num(l.latency_ns), TextTable::num(l.e_per_bit_pj),
           TextTable::num(l.fixed_power_w),
           TextTable::num(l.effective_j_per_bit(0.1) * 1e12),
           TextTable::num(l.effective_j_per_bit(0.9) * 1e12)});
  }
  t.print(std::cout);
  const double x = crossover_utilization(cat[3], cat[2]);
  std::cout << "  Photonic beats SERDES above "
            << TextTable::num(x * 100, 3)
            << "% sustained utilization (fixed laser power amortized).\n";
}

void BM_stack_sweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(stacking_sweep(StackConfig{}, 8));
  }
}
BENCHMARK(BM_stack_sweep);

void BM_crossover(benchmark::State& state) {
  const auto cat = link_catalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crossover_utilization(cat[3], cat[2]));
  }
}
BENCHMARK(BM_crossover);

}  // namespace

int main(int argc, char** argv) {
  print_stacking();
  print_links();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
