// E8 -- Section 2.2's multicore-organization question ("how units should
// be organized"), answered with the Hill-Marty model family the paper's
// coordinator introduced: symmetric, asymmetric, and dynamic multicore
// speedup vs chip size and parallel fraction.

#include <benchmark/benchmark.h>

#include <iostream>

#include "par/laws.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21::par;
using arch21::TextTable;

void print_sweeps() {
  for (double f : {0.9, 0.99, 0.999}) {
    std::cout << "\n=== E8: Hill-Marty speedups, f = " << f << " ===\n";
    TextTable t({"BCEs", "Amdahl(n)", "symmetric(best r)", "best r",
                 "asymmetric", "dynamic"});
    for (double n : {16.0, 64.0, 256.0, 1024.0}) {
      const auto best = hm_symmetric_best(f, n);
      double asym = 0;
      for (double r = 1; r <= n; r *= 2) {
        asym = std::max(asym, hm_asymmetric(f, n, r));
      }
      t.row({TextTable::num(n), TextTable::num(amdahl_speedup(f, n)),
             TextTable::num(best.speedup), TextTable::num(best.r),
             TextTable::num(asym), TextTable::num(hm_dynamic(f, n))});
    }
    t.print(std::cout);
  }
  std::cout
      << "  Shape checks: dynamic >= asymmetric >= symmetric everywhere;\n"
         "  low f favors big cores (large best-r); even f = 0.999 leaves\n"
         "  much of a 1024-BCE chip's potential on the table -- the serial\n"
         "  bottleneck the paper says must be attacked across layers.\n";
}

void BM_hm_sweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(hm_sweep(0.99, {16, 64, 256, 1024}));
  }
}
BENCHMARK(BM_hm_sweep);

}  // namespace

int main(int argc, char** argv) {
  print_sweeps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
