// E31 regional cascade drill: 4 WAN-connected regions behind the global
// load balancer, open-loop diurnal traffic, and a full regional blackout
// spanning two diurnal peaks.  The unprotected balancer (fail-open, no
// admission caps, unbounded region queues, naive retries) lets the
// failover wave metastabilize the *surviving* regions -- their queues
// fill with work whose clients have timed out, retries regenerate the
// overload, and goodput stays collapsed long after the region returns --
// while the protected ladder (per-region admission caps + bounded
// deadline-drop queues, then re-admission hysteresis + retry budget +
// circuit breakers) sheds the excess at the edge and snaps back.
//
// Rung 4 (the E34 tie-in) reruns the full stack with the blackout
// swapped for a GRAY-out: the same region goes fail-slow instead of
// dark.  Breakers cannot see it -- a slow region still replies -- so
// recovery proves the speed-aware health probe + re-admission
// hysteresis converge on fail-slow faults too.
//
// Prints the multi-region report and the headline claims, verifies the
// multi-trial aggregate is bit-identical across pool sizes 1 / 2 /
// default, and writes BENCH_multiregion.json.  Exit is nonzero if the
// determinism check or any hysteresis claim fails.
//
// `--smoke` shrinks the drill (3 regions, short horizon) for sanitizer
// runs in tier1.sh; the hysteresis claims are skipped there (the small
// workload is too noisy to assert thresholds on), the determinism check
// still runs.

#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/queueing.hpp"
#include "cloud/region.hpp"
#include "cloud/tail.hpp"
#include "core/report.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr double kSettleS = 4.0;

cloud::MultiRegionConfig base_config(bool smoke) {
  cloud::MultiRegionConfig cfg;
  const unsigned nr = smoke ? 3 : 4;
  const char* names[] = {"us-east", "eu-west", "ap-south", "us-west"};
  for (unsigned r = 0; r < nr; ++r) {
    cloud::RegionConfig rc;
    rc.name = names[r];
    rc.servers = smoke ? 4 : 7;
    rc.service_median_ms = 3.0;
    rc.service_sigma = 0.4;
    // Straggler shape 2.5 keeps the Pareto variance finite: a healthy
    // region must ride out a diurnal peak, so the tail should hurt p99,
    // not randomly saturate whole regions absent any fault.
    rc.p_straggler = 0.01;
    rc.straggler_scale_ms = 30.0;
    rc.straggler_alpha = 2.5;
    // One region carries colocated best-effort work under hardware QoS
    // partitioning -- the cloud/qos interference model, mildly degrading
    // its capacity like a real mixed-use cell.
    if (r == 2) {
      rc.be_utilization = 0.4;
      rc.qos_partitioned = true;
    }
    // The protected rungs' bounded deadline-drop queue; rung 1 strips it.
    rc.queue.capacity = 64;
    rc.queue.discipline = des::QueueDiscipline::kDeadline;
    rc.queue.sojourn_target = 60;
    cfg.regions.push_back(rc);
  }
  cfg.wan.regions = nr;
  cfg.wan.base_latency_ms = 40;
  cfg.wan.intra_ms = 1.0;
  cfg.wan.jitter_frac = 0.1;

  // Mean offered query rate = session_rate * mean session length.  Full
  // drill: ~3200 qps against ~4900 qps of 4-region effective capacity
  // (~0.66 utilization healthy, ~0.85 at each diurnal peak -- all four
  // rungs ride those waves out comfortably).  Losing one region drops
  // the survivors to ~3650 qps of capacity, so the blackout pushes them
  // past the knee at peak (~1.15x) -- exactly the regime where retry
  // amplification decides between recovery and metastable collapse.
  cfg.traffic.session_rate_hz = smoke ? 75 : 400;
  cfg.traffic.session_mean_queries = 8;
  cfg.traffic.diurnal_amplitude = 0.3;
  // A compressed "day": short enough that the pre/post measurement
  // windows average over whole periods (so recovery compares like with
  // like), long enough that a peak is a sustained wave, not a blip.
  cfg.traffic.diurnal_period_s = 16;
  cfg.traffic.diurnal_peak_s = smoke ? 8 : 40;

  cfg.duration_s = smoke ? 20 : 80;
  cfg.goodput_window_s = 1.0;
  cfg.seed = 2014;
  cfg.route = cloud::RoutePolicy::kLatencyWeighted;

  // The trigger: one region goes fully dark mid-diurnal-peak, spanning
  // two peak waves in the full drill.
  cfg.blackout_region = 1;
  cfg.blackout_start_s = smoke ? 7 : 38;
  cfg.blackout_duration_s = smoke ? 5 : 24;

  cloud::FailoverPolicy& fo = cfg.failover;
  fo.health_interval_s = 0.25;
  fo.probe_timeout_ms = 60;
  fo.unhealthy_after = 2;
  fo.healthy_after = 4;  // ~1 s of clean probes before re-admission
  // Nominal capacity_qps() ignores the traffic-class service multiplier
  // (mean 1.375x here), so 0.68 nominal ~= 0.94 of effective capacity.
  fo.admission_cap_frac = 0.68;
  fo.admission_burst = 32;
  // Above the healthy-peak sojourn tail (so a fault-free diurnal peak
  // does not by itself start a retry spiral) but far below the queueing
  // delays a dark region's failover wave produces.
  fo.timeout_ms = 150;
  fo.max_retries = 2;
  fo.budget_enabled = true;
  fo.budget_ratio = 0.15;
  fo.budget_burst = 60;
  fo.breaker.enabled = true;
  fo.breaker.open_ms = 250;
  return cfg;
}

bool same_aggregate(const cloud::MultiRegionResult& a,
                    const cloud::MultiRegionResult& b) {
  if (!(a.requests == b.requests && a.answered == b.answered &&
        a.failed == b.failed && a.shed == b.shed &&
        a.attempts == b.attempts && a.retries == b.retries &&
        a.timeouts == b.timeouts && a.budget_denials == b.budget_denials &&
        a.lost_requests == b.lost_requests &&
        a.breaker_open_transitions == b.breaker_open_transitions &&
        a.breaker_short_circuits == b.breaker_short_circuits &&
        a.answered_per_window == b.answered_per_window &&
        a.region_answered_per_window == b.region_answered_per_window &&
        a.request_ms == b.request_ms && a.service_ms == b.service_ms &&
        a.goodput_qps == b.goodput_qps)) {
    return false;
  }
  if (a.regions.size() != b.regions.size() ||
      a.classes.size() != b.classes.size()) {
    return false;
  }
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    const auto& x = a.regions[r];
    const auto& y = b.regions[r];
    if (!(x.routed == y.routed && x.capped == y.capped &&
          x.rejected == y.rejected && x.expired == y.expired &&
          x.completed == y.completed && x.lost == y.lost &&
          x.evictions == y.evictions && x.readmissions == y.readmissions &&
          x.busy_ms == y.busy_ms)) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.classes.size(); ++c) {
    if (a.classes[c].answered != b.classes[c].answered ||
        a.classes[c].slo_met != b.classes[c].slo_met) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto cfg = base_config(smoke);
  const unsigned trials = smoke ? 2 : 3;
  ThreadPool pool;  // default_threads() / ARCH21_THREADS

  std::cout << "multi-region drill: " << cfg.regions.size() << " regions, "
            << cfg.traffic.mean_query_rate_hz() << " qps mean offered vs "
            << cfg.total_capacity_qps() << " qps nominal capacity, blackout "
            << cfg.blackout_duration_s << " s, " << trials
            << " trials/rung, pool=" << pool.size() << "\n";

  // Per-region queueing forecast (cloud/queueing Erlang-C) at an even
  // healthy-state load split -- where each region's knee sits, and the
  // order-statistics tail the leaf shape implies (cloud/tail).
  const double share_qps =
      cfg.traffic.mean_query_rate_hz() / static_cast<double>(
          cfg.regions.size());
  std::cout << "predicted per-region sojourn at even split:";
  for (const auto& rc : cfg.regions) {
    std::cout << " " << rc.name << "="
              << rc.predicted_sojourn_ms(share_qps * 1.375) << "ms";
  }
  std::cout << "  (tail_amplification(n=" << cfg.regions.size()
            << ", p99) = "
            << cloud::tail_amplification(
                   static_cast<unsigned>(cfg.regions.size()), 0.99)
            << ")\n\n";

  const auto ladder = cloud::failover_scenarios(cfg, trials, &pool);
  std::cout << core::render_multiregion_report(ladder, kSettleS) << "\n";

  // --- headline claims -------------------------------------------------
  // Rung order: naked / capped / full / gray (the gray rung reruns the
  // full stack with the blackout swapped for a fail-slow region).
  const auto& naked = ladder.front();
  const auto& full = ladder[2];
  const auto& gray = ladder.back();
  const auto surv_naked =
      cloud::multiregion_hysteresis(naked.result, naked.config, true,
                                    kSettleS);
  const auto glob_full =
      cloud::multiregion_hysteresis(full.result, full.config, false,
                                    kSettleS);
  const auto glob_gray =
      cloud::multiregion_hysteresis(gray.result, gray.config, false,
                                    kSettleS);
  bool claims_ok = true;
  if (!smoke) {
    // (a) cascade: without caps the SURVIVING regions' goodput stays
    //     <= 60% of pre-fault even after the blacked-out region is back.
    const bool cascaded = surv_naked.recovery_ratio() <= 0.60;
    // (b) containment: the full ladder recovers >= 90% of pre-fault
    //     GLOBAL goodput.
    const bool recovered = glob_full.recovery_ratio() >= 0.90;
    // (c) gray rung: a fail-SLOW region is invisible to breakers (it
    //     still replies), yet the speed-aware health probe must evict it
    //     and the re-admission hysteresis must converge -- global
    //     goodput back to >= 90% of pre-fault after the grayout clears.
    const unsigned gr = gray.config.grayout_region;
    std::uint64_t gray_evictions = 0, gray_readmissions = 0;
    if (gr < gray.result.regions.size()) {
      gray_evictions = gray.result.regions[gr].evictions;
      gray_readmissions = gray.result.regions[gr].readmissions;
    }
    const bool gray_converged = glob_gray.recovery_ratio() >= 0.90 &&
                                gray_evictions >= 1 && gray_readmissions >= 1;
    claims_ok = cascaded && recovered && gray_converged;
    std::cout << "claim (a) cascade: unprotected surviving-region post/pre "
              << surv_naked.recovery_ratio() * 100
              << "% (<= 60% required) -> " << (cascaded ? "ok" : "FAIL")
              << "\n";
    std::cout << "claim (b) containment: full-ladder global post/pre "
              << glob_full.recovery_ratio() * 100
              << "% (>= 90% required) -> " << (recovered ? "ok" : "FAIL")
              << "\n";
    std::cout << "claim (c) gray-out convergence: global post/pre "
              << glob_gray.recovery_ratio() * 100 << "% (>= 90% required), "
              << gray_evictions << " evictions / " << gray_readmissions
              << " readmissions of the grayed region (>= 1 each) -> "
              << (gray_converged ? "ok" : "FAIL") << "\n\n";
  } else {
    std::cout << "(smoke: hysteresis thresholds skipped)\n\n";
  }

  // --- determinism across pool sizes ----------------------------------
  // The full stack exercises every fail-stop code path (caps, bounded
  // queues, hysteresis, budget, breakers, WAN jitter); the gray rung
  // adds the fail-slow path (set_speed + speed-aware probes).  Together
  // bit-identity covers the whole multi-region layer.
  ThreadPool p1(1), p2(2);
  const auto& check_cfg = full.config;
  const auto r1 = cloud::run_multiregion_trials(check_cfg, trials, &p1);
  const auto r2 = cloud::run_multiregion_trials(check_cfg, trials, &p2);
  const auto rn = cloud::run_multiregion_trials(check_cfg, trials, &pool);
  const auto& gray_cfg = gray.config;
  const auto g1 = cloud::run_multiregion_trials(gray_cfg, trials, &p1);
  const auto g2 = cloud::run_multiregion_trials(gray_cfg, trials, &p2);
  const auto gn = cloud::run_multiregion_trials(gray_cfg, trials, &pool);
  const bool identical = same_aggregate(r1, r2) && same_aggregate(r1, rn) &&
                         same_aggregate(g1, g2) && same_aggregate(g1, gn);
  std::cout << "determinism: pools {1, 2, " << pool.size()
            << "}, blackout + gray-out rungs -> "
            << (identical ? "bit-identical aggregates" : "MISMATCH") << "\n";

  // --- JSON record -----------------------------------------------------
  std::ofstream out("BENCH_multiregion.json");
  out << "{\n  "
      << bench::meta_json(static_cast<unsigned>(pool.size()))
      << ",\n  \"regions\": " << cfg.regions.size()
      << ",\n  \"trials\": " << trials << ",\n  \"threads\": " << pool.size()
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"blackout\": {\"region\": " << cfg.blackout_region
      << ", \"start_s\": " << cfg.blackout_start_s
      << ", \"duration_s\": " << cfg.blackout_duration_s << "}"
      << ",\n  \"grayout\": {\"region\": " << gray.config.grayout_region
      << ", \"slow_factor\": " << gray.config.grayout_slow_factor << "}"
      << ",\n  \"unprotected_surviving_recovery\": "
      << surv_naked.recovery_ratio()
      << ",\n  \"full_global_recovery\": " << glob_full.recovery_ratio()
      << ",\n  \"gray_global_recovery\": " << glob_gray.recovery_ratio()
      << ",\n  \"claims_ok\": " << (claims_ok ? "true" : "false")
      << ",\n  \"identical_across_pools\": " << (identical ? "true" : "false")
      << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i].result;
    const auto g = cloud::multiregion_hysteresis(r, ladder[i].config, false,
                                                 kSettleS);
    const auto sv = cloud::multiregion_hysteresis(r, ladder[i].config, true,
                                                  kSettleS);
    out << "    {\"name\": \"" << ladder[i].name
        << "\", \"goodput_qps\": " << r.goodput_qps
        << ", \"pre_qps\": " << g.pre_qps << ", \"post_qps\": " << g.post_qps
        << ", \"recovery\": " << g.recovery_ratio()
        << ", \"surviving_recovery\": " << sv.recovery_ratio()
        << ", \"answered\": " << r.answered << ", \"failed\": " << r.failed
        << ", \"shed\": " << r.shed << ", \"timeouts\": " << r.timeouts
        << ", \"lost\": " << r.lost_requests
        << ", \"attempt_amplification\": " << r.attempt_amplification
        << ", \"p99_ms\": " << r.request_ms.quantile(0.99) << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_multiregion.json\n";

  return (identical && claims_ok) ? 0 : 1;
}
