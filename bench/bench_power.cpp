// E33 power-capped co-simulation drill: runs the E29 overload workload
// (same leaves, rates, seed, and transient fault burst) under an IT
// power cap and asks how the budget should be SPENT.  The ladder holds
// the E29 unprotected client fixed (naive unbudgeted retries, unbounded
// FIFO leaves, a quorum deadline so every query closes) and varies only
// the powercap policy: a naive uniform throttle slows every leaf until
// worst-case power fits the cap, pace adapts p-states to observed
// utilization, race-to-idle keeps leaves at full speed behind the
// energy gate alone, and the cap-aware governor sheds queries at the
// root BEFORE any leaf is throttled.  The throttling policies stretch
// service times past the cluster's knee, so the fault burst tips them
// into the E29 metastable regime -- goodput gone, idle floor still
// burning joules -- while the shedding governor keeps the survivors
// fast and recovers.
//
// Prints the power report and three headline claims, then exits
// nonzero unless:
//   (a) enforcement -- no capped rung's charged power exceeds its cap
//       in ANY accounting window, and no energy-contract overruns;
//   (b) economics -- the governor beats the naive uniform throttle on
//       goodput-per-joule at the tightest (60%) cap [full runs only];
//   (c) determinism -- the multi-trial aggregate (energy series
//       included) is bit-identical across pool sizes 1 / 2 / default.
//
// `--smoke` shrinks the drill for sanitizer runs in tier1.sh; the
// economics claim is skipped there (the small workload is too noisy to
// assert an inequality on), while enforcement and determinism -- both
// by-construction properties -- still run.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/cluster.hpp"
#include "cloud/powercap.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr double kSettleS = 2.0;

// The E29 workload verbatim (bench_overload.cpp): ~0.54 utilization per
// leaf at nominal frequency, so a uniform throttle to ~0.7x speed lands
// the cluster near its knee and the burst does the rest.
cloud::ClusterConfig base_config(bool smoke) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.query_rate_hz = smoke ? 60 : 160;
  cfg.leaf_service_ms = 3.0;
  cfg.service_sigma = 0.35;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 2.0;
  cfg.duration_s = smoke ? 8 : 30;
  cfg.seed = 2014;
  cfg.goodput_window_s = 1.0;
  cfg.faults.burst_leaves = 12;
  cfg.faults.burst_start_s = smoke ? 3 : 10;
  cfg.faults.burst_duration_s = smoke ? 1 : 4;
  return cfg;
}

bool same_aggregate(const cloud::ClusterResult& a,
                    const cloud::ClusterResult& b) {
  return a.queries == b.queries && a.ok_queries == b.ok_queries &&
         a.degraded_queries == b.degraded_queries &&
         a.failed_queries == b.failed_queries && a.retries == b.retries &&
         a.timeouts == b.timeouts && a.lost_requests == b.lost_requests &&
         a.leaf_requests == b.leaf_requests &&
         a.shed_queries == b.shed_queries &&
         a.answered_per_window == b.answered_per_window &&
         a.query_ms.count() == b.query_ms.count() &&
         a.query_ms.quantile(0.5) == b.query_ms.quantile(0.5) &&
         a.query_ms.quantile(0.99) == b.query_ms.quantile(0.99) &&
         a.goodput_qps == b.goodput_qps &&
         // The power telemetry must replay bit-exactly too: charged
         // joules are sums of deterministic per-job contracts, so ==
         // (not near-equality) is the correct comparison.
         a.power_shed_queries == b.power_shed_queries &&
         a.power_gate_stalls == b.power_gate_stalls &&
         a.power_overruns == b.power_overruns && a.energy_j == b.energy_j &&
         a.peak_window_w == b.peak_window_w &&
         a.power_cap_w == b.power_cap_w &&
         a.energy_j_per_window == b.energy_j_per_window;
}

const cloud::ScenarioResult* find(
    const std::vector<cloud::ScenarioResult>& ladder,
    const std::string& name) {
  for (const auto& s : ladder) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto cfg = base_config(smoke);
  const unsigned trials = smoke ? 2 : 3;
  ThreadPool pool;  // default_threads() / ARCH21_THREADS

  cloud::PowerLadderPolicies knobs;
  // Same client as bench_overload's unprotected rung: the timeout sits
  // above the healthy-state sojourn tail, so at nominal frequency the
  // naive client barely retries -- any pre-burst degradation on a
  // throttled rung is caused by the throttle, not the client.
  knobs.overload.timeout_ms = 25;
  knobs.overload.sojourn_target_ms = 25;

  std::cout << "power-cap drill: " << cfg.leaves << " leaves, "
            << cfg.query_rate_hz << " qps, server "
            << knobs.powercap.server.idle_w << "/"
            << knobs.powercap.server.peak_w << " W idle/peak, window "
            << knobs.powercap.window_s << " s, burst "
            << cfg.faults.burst_leaves << " leaves down for "
            << cfg.faults.burst_duration_s << " s, " << trials
            << " trials/rung, pool=" << pool.size() << "\n\n";

  const auto wall_t0 = std::chrono::steady_clock::now();
  const auto ladder = cloud::power_scenarios(cfg, trials, knobs, &pool);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_t0)
                            .count();
  std::cout << core::render_power_report(ladder, kSettleS) << "\n";

  // --- claim (a): cap enforcement --------------------------------------
  // By construction (the energy contract charges a job's whole dynamic
  // energy at start, behind a strict budget gate), so it must hold on
  // smoke runs too.  peak_window_w merges as max across trials: one bad
  // window in any trial fails the rung.
  bool enforced = true;
  for (const auto& s : ladder) {
    const auto& r = s.result;
    if (r.power_cap_w <= 0) continue;  // uncapped reference: unmetered
    const bool ok = r.peak_window_w <= r.power_cap_w * (1 + 1e-9) &&
                    r.power_overruns == 0;
    if (!ok) {
      std::cout << "claim (a) FAIL: " << s.name << " peak window "
                << r.peak_window_w << " W vs cap " << r.power_cap_w
                << " W, overruns " << r.power_overruns << "\n";
    }
    enforced = enforced && ok;
  }
  std::cout << "claim (a) enforcement: every capped rung stayed under its "
            << "cap in every window -> " << (enforced ? "ok" : "FAIL")
            << "\n";

  // --- claim (b): economics at the tightest cap ------------------------
  const auto* uni = find(ladder, "cap 60% uniform");
  const auto* gov = find(ladder, "cap 60% governor");
  bool economics = uni != nullptr && gov != nullptr;
  double gov_gpj = 0, uni_gpj = 0;
  if (economics) {
    gov_gpj = gov->result.goodput_per_joule();
    uni_gpj = uni->result.goodput_per_joule();
  }
  if (!smoke) {
    economics = economics && gov_gpj > uni_gpj;
    std::cout << "claim (b) economics: 60% cap goodput-per-joule, governor "
              << gov_gpj << " vs uniform throttle " << uni_gpj << " -> "
              << (economics ? "ok" : "FAIL") << "\n";
  } else {
    std::cout << "(smoke: economics threshold skipped; governor "
              << gov_gpj << " vs uniform " << uni_gpj << " answered/J)\n";
  }

  // --- claim (c): determinism across pool sizes ------------------------
  // The governor at the tightest cap exercises every new code path
  // (p-state ladder, root shedding, window events, energy gates), so
  // bit-identity here covers the whole powercap layer.
  ThreadPool p1(1), p2(2);
  const auto check_cfg = cloud::power_rung_config(
      cfg, knobs, 0.6, cloud::PowercapPolicy::kGovernor);
  const auto r1 = cloud::run_cluster_trials(check_cfg, trials, &p1);
  const auto r2 = cloud::run_cluster_trials(check_cfg, trials, &p2);
  const auto rn = cloud::run_cluster_trials(check_cfg, trials, &pool);
  const bool identical = same_aggregate(r1, r2) && same_aggregate(r1, rn);
  std::cout << "claim (c) determinism: pools {1, 2, " << pool.size()
            << "} -> "
            << (identical ? "bit-identical aggregates" : "MISMATCH") << "\n";

  const bool claims_ok = enforced && economics && identical;

  // --- JSON record -----------------------------------------------------
  std::ofstream out("BENCH_power.json");
  out << "{\n  " << bench::meta_json(static_cast<unsigned>(pool.size()))
      << ",\n  \"leaves\": " << cfg.leaves << ",\n  \"trials\": " << trials
      << ",\n  \"threads\": " << pool.size() << ",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"wall_s\": " << wall_s
      << ",\n  \"window_s\": " << knobs.powercap.window_s
      << ",\n  \"burst\": {\"leaves\": " << cfg.faults.burst_leaves
      << ", \"start_s\": " << cfg.faults.burst_start_s
      << ", \"duration_s\": " << cfg.faults.burst_duration_s << "}"
      << ",\n  \"governor_gpj_60\": " << gov_gpj
      << ",\n  \"uniform_gpj_60\": " << uni_gpj
      << ",\n  \"claims_ok\": " << (claims_ok ? "true" : "false")
      << ",\n  \"identical_across_pools\": "
      << (identical ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i].result;
    const auto h = cloud::goodput_hysteresis(r, ladder[i].config, kSettleS);
    out << "    {\"name\": \"" << ladder[i].name
        << "\", \"cap_w\": " << r.power_cap_w
        << ", \"peak_window_w\": " << r.peak_window_w
        << ", \"energy_j\": " << r.energy_j
        << ", \"goodput_per_joule\": " << r.goodput_per_joule()
        << ", \"goodput_qps\": " << r.goodput_qps
        << ", \"pre_qps\": " << h.pre_qps << ", \"post_qps\": " << h.post_qps
        << ", \"recovery\": " << h.recovery_ratio()
        << ", \"ok\": " << r.ok_queries
        << ", \"degraded\": " << r.degraded_queries
        << ", \"failed\": " << r.failed_queries
        << ", \"power_shed\": " << r.power_shed_queries
        << ", \"gate_stalls\": " << r.power_gate_stalls
        << ", \"overruns\": " << r.power_overruns
        << ", \"p99_ms\": " << r.query_ms.quantile(0.99) << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_power.json\n";

  return (identical && claims_ok) ? 0 : 1;
}
