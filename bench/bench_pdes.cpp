// E30 parallel-DES harness: replays the seeded multi-LP mesh workload
// (des/pdes_workload.hpp) through the serial LoopbackEngine and through
// des::ParallelEngine at workers 1/2/4/8, reports Mev/s per
// configuration, and verifies every parallel replay is bit-identical to
// the serial one -- the engine-level differential determinism check.
// Then the LP-sharded cluster scenario (simulate_cluster_pdes) gets the
// same treatment: one serial reference run (workers=0), then workers
// 1/2/4/8, asserting whole-ClusterResult equality (histograms included)
// and timing each.
//
// Gates (exit nonzero on breach):
//   * ANY divergence between a parallel replay and the serial reference;
//   * full mode: workers=1 mesh overhead vs the serial loopback > 10%
//     (ARCH21_PDES_OVERHEAD_TOL overrides the fraction) -- conservative
//     sync must be near-free when it has nothing to hide;
//   * full mode on a >= 4-core host: mesh speedup at 4 workers < 1.8x.
//     On smaller hosts the speedup is reported but not gated.
// `--smoke` shrinks the workloads and runs only the determinism checks
// (for tier1.sh, including under TSan).  Emits BENCH_pdes.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/cluster.hpp"
#include "des/partition.hpp"
#include "des/pdes.hpp"
#include "des/pdes_workload.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr std::uint64_t kSeed = 2014;
constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};

struct Row {
  std::string name;
  unsigned workers = 0;  // 0 = serial loopback reference
  std::uint64_t events = 0;
  double seconds = 0;
  bool identical = true;  // vs the workers=0 reference (trivially true there)
  double mev_s() const { return seconds > 0 ? events / seconds / 1e6 : 0; }
};

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Whole-result equality, the same contract tests/test_pdes.cpp pins:
/// counters, FP aggregates, goodput series, and both histograms at the
/// bit level.
bool same_cluster_result(const cloud::ClusterResult& a,
                         const cloud::ClusterResult& b) {
  return a.queries == b.queries && a.ok_queries == b.ok_queries &&
         a.degraded_queries == b.degraded_queries &&
         a.failed_queries == b.failed_queries && a.query_ms == b.query_ms &&
         a.leaf_ms == b.leaf_ms &&
         a.mean_leaf_utilization == b.mean_leaf_utilization &&
         a.leaf_requests == b.leaf_requests && a.retries == b.retries &&
         a.hedges == b.hedges && a.timeouts == b.timeouts &&
         a.lost_requests == b.lost_requests &&
         a.rejected_requests == b.rejected_requests &&
         a.expired_drops == b.expired_drops &&
         a.answered_per_window == b.answered_per_window &&
         a.sum_result_quality == b.sum_result_quality &&
         a.goodput_qps == b.goodput_qps &&
         a.frac_over_leaf_p99 == b.frac_over_leaf_p99;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int best_of = 0;  // 0 = built-in default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--best-of") == 0 && i + 1 < argc)
      best_of = std::atoi(argv[++i]);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // --best-of N: keep the best of N timed repeats (jitter suppression
  // for the regression gate); stamped into the meta provenance.  The
  // non-smoke default is high because the workers=1 overhead gate is a
  // *ratio* of two timings taken seconds apart -- host frequency drift
  // between them reads as phantom overhead unless each side is a
  // min-of-many.
  const int reps = best_of > 0 ? best_of : (smoke ? 1 : 7);

  double overhead_tol = 0.10;
  if (const char* env = std::getenv("ARCH21_PDES_OVERHEAD_TOL")) {
    overhead_tol = std::atof(env);
  }

  // --- mesh workload: kernel-level Mev/s, serial vs parallel ---
  des::PartitionSpec spec;
  spec.lps = 8;
  // Lookahead sized so each conservative window carries ~25 local events
  // per LP (the regime PDES is for: local event rate is ~1 per time
  // unit).  Shrinking it measures window bookkeeping instead of useful
  // work -- that regime is covered by the overhead gate staying finite,
  // not by this workload.
  spec.lookahead = 25.0;
  const double horizon = smoke ? 400.0 : 4000.0;
  const unsigned work = 24;

  std::cout << "PDES engine: serial loopback vs conservative parallel"
            << (smoke ? " (smoke)" : "") << "\n"
            << "mesh: lps=" << spec.lps << " lookahead=" << spec.lookahead
            << " horizon=" << horizon << " host_cores=" << hw << "\n\n";

  std::vector<Row> rows;
  std::vector<double> overhead_ratios;  // one w1/serial ratio per round
  des::PdesWorkloadResult mesh_ref;
  {
    // Serial and workers=1 are the two sides of the overhead gate's
    // ratio, so their timed repeats are *interleaved*: each round times
    // one serial and one workers=1 pass back to back, and each side
    // keeps its own min.  A load spike or frequency step then lands on
    // both sides of the ratio instead of biasing whichever row happened
    // to run during the slow moment.
    ThreadPool pool1(1);
    des::PdesWorkloadResult got1;
    double best_serial = 1e300;
    double best_w1 = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double s = best_seconds(1, [&] {
        des::LoopbackEngine eng(spec);
        mesh_ref = des::run_pdes_mesh(eng, kSeed, horizon, work);
      });
      const double w = best_seconds(1, [&] {
        des::ParallelEngine eng(spec, pool1);
        got1 = des::run_pdes_mesh(eng, kSeed, horizon, work);
      });
      best_serial = std::min(best_serial, s);
      best_w1 = std::min(best_w1, w);
      overhead_ratios.push_back(w / s);
    }
    Row rs;
    rs.name = "mesh";
    rs.workers = 0;
    rs.seconds = best_serial;
    rs.events = mesh_ref.executed;
    rows.push_back(rs);
    Row r1;
    r1.name = "mesh";
    r1.workers = 1;
    r1.seconds = best_w1;
    r1.events = got1.executed;
    r1.identical = got1 == mesh_ref;
    rows.push_back(r1);
  }
  for (const unsigned workers : kWorkerCounts) {
    if (workers == 1) continue;  // measured above, paired with serial
    ThreadPool pool(workers);
    Row r;
    r.name = "mesh";
    r.workers = workers;
    des::PdesWorkloadResult got;
    r.seconds = best_seconds(reps, [&] {
      des::ParallelEngine eng(spec, pool);
      got = des::run_pdes_mesh(eng, kSeed, horizon, work);
    });
    r.events = got.executed;
    r.identical = got == mesh_ref;
    rows.push_back(r);
  }

  // --- cluster scenario: whole-result determinism + wall clock ---
  cloud::ClusterConfig cfg;
  cfg.leaves = 64;
  cfg.leaf_groups = 8;
  cfg.net_latency_ms = 1.0;
  cfg.query_rate_hz = smoke ? 60 : 200;
  cfg.background_rate_hz = 30;
  cfg.duration_s = smoke ? 2 : 5;
  cfg.goodput_window_s = 1;
  cfg.seed = kSeed;

  cloud::ClusterResult cluster_ref;
  {
    Row r;
    r.name = "cluster";
    r.workers = 0;
    cfg.workers = 0;
    r.seconds = best_seconds(
        reps, [&] { cluster_ref = cloud::simulate_cluster_pdes(cfg); });
    r.events = cluster_ref.leaf_requests;
    rows.push_back(r);
  }
  for (const unsigned workers : kWorkerCounts) {
    Row r;
    r.name = "cluster";
    r.workers = workers;
    cfg.workers = workers;
    cloud::ClusterResult got;
    r.seconds =
        best_seconds(reps, [&] { got = cloud::simulate_cluster_pdes(cfg); });
    r.events = got.leaf_requests;
    r.identical = same_cluster_result(got, cluster_ref);
    rows.push_back(r);
  }

  bool all_identical = true;
  double mesh_serial_s = 0, mesh_w1_s = 0, mesh_w4_s = 0;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    if (r.name == "mesh") {
      if (r.workers == 0) mesh_serial_s = r.seconds;
      if (r.workers == 1) mesh_w1_s = r.seconds;
      if (r.workers == 4) mesh_w4_s = r.seconds;
    }
    std::cout << r.name << " workers="
              << (r.workers == 0 ? std::string("serial")
                                 : std::to_string(r.workers))
              << ": " << r.events << " events in " << r.seconds << " s ("
              << r.mev_s() << " Mev/s), result "
              << (r.identical ? "identical" : "DIVERGED") << "\n";
  }

  // Gate on the *median* per-round ratio: every round timed serial and
  // workers=1 back to back, so each ratio is free of cross-round drift,
  // and the median discards the rounds a load spike hit.  (min/min over
  // all rounds -- what the row Mev/s numbers use -- still compares
  // timings that can be many seconds apart.)
  double overhead = mesh_serial_s > 0 ? mesh_w1_s / mesh_serial_s - 1.0 : 0;
  if (!overhead_ratios.empty()) {
    std::sort(overhead_ratios.begin(), overhead_ratios.end());
    overhead = overhead_ratios[overhead_ratios.size() / 2] - 1.0;
  }
  const double speedup4 = mesh_w4_s > 0 ? mesh_serial_s / mesh_w4_s : 0;
  bool overhead_ok = true;
  bool speedup_ok = true;
  if (!smoke) {
    overhead_ok = overhead <= overhead_tol;
    std::cout << "\nworkers=1 overhead vs serial (median of " << reps
              << " paired rounds): " << overhead * 100 << "% (tolerance "
              << overhead_tol * 100 << "%) -> "
              << (overhead_ok ? "ok" : "BREACH") << "\n";
    if (hw >= 4) {
      speedup_ok = speedup4 >= 1.8;
      std::cout << "workers=4 speedup: " << speedup4 << "x (floor 1.8x) -> "
                << (speedup_ok ? "ok" : "BREACH") << "\n";
    } else {
      std::cout << "workers=4 speedup: " << speedup4 << "x (not gated: host has "
                << hw << " core" << (hw == 1 ? "" : "s") << ")\n";
    }
  }
  std::cout << "\ndifferential determinism: "
            << (all_identical ? "bit-identical at every worker count"
                              : "DIVERGENCE")
            << "\n";

  std::ofstream out("BENCH_pdes.json");
  out << "{\n  " << bench::meta_json(hw, reps)
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"identical\": " << (all_identical ? "true" : "false")
      << ",\n  \"workers1_overhead\": " << overhead
      << ",\n  \"workers4_speedup\": " << speedup4 << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"workers\": " << r.workers
        << ", \"events\": " << r.events << ", \"seconds\": " << r.seconds
        << ", \"mev_per_sec\": " << r.mev_s()
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_pdes.json\n";

  return (all_identical && overhead_ok && speedup_ok) ? 0 : 1;
}
