// E7 -- Section 2.2: "while parallelism will abound in future
// applications (big data = big parallelism), communication energy will
// outgrow computation energy and will require rethinking how we design
// for 1,000-way parallelism."
//
// Regenerates the strong-scaling study on a mesh many-core: speedup,
// compute vs communication energy, and the crossover where communication
// takes over; plus a task-DAG view via the work-stealing scheduler.

#include <benchmark/benchmark.h>

#include <iostream>

#include "energy/catalogue.hpp"
#include "par/scaling.hpp"
#include "par/schedule.hpp"
#include "par/taskgraph.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::par;

void print_scaling() {
  std::cout << "\n=== E7a: strong scaling to 1024 cores (halo workload) ===\n";
  const energy::Catalogue cat;
  ScalingWorkload w;
  const auto rows = strong_scaling(w, cat, 1024);
  TextTable t({"cores", "time", "speedup", "E_compute", "E_comm+sync",
               "comm frac", "energy/op pJ"});
  for (const auto& r : rows) {
    t.row({std::to_string(r.cores), units::time_format(r.time_s),
           TextTable::num(r.speedup),
           units::si_format(r.compute_energy_j, "J", 2),
           units::si_format(r.comm_energy_j + r.sync_energy_j, "J", 2),
           TextTable::num(r.comm_fraction),
           TextTable::num(units::to_pJ(r.energy_per_op_j), 4)});
  }
  t.print(std::cout);
  // Locate the crossover.
  for (const auto& r : rows) {
    if (r.comm_fraction > 0.5) {
      std::cout << "  Communication energy overtakes computation at "
                << r.cores << " cores -- the paper's 1000-way rethink.\n";
      break;
    }
  }
}

void print_scheduling() {
  std::cout << "\n=== E7b: task-DAG execution, list vs work stealing ===\n";
  const auto g = make_layered(8, 64, 3, 1e7, 4096, 21);
  TextTable t({"cores", "list makespan", "ws makespan", "ws util",
               "comm energy"});
  for (std::uint32_t p : {4u, 16u, 64u}) {
    const auto cores = CoreModel::homogeneous(p, 1e9, 50e-12);
    const auto comm = CommModel::uniform(2e-10, 1e-11);
    const auto ls = list_schedule(g, cores, comm);
    const auto ws = work_stealing_schedule(g, cores, comm, 1e-7, 5);
    t.row({std::to_string(p), units::time_format(ls.makespan_s),
           units::time_format(ws.makespan_s), TextTable::num(ws.utilization()),
           units::si_format(ws.comm_energy_j, "J", 2)});
  }
  t.print(std::cout);
}

void BM_strong_scaling(benchmark::State& state) {
  const energy::Catalogue cat;
  ScalingWorkload w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strong_scaling(w, cat, 1024));
  }
}
BENCHMARK(BM_strong_scaling);

void BM_work_stealing(benchmark::State& state) {
  const auto g = make_layered(6, 32, 3, 1e6, 512, 9);
  const auto cores = CoreModel::homogeneous(16, 1e9, 50e-12);
  const auto comm = CommModel::uniform(2e-10, 1e-11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(work_stealing_schedule(g, cores, comm, 1e-7, 5));
  }
}
BENCHMARK(BM_work_stealing);

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  print_scheduling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
