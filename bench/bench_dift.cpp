// E14 -- Section 2.4: "information flow tracking" as architectural
// support for security.  Regenerates: (a) the attack-detection matrix
// (vulnerable vs sanitized dispatch, DIFT on vs off), and (b) the
// tracking overhead, both modeled (shadow ops per instruction) and
// measured (interpreter wall-clock slowdown).

#include <benchmark/benchmark.h>

#include <iostream>

#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/programs.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::isa;

Machine run_program(const std::string& src, bool dift,
                    std::vector<std::uint64_t> inputs) {
  auto r = assemble(src);
  DiftPolicy pol;
  pol.enabled = dift;
  Machine m(r.program, 1 << 20, pol);
  for (auto v : inputs) m.push_input(v);
  m.run();
  return m;
}

void print_detection() {
  std::cout << "\n=== E14a: control-flow hijack detection matrix ===\n";
  TextTable t({"program", "DIFT", "outcome", "violations"});
  {
    auto m = run_program(programs::vulnerable_dispatch(), false, {2});
    t.row({"vulnerable-dispatch", "off",
           std::string("attack succeeded (handler ran, out=") +
               std::to_string(m.output().empty() ? 0 : m.output()[0]) + ")",
           std::to_string(m.violations().size())});
  }
  {
    auto r = assemble(programs::vulnerable_dispatch());
    DiftPolicy pol;
    pol.enabled = true;
    Machine m(r.program, 1 << 20, pol);
    m.push_input(2);
    const auto stop = m.run();
    t.row({"vulnerable-dispatch", "on", to_string(stop),
           std::to_string(m.violations().size())});
  }
  {
    auto m = run_program(programs::sanitized_dispatch(), true, {1});
    t.row({"sanitized-dispatch", "on",
           std::string("clean run (out=") +
               std::to_string(m.output().empty() ? 0 : m.output()[0]) + ")",
           std::to_string(m.violations().size())});
  }
  t.print(std::cout);
  std::cout << "  Claim check: hardware-level flow tracking detects the\n"
               "  unchecked indirect transfer and stays quiet on the\n"
               "  sanitized version (no false positive).\n";
}

void print_overhead() {
  std::cout << "\n=== E14b: DIFT tracking overhead ===\n";
  auto base = run_program(programs::sum_loop(100000), false, {});
  auto dift = run_program(programs::sum_loop(100000), true, {});
  TextTable t({"metric", "DIFT off", "DIFT on"});
  t.row({"instructions", std::to_string(base.stats().instructions),
         std::to_string(dift.stats().instructions)});
  t.row({"shadow ops", std::to_string(base.stats().shadow_ops),
         std::to_string(dift.stats().shadow_ops)});
  const double per_instr =
      static_cast<double>(dift.stats().shadow_ops) /
      static_cast<double>(dift.stats().instructions);
  t.row({"shadow ops / instr", "0", TextTable::num(per_instr)});
  t.print(std::cout);
  std::cout << "  Interpreted wall-clock overhead is measured below by the\n"
               "  BM_run_{plain,dift} benchmark pair.\n";
}

void BM_run_plain(benchmark::State& state) {
  auto r = assemble(programs::sum_loop(10000));
  for (auto _ : state) {
    Machine m(r.program);
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_run_plain);

void BM_run_dift(benchmark::State& state) {
  auto r = assemble(programs::sum_loop(10000));
  DiftPolicy pol;
  pol.enabled = true;
  for (auto _ : state) {
    Machine m(r.program, 1 << 20, pol);
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_run_dift);

void BM_assemble(benchmark::State& state) {
  const auto src = programs::sanitized_dispatch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble(src));
  }
}
BENCHMARK(BM_assemble);

}  // namespace

int main(int argc, char** argv) {
  print_detection();
  print_overhead();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
