// E20 (extension) -- Section 2.4: "Transactional memory (TM) ... seeks to
// significantly simplify parallelization and synchronization ... now
// entering the commercial mainstream."
//
// The bench runs the TL2-style STM on bank-transfer workloads across a
// contention sweep (few hot accounts -> many cold accounts), reporting
// abort rates and verifying the atomicity invariant, and compares the
// optimistic approach's wasted work against the pessimistic lock model's
// queueing delay.

#include <benchmark/benchmark.h>

#include <iostream>

#include "par/stm.hpp"
#include "par/sync.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::par;

void print_contention_sweep() {
  std::cout << "\n=== E20a: STM abort rate vs contention ===\n";
  TextTable t({"accounts", "txns", "commits", "aborts", "abort rate",
               "money conserved"});
  for (std::size_t accounts : {2, 4, 16, 64, 256}) {
    StmHeap h(accounts);
    for (std::size_t i = 0; i < accounts; ++i) h.poke(i, 1000);
    const auto scripts = make_transfer_scripts(accounts, 400, 7);
    const auto stats = run_interleaved(h, scripts, 13);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < accounts; ++i) total += h.peek(i);
    t.row({std::to_string(accounts), "400", std::to_string(stats.commits),
           std::to_string(stats.aborts), TextTable::num(stats.abort_rate()),
           total == accounts * 1000 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "  Claim check: optimistic concurrency wastes work only where\n"
               "  data actually conflicts; at low contention aborts vanish\n"
               "  while atomicity (conservation) holds everywhere.\n";
}

void print_vs_lock() {
  std::cout << "\n=== E20b: optimistic (STM) vs pessimistic (lock) ===\n";
  // Cost proxies: STM wasted work = aborts x txn length; lock = every
  // transaction serializes through the critical section.
  TextTable t({"accounts", "STM wasted txn-equivalents",
               "lock mean sojourn @1Mtx/s"});
  LockModel lock;
  for (std::size_t accounts : {2, 16, 256}) {
    StmHeap h(accounts);
    for (std::size_t i = 0; i < accounts; ++i) h.poke(i, 1000);
    const auto scripts = make_transfer_scripts(accounts, 400, 7);
    const auto stats = run_interleaved(h, scripts, 13);
    const double sojourn = lock.mean_sojourn(4, 0.25e6);
    t.row({std::to_string(accounts), std::to_string(stats.aborts),
           std::isinf(sojourn) ? "saturated"
                               : units::time_format(sojourn, 1)});
  }
  t.print(std::cout);
  std::cout << "  The lock's cost is contention-independent (every txn\n"
               "  serializes); STM's cost tracks true data conflicts.\n";
}

void BM_stm_transfers(benchmark::State& state) {
  const auto accounts = static_cast<std::size_t>(state.range(0));
  const auto scripts = make_transfer_scripts(accounts, 100, 7);
  for (auto _ : state) {
    StmHeap h(accounts);
    for (std::size_t i = 0; i < accounts; ++i) h.poke(i, 1000);
    benchmark::DoNotOptimize(run_interleaved(h, scripts, 13));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_stm_transfers)->Arg(4)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_contention_sweep();
  print_vs_lock();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
