// E27 DES event-queue harness: replays identical seeded workloads
// (schedule-heavy, cancel-heavy timeout-per-call, cluster-like fan-out)
// through the production ladder/calendar queue and the reference binary
// heap + unordered_map kernel it replaced, reports events/sec for both
// and the speedup, and verifies the two queues executed *exactly* the
// same event order -- the differential determinism check.  Emits
// BENCH_des.json for the PR record; exit is nonzero if any order
// diverges.  `--smoke` shrinks the workloads so tier1.sh can run the
// differential check quickly (including under TSan).
// `--metrics-out <path>` additionally publishes the per-workload rows
// into the global obs::MetricsRegistry and dumps its snapshot JSON
// (default BENCH_des_metrics.json) next to BENCH_des.json.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "core/report.hpp"
#include "des/reference_heap.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "obs/metrics.hpp"
#include "util/histogram.hpp"
#include "util/inline_function.hpp"
#include "util/rng.hpp"

namespace {

using namespace arch21;

constexpr std::uint64_t kSeed = 2014;

struct Row {
  std::string name;
  std::uint64_t events = 0;
  double ladder_eps = 0;
  double ref_eps = 0;
  bool identical = false;
  double speedup() const { return ref_eps > 0 ? ladder_eps / ref_eps : 0; }
};

/// Best-of-`reps` wall time of `fn()` in seconds (min absorbs scheduler
/// noise on the 1-core CI host better than the mean).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

template <typename LadderFn, typename RefFn>
Row measure(const std::string& name, int reps, LadderFn ladder_run,
            RefFn ref_run) {
  Row row;
  row.name = name;
  // One differential pass first: the order check is the point; it also
  // warms the allocator so the timed passes see steady state.
  const des::WorkloadResult lad = ladder_run();
  const des::WorkloadResult ref = ref_run();
  row.identical = lad == ref;
  row.events = lad.events();
  row.ladder_eps =
      static_cast<double>(lad.events()) / best_seconds(reps, ladder_run);
  row.ref_eps =
      static_cast<double>(ref.events()) / best_seconds(reps, ref_run);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int best_of = 0;  // 0 = built-in default
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--metrics-out") == 0)
      metrics_out = (i + 1 < argc) ? argv[++i] : "BENCH_des_metrics.json";
    if (std::strcmp(argv[i], "--best-of") == 0 && i + 1 < argc)
      best_of = std::atoi(argv[++i]);
  }
  // --best-of N repeats every timed section N times and keeps the best;
  // more repeats squeeze out 1-core CI jitter so the 5% regression gate
  // stops flaking.  The count lands in the meta stamp: a best-of-10
  // number is a different instrument than a single shot.
  const int reps = best_of > 0 ? best_of : (smoke ? 1 : 3);
  const std::uint32_t sched_n = smoke ? 20'000 : 400'000;
  const std::uint32_t cancel_calls = smoke ? 4'000 : 150'000;
  const std::uint32_t queries = smoke ? 400 : 20'000;
  const std::uint32_t fanout = smoke ? 8 : 20;

  std::cout << "DES event queue: ladder/calendar vs reference binary heap"
            << (smoke ? " (smoke)" : "") << "\n\n";

  std::vector<Row> rows;
  rows.push_back(measure(
      "schedule_heavy", reps,
      [&] { return des::replay_schedule_heavy<des::Simulator>(kSeed, sched_n); },
      [&] {
        return des::replay_schedule_heavy<des::ReferenceSimulator>(kSeed,
                                                                   sched_n);
      }));
  // schedule_n (the PDES window-commit primitive) against one-at-a-time
  // scheduling on the SAME ladder kernel: the "ladder" column is the
  // batched replay, the "heap" column the plain loop, so the speedup
  // column reads out what the batch API buys and `identical` pins the
  // batched order log to the loop's.
  rows.push_back(measure(
      "schedule_heavy_batched", reps,
      [&] {
        return des::replay_schedule_heavy_batched<des::Simulator>(kSeed,
                                                                  sched_n, 64);
      },
      [&] { return des::replay_schedule_heavy<des::Simulator>(kSeed, sched_n); }));
  rows.push_back(measure(
      "cancel_heavy", reps,
      [&] {
        return des::replay_cancel_heavy<des::Simulator>(kSeed, cancel_calls);
      },
      [&] {
        return des::replay_cancel_heavy<des::ReferenceSimulator>(kSeed,
                                                                 cancel_calls);
      }));
  rows.push_back(measure(
      "cluster_replay", reps,
      [&] {
        return des::replay_cluster_like<des::Simulator>(kSeed, queries, fanout);
      },
      [&] {
        return des::replay_cluster_like<des::ReferenceSimulator>(kSeed, queries,
                                                                 fanout);
      }));

  // hist_merge micro-bench: fold a populated shard histogram into an
  // accumulator through the vectorized bucket merge (what snapshot()
  // does per shard), vs replaying the shard's samples one add() at a
  // time.  Sample values come from an exactly-representable power-of-two
  // grid, so the two paths must agree bit-for-bit across every FP
  // accumulator (operator== is bit-exact) -- the same contract the
  // property test in tests/test_histogram.cpp pins.
  {
    const std::size_t samples = smoke ? 2'000 : 10'000;
    const int merges = smoke ? 20 : 400;
    LogHistogram shard(1e-2, 1e5, 90);
    std::vector<double> vals(samples);
    Rng rng(kSeed, 77);
    for (double& v : vals) {
      v = std::ldexp(1.0, static_cast<int>(rng.below(20)) - 5);
    }
    for (double v : vals) shard.add(v);
    Row r;
    r.name = "hist_merge";
    r.events = samples * static_cast<std::uint64_t>(merges);
    LogHistogram via_merge(1e-2, 1e5, 90);
    via_merge.merge(shard);
    LogHistogram via_add(1e-2, 1e5, 90);
    for (double v : vals) via_add.add(v);
    r.identical = via_merge == via_add;
    volatile std::uint64_t sink = 0;
    r.ladder_eps =
        static_cast<double>(r.events) / best_seconds(reps, [&] {
          LogHistogram acc(1e-2, 1e5, 90);
          for (int m = 0; m < merges; ++m) acc.merge(shard);
          sink = sink + acc.count();
        });
    r.ref_eps =
        static_cast<double>(r.events) / best_seconds(reps, [&] {
          LogHistogram acc(1e-2, 1e5, 90);
          for (int m = 0; m < merges; ++m) {
            for (double v : vals) acc.add(v);
          }
          sink = sink + acc.count();
        });
    rows.push_back(r);
  }

  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    std::cout << r.name << ": " << r.events << " events, ladder "
              << r.ladder_eps / 1e6 << " Mev/s vs heap " << r.ref_eps / 1e6
              << " Mev/s -> " << r.speedup() << "x, order "
              << (r.identical ? "identical" : "DIVERGED") << "\n";
  }
  std::cout << "\ndifferential determinism: "
            << (all_identical ? "identical execution order on all workloads"
                              : "ORDER MISMATCH")
            << "\n";

  std::ofstream out("BENCH_des.json");
  out << "{\n  " << bench::meta_json(0, reps)
      << ",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"identical_order\": " << (all_identical ? "true" : "false")
      << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
        << ", \"ladder_events_per_sec\": " << r.ladder_eps
        << ", \"heap_events_per_sec\": " << r.ref_eps
        << ", \"speedup\": " << r.speedup()
        << ", \"identical_order\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_des.json\n";

  if (!metrics_out.empty()) {
    auto& m = obs::MetricsRegistry::global();
    m.set_enabled(true);
    for (const Row& r : rows) {
      m.add(m.counter("des_bench." + r.name + ".events"), r.events);
      m.gauge_max(m.gauge("des_bench." + r.name + ".ladder_mev_s"),
                  r.ladder_eps / 1e6);
      m.gauge_max(m.gauge("des_bench." + r.name + ".heap_mev_s"),
                  r.ref_eps / 1e6);
      m.gauge_max(m.gauge("des_bench." + r.name + ".speedup"), r.speedup());
    }
    // SBO audit instrument: after every workload above, this must still
    // be zero -- the static_asserts pin the hot-path closure sizes at
    // compile time, and this counter catches any runtime path they miss.
    m.add(m.counter("des_bench.inline_function_heap_allocs"),
          inline_function_heap_allocations());
    const auto snap = m.snapshot();
    std::ofstream mout(metrics_out);
    mout << snap.to_json() << "\n";
    std::cout << "\n" << core::render_metrics_report(snap) << "wrote "
              << metrics_out << "\n";
  }
  return all_identical ? 0 : 1;
}
