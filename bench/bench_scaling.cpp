// E1 -- Table 1, rows 1-2: Moore's law continues, Dennard scaling is
// gone.  Regenerates the transistor/frequency/power trajectories under
// ideal Dennard scaling vs the post-Dennard reality, from the node table
// and from the scaling laws.
//
// Paper claims reproduced:
//   * "Transistor count still 2x every 18-24 months"
//   * "Not viable for power/chip to double (with 2x transistors/chip)"

#include <benchmark/benchmark.h>

#include <iostream>

#include "tech/node.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;

void print_node_trajectory() {
  std::cout << "\n=== E1a: measured node trajectory (fixed 100 mm^2 die) ===\n";
  TextTable t({"node", "year", "Mtx/chip", "Vdd", "freq GHz",
               "rel power/chip", "rel energy/switch"});
  const auto nodes = tech::node_table();
  const auto& ref = nodes.front();
  const double ref_metric = ref.density_mtx_mm2 * ref.cgate_rel * ref.vdd *
                            ref.vdd * ref.freq_ghz;
  for (const auto& n : nodes) {
    const double power_rel =
        n.density_mtx_mm2 * n.cgate_rel * n.vdd * n.vdd * n.freq_ghz /
        ref_metric;
    t.row({n.name, std::to_string(n.year),
           TextTable::num(n.transistors_100mm2()), TextTable::num(n.vdd),
           TextTable::num(n.freq_ghz), TextTable::num(power_rel),
           TextTable::num(n.switch_energy_rel())});
  }
  t.print(std::cout);
}

void print_scaling_laws() {
  std::cout << "\n=== E1b: 8 generations, ideal Dennard vs post-Dennard ===\n";
  TextTable t({"gen", "density(D)", "freq(D)", "power(D)", "density(PD)",
               "freq(PD)", "power(PD)"});
  const auto d = tech::dennard_generation();
  const auto pd = tech::post_dennard_generation();
  for (int g = 0; g <= 8; ++g) {
    const auto cd = tech::compound(d, g);
    const auto cpd = tech::compound(pd, g);
    t.row({std::to_string(g), TextTable::num(cd.density),
           TextTable::num(cd.frequency), TextTable::num(cd.power_fixed_area),
           TextTable::num(cpd.density), TextTable::num(cpd.frequency),
           TextTable::num(cpd.power_fixed_area)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: Dennard power stays 1.0x; post-Dennard power\n"
               "  at fixed area grows every generation -> the power wall.\n";
}

void BM_compound_scaling(benchmark::State& state) {
  const auto pd = tech::post_dennard_generation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tech::compound(pd, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_compound_scaling)->Arg(4)->Arg(16);

void BM_node_lookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tech::find_node("22nm"));
  }
}
BENCHMARK(BM_node_lookup);

}  // namespace

int main(int argc, char** argv) {
  print_node_trajectory();
  print_scaling_laws();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
