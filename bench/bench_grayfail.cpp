// E34 gray-failure drill: a fail-slow (jittery) burst against the DES
// cluster, measured as goodput CONTAINMENT -- how much of pre-burst
// goodput the client keeps while the burst is running.  The point of
// the drill is the blindness of fail-stop protection: the full E29
// ladder (bounded deadline-drop queues, admission + retry budget,
// per-replica circuit breakers) is defeated, because a jittery replica
// still answers every request -- just late -- so every reply lands a
// *success* in the breaker window and the failure fraction never
// reaches the open threshold.  The gray-aware client (EWMA scoring with
// peer-relative outlier eviction, reply-rate/zombie accounting,
// probation re-admission, adaptive deadlines) contains the same burst.
//
// Prints the grayfail report and three headline claims, verifies the
// multi-trial aggregate (gray counters included) is bit-identical
// across pool sizes 1 / 2 / default, verifies that gray knobs left
// DISABLED leave the simulation byte-identical (the repo determinism
// contract), and writes BENCH_grayfail.json.  Exit is nonzero if any
// claim or check fails.
//
// Observability: `--metrics-out <path>` dumps the merged metrics
// snapshot (gray counters included); `--trace-out <path>` replays one
// fully adaptive trial with a Chrome-trace sink.  Both default off.
//
// `--smoke` shrinks the drill for sanitizer runs in tier1.sh; the
// containment thresholds are skipped there (the small workload is too
// noisy to assert on), while the determinism checks still run.

#include <chrono>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliab/gray.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr double kSettleS = 2.0;

cloud::ClusterConfig base_config(bool smoke) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 20;
  // Healthy operating point ~0.48 utilization per leaf -- low enough
  // that even with 6 of 20 replicas evicted the redirected load (x20/14)
  // keeps the survivors near 0.66, clear of the timeout knee.  The
  // burst's damage is the replies' LATENESS, not server saturation.
  cfg.query_rate_hz = smoke ? 60 : 140;
  cfg.leaf_service_ms = 3.0;
  cfg.service_sigma = 0.35;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 2.0;
  cfg.duration_s = smoke ? 8 : 30;
  cfg.seed = 2014;
  cfg.goodput_window_s = 1.0;
  // The trigger: 6 of 20 leaves turn JITTERY at t=10s for 12s -- a
  // reply is delayed by an exponential spike of mean 1 s with
  // probability 0.45.  The leaves keep full service capacity (this is a
  // NIC/GC hiccup, not overload), and the spike odds are chosen so the
  // per-replica record stream stays SUCCESS-dominated: every spiked
  // attempt times out once (~0.45 failures per attempt) but still
  // delivers its reply eventually (1.0 successes per attempt), so the
  // breaker window's failure fraction hovers near 0.31 -- below the 0.5
  // open threshold.  The breakers genuinely see successes, just late.
  cfg.gray.burst_leaves = 6;
  cfg.gray.burst_start_s = smoke ? 3 : 10;
  cfg.gray.burst_duration_s = smoke ? 2 : 12;
  cfg.gray.burst_mode = reliab::GrayMode::kJittery;
  cfg.gray.burst_severity = 1000.0;  // mean spike, ms
  cfg.gray.spike_prob = 0.45;
  return cfg;
}

cloud::GrayfailPolicies ladder_knobs() {
  cloud::GrayfailPolicies knobs;
  // A high quorum (19/20) is what lets a handful of gray replicas hold
  // whole queries hostage; eviction must redirect, not just skip.
  knobs.quorum_fraction = 0.95;
  // A modest retry budget: enough for the adaptive rung to recover the
  // occasional bounced send, not enough for naive retries to paper over
  // a 6-replica fail-slow burst.
  knobs.budget_ratio = 0.05;
  // Deep enough that redirected load (20 leaves' sends onto 14) rarely
  // bounces; still bounded with deadline drop, per the E29 stack.
  knobs.queue_capacity = 8;
  // Long eviction relative to the probation re-check keeps the fraction
  // of burst time spent re-probing gray replicas small, while still
  // letting a cleared replica re-admit within the post-burst window.
  knobs.gray.evict_ms = 2500;
  return knobs;
}

bool same_aggregate(const cloud::ClusterResult& a,
                    const cloud::ClusterResult& b) {
  return a.queries == b.queries && a.ok_queries == b.ok_queries &&
         a.degraded_queries == b.degraded_queries &&
         a.failed_queries == b.failed_queries && a.retries == b.retries &&
         a.hedges == b.hedges && a.timeouts == b.timeouts &&
         a.lost_requests == b.lost_requests &&
         a.leaf_requests == b.leaf_requests &&
         a.shed_queries == b.shed_queries &&
         a.rejected_requests == b.rejected_requests &&
         a.expired_drops == b.expired_drops &&
         a.breaker_open_transitions == b.breaker_open_transitions &&
         a.breaker_short_circuits == b.breaker_short_circuits &&
         a.gray_episodes == b.gray_episodes &&
         a.gray_dropped_replies == b.gray_dropped_replies &&
         a.gray_evictions == b.gray_evictions &&
         a.gray_probations == b.gray_probations &&
         a.gray_zombies == b.gray_zombies &&
         a.gray_redirected_sends == b.gray_redirected_sends &&
         a.adaptive_deadline_ms == b.adaptive_deadline_ms &&
         a.answered_per_window == b.answered_per_window &&
         a.query_ms.count() == b.query_ms.count() &&
         a.query_ms.quantile(0.5) == b.query_ms.quantile(0.5) &&
         a.query_ms.quantile(0.99) == b.query_ms.quantile(0.99) &&
         a.sum_result_quality == b.sum_result_quality &&
         a.goodput_qps == b.goodput_qps;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--metrics-out") == 0)
      metrics_out = (i + 1 < argc) ? argv[++i] : "BENCH_grayfail_metrics.json";
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = (i + 1 < argc) ? argv[++i] : "BENCH_grayfail_trace.json";
  }
  auto& mreg = obs::MetricsRegistry::global();
  if (!metrics_out.empty()) mreg.set_enabled(true);

  const auto cfg = base_config(smoke);
  const auto knobs = ladder_knobs();
  const unsigned trials = smoke ? 2 : 3;
  ThreadPool pool;  // default_threads() / ARCH21_THREADS

  std::cout << "gray-failure drill: " << cfg.leaves << " leaves, "
            << cfg.query_rate_hz << " qps, burst " << cfg.gray.burst_leaves
            << " leaves " << reliab::to_string(cfg.gray.burst_mode)
            << " for " << cfg.gray.burst_duration_s << " s (spike mean "
            << cfg.gray.burst_severity << " ms, p=" << cfg.gray.spike_prob
            << "), " << trials << " trials/rung, pool=" << pool.size()
            << "\n\n";

  const auto wall_t0 = std::chrono::steady_clock::now();
  const auto ladder = cloud::grayfail_scenarios(cfg, trials, knobs, &pool);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_t0)
                            .count();
  std::cout << core::render_grayfail_report(ladder, kSettleS) << "\n";

  // --- headline claims: fail-stop blindness vs adaptive containment ----
  const auto& failstop = ladder[1];   // E29 stack vs the gray burst
  const auto& adaptive = ladder.back();
  const auto c_fs =
      cloud::gray_containment(failstop.result, failstop.config, kSettleS);
  const auto c_ad =
      cloud::gray_containment(adaptive.result, adaptive.config, kSettleS);
  bool claims_ok = true;
  if (!smoke) {
    // (a) blindness: the E29 fail-stop ladder loses >= 40% of pre-burst
    //     goodput while the fail-slow burst runs.
    const bool blind = c_fs.containment_ratio() <= 0.60;
    // (b) containment: the adaptive ladder keeps >= 90%.
    const bool contained = c_ad.containment_ratio() >= 0.90;
    // (c) the mechanism: the E29 rung's gray replicas spend the large
    //     majority of the burst with their breakers CLOSED -- late
    //     replies land successes, so the failure fraction mostly stays
    //     under the open threshold (spiked attempts time out once each,
    //     so the window flickers open occasionally, but the dominant
    //     state is closed-and-blind).
    const double exposure_ms = static_cast<double>(trials) *
                               cfg.gray.burst_leaves *
                               cfg.gray.burst_duration_s * 1000.0;
    const double open_frac =
        failstop.result.breaker_open_ms / exposure_ms;
    const bool breakers_blind = open_frac <= 0.20;
    claims_ok = blind && contained && breakers_blind;
    std::cout << "claim (a) blindness: E29 during/pre goodput "
              << c_fs.containment_ratio() * 100 << "% (<= 60% required) -> "
              << (blind ? "ok" : "FAIL") << "\n";
    std::cout << "claim (b) containment: adaptive during/pre goodput "
              << c_ad.containment_ratio() * 100 << "% (>= 90% required) -> "
              << (contained ? "ok" : "FAIL") << "\n";
    std::cout << "claim (c) breaker blindness: E29 breakers open "
              << open_frac * 100 << "% of the burst exposure "
              << "(<= 20% allowed) -> " << (breakers_blind ? "ok" : "FAIL")
              << "\n\n";
  } else {
    std::cout << "(smoke: containment thresholds skipped)\n\n";
  }

  // --- determinism across pool sizes ----------------------------------
  // The fully adaptive config exercises every new code path (gray
  // injection, detection, eviction/redirect, adaptive deadlines), so
  // bit-identity here covers the whole gray layer.
  ThreadPool p1(1), p2(2);
  const auto& check_cfg = adaptive.config;
  const auto r1 = cloud::run_cluster_trials(check_cfg, trials, &p1);
  const auto r2 = cloud::run_cluster_trials(check_cfg, trials, &p2);
  const auto rn = cloud::run_cluster_trials(check_cfg, trials, &pool);
  const bool identical = same_aggregate(r1, r2) && same_aggregate(r1, rn);
  std::cout << "determinism: pools {1, 2, " << pool.size() << "} -> "
            << (identical ? "bit-identical aggregates" : "MISMATCH") << "\n";

  // --- disabled-gray byte-identity -------------------------------------
  // Gray knobs that are present but DISABLED must not perturb a single
  // draw: tweak every severity/detection field while leaving the enable
  // bits off, and require the aggregate to match the control rung's.
  auto tweaked_cfg = ladder.front().config;  // control: no gray anywhere
  tweaked_cfg.gray.slow_factor_min = 2.0;
  tweaked_cfg.gray.spike_ms_max = 900.0;
  tweaked_cfg.gray.spike_prob = 0.33;
  tweaked_cfg.gray.burst_severity = 7.5;
  tweaked_cfg.policy.gray = knobs.gray;
  tweaked_cfg.policy.gray.enabled = false;
  const auto r_tweaked = cloud::run_cluster_trials(tweaked_cfg, trials, &pool);
  const bool disabled_identical =
      same_aggregate(ladder.front().result, r_tweaked);
  std::cout << "disabled gray knobs: "
            << (disabled_identical ? "byte-identical to control"
                                   : "PERTURBED the control run")
            << "\n";

  // --- JSON record -----------------------------------------------------
  std::ofstream out("BENCH_grayfail.json");
  out << "{\n  "
      << bench::meta_json(static_cast<unsigned>(pool.size()))
      << ",\n  \"leaves\": " << cfg.leaves << ",\n  \"trials\": " << trials
      << ",\n  \"threads\": " << pool.size() << ",\n  \"smoke\": "
      << (smoke ? "true" : "false")
      << ",\n  \"wall_s\": " << wall_s
      << ",\n  \"burst\": {\"leaves\": " << cfg.gray.burst_leaves
      << ", \"mode\": \"" << reliab::to_string(cfg.gray.burst_mode)
      << "\", \"start_s\": " << cfg.gray.burst_start_s
      << ", \"duration_s\": " << cfg.gray.burst_duration_s
      << ", \"spike_ms\": " << cfg.gray.burst_severity
      << ", \"spike_prob\": " << cfg.gray.spike_prob << "}"
      << ",\n  \"failstop_containment\": " << c_fs.containment_ratio()
      << ",\n  \"adaptive_containment\": " << c_ad.containment_ratio()
      << ",\n  \"claims_ok\": " << (claims_ok ? "true" : "false")
      << ",\n  \"identical_across_pools\": " << (identical ? "true" : "false")
      << ",\n  \"disabled_gray_identical\": "
      << (disabled_identical ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i].result;
    // The control rung carries no burst; window it on the drill timing.
    const auto& timing = ladder[i].config.gray.burst_enabled()
                             ? ladder[i].config
                             : ladder.back().config;
    const auto c = cloud::gray_containment(r, timing, kSettleS);
    out << "    {\"name\": \"" << ladder[i].name
        << "\", \"pre_qps\": " << c.pre_qps
        << ", \"during_qps\": " << c.during_qps
        << ", \"post_qps\": " << c.post_qps
        << ", \"containment\": " << c.containment_ratio()
        << ", \"recovery\": " << c.recovery_ratio()
        << ", \"goodput_qps\": " << r.goodput_qps
        << ", \"ok\": " << r.ok_queries
        << ", \"degraded\": " << r.degraded_queries
        << ", \"failed\": " << r.failed_queries
        << ", \"gray_episodes\": " << r.gray_episodes
        << ", \"gray_dropped_replies\": " << r.gray_dropped_replies
        << ", \"evictions\": " << r.gray_evictions
        << ", \"probations\": " << r.gray_probations
        << ", \"zombies\": " << r.gray_zombies
        << ", \"redirected\": " << r.gray_redirected_sends
        << ", \"adaptive_deadline_ms\": " << r.adaptive_deadline_ms
        << ", \"breaker_opens\": " << r.breaker_open_transitions
        << ", \"retry_amplification\": " << r.retry_amplification
        << ", \"p99_ms\": " << r.query_ms.quantile(0.99) << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_grayfail.json\n";

  if (!metrics_out.empty()) {
    const auto snap = mreg.snapshot();
    std::ofstream mout(metrics_out);
    mout << snap.to_json() << "\n";
    std::cout << "\n" << core::render_metrics_report(snap) << "wrote "
              << metrics_out << "\n";
  }

  if (!trace_out.empty()) {
#if ARCH21_OBS_ENABLED
    obs::TraceBuffer trace(std::size_t{1} << 18, 1e3);
    auto traced_cfg = check_cfg;
    traced_cfg.trace = &trace;
    (void)cloud::simulate_cluster(traced_cfg);
    std::ofstream tout(trace_out);
    trace.write_chrome_json(tout);
    std::cout << "wrote " << trace_out << " (" << trace.size() << " events, "
              << trace.dropped() << " dropped)\n";
#else
    std::cout << "--trace-out ignored: built with ARCH21_OBS=OFF\n";
#endif
  }
  return (identical && claims_ok && disabled_identical) ? 0 : 1;
}
