// E29 metastable-failure drill: drives the DES cluster past its knee
// with a transient fault burst and measures whether goodput *recovers*
// after the burst clears.  The unprotected configuration (unbounded
// FIFO leaf queues, naive unbudgeted retries) falls into the metastable
// regime -- the trigger is gone, but queues full of already-abandoned
// work plus retry amplification keep goodput pinned near zero -- while
// the protected ladder (bounded queues with deadline drop, admission
// control + retry budget, per-replica circuit breakers) sheds load
// early and snaps back.
//
// Prints the overload report and two headline claims, verifies the
// multi-trial aggregate (including every new overload counter and the
// goodput time series) is bit-identical across pool sizes 1 / 2 /
// default, and writes BENCH_overload.json.  Exit is nonzero if the
// determinism check or either hysteresis claim fails.
//
// Observability: `--metrics-out <path>` enables the global metrics
// registry for the run and dumps the merged snapshot (shed/breaker
// counters included); `--trace-out <path>` replays one fully protected
// trial with a Chrome-trace sink attached (shed/rejected/breaker-*
// instants land on track 0).  Both default off.
//
// `--smoke` shrinks the drill (fewer queries, shorter horizon) for
// sanitizer runs in tier1.sh; the hysteresis claims are skipped there
// (the small workload is too noisy to assert thresholds on), while the
// determinism check still runs.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr double kSettleS = 2.0;

cloud::ClusterConfig base_config(bool smoke) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 20;
  // ~0.54 utilization per leaf before mitigation overheads: far enough
  // under the knee to be healthy, close enough that a retry storm
  // (amplification >= ~2x) pins it past saturation.
  cfg.query_rate_hz = smoke ? 60 : 160;
  cfg.leaf_service_ms = 3.0;
  cfg.service_sigma = 0.35;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 2.0;
  cfg.duration_s = smoke ? 8 : 30;
  cfg.seed = 2014;
  cfg.goodput_window_s = 1.0;
  // The trigger: 12 of 20 leaves crash at t=10s and stay down 4s.
  cfg.faults.burst_leaves = 12;
  cfg.faults.burst_start_s = smoke ? 3 : 10;
  cfg.faults.burst_duration_s = smoke ? 1 : 4;
  return cfg;
}

bool same_aggregate(const cloud::ClusterResult& a,
                    const cloud::ClusterResult& b) {
  return a.queries == b.queries && a.ok_queries == b.ok_queries &&
         a.degraded_queries == b.degraded_queries &&
         a.failed_queries == b.failed_queries && a.retries == b.retries &&
         a.hedges == b.hedges && a.timeouts == b.timeouts &&
         a.lost_requests == b.lost_requests &&
         a.leaf_requests == b.leaf_requests &&
         a.shed_queries == b.shed_queries &&
         a.rejected_requests == b.rejected_requests &&
         a.expired_drops == b.expired_drops &&
         a.breaker_open_transitions == b.breaker_open_transitions &&
         a.breaker_short_circuits == b.breaker_short_circuits &&
         a.breaker_probes == b.breaker_probes &&
         a.breaker_open_ms == b.breaker_open_ms &&
         a.answered_per_window == b.answered_per_window &&
         a.query_ms.count() == b.query_ms.count() &&
         a.query_ms.quantile(0.5) == b.query_ms.quantile(0.5) &&
         a.query_ms.quantile(0.99) == b.query_ms.quantile(0.99) &&
         a.sum_result_quality == b.sum_result_quality &&
         a.goodput_qps == b.goodput_qps;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--metrics-out") == 0)
      metrics_out = (i + 1 < argc) ? argv[++i] : "BENCH_overload_metrics.json";
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = (i + 1 < argc) ? argv[++i] : "BENCH_overload_trace.json";
  }
  auto& mreg = obs::MetricsRegistry::global();
  if (!metrics_out.empty()) mreg.set_enabled(true);

  const auto cfg = base_config(smoke);
  const unsigned trials = smoke ? 2 : 3;
  ThreadPool pool;  // default_threads() / ARCH21_THREADS

  std::cout << "overload drill: " << cfg.leaves << " leaves, "
            << cfg.query_rate_hz << " qps, burst " << cfg.faults.burst_leaves
            << " leaves down for " << cfg.faults.burst_duration_s << " s, "
            << trials << " trials/rung, pool=" << pool.size() << "\n\n";

  cloud::OverloadPolicies knobs;
  // Timeout above the healthy-state sojourn tail: pre-burst the naive
  // client barely retries (the unprotected rung is genuinely stable
  // until the trigger), which is what makes the post-burst collapse a
  // *metastable* failure rather than plain overload.
  knobs.timeout_ms = 25;
  knobs.sojourn_target_ms = 25;
  const auto wall_t0 = std::chrono::steady_clock::now();
  const auto ladder = cloud::overload_scenarios(cfg, trials, knobs, &pool);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_t0)
                            .count();
  std::cout << core::render_overload_report(ladder, kSettleS) << "\n";

  // --- headline claims: hysteresis vs recovery -------------------------
  const auto& unprotected = ladder.front();
  const auto& protected_ = ladder.back();
  const auto h_un =
      cloud::goodput_hysteresis(unprotected.result, unprotected.config,
                                kSettleS);
  const auto h_pr =
      cloud::goodput_hysteresis(protected_.result, protected_.config,
                                kSettleS);
  bool claims_ok = true;
  if (!smoke) {
    // (a) metastability: the unprotected cluster stays >= 40% below its
    //     pre-burst goodput after the fault has cleared.
    const bool stuck = h_un.recovery_ratio() <= 0.60;
    // (b) recovery: the fully protected cluster returns to >= 90%.
    const bool recovered = h_pr.recovery_ratio() >= 0.90;
    claims_ok = stuck && recovered;
    std::cout << "claim (a) metastability: unprotected post/pre goodput "
              << h_un.recovery_ratio() * 100 << "% (<= 60% required) -> "
              << (stuck ? "ok" : "FAIL") << "\n";
    std::cout << "claim (b) recovery: protected post/pre goodput "
              << h_pr.recovery_ratio() * 100 << "% (>= 90% required) -> "
              << (recovered ? "ok" : "FAIL") << "\n\n";
  } else {
    std::cout << "(smoke: hysteresis thresholds skipped)\n\n";
  }

  // --- determinism across pool sizes ----------------------------------
  // The fully protected config exercises every new code path (bounded
  // queue, deadline drops, admission, breakers), so bit-identity here
  // covers the whole overload layer.
  ThreadPool p1(1), p2(2);
  const auto& check_cfg = protected_.config;
  const auto r1 = cloud::run_cluster_trials(check_cfg, trials, &p1);
  const auto r2 = cloud::run_cluster_trials(check_cfg, trials, &p2);
  const auto rn = cloud::run_cluster_trials(check_cfg, trials, &pool);
  const bool identical = same_aggregate(r1, r2) && same_aggregate(r1, rn);
  std::cout << "determinism: pools {1, 2, " << pool.size() << "} -> "
            << (identical ? "bit-identical aggregates" : "MISMATCH") << "\n";

  // --- JSON record -----------------------------------------------------
  std::ofstream out("BENCH_overload.json");
  out << "{\n  "
      << bench::meta_json(static_cast<unsigned>(pool.size()))
      << ",\n  \"leaves\": " << cfg.leaves << ",\n  \"trials\": " << trials
      << ",\n  \"threads\": " << pool.size() << ",\n  \"smoke\": "
      << (smoke ? "true" : "false")
      << ",\n  \"wall_s\": " << wall_s
      << ",\n  \"burst\": {\"leaves\": " << cfg.faults.burst_leaves
      << ", \"start_s\": " << cfg.faults.burst_start_s
      << ", \"duration_s\": " << cfg.faults.burst_duration_s << "}"
      << ",\n  \"unprotected_recovery\": " << h_un.recovery_ratio()
      << ",\n  \"protected_recovery\": " << h_pr.recovery_ratio()
      << ",\n  \"claims_ok\": " << (claims_ok ? "true" : "false")
      << ",\n  \"identical_across_pools\": " << (identical ? "true" : "false")
      << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i].result;
    const auto h = cloud::goodput_hysteresis(r, ladder[i].config, kSettleS);
    out << "    {\"name\": \"" << ladder[i].name
        << "\", \"pre_qps\": " << h.pre_qps
        << ", \"post_qps\": " << h.post_qps
        << ", \"recovery\": " << h.recovery_ratio()
        << ", \"goodput_qps\": " << r.goodput_qps
        << ", \"ok\": " << r.ok_queries
        << ", \"degraded\": " << r.degraded_queries
        << ", \"failed\": " << r.failed_queries
        << ", \"shed\": " << r.shed_queries
        << ", \"rejected\": " << r.rejected_requests
        << ", \"expired\": " << r.expired_drops
        << ", \"breaker_opens\": " << r.breaker_open_transitions
        << ", \"breaker_short_circuits\": " << r.breaker_short_circuits
        << ", \"retry_amplification\": " << r.retry_amplification
        << ", \"p99_ms\": " << r.query_ms.quantile(0.99) << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_overload.json\n";

  if (!metrics_out.empty()) {
    const auto snap = mreg.snapshot();
    std::ofstream mout(metrics_out);
    mout << snap.to_json() << "\n";
    std::cout << "\n" << core::render_metrics_report(snap) << "wrote "
              << metrics_out << "\n";
  }

  if (!trace_out.empty()) {
#if ARCH21_OBS_ENABLED
    // One traced trial of the fully protected stack: ms timestamps, so
    // ts_to_us = 1e3; the ring keeps the most recent 256k records.
    obs::TraceBuffer trace(std::size_t{1} << 18, 1e3);
    auto traced_cfg = check_cfg;
    traced_cfg.trace = &trace;
    (void)cloud::simulate_cluster(traced_cfg);
    std::ofstream tout(trace_out);
    trace.write_chrome_json(tout);
    std::cout << "wrote " << trace_out << " (" << trace.size() << " events, "
              << trace.dropped() << " dropped)\n";
#else
    std::cout << "--trace-out ignored: built with ARCH21_OBS=OFF\n";
#endif
  }
  return (identical && claims_ok) ? 0 : 1;
}
