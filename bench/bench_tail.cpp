// E4 -- Section 2.1: "if 100 systems must jointly respond to a request,
// 63% of requests will incur the 99-percentile delay of the individual
// systems due to waiting for stragglers".
//
// Regenerates (a) the closed-form and simulated tail-amplification curve
// vs fan-out, (b) the mitigation table (hedged and tied requests), and
// (c) the queueing-interference view from the DES cluster.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cloud/cluster.hpp"
#include "cloud/tail.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::cloud;

void print_amplification() {
  std::cout << "\n=== E4a: tail amplification vs fan-out ===\n";
  auto leaf = make_leaf_distribution();
  const auto rows =
      fanout_sweep({1, 5, 10, 25, 50, 100, 200, 500, 1000}, 20000, leaf);
  TextTable t({"fanout", "P(wait >= leaf p99) analytic", "simulated",
               "p99 amplification"});
  for (const auto& r : rows) {
    t.row({std::to_string(r.fanout), TextTable::num(r.analytic_frac),
           TextTable::num(r.simulated_frac),
           TextTable::num(r.p99_amplification)});
  }
  t.print(std::cout);
  std::cout << "  Paper claim: fan-out 100 -> 63% of requests wait >= leaf "
               "p99.  (1 - 0.99^100 = 0.634)\n";
}

void print_mitigations() {
  std::cout << "\n=== E4b: Dean-style mitigations at fan-out 100 ===\n";
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.02, 60.0, 1.4);
  HedgePolicy none;
  HedgePolicy hedged;
  hedged.kind = HedgePolicy::Kind::Hedged;
  hedged.hedge_delay_ms = 15;
  HedgePolicy tied;
  tied.kind = HedgePolicy::Kind::Tied;

  TextTable t({"policy", "p50 ms", "p99 ms", "p99.9 ms", "extra load"});
  for (const auto& [name, pol] :
       {std::pair<const char*, HedgePolicy>{"none", none},
        {"hedged@15ms", hedged},
        {"tied", tied}}) {
    const auto r = simulate_fork_join(100, 20000, leaf, pol, 11);
    t.row({name, TextTable::num(r.request_latency_ms.p50),
           TextTable::num(r.request_latency_ms.p99),
           TextTable::num(r.request_latency_ms.p999),
           TextTable::num(r.extra_load_fraction * 100, 3) + "%"});
  }
  t.print(std::cout);
}

void print_cluster() {
  std::cout << "\n=== E4c: DES cluster with queueing interference ===\n";
  ClusterConfig cfg;
  cfg.leaves = 50;
  cfg.duration_s = 10;
  cfg.query_rate_hz = 40;
  cfg.background_rate_hz = 60;
  cfg.background_ms = 5;
  TextTable t({"hedge", "queries", "leaf util", "query p50 ms", "query p99 ms",
               "hedge frac"});
  for (double hedge_ms : {0.0, 20.0}) {
    cfg.hedge_after_ms = hedge_ms;
    const auto r = simulate_cluster(cfg);
    t.row({hedge_ms == 0 ? "off" : "20 ms", std::to_string(r.queries),
           TextTable::num(r.mean_leaf_utilization),
           TextTable::num(r.query_ms.quantile(0.5)),
           TextTable::num(r.query_ms.quantile(0.99)),
           TextTable::num(r.hedge_fraction)});
  }
  t.print(std::cout);
}

void BM_fork_join_100(benchmark::State& state) {
  auto leaf = make_leaf_distribution();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_fork_join(100, 200, leaf, {}, 3));
  }
}
BENCHMARK(BM_fork_join_100);

void BM_cluster_short(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.duration_s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_cluster(cfg));
  }
}
BENCHMARK(BM_cluster_short);

}  // namespace

int main(int argc, char** argv) {
  print_amplification();
  print_mitigations();
  print_cluster();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
