// E12 -- Section 2.1 / Table A.2: "the energy required to communicate
// data often outweighs that of computation", motivating on-sensor
// filtering; plus the intermittent-power execution study and the
// approximate-computing energy/quality Pareto.

#include <benchmark/benchmark.h>

#include <iostream>

#include "energy/catalogue.hpp"
#include "sensor/approx.hpp"
#include "sensor/intermittent.hpp"
#include "sensor/tradeoff.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::sensor;

void print_tradeoff() {
  std::cout << "\n=== E12a: compute-vs-communicate on a 250 Hz biosignal ===\n";
  const energy::Catalogue cat;
  StreamProfile s;
  TextTable t({"strategy", "compute uW", "radio uW", "total uW"});
  for (const auto& p : strategy_powers(s, cat)) {
    t.row({p.name, TextTable::num(p.compute_w * 1e6),
           TextTable::num(p.radio_w * 1e6), TextTable::num(p.total_w * 1e6)});
  }
  t.print(std::cout);
  std::cout << "  Filtering breaks even at data-reduction factor "
            << TextTable::num(filter_breakeven_reduction(s, cat), 3)
            << " (paper: communication energy dominates computation).\n";

  std::cout << "\n  reduction-factor sweep (filter-on-sensor total uW):\n";
  TextTable sweep({"reduction", "filter total uW", "vs raw"});
  const double raw = strategy_powers(s, cat)[0].total_w;
  for (double r : {1.0, 2.0, 5.0, 10.0, 50.0, 200.0}) {
    StreamProfile ss = s;
    ss.reduction_factor = r;
    const double w = strategy_powers(ss, cat)[1].total_w;
    sweep.row({TextTable::num(r), TextTable::num(w * 1e6),
               TextTable::num(w / raw, 3) + "x"});
  }
  sweep.print(std::cout);
}

void print_intermittent() {
  std::cout << "\n=== E12b: intermittent execution on harvested energy ===\n";
  TextTable t({"checkpoint every", "completed", "elapsed s", "failures",
               "waste frac", "checkpoints"});
  for (std::uint64_t k : {1ull, 10ull, 50ull, 200ull, 2000ull}) {
    IntermittentConfig cfg;
    cfg.work_units = 4000;
    cfg.checkpoint_every = k;
    cfg.harvester.power_w = 2e-3;
    cfg.harvester.p_active = 0.35;
    cfg.harvester.cap_j = 40e-6;
    cfg.on_threshold_j = 25e-6;
    const auto r = run_intermittent(cfg);
    t.row({std::to_string(k), r.completed ? "yes" : "no",
           TextTable::num(r.elapsed_s), std::to_string(r.power_failures),
           TextTable::num(r.waste_fraction()), std::to_string(r.checkpoints)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: too-frequent checkpointing wastes energy on\n"
               "  overhead; too-rare loses windows to power failures -- the\n"
               "  interior optimum is the intermittent-computing design "
               "point.\n";
}

void print_approx() {
  std::cout << "\n=== E12c: approximate computing on the ECG/FIR kernel ===\n";
  TextTable t({"technique", "parameter", "SNR dB", "energy vs exact"});
  for (const auto& r : approx_sweep()) {
    t.row({r.technique, TextTable::num(r.parameter), TextTable::num(r.snr_db),
           TextTable::num(r.energy_rel)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: 'sensor data is inherently approximate' --\n"
               "  a >20 dB result survives at a fraction of the energy.\n";
}

void BM_fir_exact(benchmark::State& state) {
  const auto x = synthetic_ecg(4096);
  const auto h = lowpass_fir(31, 0.12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fir_apply(x, h));
  }
}
BENCHMARK(BM_fir_exact);

void BM_fir_fixed12(benchmark::State& state) {
  const auto x = synthetic_ecg(4096);
  const auto h = lowpass_fir(31, 0.12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fir_apply_fixed(x, h, 12));
  }
}
BENCHMARK(BM_fir_fixed12);

void BM_intermittent_run(benchmark::State& state) {
  IntermittentConfig cfg;
  cfg.work_units = 1000;
  cfg.harvester.power_w = 5e-3;
  cfg.harvester.p_active = 0.6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_intermittent(cfg));
  }
}
BENCHMARK(BM_intermittent_run);

}  // namespace

int main(int argc, char** argv) {
  print_tradeoff();
  print_intermittent();
  print_approx();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
