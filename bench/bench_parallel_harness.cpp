// Parallel-engine harness: measures serial (pool of 1) vs parallel
// (default pool) wall clock for every hot path wired into the thread
// pool, verifies the results are bit-identical, and emits the numbers as
// machine-readable JSON (BENCH_parallel.json) for the PR record.
//
// This binary has its own main (no google-benchmark): the point is a
// like-for-like A/B with identical work on both sides, best-of-3 to damp
// scheduler noise.

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/tail.hpp"
#include "core/dse.hpp"
#include "core/profile.hpp"
#include "reliab/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

struct Row {
  std::string name;
  double serial_s = 0;
  double parallel_s = 0;
  bool identical = false;
  double speedup() const { return parallel_s > 0 ? serial_s / parallel_s : 0; }
};

// Best-of-3 wall clock of `fn()`; the last call's result is kept by the
// caller via the lambda's side channel.
template <typename F>
double best_of_3(F&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

bool same(const Summary& a, const Summary& b) {
  return a.n == b.n && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.p50 == b.p50 && a.p90 == b.p90 &&
         a.p99 == b.p99 && a.p999 == b.p999 && a.max == b.max;
}

bool same(const core::DseResult& a, const core::DseResult& b) {
  if (a.evaluated != b.evaluated || a.feasible != b.feasible ||
      a.frontier.size() != b.frontier.size()) {
    return false;
  }
  const auto& pa = a.frontier.points();
  const auto& pb = b.frontier.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].design.to_string() != pb[i].design.to_string() ||
        pa[i].metrics.throughput_ops != pb[i].metrics.throughput_ops ||
        pa[i].metrics.power_w != pb[i].metrics.power_w) {
      return false;
    }
  }
  return true;
}

Row bench_fanout_sweep(ThreadPool& serial, ThreadPool& par) {
  Row row{.name = "fanout_sweep(fanout=100, requests=20000)"};
  auto leaf = cloud::make_leaf_distribution();
  std::vector<cloud::FanoutRow> rs, rp;
  row.serial_s = best_of_3(
      [&] { rs = cloud::fanout_sweep({100}, 20000, leaf, 7, &serial); });
  row.parallel_s = best_of_3(
      [&] { rp = cloud::fanout_sweep({100}, 20000, leaf, 7, &par); });
  row.identical = rs.size() == rp.size() &&
                  rs[0].simulated_frac == rp[0].simulated_frac &&
                  rs[0].p99_amplification == rp[0].p99_amplification;
  return row;
}

Row bench_fork_join(ThreadPool& serial, ThreadPool& par) {
  Row row{.name = "simulate_fork_join(fanout=100, requests=20000)"};
  auto leaf = cloud::make_leaf_distribution();
  cloud::ForkJoinResult rs, rp;
  row.serial_s = best_of_3([&] {
    rs = cloud::simulate_fork_join(100, 20000, leaf, {}, 7, &serial);
  });
  row.parallel_s = best_of_3(
      [&] { rp = cloud::simulate_fork_join(100, 20000, leaf, {}, 7, &par); });
  row.identical = same(rs.request_latency_ms, rp.request_latency_ms) &&
                  same(rs.leaf_latency_ms, rp.leaf_latency_ms) &&
                  rs.frac_over_leaf_p99 == rp.frac_over_leaf_p99;
  return row;
}

Row bench_grid(ThreadPool& serial, ThreadPool& par) {
  Row row{.name = "grid_search(default space, 10 repeats)"};
  core::DesignSpace space;
  const auto app = core::profile_mobile_vision();
  core::DseResult rs, rp;
  // A single grid pass is ~milliseconds; repeat to get a stable reading.
  row.serial_s = best_of_3([&] {
    for (int i = 0; i < 10; ++i) {
      rs = core::grid_search(space, app, core::PlatformClass::Portable,
                             &serial);
    }
  });
  row.parallel_s = best_of_3([&] {
    for (int i = 0; i < 10; ++i) {
      rp = core::grid_search(space, app, core::PlatformClass::Portable, &par);
    }
  });
  row.identical = same(rs, rp);
  return row;
}

Row bench_campaign(ThreadPool& serial, ThreadPool& par) {
  Row row{.name = "run_campaign(words=200000, p=1e-4)"};
  const reliab::CampaignConfig cfg{
      .words = 200'000, .flip_prob_per_bit = 1e-4, .seed = 99};
  reliab::CampaignResult rs, rp;
  row.serial_s = best_of_3([&] { rs = reliab::run_campaign(cfg, &serial); });
  row.parallel_s = best_of_3([&] { rp = reliab::run_campaign(cfg, &par); });
  row.identical = rs.clean == rp.clean && rs.corrected == rp.corrected &&
                  rs.detected == rp.detected && rs.silent == rp.silent;
  return row;
}

}  // namespace

int main() {
  ThreadPool serial(1);
  ThreadPool par;  // default_threads(): hardware_concurrency or
                   // ARCH21_THREADS
  std::cout << "parallel harness: serial pool=1 vs parallel pool="
            << par.size() << "\n";

  std::vector<Row> rows;
  rows.push_back(bench_fanout_sweep(serial, par));
  rows.push_back(bench_fork_join(serial, par));
  rows.push_back(bench_grid(serial, par));
  rows.push_back(bench_campaign(serial, par));

  bool all_identical = true;
  for (const auto& r : rows) {
    std::cout << "  " << r.name << ": serial " << r.serial_s << " s, parallel "
              << r.parallel_s << " s, speedup " << r.speedup()
              << (r.identical ? "  [bit-identical]" : "  [MISMATCH]") << "\n";
    all_identical = all_identical && r.identical;
  }

  std::ofstream out("BENCH_parallel.json");
  out << "{\n  " << bench::meta_json(static_cast<unsigned>(par.size()))
      << ",\n  \"threads\": " << par.size() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"serial_s\": " << r.serial_s
        << ", \"parallel_s\": " << r.parallel_s
        << ", \"speedup\": " << r.speedup()
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_parallel.json\n";
  return all_identical ? 0 : 1;
}
