// E23 (extension) -- Section 2.4: "how can applications express
// Quality-of-Service targets and have the underlying hardware, the
// operating system and the virtualization layers work together to ensure
// them?"  Colocation of a latency-critical service with best-effort
// batch work, with and without hardware partitioning of the shared LLC
// and memory bandwidth.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "cloud/qos.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::cloud;

void print_colocation() {
  QosConfig cfg;
  std::cout << "\n=== E23: LC/BE colocation, SLO p99 <= " << cfg.slo_p99_ms
            << " ms ===\n";
  for (bool part : {false, true}) {
    std::cout << "  " << (part ? "WITH hardware QoS (partitioned)"
                               : "shared resources (no QoS interface)")
              << ":\n";
    TextTable t({"BE load", "LC p99 ms", "SLO", "machine util",
                 "BE goodput"});
    for (const auto& r : colocation_sweep(cfg, part, 6)) {
      t.row({TextTable::num(r.be_utilization),
             std::isinf(r.lc_p99_ms) ? std::string("inf") : TextTable::num(r.lc_p99_ms),
             r.slo_met ? "met" : "MISS",
             TextTable::num(r.machine_utilization),
             TextTable::num(r.be_goodput)});
    }
    t.print(std::cout);
  }
  const double shared = max_safe_be_utilization(QosConfig{}, false);
  const double part = max_safe_be_utilization(QosConfig{}, true);
  std::cout << "  max safe BE colocation: " << TextTable::num(shared)
            << " shared vs " << TextTable::num(part)
            << " partitioned -- the QoS interface turns a mostly-idle\n"
               "  machine into a mostly-busy one without breaking the SLO\n"
               "  (energy-proportionality's best friend; cf. E4c fleet "
               "power).\n";
}

void BM_colocation_sweep(benchmark::State& state) {
  QosConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(colocation_sweep(cfg, true, 11));
  }
}
BENCHMARK(BM_colocation_sweep);

}  // namespace

int main(int argc, char** argv) {
  print_colocation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
