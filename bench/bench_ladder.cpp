// E3 -- Section 2.2: the efficiency ladder.  "We suggest as a goal to
// improve the energy efficiency of computers by two-to-three orders of
// magnitude, to obtain, by the end of this decade, an exa-op data center
// that consumes no more than 10 MW, a peta-op departmental server ...
// 10 kW, a tera-op portable ... 10 W, and a giga-op sensor ... 10 mW."
//
// All rungs demand 100 Gops/W.  For each platform class this bench
// evaluates (a) a naive 2012-style general-purpose design and (b) the
// best cross-layer design found by exhaustive DSE (NTV + many-core +
// specialization + 3D memory), and reports the gap to the rung.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/dse.hpp"
#include "energy/ladder.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using core::PlatformClass;

core::AppProfile app_for(PlatformClass pc) {
  switch (pc) {
    case PlatformClass::Sensor: return core::profile_health_monitor();
    case PlatformClass::Portable: return core::profile_mobile_vision();
    case PlatformClass::Departmental: return core::profile_scientific_sim();
    case PlatformClass::Datacenter: return core::profile_scientific_sim();
  }
  return core::profile_mobile_vision();
}

core::DesignPoint naive_design() {
  core::DesignPoint d;
  d.node = "45nm";
  d.vdd_scale = 1.0;
  d.cores = 2;
  d.bce_per_core = 16;
  d.llc_mib = 8;
  return d;
}

void print_ladder() {
  std::cout << "\n=== E3: the 10mW/10W/10kW/10MW efficiency ladder ===\n";
  std::cout << "  target efficiency on every rung: "
            << units::si_format(1e11, "ops/W") << "\n";
  TextTable t({"platform", "naive ops/W", "naive gap", "best ops/W",
               "best gap", "best design"});
  for (const auto pc :
       {PlatformClass::Sensor, PlatformClass::Portable,
        PlatformClass::Departmental, PlatformClass::Datacenter}) {
    const auto app = app_for(pc);
    const auto rung = energy::ladder()[static_cast<std::size_t>(pc)];

    const auto naive = core::evaluate(naive_design(), app, pc);
    const auto a_naive = energy::assess(rung, naive.ops_per_watt);

    core::DesignSpace space;
    const auto res = core::grid_search(space, app, pc);
    const auto* best = res.frontier.best_efficiency();
    double best_eff = 0;
    std::string design = "(none feasible)";
    if (best != nullptr) {
      best_eff = best->metrics.ops_per_watt;
      design = best->design.to_string();
    }
    const auto a_best = energy::assess(rung, best_eff);

    const auto gap_str = [](double gap) {
      return gap > 1e100 ? std::string("infeasible")
                         : TextTable::num(gap, 3) + "x short";
    };
    t.row({core::to_string(pc),
           units::si_format(naive.ops_per_watt, "op/W", 2),
           gap_str(a_naive.gap), units::si_format(best_eff, "op/W", 2),
           gap_str(a_best.gap), design});
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: cross-layer design recovers roughly two orders of\n"
         "  magnitude over the naive platform; the residual gap is what the\n"
         "  paper says still needs research beyond 2012-era technology.\n";
}

void BM_grid_search_small(benchmark::State& state) {
  core::DesignSpace space;
  space.nodes = {"22nm"};
  space.vdd_scales = {0.7, 1.0};
  space.core_counts = {4, 64};
  space.bces = {1, 4};
  space.llc_mibs = {8};
  space.stacking = {false};
  const auto app = core::profile_mobile_vision();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::grid_search(space, app, PlatformClass::Portable));
  }
}
BENCHMARK(BM_grid_search_small);

void BM_evaluate_design(benchmark::State& state) {
  const auto app = core::profile_mobile_vision();
  const auto d = naive_design();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(d, app, PlatformClass::Portable));
  }
}
BENCHMARK(BM_evaluate_design);

}  // namespace

int main(int argc, char** argv) {
  print_ladder();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
