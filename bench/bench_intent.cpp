// E22 (extension) -- Section 2.4, "Better Interfaces for High-Level
// Information": "current ISAs ... have no way of specifying when a
// program requires energy efficiency, robust security, or a desired
// Quality of Service level ... New, higher-level interfaces are needed
// ... resulting in major efficiency gains."
//
// End-to-end demonstration: an SR1 program annotates its phases with the
// HINT instruction; the machine attributes work to intents; the governor
// picks per-intent operating points.  Compared against the two policies
// an intent-blind stack can offer, under the deadline constraint that
// the Performance phase must run at nominal speed.

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "core/governor.hpp"
#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;

/// A program with a long background phase and a short deadline phase.
std::string phased_program(int background_iters, int critical_iters) {
  std::ostringstream os;
  os << "    hint 1              # background: efficiency intent\n"
     << "    li r2, 0\n"
     << "    li r3, " << background_iters << "\n"
     << "bg:\n"
     << "    addi r2, r2, 1\n"
     << "    blt r2, r3, bg\n"
     << "    hint 2              # interactive burst: performance intent\n"
     << "    li r4, 0\n"
     << "    li r5, " << critical_iters << "\n"
     << "cr:\n"
     << "    addi r4, r4, 1\n"
     << "    blt r4, r5, cr\n"
     << "    out r4\n"
     << "    halt\n";
  return os.str();
}

void print_governor() {
  std::cout << "\n=== E22: the intent interface, end to end ===\n";
  const auto dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
  TextTable t({"bg:critical mix", "policy", "energy", "total time",
               "deadline kept", "energy vs nominal"});
  for (const auto& [bg, cr] : {std::pair<int, int>{50000, 2000},
                               {20000, 20000},
                               {2000, 50000}}) {
    auto asmres = isa::assemble(phased_program(bg, cr));
    isa::Machine m(asmres.program);
    m.run(10'000'000);
    const auto rep = core::govern(m.stats().instrs_by_intent, dvfs);

    auto row = [&](const char* name, const core::PhaseCost& c,
                   double perf_time, bool first) {
      const bool kept = perf_time <= rep.perf_time_nominal * 1.01;
      t.row({first ? std::to_string(bg) + ":" + std::to_string(cr) : "",
             name, units::si_format(c.energy_j, "J", 2),
             units::time_format(c.time_s, 2), kept ? "yes" : "NO",
             TextTable::num(c.energy_j / rep.static_nominal.energy_j, 3) +
                 "x"});
    };
    row("static-nominal", rep.static_nominal, rep.perf_time_nominal, true);
    row("static-efficient", rep.static_efficient, rep.perf_time_efficient,
        false);
    row("hinted", rep.hinted, rep.perf_time_hinted, false);
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: without the interface the stack must pick between\n"
         "  wasting energy (nominal) and missing the deadline (efficient);\n"
         "  conveying intent gets both -- the paper's 'major efficiency\n"
         "  gains' from richer layer interfaces.\n";
}

void BM_phased_run(benchmark::State& state) {
  auto asmres = isa::assemble(phased_program(5000, 500));
  for (auto _ : state) {
    isa::Machine m(asmres.program);
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_phased_run);

void BM_govern(benchmark::State& state) {
  const auto dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
  const std::array<std::uint64_t, isa::kNumIntents> mix = {1000, 50000, 3000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::govern(mix, dvfs));
  }
}
BENCHMARK(BM_govern);

}  // namespace

int main(int argc, char** argv) {
  print_governor();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
