// E6 -- Section 2.2: "fetching the operands for a floating-point
// multiply-add can consume one to two orders of magnitude more energy
// than performing the operation."
//
// Regenerates the operand-supply energy table (two 64-bit operands from
// each level vs the FMA energy) and then measures the claim dynamically:
// the simulated hierarchy running a working-set sweep shows energy per
// access climbing as locality is lost.

#include <benchmark/benchmark.h>

#include <iostream>

#include "energy/catalogue.hpp"
#include "mem/hierarchy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using energy::Level;

void print_static_table() {
  std::cout << "\n=== E6a: operand fetch vs compute energy (per node) ===\n";
  TextTable t({"node", "FMA pJ", "2x RF", "2x L1", "2x L2", "2x LLC",
               "2x DRAM", "DRAM/FMA ratio"});
  for (const char* node : {"45nm", "32nm", "22nm", "14nm"}) {
    const energy::Catalogue cat(*tech::find_node(node));
    auto pj = [](double j) { return TextTable::num(units::to_pJ(j), 3); };
    t.row({node, pj(cat.fp_fma()), pj(2 * cat.access(Level::RegisterFile)),
           pj(2 * cat.access(Level::L1)), pj(2 * cat.access(Level::L2)),
           pj(2 * cat.access(Level::LLC)), pj(2 * cat.access(Level::Dram)),
           TextTable::num(cat.fetch_to_compute_ratio(Level::Dram), 3) + "x"});
  }
  t.print(std::cout);
  std::cout << "  Paper claim: one to two orders of magnitude.  Measured\n"
               "  DRAM-operand ratio sits in the 10-100x band at every node,\n"
               "  and widens at newer nodes (logic scales, I/O does not).\n";
}

void print_dynamic_sweep() {
  std::cout << "\n=== E6b: simulated hierarchy, working-set sweep ===\n";
  const energy::Catalogue cat;
  TextTable t({"working set", "L1 rate", "LLC rate", "DRAM rate",
               "energy/access pJ", "vs FMA"});
  for (double ws_kib : {16.0, 128.0, 1024.0, 8192.0, 65536.0}) {
    mem::Hierarchy h({.size_bytes = 32768, .line_bytes = 64, .ways = 8},
                     {.size_bytes = 262144, .line_bytes = 64, .ways = 8},
                     {.size_bytes = 4 * 1024 * 1024, .line_bytes = 64,
                      .ways = 16},
                     cat);
    Rng rng(7);
    const auto span = static_cast<std::uint64_t>(ws_kib * 1024);
    for (int i = 0; i < 200000; ++i) {
      h.access(rng.below(span) & ~7ull, rng.chance(0.3));
    }
    const auto& s = h.stats();
    const double n = static_cast<double>(s.accesses);
    t.row({units::bytes_format(ws_kib * 1024, 0),
           TextTable::num(static_cast<double>(s.serviced_at[0]) / n),
           TextTable::num(static_cast<double>(s.serviced_at[2]) / n),
           TextTable::num(static_cast<double>(s.serviced_at[3]) / n),
           TextTable::num(units::to_pJ(s.energy_per_access()), 4),
           TextTable::num(2 * s.energy_per_access() / cat.fp_fma(), 3) + "x"});
  }
  t.print(std::cout);
}

void BM_hierarchy_access(benchmark::State& state) {
  const energy::Catalogue cat;
  mem::Hierarchy h({.size_bytes = 32768, .line_bytes = 64, .ways = 8},
                   {.size_bytes = 262144, .line_bytes = 64, .ways = 8},
                   {.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16}, cat);
  Rng rng(1);
  for (auto _ : state) {
    h.access(rng.below(1 << 24), false);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_hierarchy_access);

}  // namespace

int main(int argc, char** argv) {
  print_static_table();
  print_dynamic_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
