#pragma once
// Build/host provenance for BENCH_*.json: a bench number without the
// commit, core count, build type, and sanitizer mode that produced it is
// not comparable to anything, so every JSON writer stamps this "meta"
// object first.  scripts/bench_gate.py refuses to gate numbers whose
// build_type/san do not match the committed baseline's.
//
// ARCH21_BENCH_BUILD_TYPE / ARCH21_BENCH_SAN are injected per-target by
// bench/CMakeLists.txt; the fallbacks keep the header compilable
// standalone (e.g. in a test build).

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#ifndef ARCH21_BENCH_BUILD_TYPE
#define ARCH21_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef ARCH21_BENCH_SAN
#define ARCH21_BENCH_SAN ""
#endif

namespace arch21::bench {

/// Short git SHA of the working tree, or "unknown" outside a checkout.
/// One popen at bench shutdown; never on a timed path.
inline std::string git_sha() {
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// The `"meta": {...}` JSON fragment (no trailing comma).  `workers` is
/// the bench's own parallelism knob (pool size / PDES workers); pass 0
/// for a serial bench.  `repeats` is the best-of repeat count the timed
/// sections used (see --best-of); 0 = the bench's built-in default.  A
/// best-of-10 number and a single-shot number are different instruments
/// on a noisy host, so the repeat count is provenance.
inline std::string meta_json(unsigned workers = 0, int repeats = 0) {
  std::ostringstream os;
  os << "\"meta\": {\"git_sha\": \"" << git_sha()
     << "\", \"nproc\": " << std::thread::hardware_concurrency()
     << ", \"build_type\": \"" << ARCH21_BENCH_BUILD_TYPE
     << "\", \"san\": \"" << ARCH21_BENCH_SAN << "\", \"compiler\": \""
#if defined(__VERSION__)
     << __VERSION__
#else
     << "unknown"
#endif
     << "\", \"workers\": " << workers << ", \"repeats\": " << repeats << "}";
  return os.str();
}

}  // namespace arch21::bench
