// E15 -- Table 1, communication row: "Restricted inter-chip, inter-device,
// inter-machine communication (e.g. Rent's Rule, 3G, GigE); communication
// more expensive than computation."
//
// Regenerates: (a) the data-movement energy ladder across distance
// classes, expressed in FMA-equivalents per 64-bit word, (b) the
// Rent's-rule bandwidth-wall projection, and (c) coherence traffic as
// on-chip communication made visible (false sharing).

#include <benchmark/benchmark.h>

#include <iostream>

#include "energy/catalogue.hpp"
#include "mem/coherence.hpp"
#include "noc/rent.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using energy::Distance;

void print_movement_ladder() {
  std::cout << "\n=== E15a: the data-movement energy ladder (45 nm) ===\n";
  const energy::Catalogue cat;
  TextTable t({"distance", "pJ per 64-bit word", "FMA-equivalents"});
  for (const auto d :
       {Distance::OnChip1mm, Distance::AcrossChip, Distance::ToStackedDram,
        Distance::ToDram, Distance::Board, Distance::Rack,
        Distance::Datacenter, Distance::SensorRadio}) {
    const double j = cat.move(d, 64.0);
    t.row({to_string(d), TextTable::num(units::to_pJ(j), 4),
           TextTable::num(j / cat.fp_fma(), 4) + "x"});
  }
  t.print(std::cout);
  std::cout << "  Claim check: every off-chip hop costs more than computing;\n"
               "  a radio bit costs ~5 orders of magnitude more than an FMA\n"
               "  -- communication is the budget, computation is the "
               "rounding error.\n";
}

void print_bandwidth_wall() {
  std::cout << "\n=== E15b: Rent's-rule bandwidth wall ===\n";
  TextTable t({"generation", "gates (rel)", "traffic demand", "pins (Rent)",
               "demand/supply gap"});
  for (const auto& r : noc::bandwidth_wall({.t = 5, .p = 0.6}, 1e8, 8)) {
    t.row({std::to_string(r.generation), TextTable::num(r.gates / 1e8),
           TextTable::num(r.compute_demand), TextTable::num(r.pins, 4),
           TextTable::num(r.gap)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: on-chip compute doubles per generation but\n"
               "  pins grow only as G^0.6 -- the off-chip gap compounds.\n";
}

void print_false_sharing() {
  std::cout << "\n=== E15c: coherence traffic -- false sharing energy ===\n";
  const energy::Catalogue cat;
  const mem::CacheConfig cfg{.size_bytes = 32768, .line_bytes = 64, .ways = 8};
  TextTable t({"layout", "invalidations", "bus energy nJ"});
  mem::CoherentSystem shared(2, cfg, cat);
  mem::CoherentSystem split(2, cfg, cat);
  for (int i = 0; i < 10000; ++i) {
    shared.write(0, 0x100);
    shared.write(1, 0x108);  // same line
    split.write(0, 0x100);
    split.write(1, 0x180);   // different lines
  }
  t.row({"same line (false sharing)",
         std::to_string(shared.stats().invalidations),
         TextTable::num(shared.stats().bus_energy_j * 1e9, 4)});
  t.row({"padded (no sharing)", std::to_string(split.stats().invalidations),
         TextTable::num(split.stats().bus_energy_j * 1e9, 4)});
  t.print(std::cout);
}

void BM_mesi_false_sharing(benchmark::State& state) {
  const energy::Catalogue cat;
  mem::CoherentSystem sys(
      4, {.size_bytes = 32768, .line_bytes = 64, .ways = 8}, cat);
  std::uint32_t i = 0;
  for (auto _ : state) {
    sys.write(i & 3, 0x100 + (i & 1) * 8);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_mesi_false_sharing);

}  // namespace

int main(int argc, char** argv) {
  print_movement_ladder();
  print_bandwidth_wall();
  print_false_sharing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
