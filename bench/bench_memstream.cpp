// E18 -- Section 2.2, "Energy-Efficient Memory Hierarchies": "Future
// memory-systems must seek energy efficiency through specialization
// (e.g., through compression and support for streaming data)".
//
// Regenerates: (a) BDI compression ratios and the bandwidth-energy they
// buy on characteristic data populations, and (b) the streaming-vs-random
// memory-system energy gap (row-buffer locality + cache behaviour).

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "energy/catalogue.hpp"
#include "mem/compression.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::mem;

std::vector<std::uint8_t> make_line(Rng& rng, int family) {
  std::vector<std::uint8_t> line(64);
  switch (family) {
    case 0:  // zero-dominated (fresh allocations)
      break;
    case 1: {  // pointer array
      const std::uint64_t base = 0x7f0000000000ull + rng.below(1 << 20) * 8;
      for (int i = 0; i < 8; ++i) {
        const std::uint64_t v = base + i * 8;
        std::memcpy(line.data() + i * 8, &v, 8);
      }
      break;
    }
    case 2: {  // small int32 counters
      for (int i = 0; i < 16; ++i) {
        const auto v = static_cast<std::uint32_t>(rng.below(4000));
        std::memcpy(line.data() + i * 4, &v, 4);
      }
      break;
    }
    case 3:  // incompressible
      for (auto& b : line) b = static_cast<std::uint8_t>(rng.below(256));
      break;
  }
  return line;
}

void print_compression() {
  std::cout << "\n=== E18a: BDI link compression by data population ===\n";
  const energy::Catalogue cat;
  const char* names[] = {"zeros/fresh", "pointer-array", "int32-counters",
                         "random"};
  TextTable t({"population", "mean ratio", "dominant scheme",
               "DRAM energy/line pJ", "compressed pJ"});
  Rng rng(3);
  for (int family = 0; family < 4; ++family) {
    double ratio_sum = 0;
    std::array<int, 9> scheme_count{};
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
      const auto line = make_line(rng, family);
      const auto enc = bdi_compress(line);
      ratio_sum += 64.0 / static_cast<double>(enc.size());
      scheme_count[static_cast<int>(enc.scheme)]++;
    }
    const int dominant = static_cast<int>(
        std::max_element(scheme_count.begin(), scheme_count.end()) -
        scheme_count.begin());
    const double mean_ratio = ratio_sum / trials;
    const double raw_pj =
        units::to_pJ(cat.move(energy::Distance::ToDram, 64 * 8));
    t.row({names[family], TextTable::num(mean_ratio),
           to_string(static_cast<BdiScheme>(dominant)),
           TextTable::num(raw_pj, 4),
           TextTable::num(raw_pj / mean_ratio, 4)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: typical pointer/counter populations compress\n"
               "  2-8x, cutting memory-bus energy proportionally.\n";
}

void print_streaming() {
  std::cout << "\n=== E18b: streaming vs random memory-system energy ===\n";
  const energy::Catalogue cat;
  TextTable t({"pattern", "DRAM row-hit rate", "hierarchy pJ/access",
               "DRAM pJ/access"});
  for (const bool streaming : {true, false}) {
    Hierarchy h({.size_bytes = 32768, .line_bytes = 64, .ways = 8},
                {.size_bytes = 262144, .line_bytes = 64, .ways = 8},
                {.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16}, cat);
    Dram dram{DramConfig{}};
    Rng rng(8);
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t addr =
          streaming ? static_cast<std::uint64_t>(i) * 8
                    : rng.below(1ull << 30) & ~7ull;
      if (h.access(addr, false) == ServiceLevel::Dram) {
        dram.access(addr, false);
      }
    }
    t.row({streaming ? "streaming" : "random",
           TextTable::num(dram.row_hit_rate()),
           TextTable::num(units::to_pJ(h.stats().energy_per_access()), 4),
           TextTable::num(
               dram.total_energy_j() > 0
                   ? units::to_pJ(dram.total_energy_j() /
                                  std::max<std::uint64_t>(
                                      1, dram.row_hits() + dram.row_misses()))
                   : 0.0,
               4)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: streaming support (sequential row-buffer\n"
               "  locality) is an order of magnitude cheaper per access than\n"
               "  cache-hostile random traffic.\n";
}

void BM_bdi_compress(benchmark::State& state) {
  Rng rng(1);
  const auto line = make_line(rng, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdi_compress(line));
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_bdi_compress);

void BM_bdi_roundtrip(benchmark::State& state) {
  Rng rng(2);
  const auto line = make_line(rng, 2);
  for (auto _ : state) {
    const auto enc = bdi_compress(line);
    benchmark::DoNotOptimize(bdi_decompress(enc.bytes, 64));
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_bdi_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_compression();
  print_streaming();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
