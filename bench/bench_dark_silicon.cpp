// E16 -- the dark-silicon consequence of Table 1's "not viable for
// power/chip to double": at fixed die area and fixed TDP, the fraction of
// the chip that can switch at nominal V/f shrinks every generation --
// which is the quantitative motivation for the paper's "energy first" and
// "specialization" pillars (dark area is where accelerators live).

#include <benchmark/benchmark.h>

#include <iostream>

#include "tech/dark_silicon.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::tech;

void print_projection() {
  std::cout << "\n=== E16: dark-silicon projection (100 mm^2, 100 W TDP) ===\n";
  DarkSiliconModel m({.die_mm2 = 100, .power_budget_w = 100,
                      .reference_node = "90nm", .activity = 0.1});
  TextTable t({"node", "year", "full-chip power W", "lit fraction",
               "dark fraction"});
  for (const auto& r : m.project()) {
    t.row({r.node->name, std::to_string(r.node->year),
           TextTable::num(r.full_power_w), TextTable::num(r.utilization),
           TextTable::num(r.dark_fraction)});
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: with Dennard scaling gone, by the deep-submicron\n"
         "  nodes well under half the die can run at full V/f -- the dark\n"
         "  silicon that motivates heterogeneous specialization.\n";

  std::cout << "\n  sensitivity to the calibration point (the last node at\n"
               "  which the design filled its budget):\n";
  TextTable s({"reference node", "lit fraction at 22nm",
               "lit fraction at 5nm"});
  for (const char* ref : {"130nm", "90nm", "45nm"}) {
    DarkSiliconModel mm({.die_mm2 = 100, .power_budget_w = 100,
                         .reference_node = ref, .activity = 0.1});
    s.row({ref, TextTable::num(mm.utilization(*find_node("22nm"))),
           TextTable::num(mm.utilization(*find_node("5nm")))});
  }
  s.print(std::cout);
}

void BM_projection(benchmark::State& state) {
  DarkSiliconModel m({.die_mm2 = 100, .power_budget_w = 100,
                      .reference_node = "90nm", .activity = 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project());
  }
}
BENCHMARK(BM_projection);

}  // namespace

int main(int argc, char** argv) {
  print_projection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
