// E26 resilience harness: runs the canonical mitigation ladder
// (baseline -> failures -> naive retries -> retry budget -> hedging ->
// quorum degradation) over the DES cluster with seeded fault injection,
// prints the three headline claims, verifies the multi-trial aggregate
// is bit-identical across pool sizes 1 / 2 / default, and emits
// BENCH_resilience.json for the PR record.  Exit is nonzero if the
// determinism check fails.
//
// Observability hooks (PR4): `--metrics-out <path>` enables the global
// obs::MetricsRegistry for the whole run (cluster + policy + thread-pool
// metrics), renders the merged snapshot as a table, and dumps it as JSON
// (default BENCH_resilience_metrics.json).  `--trace-out <path>` replays
// ONE budgeted+hedged+quorum trial with a trace sink attached and writes
// Chrome trace_event JSON (default BENCH_resilience_trace.json) -- open
// it in Perfetto.  Both default off, so the headline numbers are always
// measured with recording disabled.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

cloud::ClusterConfig base_config() {
  cloud::ClusterConfig cfg;
  cfg.leaves = 100;
  cfg.query_rate_hz = 50;
  cfg.background_rate_hz = 40;
  cfg.background_ms = 4;
  cfg.duration_s = 10;
  cfg.seed = 2014;
  cfg.faults.enabled = true;  // scenarios toggle this per rung
  // ~1% per-leaf unavailability plus rack-level correlated failures.
  cfg.faults.leaf = {.mtbf_hours = 50.0 / 3600, .mttr_hours = 0.5 / 3600};
  cfg.faults.leaves_per_domain = 10;
  cfg.faults.domain = {.mtbf_hours = 500.0 / 3600, .mttr_hours = 1.0 / 3600};
  return cfg;
}

bool same_aggregate(const cloud::ClusterResult& a,
                    const cloud::ClusterResult& b) {
  return a.queries == b.queries && a.ok_queries == b.ok_queries &&
         a.degraded_queries == b.degraded_queries &&
         a.failed_queries == b.failed_queries && a.retries == b.retries &&
         a.hedges == b.hedges && a.timeouts == b.timeouts &&
         a.lost_requests == b.lost_requests &&
         a.leaf_requests == b.leaf_requests &&
         a.query_ms.count() == b.query_ms.count() &&
         a.query_ms.quantile(0.5) == b.query_ms.quantile(0.5) &&
         a.query_ms.quantile(0.99) == b.query_ms.quantile(0.99) &&
         a.sum_result_quality == b.sum_result_quality &&
         a.goodput_qps == b.goodput_qps &&
         a.availability_measured == b.availability_measured &&
         a.retry_amplification == b.retry_amplification;
}

const cloud::ClusterResult* find(
    const std::vector<cloud::ScenarioResult>& ladder, const char* needle) {
  for (const auto& s : ladder) {
    if (s.name.find(needle) != std::string::npos) return &s.result;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0)
      metrics_out = (i + 1 < argc) ? argv[++i] : "BENCH_resilience_metrics.json";
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = (i + 1 < argc) ? argv[++i] : "BENCH_resilience_trace.json";
  }
  auto& mreg = obs::MetricsRegistry::global();
  if (!metrics_out.empty()) mreg.set_enabled(true);

  const auto cfg = base_config();
  const unsigned trials = 4;
  ThreadPool pool;  // default_threads() / ARCH21_THREADS

  std::cout << "resilience ladder: " << cfg.leaves << " leaves, "
            << trials << " trials/scenario, pool=" << pool.size() << "\n\n";
  // Tight timeout (near the per-call tail) so retries fire on slow as
  // well as dead leaves: the regime where naive retries feed on
  // themselves and the budget earns its keep.
  cloud::ScenarioPolicies knobs;
  knobs.timeout_ms = 15;
  knobs.naive_max_retries = 16;
  knobs.budget_max_retries = 3;
  const auto wall_t0 = std::chrono::steady_clock::now();
  const auto ladder = cloud::resilience_scenarios(cfg, trials, knobs, &pool);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_t0)
                            .count();
  std::cout << core::render_resilience_report(ladder) << "\n";

  // --- headline claims -------------------------------------------------
  const auto* baseline = find(ladder, "baseline");
  const auto* injected = find(ladder, "no mitigation");
  const auto* naive = find(ladder, "naive");
  const auto* budget = find(ladder, "retry budget");
  const auto* quorum = find(ladder, "quorum");
  const double analytic =
      1.0 - std::pow(0.99, static_cast<double>(cfg.leaves));
  std::cout << "claim (a) tail at scale: "
            << baseline->frac_over_leaf_p99 * 100
            << "% of fan-out queries at/after the leaf p99 (analytic 1-0.99^"
            << cfg.leaves << " = " << analytic * 100 << "%)\n";
  std::cout << "claim (b) retry storms: naive amplification "
            << naive->retry_amplification << "x / p99 "
            << naive->query_ms.quantile(0.99) << " ms vs budgeted "
            << budget->retry_amplification << "x / p99 "
            << budget->query_ms.quantile(0.99) << " ms ("
            << budget->budget_denials << " retries denied)\n";
  std::cout << "claim (c) graceful degradation: quality "
            << quorum->mean_result_quality() << " for p99 "
            << quorum->query_ms.quantile(0.99) << " ms vs "
            << injected->query_ms.quantile(0.99)
            << " ms unmitigated (goodput " << quorum->goodput_qps << " vs "
            << injected->goodput_qps << " qps)\n\n";

  // --- determinism across pool sizes ----------------------------------
  auto check_cfg = cfg;
  check_cfg.policy.retry.timeout_ms = 30;
  check_cfg.policy.retry.max_retries = 3;
  check_cfg.policy.budget.enabled = true;
  check_cfg.policy.hedge_after_ms = 20;
  check_cfg.policy.quorum = {.quorum_fraction = 0.95, .deadline_ms = 60};
  ThreadPool p1(1), p2(2);
  const auto r1 = cloud::run_cluster_trials(check_cfg, trials, &p1);
  const auto r2 = cloud::run_cluster_trials(check_cfg, trials, &p2);
  const auto rn = cloud::run_cluster_trials(check_cfg, trials, &pool);
  const bool identical = same_aggregate(r1, r2) && same_aggregate(r1, rn);
  std::cout << "determinism: pools {1, 2, " << pool.size() << "} -> "
            << (identical ? "bit-identical aggregates" : "MISMATCH") << "\n";

  // --- JSON record -----------------------------------------------------
  std::ofstream out("BENCH_resilience.json");
  out << "{\n  "
      << bench::meta_json(static_cast<unsigned>(pool.size()))
      << ",\n  \"leaves\": " << cfg.leaves << ",\n  \"trials\": " << trials
      << ",\n  \"threads\": " << pool.size()
      << ",\n  \"wall_s\": " << wall_s
      << ",\n  \"frac_over_leaf_p99\": " << baseline->frac_over_leaf_p99
      << ",\n  \"frac_over_leaf_p99_analytic\": " << analytic
      << ",\n  \"identical_across_pools\": "
      << (identical ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i].result;
    out << "    {\"name\": \"" << ladder[i].name
        << "\", \"availability\": " << r.availability_measured
        << ", \"goodput_qps\": " << r.goodput_qps
        << ", \"ok\": " << r.ok_queries
        << ", \"degraded\": " << r.degraded_queries
        << ", \"failed\": " << r.failed_queries
        << ", \"retry_amplification\": " << r.retry_amplification
        << ", \"budget_denials\": " << r.budget_denials
        << ", \"p50_ms\": " << r.query_ms.quantile(0.5)
        << ", \"p99_ms\": " << r.query_ms.quantile(0.99)
        << ", \"quality\": " << r.mean_result_quality() << "}"
        << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_resilience.json\n";

  if (!metrics_out.empty()) {
    // Thread-pool counters are kept unconditionally (plain fields under
    // the pool's own mutex); publish them into the registry as gauges so
    // they land in the same snapshot as the cluster metrics.
    const auto ps = pool.stats();
    mreg.gauge_max(mreg.gauge("pool.submitted"),
                   static_cast<double>(ps.submitted));
    mreg.gauge_max(mreg.gauge("pool.executed"),
                   static_cast<double>(ps.executed));
    mreg.gauge_max(mreg.gauge("pool.steals"), static_cast<double>(ps.steals));
    mreg.gauge_max(mreg.gauge("pool.max_queue_depth"),
                   static_cast<double>(ps.max_queue_depth));
    const auto snap = mreg.snapshot();
    std::ofstream mout(metrics_out);
    mout << snap.to_json() << "\n";
    std::cout << "\n" << core::render_metrics_report(snap) << "wrote "
              << metrics_out << "\n";
  }

  if (!trace_out.empty()) {
#if ARCH21_OBS_ENABLED
    // One traced trial of the full mitigation stack: ms timestamps, so
    // ts_to_us = 1e3; the ring keeps the most recent 256k records.
    obs::TraceBuffer trace(std::size_t{1} << 18, 1e3);
    auto traced_cfg = check_cfg;
    traced_cfg.trace = &trace;
    (void)cloud::simulate_cluster(traced_cfg);
    std::ofstream tout(trace_out);
    trace.write_chrome_json(tout);
    std::cout << "wrote " << trace_out << " (" << trace.size() << " events, "
              << trace.dropped() << " dropped)\n";
#else
    std::cout << "--trace-out ignored: built with ARCH21_OBS=OFF\n";
#endif
  }
  return identical ? 0 : 1;
}
