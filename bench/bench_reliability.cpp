// E13 -- Table 1's reliability row ("transistor reliability worsening, no
// longer easy to hide") and Table A.2's "Always Online" (five 9s).
//
// Regenerates: (a) the SECDED fault-injection curve -- where ECC stops
// hiding raw bit errors, (b) the Daly checkpoint-interval optimum with
// simulation cross-check, and (c) the replication cost of each "nine".

#include <benchmark/benchmark.h>

#include <iostream>

#include "reliab/availability.hpp"
#include "reliab/checkpoint.hpp"
#include "reliab/fault_injection.hpp"
#include "reliab/fit.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::reliab;

void print_campaign() {
  std::cout << "\n=== E13a: SECDED under rising raw bit-error rates ===\n";
  TextTable t({"BER/bit/interval", "clean", "corrected", "detected-UE",
               "silent", "uncorrectable rate"});
  for (double ber : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2}) {
    const auto r = run_campaign({.words = 200000, .flip_prob_per_bit = ber,
                                 .seed = 42});
    t.row({TextTable::num(ber, 1), std::to_string(r.clean),
           std::to_string(r.corrected), std::to_string(r.detected),
           std::to_string(r.silent), TextTable::num(r.uncorrectable_rate(), 3)});
  }
  t.print(std::cout);
  std::cout << "  Claim check: at 20th-century error rates ECC hides\n"
               "  everything; as rates climb the uncorrectable share grows\n"
               "  -- 'no longer easy to hide'.\n";

  std::cout << "\n  scrubbing-interval effect on a 64 GiB node, 5e4 FIT/Mbit:\n";
  TextTable s({"scrub interval", "MTBE hours"});
  const double bytes = 64.0 * (1ull << 30);
  for (double scrub_s : {36000.0, 3600.0, 600.0, 60.0}) {
    s.row({TextTable::num(scrub_s) + " s",
           TextTable::num(mtbe_hours(50000, bytes, scrub_s), 3)});
  }
  s.print(std::cout);
}

void print_checkpointing() {
  std::cout << "\n=== E13b: Daly checkpoint-interval optimization ===\n";
  CheckpointParams p;
  p.work_s = 1e6;
  p.delta_s = 60;
  p.restart_s = 120;
  p.mtbf_s = 86400;
  const double tau_star = daly_optimal_interval(p);
  TextTable t({"tau s", "expected runtime (model)", "mean runtime (sim)",
               "overhead"});
  for (double tau : {tau_star / 8, tau_star / 2, tau_star, tau_star * 2,
                     tau_star * 8}) {
    const double model = expected_runtime(p, tau);
    const double sim = mean_simulated_runtime(p, tau, 60, 7);
    t.row({TextTable::num(tau), TextTable::num(model), TextTable::num(sim),
           TextTable::num((model / p.work_s - 1) * 100, 3) + "%"});
  }
  t.print(std::cout);
  std::cout << "  Optimal interval (Daly): " << TextTable::num(tau_star)
            << " s; the model's minimum and the simulation agree.\n";
}

void print_availability() {
  std::cout << "\n=== E13c: the cost of nines (1-of-n replication) ===\n";
  Component server{.mtbf_hours = 990, .mttr_hours = 10};  // ~99% available
  TextTable t({"replicas", "availability", "nines", "downtime min/yr"});
  for (unsigned n = 1; n <= 5; ++n) {
    const double a = k_of_n_availability(server, 1, n);
    t.row({std::to_string(n), TextTable::num(a, 8),
           std::to_string(nines(a)),
           TextTable::num(downtime_minutes_per_year(a), 4)});
  }
  t.print(std::cout);
  std::cout << "  Claim check (Table A.2): five 9s = ~5 minutes/year; a 99%\n"
               "  component needs 3-fold replication to get there.\n";
}

void BM_campaign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_campaign({.words = 5000, .flip_prob_per_bit = 1e-3, .seed = 1}));
  }
}
BENCHMARK(BM_campaign);

void BM_ecc_roundtrip(benchmark::State& state) {
  std::uint64_t x = 0x123456789abcdef0ull;
  for (auto _ : state) {
    const auto cw = ecc_encode(x);
    benchmark::DoNotOptimize(ecc_decode(cw));
    ++x;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ecc_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_campaign();
  print_checkpointing();
  print_availability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
