// E24 (extension) -- the microcosm of E2's "architecture credited with
// ~80x": build up a core mechanism by mechanism and watch IPC climb on a
// real SR1 workload.  Scalar in-order with static prediction and no
// caches -> wide issue -> caches -> branch prediction -> MLP, with the
// interval model attributing every cycle.

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "cpu/pipeline.hpp"
#include "isa/programs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::cpu;

/// Workload designed so every mechanism has something to bite on:
/// repeated passes over a 64 KiB array (cache-friendly, DRAM-hostile)
/// with a period-4 branch (history-predictable, static-hostile).
std::string buildup_program(int elems, int passes) {
  std::ostringstream os;
  os << "    li   r1, 0x4000     # array base\n"
     << "    li   r2, 0\n"
     << "    li   r3, " << elems << "\n"
     << "fill:\n"
     << "    st   r2, r1, 0\n"
     << "    addi r1, r1, 8\n"
     << "    addi r2, r2, 1\n"
     << "    blt  r2, r3, fill\n"
     << "    li   r9, 0          # pass counter\n"
     << "    li   r10, " << passes << "\n"
     << "pass:\n"
     << "    li   r1, 0x4000\n"
     << "    li   r2, 0\n"
     << "    li   r8, 0          # accumulator\n"
     << "sum:\n"
     << "    ld   r5, r1, 0\n"
     << "    andi r7, r2, 3\n"
     << "    bne  r7, r0, skip   # taken 3 of every 4 iterations\n"
     << "    add  r8, r8, r5     # the period-4 'special' case\n"
     << "skip:\n"
     << "    addi r1, r1, 8\n"
     << "    addi r2, r2, 1\n"
     << "    blt  r2, r3, sum\n"
     << "    addi r9, r9, 1\n"
     << "    blt  r9, r10, pass\n"
     << "    out  r8\n"
     << "    halt\n";
  return os.str();
}

void print_buildup() {
  std::cout << "\n=== E24: IPC build-up, mechanism by mechanism ===\n";
  const auto prog = buildup_program(8192, 6);  // 64 KiB array, 6 passes
  const std::vector<std::uint64_t> inputs;

  struct Stage {
    const char* name;
    CoreParams core;
    MemoryGeometry mem;
    bool use_gshare;
  };
  MemoryGeometry none;  // degenerate caches: everything goes to DRAM
  none.l1 = {.size_bytes = 128, .line_bytes = 64, .ways = 1};
  none.l2 = {.size_bytes = 256, .line_bytes = 64, .ways = 1};
  none.llc = {.size_bytes = 512, .line_bytes = 64, .ways = 1};
  MemoryGeometry full;  // the default, realistic hierarchy

  const Stage stages[] = {
      {"scalar, no caches, static BP",
       {.issue_width = 1, .mlp = 1.0}, none, false},
      {"4-wide, no caches, static BP",
       {.issue_width = 4, .mlp = 1.0}, none, false},
      {"4-wide + caches, static BP",
       {.issue_width = 4, .mlp = 1.0}, full, false},
      {"4-wide + caches + gshare",
       {.issue_width = 4, .mlp = 1.0}, full, true},
      {"4-wide + caches + gshare + MLP4",
       {.issue_width = 4, .mlp = 4.0}, full, true},
  };

  TextTable t({"configuration", "CPI", "IPC", "branch CPI", "memory CPI",
               "IPC vs baseline"});
  double baseline_ipc = 0;
  for (const auto& s : stages) {
    StaticTaken st;
    Gshare gs;
    BranchPredictor& bp =
        s.use_gshare ? static_cast<BranchPredictor&>(gs) : st;
    const auto r = run_profiled(prog, inputs, bp, s.core, s.mem);
    const double ipc = r.cpi.ipc();
    if (baseline_ipc == 0) baseline_ipc = ipc;
    t.row({s.name, TextTable::num(r.cpi.total()), TextTable::num(ipc),
           TextTable::num(r.cpi.branch),
           TextTable::num(r.cpi.l2 + r.cpi.llc + r.cpi.dram),
           TextTable::num(ipc / baseline_ipc, 3) + "x"});
  }
  t.print(std::cout);
  std::cout
      << "  Claim check (E2 microcosm): width, caches, prediction and MLP\n"
         "  compound multiplicatively -- the same compounding that, with\n"
         "  frequency, produced the ~80x architecture factor of 1985-2012.\n";
}

void BM_profiled_run(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint64_t> inputs;
  for (int i = 0; i < 2000; ++i) inputs.push_back(rng.below(1000));
  const auto prog = threshold_count_program(inputs.size(), 500);
  for (auto _ : state) {
    Gshare gs;
    benchmark::DoNotOptimize(run_profiled(prog, inputs, gs));
  }
}
BENCHMARK(BM_profiled_run);

void BM_gshare_observe(benchmark::State& state) {
  Gshare gs;
  std::uint64_t i = 0;
  for (auto _ : state) {
    gs.observe(i & 63, (i & 5) != 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_gshare_observe);

}  // namespace

int main(int argc, char** argv) {
  print_buildup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
