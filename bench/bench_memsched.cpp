// E25 (extension) -- two "interface" levers below the ISA that the paper's
// communication/memory agenda points at:
//   (a) memory-controller scheduling (FCFS vs FR-FCFS): reorder the JEDEC
//       command stream to farm row-buffer locality out of interleaved
//       access streams ("new interfaces (beyond the JEDEC standards)");
//   (b) collective-communication algorithms (tree vs ring allreduce):
//       the alpha-beta crossover every HPC runtime navigates
//       ("interfaces that more clearly identify ... communication").

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "mem/memctrl.hpp"
#include "par/collective.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;

void print_memsched() {
  std::cout << "\n=== E25a: memory scheduling on interleaved streams ===\n";
  mem::DramConfig cfg;
  TextTable t({"streams", "policy", "row-hit rate", "drain time us",
               "throughput GB/s"});
  for (std::uint32_t streams : {1u, 4u, 16u}) {
    const auto batch =
        mem::make_interleaved_streams(streams, 256, 64, cfg.row_bytes);
    for (auto pol : {mem::MemSchedule::Fcfs, mem::MemSchedule::FrFcfs}) {
      const auto s = mem::drain_batch(batch, pol, cfg, 16);
      t.row({std::to_string(streams), mem::to_string(pol),
             TextTable::num(s.row_hit_rate()),
             TextTable::num(s.total_time_ns / 1000.0),
             TextTable::num(s.throughput_gbs())});
    }
  }
  t.print(std::cout);
  std::cout << "  Claim check: the same request stream delivers ~2-3x the\n"
               "  bandwidth when the controller may exploit row locality --\n"
               "  scheduling below the interface, invisible above it.\n";
}

void print_collectives() {
  std::cout << "\n=== E25b: allreduce algorithms (alpha-beta model) ===\n";
  par::AlphaBeta m;
  TextTable t({"ranks", "payload", "tree us", "ring us", "winner"});
  for (unsigned p : {16u, 256u}) {
    for (double n : {64.0, 64e3, 64e6}) {
      const double tree = par::allreduce_tree_s(m, p, n) * 1e6;
      const double ring = par::allreduce_ring_s(m, p, n) * 1e6;
      t.row({std::to_string(p), units::bytes_format(n, 0),
             TextTable::num(tree), TextTable::num(ring),
             tree < ring ? "tree" : "ring"});
    }
    std::cout << "";
  }
  t.print(std::cout);
  for (unsigned p : {16u, 64u, 256u}) {
    std::cout << "  crossover at P=" << p << ": "
              << units::bytes_format(par::allreduce_crossover_bytes(m, p), 1)
              << "\n";
  }
  std::cout << "  Claim check: latency-optimal trees win small payloads,\n"
               "  bandwidth-optimal rings win large ones; the crossover\n"
               "  grows with rank count -- the scheduling knowledge a\n"
               "  communication-aware interface must carry.\n";
}

void BM_drain_frfcfs(benchmark::State& state) {
  mem::DramConfig cfg;
  const auto batch = mem::make_interleaved_streams(8, 128, 64, cfg.row_bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem::drain_batch(batch, mem::MemSchedule::FrFcfs, cfg, 16));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_drain_frfcfs);

}  // namespace

int main(int argc, char** argv) {
  print_memsched();
  print_collectives();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
