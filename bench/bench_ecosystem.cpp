// E17 -- Section 2.1 "Putting It All Together -- Eco-System Architecture"
// and Table A.1's data-centric personalized healthcare: a wearable ECG
// sensor, an edge phone, and a cloud backend.  "How should computation be
// split between the nodes and cloud infrastructure?"
//
// The bench prices four placements of the anomaly-detection pipeline
// (sensor-only, sensor-filter + cloud-analyze, edge-analyze, ship-raw-to-
// cloud) in sensor-side energy and end-to-end latency, then runs the DSE
// engine to pick the sensor's silicon for the winning placement.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/dse.hpp"
#include "energy/catalogue.hpp"
#include "sensor/tradeoff.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;

struct Placement {
  const char* name;
  double sensor_ops_per_sample;   // local DSP work
  double radio_bytes_per_sample;  // uplink payload
  double cloud_ops_per_sample;    // backend work
  double extra_latency_ms;        // network round trips
};

void print_placements() {
  std::cout << "\n=== E17a: where to compute? (250 Hz ECG, per-sample) ===\n";
  const energy::Catalogue cat;
  const double e_op = cat.int_op();
  const double e_radio_bit = cat.move_per_bit(energy::Distance::SensorRadio);
  const double sample_hz = 250;

  const Placement placements[] = {
      // name, sensor ops, radio bytes, cloud ops, latency
      {"sensor-only (full analysis)", 4000, 0.05, 0, 0.5},
      {"sensor-filter + cloud", 400, 0.04, 5000, 80},
      {"edge-analyze (phone)", 50, 2.0, 1500, 15},
      {"ship-raw-to-cloud", 0, 2.0, 6000, 80},
  };
  TextTable t({"placement", "sensor uW", "battery days (1 Wh)",
               "alert latency ms"});
  for (const auto& p : placements) {
    const double w = sample_hz * (p.sensor_ops_per_sample * e_op +
                                  p.radio_bytes_per_sample * 8 * e_radio_bit);
    const double days = (3600.0 / w) / 24.0;  // 1 Wh battery
    t.row({p.name, TextTable::num(w * 1e6),
           TextTable::num(days, 3), TextTable::num(p.extra_latency_ms)});
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: on-sensor filtering dominates -- it cuts the radio\n"
         "  (the 50 nJ/bit budget hog) by 50x for 400 ops of local DSP, the\n"
         "  paper's 'compute where the data is generated'.\n";
}

void print_sensor_dse() {
  std::cout << "\n=== E17b: DSE for the winning sensor silicon ===\n";
  core::DesignSpace space;
  space.core_counts = {1, 2, 4, 8};
  space.bces = {1, 4};
  const auto res = core::grid_search(space, core::profile_health_monitor(),
                                     core::PlatformClass::Sensor);
  std::cout << "  evaluated " << res.evaluated << " designs, "
            << res.feasible << " fit the 10 mW budget\n";
  TextTable t({"design", "throughput", "power", "ops/W"});
  for (const auto& p : res.frontier.sorted_by_power()) {
    t.row({p.design.to_string(),
           units::si_format(p.metrics.throughput_ops, "op/s", 2),
           units::si_format(p.metrics.power_w, "W", 2),
           units::si_format(p.metrics.ops_per_watt, "op/W", 2)});
  }
  t.print(std::cout);
}

void BM_sensor_dse(benchmark::State& state) {
  core::DesignSpace space;
  space.nodes = {"22nm"};
  space.core_counts = {1, 4};
  space.bces = {1};
  space.llc_mibs = {2};
  const auto app = core::profile_health_monitor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::grid_search(space, app, core::PlatformClass::Sensor));
  }
}
BENCHMARK(BM_sensor_dse);

}  // namespace

int main(int argc, char** argv) {
  print_placements();
  print_sensor_dse();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
