// E2 -- Section 1: "Danowitz et al. apportioned computer performance
// growth roughly equally between technology and architecture, with
// architecture credited with ~80x improvement since 1985."
//
// Regenerates the decomposition from the synthetic CPU DB: total
// single-thread performance gain = (gate-speed gain) x (architecture
// gain), per generation, with the 2012 architecture factor printed
// against the paper's ~80x.

#include <benchmark/benchmark.h>

#include <iostream>

#include "tech/cpudb.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;

void print_decomposition() {
  std::cout << "\n=== E2: performance growth decomposition vs 1985 ===\n";
  TextTable t({"year", "label", "MHz", "IPC", "FO4 ps", "total x",
               "tech x", "arch x"});
  const auto rows = tech::decompose_performance();
  const auto db = tech::cpu_db();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row({std::to_string(rows[i].year), std::string(db[i].label),
           TextTable::num(db[i].freq_mhz), TextTable::num(db[i].ipc),
           TextTable::num(db[i].fo4_ps), TextTable::num(rows[i].total_gain),
           TextTable::num(rows[i].tech_gain),
           TextTable::num(rows[i].arch_gain)});
  }
  t.print(std::cout);
  const auto d2012 = tech::decomposition_2012();
  std::cout << "  Paper claim: architecture credited ~80x since 1985.\n"
            << "  Measured:    " << TextTable::num(d2012.arch_gain)
            << "x architecture, " << TextTable::num(d2012.tech_gain)
            << "x technology, " << TextTable::num(d2012.total_gain)
            << "x total.\n";
}

void BM_decompose(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tech::decompose_performance());
  }
}
BENCHMARK(BM_decompose);

}  // namespace

int main(int argc, char** argv) {
  print_decomposition();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
