// E9 -- Section 2.3: "Near-threshold voltage operation has tremendous
// potential to reduce power but at the cost of reliability, driving a new
// discipline of resiliency-centered design."
//
// Regenerates the supply-voltage sweep: frequency, energy/op, fault
// probability, and the *resilience-compensated* energy per correct
// operation; reports the raw minimum-energy point and where replay costs
// push the practical optimum.

#include <benchmark/benchmark.h>

#include <iostream>

#include "tech/dvfs.hpp"
#include "tech/ntv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::tech;

void print_sweep() {
  const auto node = *find_node("22nm");
  const DvfsModel dvfs = DvfsModel::for_node(node);
  NtvReliability rel({.vth = node.vth, .v50_margin = 0.08, .steep = 0.025,
                      .floor = 1e-12});

  std::cout << "\n=== E9: near-threshold sweep, " << node.name << " ===\n";
  TextTable t({"Vdd", "freq", "E/op pJ", "p(fault)", "E_eff/op pJ"});
  for (const auto& pt : ntv_sweep(dvfs, rel, /*replay_ops=*/25.0, 16)) {
    t.row({TextTable::num(pt.v, 3), units::si_format(pt.f_hz, "Hz", 2),
           TextTable::num(units::to_pJ(pt.e_op_j), 4),
           TextTable::num(pt.p_fault, 2),
           TextTable::num(units::to_pJ(pt.e_effective_j), 4)});
  }
  t.print(std::cout);

  const double vmin_raw = dvfs.min_energy_voltage();
  const auto opt = ntv_optimum(dvfs, rel, 25.0);
  const double e_nom = dvfs.energy_per_op(dvfs.params().vnom);
  std::cout << "  Raw minimum-energy point:            "
            << TextTable::num(vmin_raw, 3) << " V ("
            << TextTable::num(e_nom / dvfs.energy_per_op(vmin_raw), 3)
            << "x less energy than nominal)\n"
            << "  Resilience-compensated optimum:      "
            << TextTable::num(opt.v, 3) << " V ("
            << TextTable::num(e_nom / opt.e_effective_j, 3)
            << "x less than nominal after replay costs)\n"
            << "  Claim check: big energy win, taxed by reliability -- the\n"
               "  optimum retreats from the deepest NTV point.\n";
}

void BM_ntv_optimum(benchmark::State& state) {
  const DvfsModel dvfs = DvfsModel::for_node(*find_node("22nm"));
  NtvReliability rel({.vth = 0.30, .v50_margin = 0.08, .steep = 0.025,
                      .floor = 1e-12});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntv_optimum(dvfs, rel, 25.0));
  }
}
BENCHMARK(BM_ntv_optimum);

void BM_min_energy_voltage(benchmark::State& state) {
  const DvfsModel dvfs = DvfsModel::for_node(*find_node("22nm"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvfs.min_energy_voltage());
  }
}
BENCHMARK(BM_min_energy_voltage);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
