// E5 -- Section 2.2: "Special-purpose hardware accelerators, customized
// to a single or narrow-class of functions, can be orders of magnitude
// more energy-efficient"; "Specialization can give 100x higher energy
// efficiency than a general-purpose compute or memory unit."
//
// Regenerates the specialization ladder on a regular kernel and an
// irregular kernel, plus the quantized fixed-function rung (int8 MACs)
// that pushes past 1000x, and the NRE-economics table that bounds who
// can afford each rung.

#include <benchmark/benchmark.h>

#include <iostream>

#include "accel/models.hpp"
#include "accel/nre.hpp"
#include "energy/catalogue.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::accel;

KernelProfile regular() {
  KernelProfile k;
  k.name = "conv-like";
  k.ops = 1e9;
  k.bytes_moved = 1e7;
  k.data_parallel = 0.95;
  k.regularity = 0.95;
  return k;
}

KernelProfile irregular() {
  KernelProfile k;
  k.name = "graph-like";
  k.ops = 1e9;
  k.bytes_moved = 2e8;
  k.data_parallel = 0.25;
  k.regularity = 0.25;
  return k;
}

void print_ladder() {
  const energy::Catalogue cat;
  for (const auto& k : {regular(), irregular()}) {
    std::cout << "\n=== E5: specialization ladder on '" << k.name
              << "' kernel ===\n";
    TextTable t({"engine", "util", "time", "energy", "ops/W", "gain vs cpu"});
    const auto ladder = specialization_ladder();
    const double cpu_eff = ladder.front().ops_per_watt(k, cat);
    for (const auto& e : ladder) {
      t.row({e.name, TextTable::num(e.utilization(k)),
             units::time_format(e.exec_time_s(k)),
             units::si_format(e.energy_j(k, cat), "J"),
             units::si_format(e.ops_per_watt(k, cat), "op/W", 2),
             TextTable::num(e.ops_per_watt(k, cat) / cpu_eff, 3) + "x"});
    }
    t.print(std::cout);
  }
  // The quantized rung: int8 MAC ASIC vs the 64-bit FMA CPU baseline.
  const double cpu_j_per_op =
      cat.fp_fma() * specialization_ladder().front().overhead_factor;
  const double int8_j_per_op = cat.int8_mac() * 1.15;
  std::cout << "  Quantized fixed-function rung (int8 MAC datapath): "
            << TextTable::num(cpu_j_per_op / int8_j_per_op, 4)
            << "x vs general-purpose CPU op.\n"
            << "  Paper claim: specialization can give ~100x (and more with "
               "reduced precision).\n";
}

void print_nre() {
  std::cout << "\n=== E5b: NRE economics -- who can afford each rung ===\n";
  const auto routes = route_catalog();
  TextTable t({"volume", "cheapest route", "cost/unit USD"});
  for (const auto& w : winners_by_volume(routes, 1, 1e8)) {
    t.row({TextTable::num(w.volume, 1), std::string(w.route->name),
           TextTable::num(w.cost_per_unit, 4)});
  }
  t.print(std::cout);

  // When the deployment *requires* hardware efficiency (the software
  // route cannot meet the energy spec), the contest is among fabrics:
  std::cout << "\n  hardware-only contest (software excluded by the energy "
               "spec):\n";
  const std::vector<ImplementationRoute> hw(routes.begin() + 1, routes.end());
  TextTable h({"volume", "cheapest hw route", "cost/unit USD"});
  for (const auto& w : winners_by_volume(hw, 1e3, 1e8)) {
    h.row({TextTable::num(w.volume, 1), std::string(w.route->name),
           TextTable::num(w.cost_per_unit, 4)});
  }
  h.print(std::cout);
  std::cout << "  crossovers: CGRA overtakes FPGA at "
            << TextTable::num(crossover_volume(hw[1], hw[0]), 3)
            << " units; ASIC overtakes CGRA at "
            << TextTable::num(crossover_volume(hw[2], hw[1]), 3)
            << " units.\n"
            << "  Paper claim: NRE makes full-custom infeasible for all but\n"
               "  the highest-volume applications; reconfigurable fabrics\n"
               "  drive down the fixed cost.\n";
}

void BM_ladder_eval(benchmark::State& state) {
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto k = regular();
  for (auto _ : state) {
    for (const auto& e : ladder) {
      benchmark::DoNotOptimize(e.ops_per_watt(k, cat));
    }
  }
}
BENCHMARK(BM_ladder_eval);

}  // namespace

int main(int argc, char** argv) {
  print_ladder();
  print_nre();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
