// E21 (extension) -- ablation of stream prefetching under the energy-first
// lens (section 2.2: memory hierarchies "usually optimized for
// performance first").  Prefetching buys latency on regular streams but
// *costs* energy whenever its accuracy drops: every useless prefetch is a
// DRAM fetch paid for nothing.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "energy/catalogue.hpp"
#include "mem/prefetch.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace arch21;
using namespace arch21::mem;

struct Workload {
  const char* name;
  std::function<Addr(int, Rng&)> next;
};

void print_ablation() {
  std::cout << "\n=== E21: stride-prefetch ablation (energy-first view) ===\n";
  const energy::Catalogue cat;
  const CacheConfig l1{.size_bytes = 32768, .line_bytes = 64, .ways = 8};
  const CacheConfig l2{.size_bytes = 262144, .line_bytes = 64, .ways = 8};
  const CacheConfig llc{.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16};

  const Workload workloads[] = {
      {"stream", [](int i, Rng&) { return static_cast<Addr>(i) * 64; }},
      {"stride-4", [](int i, Rng&) { return static_cast<Addr>(i) * 256; }},
      {"bursty-random",
       [](int i, Rng& rng) {
         static thread_local Addr base = 0;
         if (i % 4 == 0) base = rng.below(1ull << 30) & ~63ull;
         return base + static_cast<Addr>(i % 4) * 64;
       }},
      {"random",
       [](int, Rng& rng) { return rng.below(1ull << 30) & ~63ull; }},
  };

  TextTable t({"workload", "demand L1 hit (off)", "demand L1 hit (on)",
               "pf accuracy", "energy/demand pJ (off)",
               "energy/demand pJ (on)"});
  for (const auto& w : workloads) {
    const int n = 100000;
    Hierarchy off(l1, l2, llc, cat);
    Rng rng_off(17);
    std::uint64_t off_hits = 0;
    for (int i = 0; i < n; ++i) {
      if (off.access(w.next(i, rng_off), false) == ServiceLevel::L1) {
        ++off_hits;
      }
    }
    Hierarchy on(l1, l2, llc, cat);
    StridePrefetcher pf(on);
    Rng rng_on(17);
    for (int i = 0; i < n; ++i) pf.access(w.next(i, rng_on), false);

    t.row({w.name, TextTable::num(static_cast<double>(off_hits) / n),
           TextTable::num(static_cast<double>(pf.stats().demand_hits_l1) / n),
           TextTable::num(pf.stats().accuracy()),
           TextTable::num(units::to_pJ(off.stats().total_energy_j) / n, 4),
           TextTable::num(units::to_pJ(on.stats().total_energy_j) / n, 4)});
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: on streams the prefetcher converts DRAM misses\n"
         "  into L1 hits at near-zero energy premium; on irregular traffic\n"
         "  it must throttle itself or burn energy on useless fetches --\n"
         "  the performance-first vs energy-first tension, measured.\n";
}

void BM_prefetched_stream(benchmark::State& state) {
  const energy::Catalogue cat;
  Hierarchy h({.size_bytes = 32768, .line_bytes = 64, .ways = 8},
              {.size_bytes = 262144, .line_bytes = 64, .ways = 8},
              {.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16}, cat);
  StridePrefetcher pf(h);
  Addr a = 0;
  for (auto _ : state) {
    pf.access(a, false);
    a += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_prefetched_stream);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
