// E10 -- Section 2.3: "Emerging non-volatile memory technologies promise
// much greater storage density and power efficiency, yet require
// re-architecting memory and storage systems to address the device
// capabilities (e.g., longer, asymmetric, or variable latency, as well as
// device wear out)."
//
// Regenerates: (a) the DRAM vs PCM device comparison, (b) the wear-out
// experiment -- lifetime under a hot-line workload with and without
// Start-Gap wear leveling, and (c) the hybrid DRAM+NVM migration view.

#include <benchmark/benchmark.h>

#include <iostream>

#include "mem/dram.hpp"
#include "mem/hybrid.hpp"
#include "mem/nvm.hpp"
#include "mem/wear_leveling.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::mem;

void print_device_comparison() {
  std::cout << "\n=== E10a: DRAM vs PCM-class NVM device ===\n";
  DramConfig d;
  NvmConfig n;
  TextTable t({"property", "DRAM", "NVM (PCM-class)"});
  t.row({"read latency ns", TextTable::num(d.t_rcd_ns + d.t_cas_ns),
         TextTable::num(n.read_ns)});
  t.row({"write latency ns", TextTable::num(d.t_rcd_ns + d.t_cas_ns),
         TextTable::num(n.write_ns)});
  t.row({"write energy nJ/64B", TextTable::num(d.e_rw_per64b_nj * 8),
         TextTable::num(n.e_write_per64b_nj * 8)});
  t.row({"refresh/standby", "yes (power floor)", "none (non-volatile)"});
  t.row({"endurance writes/line", "unlimited (practically)",
         TextTable::num(n.mean_endurance, 2)});
  t.print(std::cout);
}

void print_wear_leveling() {
  std::cout << "\n=== E10b: lifetime under a hot-line write workload ===\n";
  // 20% of writes hammer one line, the rest spread uniformly.
  auto run = [](bool leveled) {
    NvmConfig cfg;
    cfg.lines = 1024;
    cfg.mean_endurance = 3e4;  // scaled down so the experiment terminates
    cfg.endurance_shape = 8;
    NvmDevice dev(cfg);
    StartGap sg(dev, 64);
    Rng rng(5);
    std::uint64_t writes = 0;
    const std::uint64_t logical = leveled ? sg.logical_lines() : cfg.lines;
    while (dev.failed_lines() == 0 && writes < 200'000'000) {
      const std::uint64_t line =
          rng.chance(0.2) ? 7 : rng.below(logical);
      if (leveled) {
        sg.write(line);
      } else {
        dev.write(line);
      }
      ++writes;
    }
    struct Out {
      std::uint64_t useful_writes;
      double wear_cv;
      std::uint64_t max_wear;
    };
    return Out{writes, dev.wear_cv(), dev.max_wear()};
  };
  const auto raw = run(false);
  const auto lev = run(true);
  TextTable t({"config", "writes to first line death", "wear CV",
               "max line wear"});
  t.row({"no leveling", TextTable::num(static_cast<double>(raw.useful_writes), 4),
         TextTable::num(raw.wear_cv), TextTable::num(static_cast<double>(raw.max_wear), 4)});
  t.row({"start-gap psi=64", TextTable::num(static_cast<double>(lev.useful_writes), 4),
         TextTable::num(lev.wear_cv), TextTable::num(static_cast<double>(lev.max_wear), 4)});
  t.print(std::cout);
  std::cout << "  Lifetime extension from start-gap: "
            << TextTable::num(static_cast<double>(lev.useful_writes) /
                                  static_cast<double>(raw.useful_writes),
                              3)
            << "x (claim: wear leveling approaches the uniform-wear bound).\n";
}

void print_hybrid() {
  std::cout << "\n=== E10c: hybrid DRAM+NVM under a skewed workload ===\n";
  TextTable t({"dram pages", "dram frac", "mean latency ns", "promotions",
               "demotions"});
  for (std::uint64_t pages : {8ull, 32ull, 128ull}) {
    Dram dram{DramConfig{}};
    NvmConfig ncfg;
    ncfg.lines = 1 << 16;
    NvmDevice nvm(ncfg);
    HybridMemory hm(dram, nvm, {.page_bytes = 4096, .dram_pages = pages,
                                .promote_threshold = 4,
                                .epoch_accesses = 8192});
    Rng rng(9);
    for (int i = 0; i < 300000; ++i) {
      const mem::Addr page =
          rng.chance(0.9) ? rng.below(16) : 16 + rng.below(4096);
      hm.access(page * 4096 + rng.below(512) * 8, rng.chance(0.3));
    }
    const auto& s = hm.stats();
    t.row({std::to_string(pages), TextTable::num(s.dram_fraction()),
           TextTable::num(s.mean_latency_ns()),
           std::to_string(s.promotions), std::to_string(s.demotions)});
  }
  t.print(std::cout);
}

void BM_nvm_write(benchmark::State& state) {
  NvmConfig cfg;
  cfg.lines = 1 << 16;
  cfg.mean_endurance = 1e15;
  NvmDevice dev(cfg);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.write(rng.below(cfg.lines)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_nvm_write);

void BM_startgap_write(benchmark::State& state) {
  NvmConfig cfg;
  cfg.lines = 1 << 16;
  cfg.mean_endurance = 1e15;
  NvmDevice dev(cfg);
  StartGap sg(dev, 100);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg.write(rng.below(sg.logical_lines())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_startgap_write);

}  // namespace

int main(int argc, char** argv) {
  print_device_comparison();
  print_wear_leveling();
  print_hybrid();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
