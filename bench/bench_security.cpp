// E19 (extension) -- Section 2.4: "information flow tracking (reducing
// side-channel attacks)".  DIFT (E14) catches *explicit* flows; this
// bench demonstrates the implicit flow it cannot see -- a cache timing
// channel -- and the architectural defense (way partitioning), ablated
// over cache geometry and victim noise.

#include <benchmark/benchmark.h>

#include <iostream>

#include "mem/sidechannel.hpp"
#include "util/table.hpp"

namespace {

using namespace arch21;
using namespace arch21::mem;

void print_attack() {
  std::cout << "\n=== E19a: prime+probe accuracy, shared vs partitioned ===\n";
  TextTable t({"cache", "noise accesses", "shared-cache accuracy",
               "partitioned accuracy"});
  for (const auto& [size, ways] :
       {std::pair<std::uint64_t, std::uint32_t>{2048, 2},
        {4096, 4},
        {16384, 8}}) {
    for (std::uint32_t noise : {0u, 2u, 8u}) {
      SidechannelConfig cfg;
      cfg.cache = {.size_bytes = size, .line_bytes = 64, .ways = ways};
      cfg.trials = 16;
      cfg.noise_accesses = noise;
      const double leaky = channel_accuracy(cfg, false);
      const double sealed = channel_accuracy(cfg, true);
      t.row({std::to_string(size / 1024) + "KiB/" + std::to_string(ways) +
                 "w",
             std::to_string(noise), TextTable::num(leaky),
             TextTable::num(sealed)});
    }
  }
  t.print(std::cout);
  std::cout
      << "  Claim check: the shared cache leaks the secret set index with\n"
         "  high accuracy even under noise; static way partitioning drops\n"
         "  the attacker to chance -- isolation as an architectural\n"
         "  security interface.\n";
}

void BM_attack_round(benchmark::State& state) {
  SidechannelConfig cfg;
  cfg.trials = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prime_probe_attack(cfg, 5, false));
  }
}
BENCHMARK(BM_attack_round);

}  // namespace

int main(int argc, char** argv) {
  print_attack();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
