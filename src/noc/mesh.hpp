#pragma once
// 2-D mesh network-on-chip model with dimension-ordered (XY) routing.
// Provides per-message hop/latency/energy accounting plus the standard
// aggregate metrics (average uniform-traffic distance, bisection
// bandwidth).  The 1000-way-parallelism experiment (E7) charges all
// inter-task traffic through this model; its energy output is what makes
// "communication energy outgrows computation energy" measurable.

#include <cstdint>

namespace arch21::noc {

/// Node coordinate in the mesh.
struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Cost of delivering one message.
struct MessageCost {
  std::uint32_t hops = 0;
  double latency_s = 0;
  double energy_j = 0;
};

/// Mesh configuration.
struct MeshConfig {
  std::uint32_t width = 8;
  std::uint32_t height = 8;
  double clock_ghz = 2.0;
  std::uint32_t router_cycles = 2;   ///< pipeline delay per router
  std::uint32_t link_cycles = 1;     ///< wire delay per hop
  double link_mm = 1.5;              ///< physical hop length
  double e_router_per_bit_pj = 0.6;  ///< buffer+crossbar+arbiter energy
  double e_wire_per_bit_mm_pj = 0.2; ///< link wire energy
  double flit_bits = 128;            ///< link width
};

/// The mesh.
class Mesh {
 public:
  explicit Mesh(MeshConfig cfg);

  const MeshConfig& config() const noexcept { return cfg_; }
  std::uint32_t nodes() const noexcept { return cfg_.width * cfg_.height; }

  Coord coord_of(std::uint32_t node) const;
  std::uint32_t node_of(Coord c) const;

  /// Manhattan hop count between two nodes (XY routing).
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

  /// Zero-load delivery cost for a `bytes`-byte message (wormhole:
  /// head latency + serialization).
  MessageCost send(std::uint32_t src, std::uint32_t dst, double bytes) const;

  /// Delivery cost under background load: each router hop behaves as an
  /// M/M/1 station at utilization `link_util` in [0,1), inflating the
  /// per-hop latency by 1/(1-util).  Energy is unchanged (contention
  /// wastes time, not switching energy).
  MessageCost send_loaded(std::uint32_t src, std::uint32_t dst, double bytes,
                          double link_util) const;

  /// Saturation throughput estimate for uniform traffic: the injection
  /// bandwidth per node at which the bisection saturates (bytes/s).
  double saturation_injection_bps() const;

  /// Average hop distance under uniform random traffic (closed form
  /// (W+H)/3 for a W x H mesh, computed exactly here).
  double mean_uniform_hops() const;

  /// Bisection bandwidth in bits/s (width links crossing the midline).
  double bisection_bw_bps() const;

  /// Energy per bit for an average uniform-traffic message.
  double mean_energy_per_bit() const;

 private:
  MeshConfig cfg_;
};

}  // namespace arch21::noc
