#include "noc/stacking.hpp"

#include <algorithm>

namespace arch21::noc {

StackEval evaluate_stack(const StackConfig& cfg) {
  StackEval e;
  if (cfg.dram_layers == 0) {
    // Off-chip baseline.
    const OffChipDram base;
    e.bandwidth_gbs = base.bandwidth_gbs;
    e.energy_pj_bit = base.energy_pj_bit;
    e.logic_power_cap_w = cfg.logic_tdp_w;
    e.capacity_factor = 1.0;
    return e;
  }
  // Bandwidth: TSV bus, shared across layers (rank-style).
  e.bandwidth_gbs = cfg.tsv_count * cfg.tsv_gbps_each / 8.0;
  e.energy_pj_bit = cfg.e_tsv_pj_bit + cfg.e_dram_core_pj_bit;
  // Thermal: logic heat must flow through the DRAM layers to the sink.
  const double theta =
      cfg.theta_base_c_per_w +
      cfg.theta_per_layer_c_per_w * static_cast<double>(cfg.dram_layers);
  const double dram_power =
      cfg.layer_power_w * static_cast<double>(cfg.dram_layers);
  const double headroom_c = cfg.t_max_c - cfg.t_ambient_c;
  const double total_cap = headroom_c / theta;
  e.logic_power_cap_w =
      std::clamp(total_cap - dram_power, 0.0, cfg.logic_tdp_w);
  e.capacity_factor = static_cast<double>(cfg.dram_layers);
  return e;
}

std::vector<StackEval> stacking_sweep(StackConfig cfg,
                                      std::uint32_t max_layers) {
  std::vector<StackEval> out;
  for (std::uint32_t l = 0; l <= max_layers; ++l) {
    cfg.dram_layers = l;
    out.push_back(evaluate_stack(cfg));
  }
  return out;
}

}  // namespace arch21::noc
