#pragma once
// 3-D die stacking model: memory-on-logic with TSVs.  Captures the two
// effects the paper highlights -- radically better bandwidth/energy to
// stacked DRAM -- and the one it warns about implicitly: thermal
// coupling.  Each stacked layer adds thermal resistance, so the logic
// die's sustainable power drops as layers are added; experiment E11
// reports the bandwidth/energy win alongside the thermal tax.

#include <cstdint>
#include <vector>

namespace arch21::noc {

/// Stack configuration.
struct StackConfig {
  std::uint32_t dram_layers = 4;
  double tsv_count = 2048;          ///< data TSVs
  double tsv_gbps_each = 2.0;       ///< per-TSV signaling rate
  double e_tsv_pj_bit = 0.05;       ///< TSV marginal energy
  double e_dram_core_pj_bit = 4.0;  ///< DRAM array access energy
  double logic_tdp_w = 100;         ///< logic die power cap, unstacked
  double theta_base_c_per_w = 0.3;  ///< junction-to-ambient, no stack
  double theta_per_layer_c_per_w = 0.08;  ///< added resistance per layer
  double t_ambient_c = 45;
  double t_max_c = 95;
  double layer_power_w = 2.5;       ///< background power per DRAM layer
};

/// Evaluated stack properties.
struct StackEval {
  double bandwidth_gbs = 0;        ///< payload GB/s to stacked DRAM
  double energy_pj_bit = 0;        ///< end-to-end pJ/bit (TSV + array)
  double logic_power_cap_w = 0;    ///< thermally sustainable logic power
  double capacity_factor = 0;      ///< relative DRAM capacity (layers)
};

/// Evaluate a stack configuration.
StackEval evaluate_stack(const StackConfig& cfg);

/// Baseline off-package DDR-style channel for comparison.
struct OffChipDram {
  double bandwidth_gbs = 12.8;
  double energy_pj_bit = 35.0;  ///< I/O + termination + array
  double latency_ns = 60;
};

/// Sweep layer counts 0..max_layers; layer 0 is the off-chip baseline
/// expressed in the same units.
std::vector<StackEval> stacking_sweep(StackConfig cfg,
                                      std::uint32_t max_layers = 8);

}  // namespace arch21::noc
