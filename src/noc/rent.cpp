#include "noc/rent.hpp"

#include <cmath>
#include <stdexcept>

namespace arch21::noc {

double rent_terminals(const RentParams& rp, double gates) {
  if (gates <= 0) throw std::invalid_argument("rent_terminals: gates <= 0");
  return rp.t * std::pow(gates, rp.p);
}

std::vector<BandwidthWallRow> bandwidth_wall(RentParams rp, double base_gates,
                                             int gens, double pin_bw_growth) {
  std::vector<BandwidthWallRow> rows;
  double gates = base_gates;
  double pin_bw = 1.0;
  const double base_pins = rent_terminals(rp, base_gates);
  for (int g = 0; g <= gens; ++g) {
    BandwidthWallRow r;
    r.generation = g;
    r.gates = gates;
    // Traffic demand scales with compute (gates); supply with pins x
    // per-pin bandwidth.  Normalize so generation 0 has gap 1.
    r.compute_demand = gates / base_gates;
    r.pins = rent_terminals(rp, gates);
    const double supply = (r.pins / base_pins) * pin_bw;
    r.gap = r.compute_demand / supply;
    rows.push_back(r);
    gates *= 2.0;
    pin_bw *= pin_bw_growth;
  }
  return rows;
}

}  // namespace arch21::noc
