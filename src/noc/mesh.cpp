#include "noc/mesh.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/units.hpp"

namespace arch21::noc {

Mesh::Mesh(MeshConfig cfg) : cfg_(cfg) {
  if (cfg.width == 0 || cfg.height == 0 || cfg.clock_ghz <= 0 ||
      cfg.flit_bits <= 0) {
    throw std::invalid_argument("Mesh: bad config");
  }
}

Coord Mesh::coord_of(std::uint32_t node) const {
  if (node >= nodes()) throw std::out_of_range("Mesh::coord_of");
  return {node % cfg_.width, node / cfg_.width};
}

std::uint32_t Mesh::node_of(Coord c) const {
  if (c.x >= cfg_.width || c.y >= cfg_.height) {
    throw std::out_of_range("Mesh::node_of");
  }
  return c.y * cfg_.width + c.x;
}

std::uint32_t Mesh::hops(std::uint32_t src, std::uint32_t dst) const {
  const Coord a = coord_of(src);
  const Coord b = coord_of(dst);
  return static_cast<std::uint32_t>(
      std::abs(static_cast<int>(a.x) - static_cast<int>(b.x)) +
      std::abs(static_cast<int>(a.y) - static_cast<int>(b.y)));
}

MessageCost Mesh::send(std::uint32_t src, std::uint32_t dst,
                       double bytes) const {
  MessageCost mc;
  mc.hops = hops(src, dst);
  const double cycle_s = units::period(cfg_.clock_ghz * units::giga);
  const double bits = bytes * 8.0;
  const double flits = std::ceil(bits / cfg_.flit_bits);
  // Wormhole: head flit traverses routers+links, body pipelines behind.
  const double head_cycles =
      static_cast<double>(mc.hops) * (cfg_.router_cycles + cfg_.link_cycles);
  const double local_cycles = cfg_.router_cycles;  // src injection
  mc.latency_s = (head_cycles + local_cycles + (flits - 1)) * cycle_s;
  // Energy: every bit crosses `hops` routers and hop-length wires.
  const double e_bit =
      static_cast<double>(mc.hops) *
      (cfg_.e_router_per_bit_pj + cfg_.e_wire_per_bit_mm_pj * cfg_.link_mm) *
      units::pico;
  mc.energy_j = e_bit * bits;
  return mc;
}

MessageCost Mesh::send_loaded(std::uint32_t src, std::uint32_t dst,
                              double bytes, double link_util) const {
  if (link_util < 0 || link_util >= 1) {
    throw std::invalid_argument("Mesh::send_loaded: util must be in [0,1)");
  }
  MessageCost mc = send(src, dst, bytes);
  // Queueing inflation applies to the hop-by-hop portion (router+link),
  // not to serialization of the body flits, which pipelines behind the
  // head.  First-order: scale the whole head latency.
  const double cycle_s = units::period(cfg_.clock_ghz * units::giga);
  const double head_cycles = static_cast<double>(mc.hops) *
                             (cfg_.router_cycles + cfg_.link_cycles);
  const double extra =
      head_cycles * cycle_s * (1.0 / (1.0 - link_util) - 1.0);
  mc.latency_s += extra;
  return mc;
}

double Mesh::saturation_injection_bps() const {
  // Uniform traffic: half the injected bytes cross the bisection on
  // average, so saturation is reached when
  //   (nodes/2) * injection_rate = bisection bandwidth.
  const double nodes_d = static_cast<double>(nodes());
  return bisection_bw_bps() / 8.0 / (nodes_d / 2.0);  // bytes/s per node
}

double Mesh::mean_uniform_hops() const {
  // Exact expectation of |x1-x2| + |y1-y2| for independent uniform picks.
  auto mean_abs_diff = [](std::uint32_t n) {
    // E|a-b| over a,b ~ U{0..n-1} = (n^2 - 1) / (3n).
    const double nn = static_cast<double>(n);
    return (nn * nn - 1.0) / (3.0 * nn);
  };
  return mean_abs_diff(cfg_.width) + mean_abs_diff(cfg_.height);
}

double Mesh::bisection_bw_bps() const {
  const double link_bps = cfg_.flit_bits * cfg_.clock_ghz * units::giga /
                          static_cast<double>(cfg_.link_cycles);
  // Cutting the mesh across the narrower dimension severs `min(W,H)`
  // bidirectional links.
  const double cut = static_cast<double>(std::min(cfg_.width, cfg_.height));
  return 2.0 * cut * link_bps;
}

double Mesh::mean_energy_per_bit() const {
  return mean_uniform_hops() *
         (cfg_.e_router_per_bit_pj + cfg_.e_wire_per_bit_mm_pj * cfg_.link_mm) *
         units::pico;
}

}  // namespace arch21::noc
