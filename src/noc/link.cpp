#include "noc/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace arch21::noc {

double LinkTech::effective_j_per_bit(double util) const {
  if (util <= 0 || util > 1) {
    throw std::invalid_argument("LinkTech: utilization must be in (0,1]");
  }
  const double bps = bandwidth_gbps * units::giga * util;
  return e_per_bit_pj * units::pico + (bps > 0 ? fixed_power_w / bps : 0.0);
}

double LinkTech::energy(double bits, double util) const {
  return effective_j_per_bit(util) * bits;
}

double LinkTech::transfer_time_s(double bits) const {
  return latency_ns * units::nano + bits / (bandwidth_gbps * units::giga);
}

std::vector<LinkTech> link_catalog() {
  return {
      // name, GB/s, latency ns, pJ/bit, fixed W, reach mm
      {"onchip-wire", 128, 1, 0.5, 0.0, 20},
      {"tsv-3d", 512, 0.5, 0.05, 0.0, 0.1},
      {"serdes-board", 25, 10, 5.0, 0.0, 500},
      {"photonic", 320, 6, 0.3, 0.5, 100000},
      {"dram-bus", 12.8, 12, 30.0, 0.1, 80},
  };
}

double crossover_utilization(const LinkTech& a, const LinkTech& b) {
  auto diff = [&](double u) {
    return a.effective_j_per_bit(u) - b.effective_j_per_bit(u);
  };
  // effective_j_per_bit is monotone decreasing in util for fixed-power
  // links, constant otherwise, so diff is monotone; bisect on sign change.
  double lo = 1e-6;
  double hi = 1.0;
  const double dlo = diff(lo);
  const double dhi = diff(hi);
  if (dlo < 0 && dhi < 0) return -1.0;  // a always cheaper
  if (dlo > 0 && dhi > 0) return 2.0;   // a never cheaper
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if ((diff(mid) > 0) == (dlo > 0)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace arch21::noc
