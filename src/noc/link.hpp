#pragma once
// Interconnect link technologies: electrical on-chip wires, off-chip
// SERDES, through-silicon vias (3D stacking), and silicon photonics.
// Photonic links pay a *fixed* laser+thermal-tuning power regardless of
// traffic, but move bits for ~an order of magnitude less marginal energy
// and without distance-dependent cost -- so there is a utilization
// crossover, which experiment E11 locates.
//
// Paper hook (section 2.3): "Photonics and 3D chip stacking change
// communication costs radically enough to affect the entire system
// design."

#include <string>
#include <vector>

namespace arch21::noc {

/// A point-to-point link technology instance.
struct LinkTech {
  std::string name;
  double bandwidth_gbps = 10;   ///< peak payload bandwidth
  double latency_ns = 5;        ///< propagation + SERDES latency
  double e_per_bit_pj = 5;      ///< marginal energy per transported bit
  double fixed_power_w = 0;     ///< always-on power (lasers, PLLs, tuning)
  double reach_mm = 10;         ///< usable physical reach

  /// Total energy to move `bits` at average utilization `util` in (0,1]:
  /// marginal energy + the amortized share of fixed power.
  double energy(double bits, double util) const;

  /// Effective J/bit at sustained utilization `util`.
  double effective_j_per_bit(double util) const;

  /// Time to transfer `bits` (serialization + latency).
  double transfer_time_s(double bits) const;
};

/// Representative 2012-era link technology catalog.
/// Values are first-order literature numbers; relative shapes (photonic
/// fixed cost vs low marginal cost, TSV cheapness, SERDES expense) are
/// what the experiments depend on.
std::vector<LinkTech> link_catalog();

/// The utilization above which `a` beats `b` in J/bit (bisection search);
/// returns <0 if `a` always wins, >1 if never.
double crossover_utilization(const LinkTech& a, const LinkTech& b);

}  // namespace arch21::noc
