#pragma once
// Rent's rule and the off-chip bandwidth wall.  Terminals (pins) grow as
// T = t * G^p with gate count G and Rent exponent p < 1, while on-chip
// compute grows linearly with G: the pin/bandwidth gap widens every
// generation.  Table 1 of the paper cites exactly this ("Restricted
// inter-chip ... communication (e.g. Rent's Rule)").

#include <vector>

namespace arch21::noc {

/// Rent's-rule parameters.
struct RentParams {
  double t = 5.0;   ///< terminals per gate-ish block (Rent coefficient)
  double p = 0.6;   ///< Rent exponent (0.5-0.75 for logic)
};

/// Terminals required for a block of `gates` gates.
double rent_terminals(const RentParams& rp, double gates);

/// One generation row for the bandwidth-wall projection.
struct BandwidthWallRow {
  int generation;          ///< 0 = today
  double gates;            ///< on-chip gates
  double compute_demand;   ///< required off-chip traffic if per-gate demand fixed
  double pins;             ///< pins available per Rent
  double gap;              ///< demand / supply (>=1 means wall)
};

/// Project `gens` generations of 2x-gate growth with per-pin bandwidth
/// improving `pin_bw_growth`x per generation.
std::vector<BandwidthWallRow> bandwidth_wall(RentParams rp, double base_gates,
                                             int gens,
                                             double pin_bw_growth = 1.15);

}  // namespace arch21::noc
