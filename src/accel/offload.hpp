#pragma once
// Offload planning: when is it worth shipping a kernel to an accelerator?
// The decision weighs host execution against transfer + accelerator
// execution, in both time and energy, over a configurable link -- this is
// the paper's eco-system question ("How should computation be split
// between the nodes and cloud infrastructure?") at the chip scale, and
// the same machinery the sensor module reuses at the radio scale.

#include <vector>

#include "accel/models.hpp"
#include "noc/link.hpp"

namespace arch21::accel {

/// Cost of running a kernel somewhere.
struct PlacementCost {
  double time_s = 0;
  double energy_j = 0;
};

/// Outcome of an offload analysis.
struct OffloadDecision {
  PlacementCost host;
  PlacementCost accel;      ///< includes transfer both ways
  bool offload_time = false;    ///< offloading wins on latency
  bool offload_energy = false;  ///< offloading wins on energy
  double speedup = 1;
  double energy_gain = 1;
};

/// Analyze one kernel.
OffloadDecision plan_offload(const KernelProfile& k, const Engine& host,
                             const Engine& accel, const noc::LinkTech& link,
                             const energy::Catalogue& cat,
                             double link_utilization = 0.5);

/// Smallest kernel size (ops) at which offloading starts winning on time,
/// holding the compute:traffic ratio fixed (bisection over `k.ops`);
/// returns infinity if it never wins within `max_ops`.
double breakeven_ops(KernelProfile k, const Engine& host, const Engine& accel,
                     const noc::LinkTech& link, const energy::Catalogue& cat,
                     double max_ops = 1e15);

}  // namespace arch21::accel
