#include "accel/cgra.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/units.hpp"

namespace arch21::accel {

namespace {

std::uint32_t manhattan(std::uint32_t a, std::uint32_t b, std::uint32_t w) {
  const int ax = static_cast<int>(a % w);
  const int ay = static_cast<int>(a / w);
  const int bx = static_cast<int>(b % w);
  const int by = static_cast<int>(b / w);
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

}  // namespace

CgraMapping map_to_cgra(const par::TaskGraph& g, const CgraConfig& cfg) {
  CgraMapping m;
  const std::uint32_t pes = cfg.width * cfg.height;
  m.pe_of.assign(g.size(), -1);
  if (g.size() > pes) return m;  // infeasible: not enough PEs

  std::vector<bool> used(pes, false);
  const auto order = g.topo_order();

  for (par::TaskId id : order) {
    const auto& preds = g.task(id).pred;
    std::int32_t best_pe = -1;
    std::uint32_t best_cost = UINT32_MAX;
    for (std::uint32_t pe = 0; pe < pes; ++pe) {
      if (used[pe]) continue;
      std::uint32_t cost = 0;
      bool routable = true;
      for (par::TaskId p : preds) {
        const auto ppe = static_cast<std::uint32_t>(m.pe_of[p]);
        const std::uint32_t d = manhattan(ppe, pe, cfg.width);
        if (d > cfg.route_limit) {
          routable = false;
          break;
        }
        cost += d;
      }
      if (routable && cost < best_cost) {
        best_cost = cost;
        best_pe = static_cast<std::int32_t>(pe);
      }
    }
    if (best_pe < 0) return m;  // no routable placement
    m.pe_of[id] = best_pe;
    used[static_cast<std::uint32_t>(best_pe)] = true;
    m.total_route_hops += best_cost;
    ++m.used_pes;
  }

  m.feasible = true;
  // Pipelined execution: with a fully spatial mapping the initiation
  // interval is set by the longest single-edge route (data must traverse
  // it each cycle) -- at least 1.
  std::uint32_t worst_edge = 1;
  for (par::TaskId id = 0; id < g.size(); ++id) {
    for (par::TaskId s : g.task(id).succ) {
      worst_edge = std::max(
          worst_edge, manhattan(static_cast<std::uint32_t>(m.pe_of[id]),
                                static_cast<std::uint32_t>(m.pe_of[s]),
                                cfg.width));
    }
  }
  m.initiation_interval_cycles = worst_edge;
  const double cycle_s = 1.0 / (cfg.clock_ghz * units::giga);
  m.throughput_ops_per_s =
      static_cast<double>(g.size()) / (m.initiation_interval_cycles * cycle_s);
  m.energy_per_invocation_j =
      (static_cast<double>(g.size()) * cfg.e_pe_op_pj +
       static_cast<double>(m.total_route_hops) * cfg.e_hop_pj) *
      units::pico;
  return m;
}

}  // namespace arch21::accel
