#include "accel/nre.hpp"

#include <cmath>

namespace arch21::accel {

std::vector<ImplementationRoute> route_catalog() {
  // NRE figures are order-of-magnitude 2012-era industry numbers; the
  // shapes (ASIC NRE >> FPGA NRE >> software) drive the crossovers.
  return {
      {"software-on-cpu", 2e5, 25.0, 5000.0},
      {"fpga", 1e6, 80.0, 200.0},
      {"cgra", 4e6, 30.0, 110.0},
      {"asic-22nm", 5e7, 8.0, 55.0},
  };
}

double crossover_volume(const ImplementationRoute& a,
                        const ImplementationRoute& b) {
  // a cheaper than b when unit_a + nre_a/v < unit_b + nre_b/v
  //   <=> v * (unit_a - unit_b) < nre_b - nre_a.
  const double du = a.unit_cost_usd - b.unit_cost_usd;
  const double dn = b.nre_usd - a.nre_usd;
  if (du == 0) return dn > 0 ? 0 : -1;
  const double v = dn / du;
  if (du < 0) {
    // a has the lower unit cost: it wins above v (or always if v <= 0).
    return v <= 0 ? 0 : v;
  }
  // a has the higher unit cost: it can only win below v, never "from" a
  // volume upward; report -1 (no upward crossover).
  return -1;
}

std::vector<VolumeWinner> winners_by_volume(
    const std::vector<ImplementationRoute>& routes, double lo, double hi) {
  std::vector<VolumeWinner> out;
  for (double v = lo; v <= hi * 1.0000001; v *= 10.0) {
    const ImplementationRoute* best = nullptr;
    double best_cost = 0;
    for (const auto& r : routes) {
      const double c = r.cost_per_unit(v);
      if (!best || c < best_cost) {
        best = &r;
        best_cost = c;
      }
    }
    out.push_back({v, best, best_cost});
  }
  return out;
}

}  // namespace arch21::accel
