#include "accel/models.hpp"

#include <algorithm>
#include <cmath>

namespace arch21::accel {

const char* to_string(EngineClass c) {
  switch (c) {
    case EngineClass::ScalarCpu: return "scalar-cpu";
    case EngineClass::SimdCpu: return "simd-cpu";
    case EngineClass::GpuSimt: return "gpu-simt";
    case EngineClass::Fpga: return "fpga";
    case EngineClass::Cgra: return "cgra";
    case EngineClass::Asic: return "asic";
  }
  return "?";
}

double Engine::utilization(const KernelProfile& k) const {
  // Engines that depend on data parallelism / regularity lose utilization
  // smoothly as the kernel falls short of what they need.
  double u = 1.0;
  if (min_data_parallel > 0) {
    u *= std::clamp(k.data_parallel / min_data_parallel, 0.02, 1.0);
  }
  if (min_regularity > 0) {
    u *= std::clamp(k.regularity / min_regularity, 0.02, 1.0);
  }
  return std::clamp(u, 0.02, 1.0);
}

double Engine::exec_time_s(const KernelProfile& k) const {
  return k.ops / (peak_ops_per_s * utilization(k));
}

double Engine::energy_j(const KernelProfile& k,
                        const energy::Catalogue& cat) const {
  const double compute = k.ops * cat.fp_fma() * overhead_factor;
  // Data movement to/from the engine's memory: charged at DRAM distance
  // for all engines (the ladder differentiates compute overhead; the
  // memory experiments differentiate the rest).
  const double movement =
      cat.move(energy::Distance::ToDram, k.bytes_moved * 8.0);
  return compute + movement;
}

double Engine::ops_per_watt(const KernelProfile& k,
                            const energy::Catalogue& cat) const {
  const double t = exec_time_s(k);
  const double e = energy_j(k, cat);
  if (e <= 0 || t <= 0) return 0;
  const double power = e / t;
  return (k.ops / t) / power;  // == k.ops / e
}

std::vector<Engine> specialization_ladder() {
  // Overheads: the scalar OoO core spends ~100x the raw-op energy per
  // useful op (fetch/decode/rename/schedule/bypass); SIMD amortizes
  // front-end over 8-16 lanes; SIMT over warps; FPGA keeps routing
  // overhead; CGRA reduces it with word-granularity fabric; ASIC is near
  // the raw energy.  Peaks rise with specialization at fixed area/power.
  return {
      {EngineClass::ScalarCpu, "scalar-cpu", 1e10, 100.0, 0.0, 0.0},
      {EngineClass::SimdCpu, "simd-cpu", 8e10, 14.0, 0.5, 0.3},
      {EngineClass::GpuSimt, "gpu-simt", 1e12, 8.0, 0.8, 0.5},
      {EngineClass::Fpga, "fpga", 4e11, 4.0, 0.6, 0.8},
      {EngineClass::Cgra, "cgra", 6e11, 2.2, 0.7, 0.8},
      {EngineClass::Asic, "asic", 2e12, 1.15, 0.85, 0.9},
  };
}

double efficiency_gain(const Engine& a, const Engine& b,
                       const KernelProfile& k, const energy::Catalogue& cat) {
  const double ea = a.ops_per_watt(k, cat);
  const double eb = b.ops_per_watt(k, cat);
  return ea > 0 ? eb / ea : 0;
}

}  // namespace arch21::accel
