#pragma once
// The specialization ladder: execution-engine models from general-purpose
// scalar cores to fixed-function ASICs.
//
// The physics behind the paper's "specialization can give 100x higher
// energy efficiency": on a general-purpose core only ~1% of the energy of
// an instruction goes into the arithmetic itself; the rest is fetch,
// decode, rename, scheduling, bypass, and register-file traffic.  Each
// rung of the ladder strips away overhead structures, modeled here as an
// overhead multiplier applied to the raw operation energy from the
// catalogue, plus a utilization model describing how much of a kernel the
// engine can actually absorb.

#include <string>
#include <vector>

#include "energy/catalogue.hpp"

namespace arch21::accel {

/// How specialized an engine is.
enum class EngineClass {
  ScalarCpu,    ///< out-of-order general-purpose core
  SimdCpu,      ///< core + wide vector units
  GpuSimt,      ///< throughput-oriented SIMT array
  Fpga,         ///< fine-grain reconfigurable fabric
  Cgra,         ///< coarse-grain reconfigurable array
  Asic,         ///< fixed-function custom logic
};

const char* to_string(EngineClass c);

/// A kernel to be executed.
struct KernelProfile {
  std::string name = "kernel";
  double ops = 1e9;             ///< arithmetic operations
  double bytes_moved = 1e8;     ///< off-engine data traffic
  double data_parallel = 0.95;  ///< fraction expressible as wide data parallelism
  double regularity = 0.9;      ///< control regularity in [0,1] (1 = fixed loop)
};

/// An execution engine.
struct Engine {
  EngineClass cls = EngineClass::ScalarCpu;
  std::string name = "cpu";
  double peak_ops_per_s = 1e10;
  double overhead_factor = 100;  ///< energy/op = raw_op * overhead
  double min_data_parallel = 0;  ///< below this the engine degrades hard
  double min_regularity = 0;

  /// Achievable fraction of peak on this kernel (utilization in (0,1]).
  double utilization(const KernelProfile& k) const;

  /// Wall time for the kernel (compute only).
  double exec_time_s(const KernelProfile& k) const;

  /// Energy for the kernel on this engine: compute + data movement.
  double energy_j(const KernelProfile& k, const energy::Catalogue& cat) const;

  /// Achieved ops/W on this kernel.
  double ops_per_watt(const KernelProfile& k,
                      const energy::Catalogue& cat) const;
};

/// The built-in ladder at a given peak-normalized scale.
/// Engines are ordered general -> specialized.
std::vector<Engine> specialization_ladder();

/// Energy-efficiency ratio of engine `b` over engine `a` on kernel `k`.
double efficiency_gain(const Engine& a, const Engine& b,
                       const KernelProfile& k, const energy::Catalogue& cat);

}  // namespace arch21::accel
