#pragma once
// Non-recurring-engineering (NRE) economics of specialization.  The paper:
// "the increasing complexity of silicon process technologies has driven
// NRE costs to prohibitive levels, making full-custom accelerators
// infeasible for all but the highest-volume applications", with
// reconfigurable fabrics driving down the fixed cost at the price of
// per-unit efficiency.  This module computes cost-per-unit curves and the
// volume crossovers between ASIC / CGRA / FPGA / software implementations.

#include <string>
#include <vector>

namespace arch21::accel {

/// An implementation route for a function.
struct ImplementationRoute {
  std::string name;
  double nre_usd = 0;         ///< design + verification + masks
  double unit_cost_usd = 0;   ///< marginal silicon/board cost per unit
  double energy_per_op_pj = 1; ///< efficiency of the resulting part

  /// Total cost of ownership per unit at a production volume.
  double cost_per_unit(double volume) const {
    return unit_cost_usd + (volume > 0 ? nre_usd / volume : nre_usd);
  }
};

/// Representative routes at an advanced (~22 nm-era) node.
std::vector<ImplementationRoute> route_catalog();

/// Volume at which route `a` becomes cheaper per unit than route `b`
/// (closed form from the linear cost model); <0 if a is never cheaper,
/// 0 if always.
double crossover_volume(const ImplementationRoute& a,
                        const ImplementationRoute& b);

/// For a set of routes, the cheapest route at each decade of volume.
struct VolumeWinner {
  double volume;
  const ImplementationRoute* route;
  double cost_per_unit;
};
std::vector<VolumeWinner> winners_by_volume(
    const std::vector<ImplementationRoute>& routes, double lo = 1,
    double hi = 1e8);

}  // namespace arch21::accel
