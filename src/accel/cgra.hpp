#pragma once
// A coarse-grain reconfigurable array (CGRA) and a greedy spatial mapper.
// The fabric is a W x H grid of word-width functional units with
// nearest-neighbor routing; a dataflow graph (reused from par::TaskGraph,
// one op per node) is placed onto PEs and its edges routed at Manhattan
// distance.  The mapper reports achieved initiation interval, routing
// cost, and energy -- concretely grounding the paper's "coarser-grain
// semi-programmable building blocks (reducing internal inefficiencies)
// and packet-based interconnection".

#include <cstdint>
#include <vector>

#include "par/taskgraph.hpp"

namespace arch21::accel {

/// CGRA fabric parameters.
struct CgraConfig {
  std::uint32_t width = 8;
  std::uint32_t height = 8;
  double clock_ghz = 1.0;
  double e_pe_op_pj = 1.0;       ///< per-op PE energy
  double e_hop_pj = 0.15;        ///< per-word per-hop routing energy
  std::uint32_t route_limit = 6; ///< max hops an edge may span
};

/// Result of mapping a dataflow graph.
struct CgraMapping {
  bool feasible = false;
  std::vector<std::int32_t> pe_of;  ///< node -> PE index (-1 unplaced)
  std::uint32_t used_pes = 0;
  std::uint32_t total_route_hops = 0;
  double initiation_interval_cycles = 0;  ///< II for pipelined execution
  double throughput_ops_per_s = 0;        ///< graph ops per second at II
  double energy_per_invocation_j = 0;
};

/// Greedy placer: nodes in topological order; each node goes to the free
/// PE minimizing total Manhattan distance to its placed predecessors.
/// Fails (feasible = false) when the graph has more nodes than PEs or an
/// edge cannot be routed within route_limit hops.
CgraMapping map_to_cgra(const par::TaskGraph& g, const CgraConfig& cfg);

}  // namespace arch21::accel
