#include "accel/offload.hpp"

#include <cmath>
#include <limits>

namespace arch21::accel {

OffloadDecision plan_offload(const KernelProfile& k, const Engine& host,
                             const Engine& accel, const noc::LinkTech& link,
                             const energy::Catalogue& cat,
                             double link_utilization) {
  OffloadDecision d;
  d.host.time_s = host.exec_time_s(k);
  d.host.energy_j = host.energy_j(k, cat);

  const double bits = k.bytes_moved * 8.0;
  const double xfer_t = link.transfer_time_s(bits) * 2.0;  // in + out
  const double xfer_e = link.energy(bits, link_utilization) * 2.0;
  d.accel.time_s = accel.exec_time_s(k) + xfer_t;
  d.accel.energy_j = accel.energy_j(k, cat) + xfer_e;

  d.offload_time = d.accel.time_s < d.host.time_s;
  d.offload_energy = d.accel.energy_j < d.host.energy_j;
  d.speedup = d.accel.time_s > 0 ? d.host.time_s / d.accel.time_s : 0;
  d.energy_gain =
      d.accel.energy_j > 0 ? d.host.energy_j / d.accel.energy_j : 0;
  return d;
}

double breakeven_ops(KernelProfile k, const Engine& host, const Engine& accel,
                     const noc::LinkTech& link, const energy::Catalogue& cat,
                     double max_ops) {
  const double ratio = k.bytes_moved / k.ops;  // hold intensity fixed
  auto wins = [&](double ops) {
    KernelProfile kk = k;
    kk.ops = ops;
    kk.bytes_moved = ops * ratio;
    return plan_offload(kk, host, accel, link, cat).offload_time;
  };
  if (wins(1.0)) return 1.0;
  if (!wins(max_ops)) return std::numeric_limits<double>::infinity();
  double lo = 1.0;
  double hi = max_ops;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace arch21::accel
