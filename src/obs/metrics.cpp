#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace arch21::obs {

// A shard holds one dense cell array per metric kind, indexed by the slot
// packed into the MetricId, so a counter bump is one add into a
// contiguous uint64 vector with no descriptor lookup and no lock.  Only
// the owning thread touches a shard's cells between quiescence points;
// the registry mutex covers shard creation, timer-layout lookups, and the
// snapshot()/reset() scans (which require quiescence anyway).
struct MetricsRegistry::Shard {
  std::vector<std::uint64_t> counters;
  std::vector<double> gauges;
  std::vector<char> gauge_set;  ///< shard ever wrote this gauge
  std::vector<LogHistogram> timers;
};

namespace {

std::atomic<std::uint64_t> g_next_uid{1};

// Thread-local shard cache: (registry uid -> shard).  Keyed by a
// process-unique uid, never a pointer, so a registry destroyed and
// another allocated at the same address can never alias a stale entry.
struct TlsEntry {
  std::uint64_t uid;
  void* shard;
};
thread_local std::vector<TlsEntry> g_tls_shards;

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kTimer: return "timer";
  }
  return "?";
}

}  // namespace

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry::MetricId MetricsRegistry::register_metric(
    std::string_view name, MetricKind kind, double lowest, double highest,
    std::size_t bpd) {
  std::lock_guard lk(mu_);
  for (const Desc& d : descs_) {
    if (d.name != name) continue;
    if (d.kind != kind ||
        (kind == MetricKind::kTimer &&
         (d.lowest != lowest || d.highest != highest || d.bpd != bpd))) {
      throw std::invalid_argument(
          "MetricsRegistry: '" + std::string(name) +
          "' already registered as a " + kind_name(d.kind) +
          " with a different kind or layout");
    }
    return d.id;
  }
  std::uint32_t slot = 0;
  for (const Desc& d : descs_) {
    if (d.kind == kind) ++slot;
  }
  const MetricId id = pack(kind, slot);
  descs_.push_back(Desc{std::string(name), kind, lowest, highest, bpd, id});
  return id;
}

MetricsRegistry::MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter, 0, 0, 0);
}

MetricsRegistry::MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge, 0, 0, 0);
}

MetricsRegistry::MetricId MetricsRegistry::timer(std::string_view name,
                                                 double lowest, double highest,
                                                 std::size_t bpd) {
  return register_metric(name, MetricKind::kTimer, lowest, highest, bpd);
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard lk(mu_);
  return descs_.size();
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const TlsEntry& e : g_tls_shards) {
    if (e.uid == uid_) return *static_cast<Shard*>(e.shard);
  }
  // Cold path: first recording from this thread into this registry.
  std::lock_guard lk(mu_);
  auto shard = std::make_unique<Shard>();
  Shard& ref = *shard;
  shards_.push_back(std::move(shard));
  g_tls_shards.push_back(TlsEntry{uid_, &ref});
  return ref;
}

void MetricsRegistry::add_slow(MetricId id, std::uint64_t delta) {
  if (kind_of(id) != MetricKind::kCounter) return;
  Shard& s = local_shard();
  const std::uint32_t slot = slot_of(id);
  if (slot >= s.counters.size()) s.counters.resize(slot + 1, 0);
  s.counters[slot] += delta;
}

void MetricsRegistry::gauge_max_slow(MetricId id, double v) {
  if (kind_of(id) != MetricKind::kGauge) return;
  Shard& s = local_shard();
  const std::uint32_t slot = slot_of(id);
  if (slot >= s.gauges.size()) {
    s.gauges.resize(slot + 1, 0.0);
    s.gauge_set.resize(slot + 1, 0);
  }
  if (!s.gauge_set[slot] || v > s.gauges[slot]) s.gauges[slot] = v;
  s.gauge_set[slot] = 1;
}

void MetricsRegistry::record_slow(MetricId id, double v) {
  if (kind_of(id) != MetricKind::kTimer) return;
  Shard& s = local_shard();
  const std::uint32_t slot = slot_of(id);
  if (slot >= s.timers.size()) {
    // Cold: this shard has not seen these timers yet.  Timer cells need
    // their layout from the descriptor table, so take the registry mutex
    // once and build every timer slot up to and including this one.
    std::lock_guard lk(mu_);
    for (const Desc& d : descs_) {
      if (d.kind != MetricKind::kTimer) continue;
      if (slot_of(d.id) >= s.timers.size()) {
        s.timers.emplace_back(d.lowest, d.highest, d.bpd);
      }
      if (s.timers.size() > slot) break;
    }
    if (slot >= s.timers.size()) return;  // unknown id
  }
  s.timers[slot].add(v);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(descs_.size());
  // Fold shards into dense per-slot accumulators first: one contiguous
  // fixed-stride pass over each shard's cell array (the counter fold is
  // a straight u64 vector add that auto-vectorizes) instead of the old
  // descriptor-order walk that re-strode every shard once per metric.
  // Shard iteration order is unchanged (creation order), so gauge max
  // sequences and timer merge order -- and with them every FP
  // accumulator -- are bit-identical to the per-descriptor fold.
  std::size_t n_counters = 0, n_gauges = 0;
  for (const Desc& d : descs_) {
    if (d.kind == MetricKind::kCounter) ++n_counters;
    if (d.kind == MetricKind::kGauge) ++n_gauges;
  }
  std::vector<std::uint64_t> csum(n_counters, 0);
  std::vector<double> gmax(n_gauges, 0.0);
  std::vector<char> gany(n_gauges, 0);
  for (const auto& shard : shards_) {
    const std::uint64_t* sc = shard->counters.data();
    const std::size_t nc = std::min(shard->counters.size(), n_counters);
    for (std::size_t i = 0; i < nc; ++i) csum[i] += sc[i];
    const std::size_t ng = std::min(shard->gauges.size(), n_gauges);
    for (std::size_t i = 0; i < ng; ++i) {
      if (!shard->gauge_set[i]) continue;
      gmax[i] = gany[i] ? std::max(gmax[i], shard->gauges[i])
                        : shard->gauges[i];
      gany[i] = 1;
    }
  }
  for (const Desc& d : descs_) {
    MetricsSnapshot::Entry e;
    e.name = d.name;
    e.kind = d.kind;
    const std::uint32_t slot = slot_of(d.id);
    switch (d.kind) {
      case MetricKind::kCounter: {
        if (slot < csum.size()) e.count = csum[slot];
        break;
      }
      case MetricKind::kGauge: {
        if (slot < gmax.size() && gany[slot]) e.value = gmax[slot];
        break;
      }
      case MetricKind::kTimer: {
        e.hist = LogHistogram(d.lowest, d.highest, d.bpd);
        for (const auto& shard : shards_) {
          if (slot < shard->timers.size()) e.hist.merge(shard->timers[slot]);
        }
        e.count = e.hist.count();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (const auto& shard : shards_) {
    for (auto& v : shard->counters) v = 0;
    for (std::size_t i = 0; i < shard->gauges.size(); ++i) {
      shard->gauges[i] = 0;
      shard->gauge_set[i] = 0;
    }
    for (const Desc& d : descs_) {
      if (d.kind != MetricKind::kTimer) continue;
      const std::uint32_t slot = slot_of(d.id);
      if (slot < shard->timers.size()) {
        shard->timers[slot] = LogHistogram(d.lowest, d.highest, d.bpd);
      }
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"metrics\": [\n";
  char buf[256];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out += "    {\"name\": \"" + e.name + "\", \"kind\": \"";
    out += kind_name(e.kind);
    out += "\"";
    switch (e.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, ", \"value\": %llu",
                      static_cast<unsigned long long>(e.count));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, ", \"value\": %.17g", e.value);
        out += buf;
        break;
      case MetricKind::kTimer:
        std::snprintf(buf, sizeof buf,
                      ", \"count\": %llu, \"mean\": %.6g, \"p50\": %.6g, "
                      "\"p99\": %.6g, \"max\": %.6g",
                      static_cast<unsigned long long>(e.count), e.hist.mean(),
                      e.hist.quantile(0.5), e.hist.quantile(0.99),
                      e.hist.max_seen());
        out += buf;
        break;
    }
    out += "}";
    if (i + 1 < entries.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace arch21::obs
