#pragma once
// Bounded trace-event ring with Chrome trace_event JSON export.  The DES
// kernel, des::Resource stations, and the cluster simulator emit spans
// into one of these (attached per simulation, single-threaded); the
// resulting JSON loads directly in Perfetto / chrome://tracing.
//
// Records are 48-byte PODs in a pre-sized ring (the "slab"): emitting a
// span is a couple of stores plus an index bump -- no allocation, no
// formatting -- and when the ring is full the *oldest* record is
// overwritten (dropped() counts), so a trace always holds the most
// recent window of a long simulation in bounded memory.  Formatting
// happens once, at export.
//
// Event vocabulary (Chrome trace_event "ph" phases):
//   'X' complete span   -- ts + dur on a track (tid); spans on one track
//                          must nest, which holds by construction for the
//                          per-server serve spans the Resource emits
//   'i' thread instant  -- a point event on a track
//   'b'/'e' async span  -- begin/end matched by (category, id); used for
//                          query lifecycles, which overlap freely
// Timestamps are simulation time; `ts_to_us` scales them to the
// microseconds Chrome expects (the cluster simulates in ms -> 1e3).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arch21::obs {

class TraceBuffer {
 public:
  static constexpr std::uint32_t kNoArg = 0xffffffffu;

  /// `capacity`: max retained records (oldest dropped beyond that);
  /// `ts_to_us`: multiplier from simulation time units to microseconds.
  explicit TraceBuffer(std::size_t capacity = std::size_t{1} << 16,
                       double ts_to_us = 1.0);

  /// Intern a string for use as an event or arg name.  Cold path -- call
  /// at setup, keep the returned id for the emitting hot path.
  std::uint32_t intern(std::string_view name);

  /// Label a track ("tid") in the exported trace, e.g. "leaf-7".
  void name_thread(std::uint32_t tid, std::string_view name);

  /// Complete span [ts, ts+dur) on track `tid`; optional numeric arg.
  void complete(std::uint32_t name, double ts, double dur, std::uint32_t tid,
                std::uint32_t arg_name = kNoArg, double arg = 0) {
    push(Rec{ts, dur, 0, name, tid, arg_name, arg, 'X'});
  }
  /// Thread-scoped instant on track `tid`.
  void instant(std::uint32_t name, double ts, std::uint32_t tid,
               std::uint32_t arg_name = kNoArg, double arg = 0) {
    push(Rec{ts, 0, 0, name, tid, arg_name, arg, 'i'});
  }
  /// Async span begin/end, matched by (category "async", id, name).
  void async_begin(std::uint32_t name, std::uint64_t id, double ts) {
    push(Rec{ts, 0, id, name, 0, kNoArg, 0, 'b'});
  }
  void async_end(std::uint32_t name, std::uint64_t id, double ts,
                 std::uint32_t arg_name = kNoArg, double arg = 0) {
    push(Rec{ts, 0, id, name, 0, arg_name, arg, 'e'});
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Forget all records (interned names and track labels are kept).
  void clear() noexcept {
    head_ = count_ = 0;
    dropped_ = 0;
  }

  /// Write the whole trace as Chrome trace_event JSON:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}  -- open in Perfetto.
  void write_chrome_json(std::ostream& os) const;
  std::string chrome_json() const;

 private:
  struct Rec {
    double ts;
    double dur;
    std::uint64_t id;
    std::uint32_t name;
    std::uint32_t tid;
    std::uint32_t arg_name;
    double arg;
    char ph;
  };

  void push(const Rec& r) {
    if (count_ < ring_.size()) {
      ring_[(head_ + count_) % ring_.size()] = r;
      ++count_;
    } else {
      ring_[head_] = r;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    }
  }

  std::vector<Rec> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
  double ts_to_us_;
  std::vector<std::string> names_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
};

}  // namespace arch21::obs
