#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace arch21::obs {

TraceBuffer::TraceBuffer(std::size_t capacity, double ts_to_us)
    : ts_to_us_(ts_to_us) {
  if (capacity == 0 || !(ts_to_us > 0)) {
    throw std::invalid_argument("TraceBuffer: bad capacity or time scale");
  }
  ring_.resize(capacity);
}

std::uint32_t TraceBuffer::intern(std::string_view name) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void TraceBuffer::name_thread(std::uint32_t tid, std::string_view name) {
  for (auto& [t, n] : thread_names_) {
    if (t == tid) {
      n = std::string(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::string(name));
}

namespace {

// Interned names are library-chosen identifiers, but escape defensively
// so arbitrary intern() input can never produce invalid JSON.
void escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void TraceBuffer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::string line;
  auto emit = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };
  line = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"arch21-sim\"}}";
  emit();
  for (const auto& [tid, name] : thread_names_) {
    line = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    line += std::to_string(tid);
    line += ",\"args\":{\"name\":\"";
    escape_into(line, name);
    line += "\"}}";
    emit();
  }
  char buf[64];
  for (std::size_t i = 0; i < count_; ++i) {
    const Rec& r = ring_[(head_ + i) % ring_.size()];
    line = "{\"name\":\"";
    escape_into(line, r.name < names_.size() ? names_[r.name] : "?");
    line += "\",\"cat\":\"";
    line += (r.ph == 'b' || r.ph == 'e') ? "async" : "sim";
    line += "\",\"ph\":\"";
    line += r.ph;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(r.tid);
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", r.ts * ts_to_us_);
    line += buf;
    switch (r.ph) {
      case 'X':
        std::snprintf(buf, sizeof buf, ",\"dur\":%.3f", r.dur * ts_to_us_);
        line += buf;
        break;
      case 'i':
        line += ",\"s\":\"t\"";
        break;
      case 'b':
      case 'e':
        std::snprintf(buf, sizeof buf, ",\"id\":\"0x%llx\"",
                      static_cast<unsigned long long>(r.id));
        line += buf;
        break;
      default:
        break;
    }
    if (r.arg_name != kNoArg && r.arg_name < names_.size()) {
      line += ",\"args\":{\"";
      escape_into(line, names_[r.arg_name]);
      std::snprintf(buf, sizeof buf, "\":%.6g}", r.arg);
      line += buf;
    }
    line += "}";
    emit();
  }
  os << "\n]}\n";
}

std::string TraceBuffer::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

}  // namespace arch21::obs
