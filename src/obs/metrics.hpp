#pragma once
// Cross-layer metrics registry: counters, gauges, and LogHistogram-backed
// timers that any layer (DES kernel, cluster simulator, thread pool,
// benches) can publish into and that core::report / the benches render
// next to their BENCH_*.json artifacts.
//
// Hot-path contract: recording is lock-free.  Every thread writes to its
// own *shard* (a flat array of cells indexed by MetricId); shards are
// created once per (thread, registry) under a mutex and cached in
// thread-local storage, after which add()/record()/gauge_max() touch only
// thread-private memory.  While the registry is disabled every recording
// call is a single relaxed load + branch, so instrumented code costs
// nothing measurable (E28), and -- because recording never draws RNG,
// never allocates on the sim path, and never feeds back into simulation
// state -- enabling metrics cannot perturb simulation results: the
// bit-identical-across-pool-sizes contract of DESIGN.md holds with
// metrics on or off (locked in by tests/test_resilience.cpp).
//
// Determinism of the metrics themselves: snapshot() lists metrics in
// registration order and folds shards in shard-creation order.  Integer
// counters and histogram bucket counts are exact sums, so they are
// reproducible wherever the underlying quantity is; timer double sums
// (mean()) can differ in final ulps across pool sizes because shard
// partitioning differs.  Quantiles depend only on bucket counts, so they
// are exact.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace arch21::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer };

/// A merged, point-in-time view of every registered metric.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind;
    std::uint64_t count = 0;  ///< counter value, or timer sample count
    double value = 0;         ///< gauge value (max across shards)
    LogHistogram hist;        ///< timers only
  };
  std::vector<Entry> entries;  ///< registration order

  /// Machine-readable dump: {"metrics":[{"name":...,"kind":...,...},...]}.
  /// Timers emit count/mean/p50/p99/max.
  std::string to_json() const;
};

/// Registry of named metrics with per-thread shards.  One process-wide
/// instance (global()) serves the instrumented layers; tests construct
/// their own.  All recording is a no-op until set_enabled(true).
class MetricsRegistry {
 public:
  using MetricId = std::uint32_t;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric.  Registering an existing name
  /// returns the existing id; re-registering under a different kind (or
  /// a timer under a different layout) throws std::invalid_argument.
  /// Registration is mutex-protected -- do it at setup, not per event.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId timer(std::string_view name, double lowest = 1e-9,
                 double highest = 1e6, std::size_t buckets_per_decade = 30);

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Counter += delta.  Disabled: one relaxed load + branch.
  void add(MetricId id, std::uint64_t delta = 1) {
    if (enabled()) add_slow(id, delta);
  }
  /// Gauge = max(gauge, v) -- high-water-mark semantics; shards merge by
  /// max, so the snapshot reports the process-wide high water.
  void gauge_max(MetricId id, double v) {
    if (enabled()) gauge_max_slow(id, v);
  }
  /// Timer sample (LogHistogram::add on this thread's shard).
  void record(MetricId id, double v) {
    if (enabled()) record_slow(id, v);
  }

  /// Merge every shard (shard-creation order) into one snapshot, listed
  /// in registration order.  Call only while no thread is recording
  /// concurrently (after ThreadPool::wait_idle() / parallel_reduce
  /// returns); shards are thread-private in between.
  MetricsSnapshot snapshot() const;

  /// Zero every shard's cells (same quiescence requirement as snapshot).
  void reset();

  std::size_t metric_count() const;

  /// The process-wide registry the instrumented layers publish into.
  static MetricsRegistry& global();

 private:
  // A MetricId packs (kind, per-kind slot), so the recording hot path
  // indexes straight into the shard's per-kind cell array -- no
  // descriptor lookup, no lock.
  static constexpr std::uint32_t kKindShift = 30;
  static constexpr std::uint32_t kSlotMask = (1u << kKindShift) - 1;
  static constexpr MetricId pack(MetricKind k, std::uint32_t slot) noexcept {
    return (static_cast<std::uint32_t>(k) << kKindShift) | slot;
  }
  static constexpr MetricKind kind_of(MetricId id) noexcept {
    return static_cast<MetricKind>(id >> kKindShift);
  }
  static constexpr std::uint32_t slot_of(MetricId id) noexcept {
    return id & kSlotMask;
  }

  struct Desc {
    std::string name;
    MetricKind kind;
    double lowest = 0, highest = 0;  // timer layout
    std::size_t bpd = 0;
    MetricId id = 0;
  };
  struct Shard;

  MetricId register_metric(std::string_view name, MetricKind kind,
                           double lowest, double highest, std::size_t bpd);
  Shard& local_shard();
  void add_slow(MetricId id, std::uint64_t delta);
  void gauge_max_slow(MetricId id, double v);
  void record_slow(MetricId id, double v);

  const std::uint64_t uid_;  ///< process-unique, for the TLS shard cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards descs_ and the shards_ list
  std::vector<Desc> descs_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< creation order
};

}  // namespace arch21::obs
