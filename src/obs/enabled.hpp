#pragma once
// Compile-time switch for the observability hooks (metrics + tracing)
// threaded through the DES kernel, the cluster simulator, and the thread
// pool.  Builds default to ON; configuring with -DARCH21_OBS=OFF defines
// ARCH21_OBS_ENABLED=0 and compiles every hook out entirely, restoring
// the exact pre-observability hot paths.  With hooks compiled in, the
// runtime cost while *disabled* is one pointer/flag test per site
// (verified within noise by bench_des_queue; see EXPERIMENTS.md E28).
//
// This header is safe to include from any layer: it defines only the
// macro, never types, so low-level headers (des/simulator.hpp) can gate
// their members without pulling in the obs library.

#ifndef ARCH21_OBS_ENABLED
#define ARCH21_OBS_ENABLED 1
#endif
