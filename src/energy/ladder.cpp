#include "energy/ladder.hpp"

#include "util/units.hpp"

namespace arch21::energy {

const std::array<LadderRung, 4>& ladder() {
  using namespace units;
  static const std::array<LadderRung, 4> rungs = {{
      {"sensor", giga, 10.0 * milli},
      {"portable", tera, 10.0},
      {"departmental", peta, 10.0 * kilo},
      {"datacenter", exa, 10.0 * mega},
  }};
  return rungs;
}

LadderAssessment assess(const LadderRung& rung, double achieved_ops_per_watt) {
  LadderAssessment a;
  a.rung = &rung;
  a.achieved_ops_per_watt = achieved_ops_per_watt;
  a.gap = achieved_ops_per_watt > 0
              ? rung.required_ops_per_watt() / achieved_ops_per_watt
              : 1e300;
  a.met = a.gap <= 1.0;
  return a;
}

}  // namespace arch21::energy
