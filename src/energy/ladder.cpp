#include "energy/ladder.hpp"

#include <cmath>

#include "util/units.hpp"

namespace arch21::energy {

const std::array<LadderRung, 4>& ladder() {
  using namespace units;
  static const std::array<LadderRung, 4> rungs = {{
      {"sensor", giga, 10.0 * milli},
      {"portable", tera, 10.0},
      {"departmental", peta, 10.0 * kilo},
      {"datacenter", exa, 10.0 * mega},
  }};
  return rungs;
}

LadderAssessment assess(const LadderRung& rung, double achieved_ops_per_watt) {
  LadderAssessment a;
  a.rung = &rung;
  a.achieved_ops_per_watt = achieved_ops_per_watt;
  // Non-positive or non-finite efficiency can never meet a rung: guard
  // the ratio so a negative or NaN `achieved` cannot produce a negative
  // (or NaN) gap that slips past the `gap <= 1` test as "met".
  if (std::isfinite(achieved_ops_per_watt) && achieved_ops_per_watt > 0) {
    a.gap = rung.required_ops_per_watt() / achieved_ops_per_watt;
    a.met = a.gap <= 1.0;
  } else {
    a.gap = 1e300;
    a.met = false;
  }
  return a;
}

}  // namespace arch21::energy
