#include "energy/catalogue.hpp"

#include "util/units.hpp"

namespace arch21::energy {

using units::from_pJ;

const char* to_string(Level level) {
  switch (level) {
    case Level::RegisterFile: return "regfile";
    case Level::L1: return "L1";
    case Level::L2: return "L2";
    case Level::LLC: return "LLC";
    case Level::Dram: return "DRAM";
  }
  return "?";
}

const char* to_string(Distance d) {
  switch (d) {
    case Distance::OnChip1mm: return "on-chip 1mm";
    case Distance::AcrossChip: return "across chip";
    case Distance::ToDram: return "to DRAM";
    case Distance::ToStackedDram: return "to 3D DRAM";
    case Distance::Board: return "board";
    case Distance::Rack: return "rack";
    case Distance::Datacenter: return "datacenter";
    case Distance::SensorRadio: return "sensor radio";
  }
  return "?";
}

Catalogue::Catalogue() {
  // 45 nm reference values (pJ per 64-bit item unless noted).
  node_name_ = "45nm";
  int_op_ = from_pJ(1.0);
  fp_fma_ = from_pJ(50.0);
  int8_mac_ = from_pJ(0.25);
  regfile_ = from_pJ(2.0);
  l1_ = from_pJ(25.0);       // 32 KiB SRAM read
  l2_ = from_pJ(100.0);      // 256 KiB SRAM read
  llc_ = from_pJ(500.0);     // multi-MiB shared cache read + interconnect
  dram_ = from_pJ(2000.0);   // activate+read+I/O for a 64-bit word
  wire_mm_bit_ = from_pJ(0.20);  // per bit per mm of global wire
  offchip_bit_ = from_pJ(5.0);
  tsv_bit_ = from_pJ(0.50);
  rack_bit_ = from_pJ(50.0);
  dc_bit_ = from_pJ(300.0);
  radio_bit_ = 50e-9;  // 50 nJ/bit, BLE-class including protocol overhead
}

Catalogue::Catalogue(const tech::TechNode& node) : Catalogue() {
  const auto ref = tech::find_node("45nm");
  const double logic_scale =
      node.switch_energy_rel() / ref->switch_energy_rel();
  // I/O-dominated paths (DRAM interface, SERDES, network) improve at
  // roughly half the logic rate: model as sqrt of the logic scale.
  const double io_scale =
      logic_scale < 1 ? std::sqrt(logic_scale)
                      : logic_scale;  // never cheaper than logic when scaling up
  scale_from_reference(logic_scale, io_scale);
  node_name_ = node.name;
}

void Catalogue::scale_from_reference(double logic_scale, double io_scale) {
  int_op_ *= logic_scale;
  fp_fma_ *= logic_scale;
  int8_mac_ *= logic_scale;
  regfile_ *= logic_scale;
  l1_ *= logic_scale;
  l2_ *= logic_scale;
  llc_ *= logic_scale;
  wire_mm_bit_ *= logic_scale;
  dram_ *= io_scale;
  offchip_bit_ *= io_scale;
  tsv_bit_ *= io_scale;
  rack_bit_ *= io_scale;
  dc_bit_ *= io_scale;
  // radio_bit_ intentionally unscaled: radio energy is set by physics of
  // the channel and the protocol, not by CMOS switching energy.
}

double Catalogue::access(Level level) const noexcept {
  switch (level) {
    case Level::RegisterFile: return regfile_;
    case Level::L1: return l1_;
    case Level::L2: return l2_;
    case Level::LLC: return llc_;
    case Level::Dram: return dram_;
  }
  return 0;
}

double Catalogue::move_per_bit(Distance d) const noexcept {
  switch (d) {
    case Distance::OnChip1mm: return wire_mm_bit_;
    case Distance::AcrossChip: return wire_mm_bit_ * 15.0;  // ~15 mm die
    case Distance::ToDram: return dram_ / 64.0;
    case Distance::ToStackedDram: return tsv_bit_ + dram_ / 64.0 * 0.4;
    case Distance::Board: return offchip_bit_;
    case Distance::Rack: return rack_bit_;
    case Distance::Datacenter: return dc_bit_;
    case Distance::SensorRadio: return radio_bit_;
  }
  return 0;
}

}  // namespace arch21::energy
