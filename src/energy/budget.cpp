#include "energy/budget.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arch21::energy {

PowerBudget::PowerBudget(std::string name, double cap_w)
    : name_(std::move(name)), cap_w_(cap_w) {
  if (!(cap_w > 0) || !std::isfinite(cap_w)) {
    throw std::invalid_argument("PowerBudget: cap must be finite and > 0");
  }
}

bool PowerBudget::add(std::string_view component, double watts) {
  // `watts < 0` alone would wave NaN through (every comparison with NaN
  // is false) and poison total_w_ forever; reject anything non-finite.
  if (!(watts >= 0) || !std::isfinite(watts)) {
    throw std::invalid_argument("PowerBudget: draw must be finite and >= 0");
  }
  parts_.push_back({std::string(component), watts});
  total_w_ += watts;
  return fits();
}

bool PowerBudget::remove(std::string_view component) {
  const auto it = std::find_if(parts_.begin(), parts_.end(),
                               [&](const Component& c) { return c.name == component; });
  if (it == parts_.end()) return false;
  parts_.erase(it);
  // Recompute instead of subtracting: repeated add/remove cycles would
  // otherwise accumulate floating-point drift in total_w_ until an empty
  // budget reports a nonzero total (and fits()/headroom() lie).
  total_w_ = 0;
  for (const Component& c : parts_) total_w_ += c.watts;
  return true;
}

const PowerBudget::Component* PowerBudget::dominant() const noexcept {
  if (parts_.empty()) return nullptr;
  const auto it = std::max_element(parts_.begin(), parts_.end(),
                                   [](const Component& a, const Component& b) {
                                     return a.watts < b.watts;
                                   });
  return &*it;
}

}  // namespace arch21::energy
