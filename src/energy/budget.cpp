#include "energy/budget.hpp"

#include <algorithm>
#include <stdexcept>

namespace arch21::energy {

PowerBudget::PowerBudget(std::string name, double cap_w)
    : name_(std::move(name)), cap_w_(cap_w) {
  if (cap_w <= 0) throw std::invalid_argument("PowerBudget: cap must be > 0");
}

bool PowerBudget::add(std::string_view component, double watts) {
  if (watts < 0) throw std::invalid_argument("PowerBudget: negative draw");
  parts_.push_back({std::string(component), watts});
  total_w_ += watts;
  return fits();
}

bool PowerBudget::remove(std::string_view component) {
  const auto it = std::find_if(parts_.begin(), parts_.end(),
                               [&](const Component& c) { return c.name == component; });
  if (it == parts_.end()) return false;
  total_w_ -= it->watts;
  parts_.erase(it);
  return true;
}

const PowerBudget::Component* PowerBudget::dominant() const noexcept {
  if (parts_.empty()) return nullptr;
  const auto it = std::max_element(parts_.begin(), parts_.end(),
                                   [](const Component& a, const Component& b) {
                                     return a.watts < b.watts;
                                   });
  return &*it;
}

}  // namespace arch21::energy
