#pragma once
// Hierarchical power budgeting.  "Energy first" design treats the power
// cap as the primary constraint; this class tracks named components
// against a cap and supports nested budgets (a datacenter budget contains
// rack budgets contain server budgets), mirroring how the paper frames
// power as the cross-scale constraint from sensors to warehouses.

#include <string>
#include <string_view>
#include <vector>

namespace arch21::energy {

/// A named power budget with named component draws.
class PowerBudget {
 public:
  PowerBudget(std::string name, double cap_w);

  const std::string& name() const noexcept { return name_; }
  double cap() const noexcept { return cap_w_; }

  /// Register a component draw.  Returns false (and records it anyway) if
  /// this pushes the total over the cap; callers decide how to react.
  /// Throws std::invalid_argument on a negative or non-finite draw (NaN
  /// included -- a NaN draw would silently poison the running total).
  bool add(std::string_view component, double watts);

  /// Remove a component by name; returns true if found.  The total is
  /// recomputed from the remaining components, not decremented, so
  /// add/remove churn never accumulates floating-point drift.
  bool remove(std::string_view component);

  double total() const noexcept { return total_w_; }
  double headroom() const noexcept { return cap_w_ - total_w_; }
  bool fits() const noexcept { return total_w_ <= cap_w_; }
  /// total / cap.
  double utilization() const noexcept { return cap_w_ > 0 ? total_w_ / cap_w_ : 0; }

  struct Component {
    std::string name;
    double watts;
  };
  const std::vector<Component>& components() const noexcept { return parts_; }

  /// Largest single draw (nullptr if empty).
  const Component* dominant() const noexcept;

 private:
  std::string name_;
  double cap_w_;
  double total_w_ = 0;
  std::vector<Component> parts_;
};

}  // namespace arch21::energy
