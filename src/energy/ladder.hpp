#pragma once
// The white paper's efficiency ladder (section 2.2, "Energy Across the
// Layers"): by decade's end,
//     exa-op  datacenter  <= 10 MW
//     peta-op dept server <= 10 kW
//     tera-op portable    <= 10 W
//     giga-op sensor      <= 10 mW
// All four rungs demand the same energy efficiency: 1e11 ops/s/W =
// 100 Gops/W = 10 pJ/op.  This header makes the ladder an executable
// target: platforms report achieved ops/W, and the gap to the rung is the
// "two-to-three orders of magnitude" the paper calls for.

#include <array>
#include <string>

namespace arch21::energy {

/// One rung of the ladder.
struct LadderRung {
  const char* platform;   ///< "sensor", "portable", "departmental", "datacenter"
  double target_ops;      ///< required throughput, ops/s
  double power_cap_w;     ///< power ceiling, W

  /// Required efficiency, ops/s per watt (identical for all rungs: 1e11).
  double required_ops_per_watt() const noexcept {
    return target_ops / power_cap_w;
  }
};

/// The four rungs, smallest platform first.
const std::array<LadderRung, 4>& ladder();

/// Assessment of a concrete platform against a rung.
struct LadderAssessment {
  const LadderRung* rung;
  double achieved_ops_per_watt;
  /// required / achieved: > 1 means short of the target by that factor.
  /// Non-positive or non-finite achieved efficiency reports gap = 1e300
  /// and met = false (a platform with no positive ops/W never "meets" a
  /// rung, whatever the sign arithmetic would say).
  double gap;
  bool met;
};

LadderAssessment assess(const LadderRung& rung, double achieved_ops_per_watt);

/// Baseline ~2012 general-purpose efficiency the paper quotes for mobile:
/// "orders of magnitude improvement in operations/watt (from today's
/// ~10 giga-operations/watt)".
inline constexpr double kBaselineOpsPerWatt2012 = 1e10;

}  // namespace arch21::energy
