#pragma once
// Per-operation energy catalogue.  Reference values are 45 nm-era numbers
// from the public literature (Keckler's "Life after Dennard" keynote --
// cited by the white paper -- and Horowitz's ISSCC energy tables), and
// scale to other nodes with the switched-energy factor C*V^2 from the
// node table.  Every other module prices its work through this catalogue
// so that cross-layer comparisons (compute vs fetch vs communicate) are
// made in one consistent currency: joules.
//
// Paper hooks: "fetching the operands for a floating-point multiply-add
// can consume one to two orders of magnitude more energy than performing
// the operation"; "energy is largely spent moving data".

#include <string>

#include "tech/node.hpp"

namespace arch21::energy {

/// Levels of the operand-supply hierarchy (see MemoryEnergy below).
enum class Level {
  RegisterFile,
  L1,
  L2,
  LLC,
  Dram,
};

/// Communication distance classes for the data-movement ladder.
enum class Distance {
  OnChip1mm,     ///< short wire between adjacent units
  AcrossChip,    ///< corner-to-corner global wire (~10-20 mm)
  ToDram,        ///< off-package to commodity DRAM
  ToStackedDram, ///< 3D/TSV-stacked DRAM (see noc/stacking)
  Board,         ///< chip-to-chip over PCB SERDES
  Rack,          ///< across a rack (cable + switch)
  Datacenter,    ///< across the facility network
  SensorRadio,   ///< low-power wireless uplink (BLE-class)
};

const char* to_string(Level level);
const char* to_string(Distance d);

/// Energy catalogue for one technology node.
///
/// All accessors return joules for a 64-bit quantity unless stated
/// otherwise.  The catalogue is immutable after construction.
class Catalogue {
 public:
  /// Catalogue at the 45 nm reference node.
  Catalogue();

  /// Catalogue scaled to the given node.  Logic and SRAM energies scale
  /// with the node's switched-energy factor; DRAM and link energies scale
  /// more slowly (half the logic rate, reflecting I/O-dominated costs);
  /// radio energy does not scale with CMOS at all.
  explicit Catalogue(const tech::TechNode& node);

  const std::string& node_name() const noexcept { return node_name_; }

  // --- computation ---
  /// 64-bit integer ALU operation.
  double int_op() const noexcept { return int_op_; }
  /// 64-bit floating-point fused multiply-add.
  double fp_fma() const noexcept { return fp_fma_; }
  /// 8-bit integer multiply-accumulate (approximate/quantized compute).
  double int8_mac() const noexcept { return int8_mac_; }

  // --- operand supply (64-bit read) ---
  double access(Level level) const noexcept;

  // --- data movement (per bit) ---
  double move_per_bit(Distance d) const noexcept;
  /// Energy to move `bits` over distance class `d`.
  double move(Distance d, double bits) const noexcept {
    return move_per_bit(d) * bits;
  }

  /// Ratio of operand-fetch energy (two operands from `level`) to the FMA
  /// compute energy -- the paper's 10-100x claim evaluated directly.
  double fetch_to_compute_ratio(Level level) const noexcept {
    return 2.0 * access(level) / fp_fma();
  }

 private:
  void scale_from_reference(double logic_scale, double io_scale);

  std::string node_name_;
  double int_op_;
  double fp_fma_;
  double int8_mac_;
  double regfile_;
  double l1_;
  double l2_;
  double llc_;
  double dram_;
  double wire_mm_bit_;     ///< on-chip wire, J/bit/mm
  double offchip_bit_;     ///< PCB SERDES, J/bit
  double tsv_bit_;         ///< 3D TSV, J/bit
  double rack_bit_;        ///< intra-rack network, J/bit
  double dc_bit_;          ///< datacenter network, J/bit
  double radio_bit_;       ///< sensor-class radio, J/bit
};

}  // namespace arch21::energy
