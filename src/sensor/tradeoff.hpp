#pragma once
// The compute-vs-communicate tradeoff at the sensor edge.  "Providing
// sufficient on-sensor capability to filter and process data where it is
// generated/collected can be most energy-efficient, because the energy
// required for communication can dominate that for computation."
// (Table A.2, Big Data.)  This module prices three strategies for a
// sampled data stream:
//   transmit-raw       -- radio every sample to the gateway
//   filter-on-sensor   -- spend ops/sample locally, transmit the reduced
//                         stream (events only)
//   batch-compress     -- accumulate, compress (ratio), transmit batches
// and finds where each wins as the data-reduction factor varies.

#include <string>
#include <vector>

#include "energy/catalogue.hpp"

namespace arch21::sensor {

/// The sensed stream.
struct StreamProfile {
  double sample_hz = 250;        ///< e.g., single-lead ECG
  double bytes_per_sample = 2;
  double ops_per_sample_filter = 400;  ///< on-sensor DSP cost
  double reduction_factor = 100;  ///< raw bytes / transmitted bytes after filtering
  double compress_ratio = 4;      ///< batching+compression ratio
  double ops_per_byte_compress = 8;
};

/// Energy per second (i.e., average power in watts) of one strategy.
struct StrategyPower {
  std::string name;
  double compute_w = 0;
  double radio_w = 0;
  double total_w = 0;
};

/// Evaluate all three strategies for a stream on a node whose energies
/// come from `cat` (radio energy is the catalogue's SensorRadio distance).
std::vector<StrategyPower> strategy_powers(const StreamProfile& s,
                                           const energy::Catalogue& cat);

/// The reduction factor at which on-sensor filtering starts beating
/// transmit-raw (closed form: compute cost vs saved radio bytes).
double filter_breakeven_reduction(const StreamProfile& s,
                                  const energy::Catalogue& cat);

}  // namespace arch21::sensor
