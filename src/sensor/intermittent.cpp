#include "sensor/intermittent.hpp"

#include <vector>

namespace arch21::sensor {

IntermittentResult run_intermittent(const IntermittentConfig& cfg) {
  Harvester h(cfg.harvester, cfg.seed);
  IntermittentResult res;

  std::uint64_t committed = 0;      // checkpointed progress
  std::uint64_t since_commit = 0;   // volatile progress since checkpoint
  bool powered = false;
  double t = 0;

  while (committed < cfg.work_units && t < cfg.max_sim_s) {
    h.step(cfg.step_s);
    t += cfg.step_s;

    if (!powered) {
      if (h.stored_j() >= cfg.on_threshold_j) {
        powered = true;
        // Restore: volatile progress was lost at the previous failure.
        since_commit = 0;
      } else {
        continue;
      }
    }

    // Execute as many work units as this step's energy allows.
    while (powered && committed + since_commit < cfg.work_units) {
      const bool checkpoint_due =
          since_commit >= cfg.checkpoint_every;
      const double need = checkpoint_due ? cfg.e_checkpoint_j : cfg.e_unit_j;
      if (h.stored_j() < need) {
        // Brown-out: volatile progress is lost.
        powered = false;
        ++res.power_failures;
        res.wasted_energy_j +=
            static_cast<double>(since_commit) * cfg.e_unit_j;
        since_commit = 0;
        break;
      }
      h.draw(need);
      if (checkpoint_due) {
        ++res.checkpoints;
        res.checkpoint_energy_j += cfg.e_checkpoint_j;
        committed += since_commit;
        since_commit = 0;
      } else {
        ++since_commit;
        ++res.units_executed;
      }
      // One unit (or checkpoint) per inner iteration; stop the inner loop
      // when the step's worth of harvest is spent.  We approximate by
      // allowing the capacitor itself to meter execution.
    }
    if (committed + since_commit >= cfg.work_units && powered) {
      // Final (implicit) checkpoint commits the tail.
      if (h.stored_j() >= cfg.e_checkpoint_j) {
        h.draw(cfg.e_checkpoint_j);
        ++res.checkpoints;
        res.checkpoint_energy_j += cfg.e_checkpoint_j;
        committed += since_commit;
        since_commit = 0;
      } else {
        powered = false;
        ++res.power_failures;
        res.wasted_energy_j +=
            static_cast<double>(since_commit) * cfg.e_unit_j;
        since_commit = 0;
      }
    }
  }

  res.completed = committed >= cfg.work_units;
  res.elapsed_s = t;
  res.units_committed = committed;
  return res;
}

IntervalChoice best_checkpoint_interval(
    IntermittentConfig cfg, const std::vector<std::uint64_t>& candidates,
    ThreadPool* pool) {
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  // Each candidate's trial is an independent deterministic simulation;
  // run them on the pool, then pick the winner serially in candidate
  // order (preserving the historical tie-break toward earlier entries).
  std::vector<IntermittentResult> trials(candidates.size());
  tp.parallel_for(candidates.size(),
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t i = begin; i < end; ++i) {
                      IntermittentConfig local = cfg;
                      local.checkpoint_every = candidates[i];
                      trials[i] = run_intermittent(local);
                    }
                  });
  IntervalChoice best;
  bool first = true;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& r = trials[i];
    if (!r.completed) continue;
    if (first || r.elapsed_s < best.elapsed_s) {
      best.interval = candidates[i];
      best.elapsed_s = r.elapsed_s;
      first = false;
    }
  }
  return best;
}

}  // namespace arch21::sensor
