#include "sensor/tradeoff.hpp"

#include <limits>

namespace arch21::sensor {

std::vector<StrategyPower> strategy_powers(const StreamProfile& s,
                                           const energy::Catalogue& cat) {
  const double raw_bits_per_s = s.sample_hz * s.bytes_per_sample * 8.0;
  const double e_radio_bit =
      cat.move_per_bit(energy::Distance::SensorRadio);
  const double e_op = cat.int_op();

  std::vector<StrategyPower> out;

  {
    StrategyPower p;
    p.name = "transmit-raw";
    p.radio_w = raw_bits_per_s * e_radio_bit;
    p.total_w = p.radio_w;
    out.push_back(p);
  }
  {
    StrategyPower p;
    p.name = "filter-on-sensor";
    p.compute_w = s.sample_hz * s.ops_per_sample_filter * e_op;
    p.radio_w = (raw_bits_per_s / s.reduction_factor) * e_radio_bit;
    p.total_w = p.compute_w + p.radio_w;
    out.push_back(p);
  }
  {
    StrategyPower p;
    p.name = "batch-compress";
    const double bytes_per_s = s.sample_hz * s.bytes_per_sample;
    p.compute_w = bytes_per_s * s.ops_per_byte_compress * e_op;
    p.radio_w = (raw_bits_per_s / s.compress_ratio) * e_radio_bit;
    p.total_w = p.compute_w + p.radio_w;
    out.push_back(p);
  }
  return out;
}

double filter_breakeven_reduction(const StreamProfile& s,
                                  const energy::Catalogue& cat) {
  const double raw_bits_per_s = s.sample_hz * s.bytes_per_sample * 8.0;
  const double e_radio_bit = cat.move_per_bit(energy::Distance::SensorRadio);
  const double compute_w = s.sample_hz * s.ops_per_sample_filter * cat.int_op();
  const double raw_radio_w = raw_bits_per_s * e_radio_bit;
  // filter wins when compute + raw_radio / R < raw_radio
  //   <=> R > raw_radio / (raw_radio - compute)
  if (compute_w >= raw_radio_w) {
    return std::numeric_limits<double>::infinity();  // filtering never wins
  }
  return raw_radio_w / (raw_radio_w - compute_w);
}

}  // namespace arch21::sensor
