#pragma once
// Approximate computing on sensor signals.  "Given that sensor data is
// inherently approximate, it opens the potential to effectively apply
// approximate computing techniques, which can lead to significant energy
// savings."  Two techniques are implemented *for real* on a synthetic
// ECG-like signal and an FIR low-pass filter:
//   * precision scaling -- run the filter in Q-format fixed point with a
//     reduced number of fractional bits; multiplier energy scales ~
//     quadratically with operand width;
//   * loop perforation -- process only 1/k of the samples and
//     hold the last output between them.
// Quality is measured as signal-to-noise ratio against the full-precision
// result, so the energy/quality Pareto is measured, not assumed.

#include <cstdint>
#include <string>
#include <vector>

namespace arch21::sensor {

/// Generate `n` samples of a synthetic ECG-like waveform (periodic QRS
/// spikes over a baseline wander) with additive noise.
std::vector<double> synthetic_ecg(std::size_t n, double sample_hz = 250,
                                  double heart_hz = 1.2, double noise = 0.05,
                                  std::uint64_t seed = 3);

/// Symmetric low-pass FIR coefficients (windowed sinc), length `taps`.
std::vector<double> lowpass_fir(std::size_t taps, double cutoff_norm);

/// Reference double-precision FIR.
std::vector<double> fir_apply(const std::vector<double>& x,
                              const std::vector<double>& h);

/// FIR in fixed point with `frac_bits` fractional bits.
std::vector<double> fir_apply_fixed(const std::vector<double>& x,
                                    const std::vector<double>& h,
                                    int frac_bits);

/// FIR with loop perforation: compute every k-th output, hold in between.
std::vector<double> fir_apply_perforated(const std::vector<double>& x,
                                         const std::vector<double>& h,
                                         unsigned k);

/// SNR (dB) of `approx` against `ref`.
double snr_db(const std::vector<double>& ref, const std::vector<double>& approx);

/// Relative multiplier energy of a b-bit multiply vs 32-bit (~ (b/32)^2).
double mult_energy_rel(int bits);

/// One row of the quality/energy sweep.
struct ApproxRow {
  std::string technique;
  double parameter;   ///< frac bits or perforation k
  double snr_db;
  double energy_rel;  ///< energy relative to exact
};

/// Sweep precision (4..24 frac bits) and perforation (k = 1..8) on the
/// built-in ECG workload.
std::vector<ApproxRow> approx_sweep(std::size_t n = 4096,
                                    std::uint64_t seed = 3);

}  // namespace arch21::sensor
