#include "sensor/battery.hpp"

#include <algorithm>

namespace arch21::sensor {

double Battery::draw(double joules) {
  const double supplied = std::min(joules, std::max(level_j_, 0.0));
  level_j_ -= supplied;
  return supplied;
}

Harvester::Harvester(HarvesterConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

double Harvester::step(double dt) {
  double income = 0;
  if (rng_.chance(cfg_.p_active)) {
    income = cfg_.power_w * dt;
  }
  const double leak = cfg_.leak_w * dt;
  stored_j_ = std::clamp(stored_j_ + income - leak, 0.0, cfg_.cap_j);
  return income;
}

double Harvester::draw(double joules) {
  const double supplied = std::min(joules, stored_j_);
  stored_j_ -= supplied;
  return supplied;
}

}  // namespace arch21::sensor
