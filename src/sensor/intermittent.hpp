#pragma once
// Intermittent computing: executing a program on harvested energy that
// dies and restarts whenever the capacitor drains.  Progress must be
// checkpointed to non-volatile memory or it is lost at each power
// failure.  The simulator measures forward progress, checkpoint overhead,
// and wasted (re-executed) work as a function of the checkpoint interval
// -- the sensor-scale analogue of Daly's problem, with energy instead of
// time as the failing resource.

#include <cstdint>
#include <vector>

#include "sensor/battery.hpp"
#include "util/thread_pool.hpp"

namespace arch21::sensor {

/// Workload and platform parameters.
struct IntermittentConfig {
  std::uint64_t work_units = 10'000;  ///< total units to complete
  double e_unit_j = 2e-7;             ///< energy per work unit
  double e_checkpoint_j = 1e-6;       ///< energy to checkpoint to NVM
  std::uint64_t checkpoint_every = 50;///< units between checkpoints
  double on_threshold_j = 20e-6;      ///< wake when capacitor reaches this
  double step_s = 1e-3;               ///< harvest timestep
  HarvesterConfig harvester;
  std::uint64_t seed = 11;
  double max_sim_s = 36000;           ///< give-up horizon
};

/// Simulation outcome.
struct IntermittentResult {
  bool completed = false;
  double elapsed_s = 0;
  std::uint64_t power_failures = 0;
  std::uint64_t units_executed = 0;   ///< includes re-executed work
  std::uint64_t units_committed = 0;  ///< forward progress
  std::uint64_t checkpoints = 0;
  double checkpoint_energy_j = 0;
  double wasted_energy_j = 0;         ///< energy spent on lost work

  /// Fraction of executed work that was re-execution.
  double waste_fraction() const noexcept {
    return units_executed
               ? 1.0 - static_cast<double>(units_committed) /
                           static_cast<double>(units_executed)
               : 0;
  }
};

/// Run the intermittent-execution simulation.
IntermittentResult run_intermittent(const IntermittentConfig& cfg);

/// Scan checkpoint intervals and return the one minimizing completion
/// time (ties broken toward fewer checkpoints).  Candidate trials run on
/// `pool` (ThreadPool::global() when null); each trial is a deterministic
/// simulation and the winner is selected serially in candidate order, so
/// the choice is identical at any pool size.
struct IntervalChoice {
  std::uint64_t interval = 1;
  double elapsed_s = 0;
};
IntervalChoice best_checkpoint_interval(
    IntermittentConfig cfg, const std::vector<std::uint64_t>& candidates,
    ThreadPool* pool = nullptr);

}  // namespace arch21::sensor
