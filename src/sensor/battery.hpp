#pragma once
// Energy stores for the sensor platform: batteries (fixed reservoir) and
// harvesting supplies (stochastic income into a small capacitor).  The
// paper's smart-sensing section calls out "systems that can leverage
// intermittent power (e.g., from harvested energy)" -- the harvester
// model below feeds the intermittent-computing simulator.

#include <cstdint>

#include "util/rng.hpp"

namespace arch21::sensor {

/// A battery: finite energy, simple linear discharge.
class Battery {
 public:
  explicit Battery(double capacity_j) : capacity_j_(capacity_j), level_j_(capacity_j) {}

  double capacity_j() const noexcept { return capacity_j_; }
  double level_j() const noexcept { return level_j_; }
  bool empty() const noexcept { return level_j_ <= 0; }

  /// Draw energy; returns the amount actually supplied.
  double draw(double joules);

  /// Lifetime in seconds at a constant power draw.
  double lifetime_s(double watts) const {
    return watts > 0 ? level_j_ / watts : 1e300;
  }

 private:
  double capacity_j_;
  double level_j_;
};

/// A stochastic energy harvester charging a capacitor.
/// Income arrives in bursts (e.g., light/vibration): per time step, with
/// probability `p_active` the harvester delivers `power_w` for the step.
struct HarvesterConfig {
  double power_w = 5e-3;     ///< instantaneous harvest power when active
  double p_active = 0.5;     ///< fraction of time energy is available
  double cap_j = 100e-6;     ///< capacitor size (e.g., 100 uJ)
  double leak_w = 1e-6;      ///< storage leakage
};

class Harvester {
 public:
  Harvester(HarvesterConfig cfg, std::uint64_t seed);

  /// Advance `dt` seconds; returns energy added to the capacitor.
  double step(double dt);

  /// Draw from the capacitor; returns amount supplied.
  double draw(double joules);

  double stored_j() const noexcept { return stored_j_; }
  const HarvesterConfig& config() const noexcept { return cfg_; }

 private:
  HarvesterConfig cfg_;
  Rng rng_;
  double stored_j_ = 0;
};

}  // namespace arch21::sensor
