#include "sensor/approx.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace arch21::sensor {

std::vector<double> synthetic_ecg(std::size_t n, double sample_hz,
                                  double heart_hz, double noise,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  const double beat_period = sample_hz / heart_hz;  // samples per beat
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double phase = std::fmod(t, beat_period) / beat_period;
    // Narrow Gaussian bump for the QRS complex, small P/T waves, baseline
    // wander, and measurement noise.
    const double qrs = 1.2 * std::exp(-std::pow((phase - 0.3) / 0.02, 2));
    const double pw = 0.15 * std::exp(-std::pow((phase - 0.18) / 0.05, 2));
    const double tw = 0.3 * std::exp(-std::pow((phase - 0.55) / 0.08, 2));
    const double wander =
        0.1 * std::sin(2 * std::numbers::pi * t / (sample_hz * 3.0));
    out[i] = qrs + pw + tw + wander + rng.normal(0, noise);
  }
  return out;
}

std::vector<double> lowpass_fir(std::size_t taps, double cutoff_norm) {
  if (taps == 0 || cutoff_norm <= 0 || cutoff_norm >= 0.5) {
    throw std::invalid_argument("lowpass_fir: bad parameters");
  }
  std::vector<double> h(taps);
  const double M = static_cast<double>(taps - 1);
  double sum = 0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double m = static_cast<double>(i) - M / 2.0;
    const double x = 2.0 * cutoff_norm * m;
    const double sinc =
        m == 0 ? 2.0 * cutoff_norm
               : std::sin(std::numbers::pi * x) / (std::numbers::pi * m);
    // Hamming window.
    const double w =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / M);
    h[i] = sinc * w;
    sum += h[i];
  }
  for (auto& v : h) v /= sum;  // unity DC gain
  return h;
}

std::vector<double> fir_apply(const std::vector<double>& x,
                              const std::vector<double>& h) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double acc = 0;
    for (std::size_t k = 0; k < h.size() && k <= i; ++k) {
      acc += h[k] * x[i - k];
    }
    y[i] = acc;
  }
  return y;
}

std::vector<double> fir_apply_fixed(const std::vector<double>& x,
                                    const std::vector<double>& h,
                                    int frac_bits) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double acc = 0;
    for (std::size_t k = 0; k < h.size() && k <= i; ++k) {
      // Quantize operands and the product to the reduced precision --
      // what a narrow fixed-point datapath computes.
      const double hq = quantize(h[k], frac_bits);
      const double xq = quantize(x[i - k], frac_bits);
      acc += quantize(hq * xq, frac_bits);
    }
    y[i] = acc;
  }
  return y;
}

std::vector<double> fir_apply_perforated(const std::vector<double>& x,
                                         const std::vector<double>& h,
                                         unsigned k) {
  if (k == 0) throw std::invalid_argument("fir_apply_perforated: k == 0");
  std::vector<double> y(x.size(), 0.0);
  double held = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i % k == 0) {
      double acc = 0;
      for (std::size_t t = 0; t < h.size() && t <= i; ++t) {
        acc += h[t] * x[i - t];
      }
      held = acc;
    }
    y[i] = held;
  }
  return y;
}

double snr_db(const std::vector<double>& ref,
              const std::vector<double>& approx) {
  if (ref.size() != approx.size() || ref.empty()) {
    throw std::invalid_argument("snr_db: size mismatch");
  }
  double sig = 0;
  double err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    sig += ref[i] * ref[i];
    const double e = ref[i] - approx[i];
    err += e * e;
  }
  if (err == 0) return 200.0;  // effectively exact
  return 10.0 * std::log10(sig / err);
}

double mult_energy_rel(int bits) {
  const double b = static_cast<double>(bits);
  return (b / 32.0) * (b / 32.0);
}

std::vector<ApproxRow> approx_sweep(std::size_t n, std::uint64_t seed) {
  const auto x = synthetic_ecg(n, 250, 1.2, 0.05, seed);
  const auto h = lowpass_fir(31, 0.12);
  const auto ref = fir_apply(x, h);

  std::vector<ApproxRow> rows;
  for (int bits : {4, 6, 8, 10, 12, 16, 20, 24}) {
    const auto y = fir_apply_fixed(x, h, bits);
    // Datapath width ~ frac bits + 8 integer bits.
    rows.push_back({"precision", static_cast<double>(bits), snr_db(ref, y),
                    mult_energy_rel(bits + 8)});
  }
  for (unsigned k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto y = fir_apply_perforated(x, h, k);
    rows.push_back({"perforation", static_cast<double>(k), snr_db(ref, y),
                    1.0 / static_cast<double>(k)});
  }
  return rows;
}

}  // namespace arch21::sensor
