#include "des/lp.hpp"

#include <algorithm>
#include <stdexcept>

#include "des/pdes.hpp"

namespace arch21::des {

void Lp::send(std::uint32_t dst, Time delay, const Payload& p) {
  if (dst >= out_.size()) {
    throw std::invalid_argument("Lp::send: destination LP out of range");
  }
  if (dst == id_) {
    // Local delivery: no conservative constraint applies inside one LP,
    // and bypassing the mailbox keeps single-LP partitions exactly as
    // fast (and exactly as ordered) as the serial loopback engine.
    sim_.schedule(delay, [this, p] { handler_(*this, p); });
    return;
  }
  if (!(delay >= engine_->lookahead())) {
    throw std::invalid_argument(
        "Lp::send: cross-LP delay below the engine lookahead");
  }
  ++sent_;
  out_[dst].push_back(
      Message{sim_.now() + delay, sim_.now(), id_, send_seq_++, p});
}

void Lp::commit_and_run(Time end) {
  // Extract this window's arrivals.  The commit set {m : m.t <= end} and
  // the canonical sort below are pure functions of the barrier state, so
  // the batch -- and therefore the (t, seq) execution order inside this
  // LP's kernel -- is identical for any worker count.
  batch_.clear();
  std::size_t keep = 0;
  for (Message& m : pending_) {
    if (m.t <= end) {
      batch_.push_back(m);
    } else {
      pending_[keep++] = m;
    }
  }
  pending_.resize(keep);
  if (!batch_.empty()) {
    std::sort(batch_.begin(), batch_.end(), MessageEarlier{});
    span_.clear();
    for (const Message& m : batch_) {
      // Delivery closure: destination-LP pointer plus one Payload by
      // value -- guaranteed to fit the Action's inline buffer, so the
      // commit path never heap-allocates per message.
      static_assert(sizeof(Lp*) + sizeof(Payload) <=
                    Simulator::Action::capacity());
      span_.push_back(Simulator::TimedAction{
          m.t, [this, p = m.payload] { handler_(*this, p); }});
    }
    sim_.schedule_n(span_.data(), span_.size());
    delivered_ += batch_.size();
  }
  sim_.run(end);
}

}  // namespace arch21::des
