#pragma once
// Cross-LP message plumbing for the conservative PDES engine
// (des/pdes.hpp).  A mailbox is a plain vector: single-producer (the
// source LP, during the parallel window phase) / single-consumer (the
// engine's serial drain at the window barrier), with the phases strictly
// separated by ThreadPool::parallel_run's completion barrier.  That
// barrier is the happens-before edge, so the mailboxes need no atomics
// and run TSan-clean -- "SPSC by phase discipline", not by lock-free
// machinery.

#include <cstdint>
#include <vector>

namespace arch21::des {

/// Simulation time, re-declared here to keep this header free of the
/// simulator (it matches des::Time).
using MailboxTime = double;

/// Scenario-defined message body.  A fixed POD instead of a template so
/// the engine compiles once into arch21_des (and so a delivery closure
/// -- destination-LP pointer + one Payload -- fits the Simulator Action's
/// inline buffer; locked in by a static_assert in lp.cpp).  Scenarios
/// assign their own meaning to the operand fields; the engine never reads
/// them.
struct Payload {
  std::uint32_t kind = 0;  ///< scenario-defined message tag
  std::uint32_t u32 = 0;   ///< small index operand (e.g. leaf id)
  std::uint64_t a = 0;     ///< wide operand (e.g. call serial)
  std::uint64_t b = 0;     ///< second wide operand
  double x = 0;            ///< real-valued operand (e.g. service ms)
};

/// One cross-LP message: deliver `payload` to the destination LP's
/// handler at absolute simulation time `t`.
struct Message {
  MailboxTime t = 0;        ///< delivery time at the destination
  MailboxTime sent_at = 0;  ///< sender's clock at send()
  std::uint32_t src = 0;    ///< source LP id
  std::uint64_t seq = 0;    ///< per-source monotone send sequence
  Payload payload;
};

/// Canonical cross-LP delivery order: (t, sent_at, src, seq).  Every
/// window's commit batch is sorted by this before scheduling, so the
/// delivery order of simultaneous arrivals is a pure function of the
/// messages themselves -- never of worker count, thread timing, or
/// drain/append order.  The key mirrors the serial loopback engine's
/// global scheduling order wherever timestamps are distinct: earlier
/// arrival first, then earlier send (the earlier send got the smaller
/// global seq), then a fixed (src, seq) tie-break for the measure-zero
/// case of two sources sending at the bit-identical instant.
struct MessageEarlier {
  bool operator()(const Message& a, const Message& b) const noexcept {
    if (a.t != b.t) return a.t < b.t;
    if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

/// Per-(src, dst) pair mailbox -- see the file comment for the phase
/// discipline that makes a bare vector safe.
using Mailbox = std::vector<Message>;

}  // namespace arch21::des
