#pragma once
// Partitioning a scenario into logical processes (LPs) for the
// conservative PDES engine, plus the balanced contiguous-group helpers
// the cluster simulator uses to map leaves onto LPs.
//
// The partition must be a pure function of the scenario *configuration*
// -- never of the worker count -- because the determinism contract is
// "bit-identical results at any worker count for a fixed partition".
// Changing the partition (e.g. ClusterConfig::leaf_groups) is a model
// change and may legitimately change results at FP-tie granularity;
// changing workers never does.

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace arch21::des {

/// How to shard one scenario across LPs.
struct PartitionSpec {
  /// Number of logical processes (>= 1).  Each owns a private ladder
  /// queue, action slab, and RNG streams.
  std::uint32_t lps = 1;

  /// Conservative lookahead, in simulation time: a positive lower bound
  /// on the delivery delay of every cross-LP send (derived from the
  /// minimum network/service latency between LPs).  The engine runs each
  /// window to `tmin + lookahead`, so lookahead == 0 would degenerate to
  /// one event per barrier at best and is rejected outright -- a
  /// conservative engine fundamentally needs latency to hide behind (the
  /// null-message insight of Chandy-Misra-Bryant).
  double lookahead = 0;

  /// Expected simultaneously outstanding events *per LP* (0 = no
  /// pre-sizing).  The engines pass this to each LP's
  /// Simulator::reserve() and pre-size the mailbox commit buffers, so
  /// warm-up never grows a vector on the hot path.  Purely an allocation
  /// hint: it never affects ordering or results.
  std::size_t reserve_events = 0;

  /// Throws std::invalid_argument on a spec the engine cannot run:
  /// lps == 0, or a lookahead that is not a positive finite number.
  void validate() const {
    if (lps == 0) {
      throw std::invalid_argument("PartitionSpec: lps must be >= 1");
    }
    if (!(lookahead > 0) || !std::isfinite(lookahead)) {
      throw std::invalid_argument(
          "PartitionSpec: lookahead must be positive and finite");
    }
  }
};

/// Number of balanced groups for `n` items capped at `max_groups`:
/// min(n, max_groups), with a floor of one group so the degenerate n == 0
/// still yields a runnable single-LP partition.
constexpr std::uint32_t balanced_groups(std::uint32_t n,
                                        std::uint32_t max_groups) noexcept {
  if (max_groups == 0) max_groups = 1;
  const std::uint32_t g = n < max_groups ? n : max_groups;
  return g == 0 ? 1 : g;
}

/// Group of item `i` under the balanced contiguous partition of [0, n)
/// into `groups` groups: the first n % groups groups get ceil(n / groups)
/// items, the rest floor(n / groups).  Matches group_range() exactly.
constexpr std::uint32_t group_of(std::uint32_t i, std::uint32_t n,
                                 std::uint32_t groups) noexcept {
  const std::uint32_t q = n / groups;
  const std::uint32_t r = n % groups;
  const std::uint32_t big = r * (q + 1);  // items in the oversize groups
  return i < big ? i / (q + 1) : r + (i - big) / q;
}

/// Half-open item range [begin, end) of group `g` under the same
/// partition as group_of().
constexpr std::pair<std::uint32_t, std::uint32_t> group_range(
    std::uint32_t g, std::uint32_t n, std::uint32_t groups) noexcept {
  const std::uint32_t q = n / groups;
  const std::uint32_t r = n % groups;
  const std::uint32_t begin = g * q + (g < r ? g : r);
  return {begin, begin + q + (g < r ? 1 : 0)};
}

}  // namespace arch21::des
