#include "des/resource.hpp"

#include <stdexcept>
#include <utility>

namespace arch21::des {

Resource::Resource(Simulator& sim, std::uint32_t servers)
    : sim_(sim), servers_(servers), slots_(servers) {
  if (servers == 0) {
    throw std::invalid_argument("Resource: need at least one server");
  }
}

void Resource::request(Time service_time,
                       std::function<void(Time, Time)> on_done) {
  Job job{sim_.now(), service_time, std::move(on_done)};
  if (busy_ < servers_) {
    start(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void Resource::start(Job job) {
  std::uint32_t slot = 0;
  while (slots_[slot].active) ++slot;  // busy_ < servers_ guarantees a hit
  Slot& s = slots_[slot];
  s.active = true;
  s.epoch = next_epoch_++;
  s.start = sim_.now();
  s.wait = sim_.now() - job.arrival;
  s.service = job.service;
  s.on_done = std::move(job.on_done);
  ++busy_;
  busy_time_ += s.service;
  sim_.schedule(s.service, [this, slot, epoch = s.epoch] {
    on_complete(slot, epoch);
  });
}

void Resource::on_complete(std::uint32_t slot, std::uint64_t epoch) {
  Slot& s = slots_[slot];
  if (!s.active || s.epoch != epoch) return;  // killed by fail_all()
  s.active = false;
  --busy_;
  ++completed_;
  wait_stats_.add(s.wait);
  sojourn_stats_.add(s.wait + s.service);
  auto done = std::move(s.on_done);
  s.on_done = nullptr;
  if (done) done(s.wait, s.wait + s.service);
  if (!waiting_.empty() && busy_ < servers_) {
    Job next = std::move(waiting_.front());
    waiting_.pop_front();
    start(std::move(next));
  }
}

std::size_t Resource::fail_all() {
  std::size_t lost = waiting_.size();
  waiting_.clear();
  for (Slot& s : slots_) {
    if (!s.active) continue;
    // Refund the service this job will never receive; the stale
    // completion event sees a cleared slot and does nothing.
    busy_time_ -= (s.start + s.service) - sim_.now();
    s.active = false;
    s.on_done = nullptr;
    --busy_;
    ++lost;
  }
  dropped_ += lost;
  return lost;
}

}  // namespace arch21::des
