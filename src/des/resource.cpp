#include "des/resource.hpp"

#include <stdexcept>
#include <utility>

#if ARCH21_OBS_ENABLED
#include "obs/trace.hpp"
#endif

namespace arch21::des {

#if ARCH21_OBS_ENABLED
void Resource::set_trace(obs::TraceBuffer* t, std::uint32_t base_tid) {
  trace_ = t;
  trace_base_tid_ = base_tid;
  if (t) {
    tr_serve_ = t->intern("serve");
    tr_wait_arg_ = t->intern("wait");
    tr_kill_arg_ = t->intern("killed");
  }
}
#endif

Resource::Resource(Simulator& sim, std::uint32_t servers)
    : sim_(sim), servers_(servers), slots_(servers) {
  if (servers == 0) {
    throw std::invalid_argument("Resource: need at least one server");
  }
}

void Resource::request(Time service_time, DoneFn on_done) {
  Job job{sim_.now(), service_time, std::move(on_done)};
  if (busy_ < servers_) {
    start(std::move(job));
  } else {
    waiting_push(std::move(job));
  }
}

void Resource::waiting_push(Job job) {
  if (waiting_count_ == waiting_.size()) {
    // Grow by unrolling the ring into a fresh vector in arrival order so
    // head_ restarts at 0.  Amortized O(1); never shrinks, so a steady
    // queue depth stops allocating after the first burst.
    std::vector<Job> grown;
    grown.reserve(waiting_.empty() ? 8 : 2 * waiting_.size());
    for (std::size_t i = 0; i < waiting_count_; ++i) {
      grown.push_back(
          std::move(waiting_[(waiting_head_ + i) % waiting_.size()]));
    }
    grown.resize(grown.capacity());
    waiting_ = std::move(grown);
    waiting_head_ = 0;
  }
  waiting_[(waiting_head_ + waiting_count_) % waiting_.size()] =
      std::move(job);
  ++waiting_count_;
}

Resource::Job Resource::waiting_pop() {
  Job job = std::move(waiting_[waiting_head_]);
  waiting_head_ = (waiting_head_ + 1) % waiting_.size();
  --waiting_count_;
  return job;
}

void Resource::start(Job job) {
  std::uint32_t slot = 0;
  while (slots_[slot].active) ++slot;  // busy_ < servers_ guarantees a hit
  Slot& s = slots_[slot];
  s.active = true;
  s.epoch = next_epoch_++;
  s.start = sim_.now();
  s.wait = sim_.now() - job.arrival;
  s.service = job.service;
  s.on_done = std::move(job.on_done);
  ++busy_;
  busy_time_ += s.service;
  sim_.schedule(s.service, [this, slot, epoch = s.epoch] {
    on_complete(slot, epoch);
  });
}

void Resource::on_complete(std::uint32_t slot, std::uint64_t epoch) {
  Slot& s = slots_[slot];
  if (!s.active || s.epoch != epoch) return;  // killed by fail_all()
  s.active = false;
  --busy_;
  ++completed_;
  wait_stats_.add(s.wait);
  sojourn_stats_.add(s.wait + s.service);
  auto done = std::move(s.on_done);
  s.on_done = nullptr;
#if ARCH21_OBS_ENABLED
  if (trace_) {
    trace_->complete(tr_serve_, s.start, s.service, trace_base_tid_ + slot,
                     tr_wait_arg_, s.wait);
  }
#endif
  if (done) done(s.wait, s.wait + s.service);
  if (waiting_count_ > 0 && busy_ < servers_) {
    start(waiting_pop());
  }
}

std::size_t Resource::fail_all() {
  std::size_t lost = waiting_count_;
  for (std::size_t i = 0; i < waiting_count_; ++i) {
    waiting_[(waiting_head_ + i) % waiting_.size()].on_done = nullptr;
  }
  waiting_head_ = 0;
  waiting_count_ = 0;
  for (Slot& s : slots_) {
    if (!s.active) continue;
    // Refund the service this job will never receive; the stale
    // completion event sees a cleared slot and does nothing.
    busy_time_ -= (s.start + s.service) - sim_.now();
#if ARCH21_OBS_ENABLED
    if (trace_) {
      // Truncated span: only the service actually rendered before the
      // crash, flagged "killed" so aborted work is visually distinct.
      const auto slot_idx =
          static_cast<std::uint32_t>(&s - slots_.data());
      trace_->complete(tr_serve_, s.start, sim_.now() - s.start,
                       trace_base_tid_ + slot_idx, tr_kill_arg_, 1.0);
    }
#endif
    s.active = false;
    s.on_done = nullptr;
    --busy_;
    ++lost;
  }
  dropped_ += lost;
  return lost;
}

}  // namespace arch21::des
