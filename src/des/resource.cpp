#include "des/resource.hpp"

#include <stdexcept>
#include <utility>

namespace arch21::des {

Resource::Resource(Simulator& sim, std::uint32_t servers)
    : sim_(sim), servers_(servers) {
  if (servers == 0) {
    throw std::invalid_argument("Resource: need at least one server");
  }
}

void Resource::request(Time service_time,
                       std::function<void(Time, Time)> on_done) {
  Job job{sim_.now(), service_time, std::move(on_done)};
  if (busy_ < servers_) {
    start(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void Resource::start(Job job) {
  ++busy_;
  const Time wait = sim_.now() - job.arrival;
  const Time service = job.service;
  busy_time_ += service;
  // Capture the job by value in the completion event.
  sim_.schedule(service, [this, wait, service,
                          done = std::move(job.on_done)]() mutable {
    --busy_;
    ++completed_;
    wait_stats_.add(wait);
    sojourn_stats_.add(wait + service);
    if (done) done(wait, wait + service);
    if (!waiting_.empty() && busy_ < servers_) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
  });
}

}  // namespace arch21::des
