#include "des/resource.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#if ARCH21_OBS_ENABLED
#include "obs/trace.hpp"
#endif

namespace arch21::des {

void QueuePolicy::validate() const {
  if (discipline == QueueDiscipline::kDeadline && !(sojourn_target > 0)) {
    throw std::invalid_argument(
        "QueuePolicy::sojourn_target must be > 0 with kDeadline");
  }
  if (!(sojourn_target >= 0)) {  // NaN-hostile
    throw std::invalid_argument("QueuePolicy::sojourn_target must be >= 0");
  }
}

#if ARCH21_OBS_ENABLED
void Resource::set_trace(obs::TraceBuffer* t, std::uint32_t base_tid) {
  trace_ = t;
  trace_base_tid_ = base_tid;
  if (t) {
    tr_serve_ = t->intern("serve");
    tr_wait_arg_ = t->intern("wait");
    tr_kill_arg_ = t->intern("killed");
  }
}
#endif

Resource::Resource(Simulator& sim, std::uint32_t servers)
    : Resource(sim, servers, QueuePolicy{}) {}

Resource::Resource(Simulator& sim, std::uint32_t servers, QueuePolicy queue)
    : sim_(sim), servers_(servers), queue_(queue), slots_(servers) {
  if (servers == 0) {
    throw std::invalid_argument("Resource: need at least one server");
  }
  queue_.validate();
  // A bounded ring never needs to grow past its cap: pre-size it so even
  // the first overload burst schedules allocation-free.
  if (queue_.capacity > 0) waiting_.resize(queue_.capacity);
}

void Resource::set_speed(double speed) {
  if (!(speed > 0) || !std::isfinite(speed)) {
    throw std::invalid_argument("Resource::set_speed: speed must be finite and > 0");
  }
  speed_ = speed;
}

void Resource::set_start_gate(GateFn gate) {
  gate_ = std::move(gate);
  // A fresh (or cleared) gate starts un-stalled; pump the queue so a
  // permissive gate takes effect immediately.
  release_gate();
}

void Resource::release_gate() {
  stalled_ = false;
  // start_next() either starts one job, drops expired waiters, or
  // re-stalls -- each iteration strictly shrinks the queue or exits.
  while (!stalled_ && busy_ < servers_ && waiting_count_ > 0) {
    start_next();
  }
}

bool Resource::gate_allows(Time effective_service) {
  if (!gate_) return true;
  if (stalled_) return false;
  if (gate_(effective_service)) return true;
  stalled_ = true;
  ++gate_stalls_;
  return false;
}

bool Resource::request(Time service_time, DoneFn on_done) {
  Job job{sim_.now(), service_time, std::move(on_done)};
  if (busy_ < servers_ && gate_allows(service_time / speed_)) {
    start(std::move(job));
    return true;
  }
  if (queue_.capacity > 0 && waiting_count_ >= queue_.capacity) {
    // The on_reject path: the job's callback is destroyed unfired and
    // the caller learns synchronously.  No accounting beyond the count
    // -- a rejected job never consumed queue space or service.
    ++rejected_;
    return false;
  }
  waiting_push(std::move(job));
  if (waiting_count_ > queue_high_water_) queue_high_water_ = waiting_count_;
  return true;
}

void Resource::waiting_push(Job job) {
  if (waiting_count_ == waiting_.size()) {
    // Grow by unrolling the ring into a fresh vector in arrival order so
    // head_ restarts at 0.  Amortized O(1); never shrinks, so a steady
    // queue depth stops allocating after the first burst.
    std::vector<Job> grown;
    grown.reserve(waiting_.empty() ? 8 : 2 * waiting_.size());
    for (std::size_t i = 0; i < waiting_count_; ++i) {
      grown.push_back(
          std::move(waiting_[(waiting_head_ + i) % waiting_.size()]));
    }
    grown.resize(grown.capacity());
    waiting_ = std::move(grown);
    waiting_head_ = 0;
  }
  waiting_[(waiting_head_ + waiting_count_) % waiting_.size()] =
      std::move(job);
  ++waiting_count_;
}

Resource::Job Resource::waiting_pop() {
  Job job = std::move(waiting_[waiting_head_]);
  waiting_head_ = (waiting_head_ + 1) % waiting_.size();
  --waiting_count_;
  return job;
}

Resource::Job Resource::waiting_pop_back() {
  --waiting_count_;
  return std::move(
      waiting_[(waiting_head_ + waiting_count_) % waiting_.size()]);
}

void Resource::start_next() {
  while (waiting_count_ > 0) {
    const bool lifo = queue_.discipline == QueueDiscipline::kAdaptiveLifo &&
                      waiting_count_ > queue_.lifo_threshold;
    if (queue_.discipline == QueueDiscipline::kDeadline) {
      // kDeadline dequeues in FIFO order (it is a distinct discipline, so
      // the lifo flag above is never set with it).
      const Job& head = waiting_[waiting_head_];
      if (sim_.now() - head.arrival > queue_.sojourn_target) {
        // Expired at dequeue: the client gave up on this job before a
        // server could take it; serving it would only add queueing delay
        // for the jobs behind it.  Its on_done is destroyed unfired.
        waiting_pop();
        ++expired_;
        continue;
      }
    }
    // Gate check happens *before* the pop so a refused job keeps its
    // place in line -- release_gate() resumes exactly where we stopped.
    const Job& cand =
        lifo ? waiting_[(waiting_head_ + waiting_count_ - 1) % waiting_.size()]
             : waiting_[waiting_head_];
    if (!gate_allows(cand.service / speed_)) return;
    start(lifo ? waiting_pop_back() : waiting_pop());
    return;
  }
}

void Resource::start(Job job) {
  std::uint32_t slot = 0;
  while (slots_[slot].active) ++slot;  // busy_ < servers_ guarantees a hit
  Slot& s = slots_[slot];
  s.active = true;
  s.epoch = next_epoch_++;
  s.start = sim_.now();
  s.wait = sim_.now() - job.arrival;
  // Effective service reflects the p-state at *start* time; the raw
  // request is stored in the queue so a later speed change re-prices
  // still-waiting jobs.  speed_ == 1.0 divides exactly (IEEE), keeping
  // the no-powercap path bit-identical to the historical station.
  s.service = job.service / speed_;
  s.on_done = std::move(job.on_done);
  ++busy_;
  busy_time_ += s.service;
  auto complete = [this, slot, epoch = s.epoch] { on_complete(slot, epoch); };
  // A heap fallback here would put an allocation on every service
  // completion -- the single hottest closure in the cluster scenarios.
  static_assert(sizeof(complete) <= Simulator::Action::capacity(),
                "completion closure must fit the Action inline buffer");
  sim_.schedule(s.service, std::move(complete));
}

void Resource::on_complete(std::uint32_t slot, std::uint64_t epoch) {
  Slot& s = slots_[slot];
  if (!s.active || s.epoch != epoch) return;  // killed by fail_all()
  s.active = false;
  --busy_;
  ++completed_;
  wait_stats_.add(s.wait);
  sojourn_stats_.add(s.wait + s.service);
  auto done = std::move(s.on_done);
  s.on_done = nullptr;
#if ARCH21_OBS_ENABLED
  if (trace_) {
    trace_->complete(tr_serve_, s.start, s.service, trace_base_tid_ + slot,
                     tr_wait_arg_, s.wait);
  }
#endif
  if (done) done(s.wait, s.wait + s.service);
  if (waiting_count_ > 0 && busy_ < servers_) {
    start_next();
  }
}

std::size_t Resource::fail_all() {
  std::size_t lost = waiting_count_;
  for (std::size_t i = 0; i < waiting_count_; ++i) {
    waiting_[(waiting_head_ + i) % waiting_.size()].on_done = nullptr;
  }
  waiting_head_ = 0;
  waiting_count_ = 0;
  for (Slot& s : slots_) {
    if (!s.active) continue;
    // Refund the service this job will never receive; the stale
    // completion event sees a cleared slot and does nothing.
    busy_time_ -= (s.start + s.service) - sim_.now();
#if ARCH21_OBS_ENABLED
    if (trace_) {
      // Truncated span: only the service actually rendered before the
      // crash, flagged "killed" so aborted work is visually distinct.
      const auto slot_idx =
          static_cast<std::uint32_t>(&s - slots_.data());
      trace_->complete(tr_serve_, s.start, sim_.now() - s.start,
                       trace_base_tid_ + slot_idx, tr_kill_arg_, 1.0);
    }
#endif
    s.active = false;
    s.on_done = nullptr;
    --busy_;
    ++lost;
  }
  dropped_ += lost;
  return lost;
}

}  // namespace arch21::des
