#pragma once
// Seeded multi-LP PDES workload, templated over the engine
// (des::LoopbackEngine or des::ParallelEngine) -- the engine-level
// analogue of des/workload.hpp's kernel replays.  Every LP runs a
// self-perpetuating local event process (own Rng stream, consumed only by
// its own events), arms-and-cancels a timer per step, and every fourth
// step fires a message at a random peer with delay >= lookahead.  Each
// LP folds everything it observes -- event times, delivered payloads,
// timer fires -- into an order-sensitive checksum, so ANY divergence in
// an LP's event sequence between engines or worker counts changes the
// result.  The differential tests assert PdesWorkloadResult equality;
// the bench replays it at several worker counts for Mev/s.
//
// `work` adds that many checksum-mix rounds per event: 0 measures pure
// kernel+sync overhead, larger values model real per-event work (the
// regime where parallel speedup shows up).

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "des/pdes.hpp"
#include "util/rng.hpp"

namespace arch21::des {

struct PdesLpResult {
  std::uint64_t checksum = 0;
  std::uint64_t local_events = 0;  ///< steps of the local process
  std::uint64_t deliveries = 0;    ///< cross-LP messages handled
  double last_t = 0;               ///< time of the last local step
  bool operator==(const PdesLpResult&) const = default;
};

struct PdesWorkloadResult {
  std::vector<PdesLpResult> lps;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  /// Events/sec numerator for the bench (kernel events, all LPs).
  std::uint64_t events() const noexcept { return executed; }
  bool operator==(const PdesWorkloadResult&) const = default;
};

inline std::uint64_t pdes_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

template <class Engine>
PdesWorkloadResult run_pdes_mesh(Engine& eng, std::uint64_t seed,
                                 double horizon, unsigned work = 16) {
  struct LpState {
    Rng rng{0};
    PdesLpResult res;
    EventHandle timer{};
    bool armed = false;
  };
  struct Ctx {
    Engine& eng;
    double horizon;
    double lookahead;
    unsigned work;
    std::vector<LpState> st;
    Ctx(Engine& e, double h, unsigned w)
        : eng(e), horizon(h), lookahead(e.lookahead()), st(e.lps()) {
      work = w;
    }
    void step(std::uint32_t i) {
      auto& lp = eng.lp(i);
      LpState& s = st[i];
      const double t = lp.now();
      ++s.res.local_events;
      s.res.last_t = t;
      std::uint64_t h = pdes_mix(s.res.checksum, std::bit_cast<std::uint64_t>(t));
      for (unsigned k = 0; k < work; ++k) h = pdes_mix(h, k);
      s.res.checksum = h;
      // Cancel the timer the previous step armed (often across a window
      // boundary) and arm a fresh one; a timer that survives to fire just
      // mixes a marker, so either outcome is checksummed.
      if (s.armed) {
        lp.sim().cancel(s.timer);
        s.armed = false;
      }
      s.timer = lp.sim().schedule_cancellable(5.0, [this, i] {
        st[i].res.checksum = pdes_mix(st[i].res.checksum, 0x71AE5ULL);
        st[i].armed = false;
      });
      s.armed = true;
      if (eng.lps() > 1 && s.res.local_events % 4 == 0) {
        const std::uint32_t dst = static_cast<std::uint32_t>(
            (i + 1 + s.rng.below(eng.lps() - 1)) % eng.lps());
        Payload p;
        p.kind = 1;
        p.a = s.res.local_events;
        p.x = s.rng.uniform(0.0, 1.0);
        lp.send(dst, lookahead + s.rng.exponential(0.5), p);
      }
      const double d = s.rng.exponential(1.0);
      if (t + d < horizon) lp.sim().schedule(d, [this, i] { step(i); });
    }
  };

  auto ctx = std::make_unique<Ctx>(eng, horizon, work);
  Ctx* c = ctx.get();
  for (std::uint32_t i = 0; i < eng.lps(); ++i) {
    c->st[i].rng = Rng(seed, i);
    eng.lp(i).set_handler([c](auto& lp, const Payload& p) {
      LpState& s = c->st[lp.id()];
      ++s.res.deliveries;
      s.res.checksum = pdes_mix(pdes_mix(s.res.checksum, p.a),
                                std::bit_cast<std::uint64_t>(p.x));
    });
    const double t0 = c->st[i].rng.exponential(1.0);
    eng.lp(i).sim().schedule_at(t0, [c, i] { c->step(i); });
  }
  eng.run();

  PdesWorkloadResult out;
  out.lps.reserve(eng.lps());
  for (std::uint32_t i = 0; i < eng.lps(); ++i) out.lps.push_back(c->st[i].res);
  out.executed = eng.executed();
  out.cancelled = eng.cancelled();
  return out;
}

}  // namespace arch21::des
