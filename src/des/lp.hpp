#pragma once
// One logical process (LP) of the conservative PDES engine: a private
// des::Simulator (its own ladder queue, action slab, and cancellation
// table -- no state shared with any other LP), a scenario-installed
// message handler, and one outbound mailbox per peer LP.  During a
// window's parallel phase an LP runs entirely on one pool task; the only
// cross-LP traffic is send(), which appends to an outbound mailbox the
// engine drains serially at the next window barrier (see
// des/mailbox.hpp for why that needs no synchronization).

#include <cstdint>
#include <functional>
#include <vector>

#include "des/mailbox.hpp"
#include "des/simulator.hpp"

namespace arch21::des {

class ParallelEngine;

class Lp {
 public:
  /// Invoked when a cross-LP message is delivered (at sim time
  /// Message::t, inside this LP's window run).  Install at setup via
  /// set_handler(); delivery to an LP without a handler throws.
  using Handler = std::function<void(Lp&, const Payload&)>;

  std::uint32_t id() const noexcept { return id_; }
  Time now() const noexcept { return sim_.now(); }

  /// This LP's private kernel, for local scheduling (including
  /// cancellable timers) and per-LP trace attachment.  Only this LP's
  /// events may touch it: scheduling into another LP's simulator is a
  /// data race AND a determinism bug -- cross-LP effects go through
  /// send().
  Simulator& sim() noexcept { return sim_; }

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Send `p` to LP `dst`, arriving `delay` seconds from now().  For a
  /// remote destination the delay must be >= the engine's lookahead
  /// (that bound is what makes the conservative window safe; violating
  /// it throws).  dst == id() is a plain local schedule -- no mailbox,
  /// no lookahead floor -- exactly what the serial loopback engine does,
  /// so results stay comparable.
  void send(std::uint32_t dst, Time delay, const Payload& p);

  /// Cross-LP messages this LP has sent / had delivered into its kernel.
  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  friend class ParallelEngine;

  Lp(ParallelEngine* engine, std::uint32_t id, std::uint32_t lps)
      : engine_(engine), id_(id), out_(lps) {}

  /// One window's work on this LP (parallel phase): extract the pending
  /// messages due by `end`, sort them canonically, schedule them in one
  /// schedule_n() batch, then run the kernel through `end` (inclusive,
  /// matching Simulator::run).
  void commit_and_run(Time end);

  ParallelEngine* engine_;
  std::uint32_t id_ = 0;
  std::uint64_t send_seq_ = 0;   // per-source seq for canonical ordering
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  Simulator sim_;
  Handler handler_;
  std::vector<Mailbox> out_;     // out_[d]: outbound messages for LP d
  std::vector<Message> pending_; // drained inbound awaiting commit
  std::vector<Message> batch_;   // commit scratch (retained capacity)
  std::vector<Simulator::TimedAction> span_;  // schedule_n scratch
};

}  // namespace arch21::des
