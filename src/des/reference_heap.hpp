#pragma once
// Reference DES kernel: the pre-ladder binary-heap event queue with an
// unordered_map cancellation table, kept verbatim as (a) the oracle for
// the differential determinism test -- the ladder queue must reproduce
// this implementation's execution order bit-for-bit on any workload --
// and (b) the baseline that bench_des_queue measures the ladder queue's
// speedup against.  Not for production use: every cancellable event pays
// a hash insert + find + erase, and every event pays O(log n) on one big
// cache-hostile heap.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/inline_function.hpp"

namespace arch21::des {

class ReferenceSimulator {
 public:
  using Time = double;
  using Action = InlineFunction<56>;
  static constexpr Time kForever = 1e300;

  struct Handle {
    static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
    std::uint64_t seq = kInvalid;
    bool valid() const noexcept { return seq != kInvalid; }
  };

  Time now() const noexcept { return now_; }

  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  void schedule_at(Time t, Action action) { enqueue(t, std::move(action)); }

  /// One (time, action) entry of a schedule_n() batch (API parity with
  /// des::Simulator so the workload replays template over either kernel).
  struct TimedAction {
    Time t;
    Action action;
  };

  /// Batch scheduling oracle: the plain loop the ladder queue's amortized
  /// schedule_n() must be observationally identical to.
  void schedule_n(TimedAction* evs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      enqueue(evs[i].t, std::move(evs[i].action));
    }
  }

  /// Timestamp of the earliest pending event, or kForever when idle.
  Time next_time() const noexcept {
    return queue_.empty() ? kForever : queue_.front().t;
  }

  Handle schedule_cancellable(Time delay, Action action) {
    return schedule_cancellable_at(now_ + delay, std::move(action));
  }

  Handle schedule_cancellable_at(Time t, Action action) {
    const std::uint64_t seq = enqueue(t, std::move(action));
    cancellable_.emplace(seq, false);
    return Handle{seq};
  }

  bool cancel(Handle h) {
    if (!h.valid()) return false;
    const auto it = cancellable_.find(h.seq);
    if (it == cancellable_.end() || it->second) return false;
    it->second = true;
    return true;
  }

  std::uint64_t cancelled() const noexcept { return cancelled_; }
  std::uint64_t executed() const noexcept { return executed_; }
  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  void reserve(std::size_t events) { queue_.reserve(events); }

  std::uint64_t run(Time until = kForever) {
    std::uint64_t ran = 0;
    while (step(until)) ++ran;
    return ran;
  }

  bool step(Time until = kForever) {
    for (;;) {
      if (queue_.empty()) return false;
      if (queue_.front().t > until) {
        now_ = until;
        return false;
      }
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      Event ev = std::move(queue_.back());
      queue_.pop_back();
      if (!cancellable_.empty()) {
        const auto it = cancellable_.find(ev.seq);
        if (it != cancellable_.end()) {
          const bool was_cancelled = it->second;
          cancellable_.erase(it);
          if (was_cancelled) {
            ++cancelled_;
            continue;
          }
        }
      }
      now_ = ev.t;
      ++executed_;
      ev.action();
      return true;
    }
  }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::uint64_t enqueue(Time t, Action action) {
    if (t < now_) {
      throw std::invalid_argument(
          "ReferenceSimulator::schedule_at: time in the past");
    }
    const std::uint64_t seq = next_seq_++;
    queue_.push_back(Event{t, seq, std::move(action)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    return seq;
  }

  std::vector<Event> queue_;
  std::unordered_map<std::uint64_t, bool> cancellable_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace arch21::des
