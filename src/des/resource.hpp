#pragma once
// Queued resources on top of the DES kernel: a k-server station with a
// FIFO queue (the building block of M/M/k models and of the cloud
// module's leaf servers), plus utilization/wait accounting.

#include <cstdint>
#include <deque>
#include <functional>

#include "des/simulator.hpp"
#include "util/stats.hpp"

namespace arch21::des {

/// A service station with `servers` identical servers and an unbounded
/// FIFO queue.  Users call `request(service_time, on_done)`; the resource
/// queues the job if all servers are busy, serves it for `service_time`
/// simulated seconds, then invokes `on_done`.
class Resource {
 public:
  Resource(Simulator& sim, std::uint32_t servers);

  /// Enqueue a job requiring `service_time` seconds of one server.
  /// `on_done(wait, total)` fires at completion with the queueing delay
  /// and the total sojourn time.
  void request(Time service_time,
               std::function<void(Time wait, Time total)> on_done);

  std::uint32_t servers() const noexcept { return servers_; }
  std::uint32_t busy() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return waiting_.size(); }

  /// Mean queueing delay across completed jobs.
  const OnlineStats& wait_stats() const noexcept { return wait_stats_; }
  /// Mean sojourn (wait + service) across completed jobs.
  const OnlineStats& sojourn_stats() const noexcept { return sojourn_stats_; }
  /// Completed job count.
  std::uint64_t completed() const noexcept { return completed_; }
  /// Total busy server-seconds (for utilization = busy_time / (T*servers)).
  double busy_time() const noexcept { return busy_time_; }

 private:
  struct Job {
    Time arrival;
    Time service;
    std::function<void(Time, Time)> on_done;
  };

  void start(Job job);

  Simulator& sim_;
  std::uint32_t servers_;
  std::uint32_t busy_ = 0;
  std::deque<Job> waiting_;
  OnlineStats wait_stats_;
  OnlineStats sojourn_stats_;
  std::uint64_t completed_ = 0;
  double busy_time_ = 0;
};

}  // namespace arch21::des
