#pragma once
// Queued resources on top of the DES kernel: a k-server station with a
// FIFO queue (the building block of M/M/k models and of the cloud
// module's leaf servers), plus utilization/wait accounting.
//
// For the resilience layer the station is *failable*: fail_all() models a
// crash -- every waiting job is dropped and every in-service job is
// abandoned (its completion callback never fires, and the unrendered
// service time is refunded from the busy-time account).  Clients that
// need to notice the loss arm their own timeout on the DES.
//
// Overload protection (server-side "Tail at Scale" mitigations): the
// queue can be *bounded* (QueuePolicy::capacity; a request arriving at a
// full queue is rejected synchronously -- the on_reject path -- and its
// callback never fires) and the dequeue order is pluggable: FIFO,
// adaptive LIFO (newest-first while the backlog exceeds a threshold, the
// overload discipline that keeps fresh requests inside their deadline),
// or deadline-aware FIFO that drops already-expired work at dequeue
// (CoDel-style sojourn target) instead of wasting a server on a request
// whose client has given up.  All disciplines are pure functions of the
// request sequence, so the (t,seq) determinism contract is untouched.
//
// Hot-path note: completion callbacks are InlineCallback (small-buffer,
// move-only), not std::function, and the FIFO is a ring buffer over a
// flat vector (pre-sized to `capacity` when bounded), so a steady-state
// request stream allocates nothing -- the cluster simulator pushes
// millions of requests per trial through these.

#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"
#include "obs/enabled.hpp"
#include "util/inline_function.hpp"
#include "util/stats.hpp"

#if ARCH21_OBS_ENABLED
namespace arch21::obs {
class TraceBuffer;
}
#endif

namespace arch21::des {

/// Dequeue order of a Resource's waiting line.
enum class QueueDiscipline : std::uint8_t {
  /// Arrival order -- the historical default; bit-compatible with the
  /// pre-overload-protection behaviour.
  kFifo,
  /// Newest-first while the backlog exceeds QueuePolicy::lifo_threshold,
  /// FIFO otherwise ("adaptive LIFO"): under overload the freshest
  /// requests -- the only ones whose clients are still waiting -- are
  /// served first, and the stale backlog ages out via client timeouts.
  kAdaptiveLifo,
  /// FIFO order, but a job whose queueing delay already exceeds
  /// QueuePolicy::sojourn_target when a server frees is dropped at
  /// dequeue (counted in expired()) instead of served -- the CoDel-style
  /// guard against burning servers on work whose client has timed out.
  kDeadline,
};

/// Server-side queue policy of one Resource.  Defaults reproduce the
/// historical unbounded-FIFO station exactly.
struct QueuePolicy {
  /// Maximum waiting jobs (not counting in-service); 0 = unbounded.
  /// A request that finds the queue full is rejected synchronously.
  std::size_t capacity = 0;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// kAdaptiveLifo: backlog depth strictly above which pops switch to
  /// newest-first.  0 = LIFO whenever any backlog exists.
  std::size_t lifo_threshold = 0;
  /// kDeadline: the sojourn budget; a waiter older than this at dequeue
  /// time is dropped.  Simulation time units (the cluster runs in ms).
  Time sojourn_target = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// A service station with `servers` identical servers and a (by default
/// unbounded FIFO) queue.  Users call `request(service_time, on_done)`;
/// the resource queues the job if all servers are busy, serves it for
/// `service_time` simulated seconds, then invokes `on_done`.
class Resource {
 public:
  /// Completion callback: `on_done(wait, total)` fires at completion with
  /// the queueing delay and the total sojourn time.  Stored inline for
  /// closures up to 48 bytes (the cluster simulator's handle-captured
  /// completions fit); accepts nullptr for fire-and-forget requests.
  using DoneFn = InlineCallback<void(Time wait, Time total), 48>;

  Resource(Simulator& sim, std::uint32_t servers);
  Resource(Simulator& sim, std::uint32_t servers, QueuePolicy queue);

  /// Enqueue a job requiring `service_time` seconds of one server.
  /// Returns false -- and never fires `on_done` -- if the queue is
  /// bounded and full (the rejection is synchronous: in a real server
  /// this is the listen-backlog / load-shedder saying no at the door).
  /// Unbounded stations always return true.
  bool request(Time service_time, DoneFn on_done);

  /// Service-rate scaling -- the DVFS p-state hook.  A job *started* from
  /// now on takes `requested_service / speed` simulated time; in-flight
  /// jobs keep the rate they started at (a frequency change cannot reach
  /// back into work already scheduled).  speed = 1 reproduces the
  /// historical station bit-for-bit (IEEE division by 1.0 is exact).
  /// Throws std::invalid_argument unless speed is finite and > 0.
  void set_speed(double speed);
  double speed() const noexcept { return speed_; }

  /// Start gate -- the power-capping hook.  When set, the gate is asked
  /// `gate(effective_service)` immediately before any job would begin
  /// service (effective_service already reflects speed()).  Returning
  /// false leaves the job queued and *stalls* the station: no further
  /// starts happen (and the gate is not re-asked) until release_gate().
  /// Stalled jobs still occupy queue capacity, so a bounded queue keeps
  /// rejecting at the door.  The gate must be deterministic for the
  /// (t,seq) contract to hold.  nullptr detaches and un-stalls.
  using GateFn = std::function<bool(Time effective_service)>;
  void set_start_gate(GateFn gate);
  /// Clear a gate stall and start as many waiting jobs as free servers
  /// and the gate now permit.  Call after replenishing whatever budget
  /// made the gate refuse (e.g. at an energy-accounting window boundary)
  /// or after set_speed() raised the service rate.
  void release_gate();
  /// True while the station is refusing starts pending release_gate().
  bool gate_stalled() const noexcept { return stalled_; }
  /// Times the gate transitioned into a stall (budget-exhaustion events,
  /// not per-job refusals).
  std::uint64_t gate_stalls() const noexcept { return gate_stalls_; }

  /// Crash the station: drop all waiting jobs and abandon all in-service
  /// jobs.  Abandoned completions never fire, and busy-time accounting
  /// keeps only the service actually rendered before the crash.  The
  /// station immediately accepts new work (a recovered server).  Returns
  /// the number of jobs lost.  Jobs rejected at a full queue before the
  /// crash were never admitted, so they are not counted again here.
  std::size_t fail_all();

  std::uint32_t servers() const noexcept { return servers_; }
  std::uint32_t busy() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return waiting_count_; }
  const QueuePolicy& queue_policy() const noexcept { return queue_; }

  /// Mean queueing delay across completed jobs.
  const OnlineStats& wait_stats() const noexcept { return wait_stats_; }
  /// Mean sojourn (wait + service) across completed jobs.
  const OnlineStats& sojourn_stats() const noexcept { return sojourn_stats_; }
  /// Completed job count.
  std::uint64_t completed() const noexcept { return completed_; }
  /// Jobs lost to fail_all() (waiting + in service at the crash).
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Jobs rejected at a full bounded queue (their on_done never fired).
  std::uint64_t rejected() const noexcept { return rejected_; }
  /// Jobs dropped at dequeue by the kDeadline discipline (sojourn target
  /// already blown when a server freed).
  std::uint64_t expired() const noexcept { return expired_; }
  /// Deepest backlog ever observed (for capacity sizing / the
  /// allocation-free audit: the ring never grows past this).
  std::size_t queue_high_water() const noexcept { return queue_high_water_; }
  /// Total busy server-seconds (for utilization = busy_time / (T*servers)).
  double busy_time() const noexcept { return busy_time_; }

#if ARCH21_OBS_ENABLED
  /// Attach an observability trace: each completed job emits a "serve"
  /// complete-span on track `base_tid + server_slot` (so spans on one
  /// track never overlap and nest cleanly in Perfetto), annotated with
  /// the job's queueing delay; jobs killed by fail_all() emit a
  /// truncated span annotated "killed".  Read-only -- never perturbs
  /// scheduling, accounting, or results.  nullptr detaches.
  void set_trace(obs::TraceBuffer* t, std::uint32_t base_tid);
#endif

 private:
  struct Job {
    Time arrival;
    Time service;
    DoneFn on_done;
  };
  // One in-service job per server slot.  The completion event captures
  // only (this, slot, epoch) -- well inside Simulator::Action's inline
  // capacity -- and the callback lives here, so a queued M/M/1-style run
  // still schedules allocation-free.  The epoch detects jobs killed by
  // fail_all(): a stale completion event finds a different epoch (or an
  // inactive slot) and does nothing.
  struct Slot {
    bool active = false;
    std::uint64_t epoch = 0;
    Time start = 0;
    Time wait = 0;
    Time service = 0;
    DoneFn on_done;
  };

  void start(Job job);
  /// Dequeue per the discipline and start the first non-expired waiter
  /// (dropping expired ones under kDeadline).  Called when a server
  /// frees; no-op on an empty queue.  Returns without dequeuing if the
  /// start gate refuses the candidate (the station is then stalled).
  void start_next();
  /// Ask the gate about a prospective start; records the stall on refusal.
  bool gate_allows(Time effective_service);
  void on_complete(std::uint32_t slot, std::uint64_t epoch);
  void waiting_push(Job job);
  Job waiting_pop();
  Job waiting_pop_back();

  Simulator& sim_;
  std::uint32_t servers_;
  QueuePolicy queue_;
  std::uint32_t busy_ = 0;
  // FIFO ring over a flat vector: head_ walks forward, capacity is
  // retained across bursts, growth unrolls the ring in arrival order.
  // Adaptive LIFO pops the tail of the same ring, so both disciplines
  // share the allocation-free path.
  std::vector<Job> waiting_;
  std::size_t waiting_head_ = 0;
  std::size_t waiting_count_ = 0;
  std::vector<Slot> slots_;
  std::uint64_t next_epoch_ = 1;
  OnlineStats wait_stats_;
  OnlineStats sojourn_stats_;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t expired_ = 0;
  std::size_t queue_high_water_ = 0;
  double busy_time_ = 0;
  double speed_ = 1.0;
  GateFn gate_;
  bool stalled_ = false;
  std::uint64_t gate_stalls_ = 0;

#if ARCH21_OBS_ENABLED
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t trace_base_tid_ = 0;
  std::uint32_t tr_serve_ = 0;     // interned "serve"
  std::uint32_t tr_wait_arg_ = 0;  // interned "wait"
  std::uint32_t tr_kill_arg_ = 0;  // interned "killed"
#endif
};

}  // namespace arch21::des
