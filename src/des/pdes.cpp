#include "des/pdes.hpp"

#include <algorithm>
#include <stdexcept>

#if ARCH21_OBS_ENABLED
#include "obs/metrics.hpp"
#endif

namespace arch21::des {

// ------------------------------------------------------- ParallelEngine

ParallelEngine::ParallelEngine(const PartitionSpec& spec, ThreadPool& pool)
    : spec_(spec), pool_(pool) {
  spec_.validate();
  lps_.reserve(spec_.lps);
  for (std::uint32_t i = 0; i < spec_.lps; ++i) {
    lps_.push_back(std::unique_ptr<Lp>(new Lp(this, i, spec_.lps)));
    if (spec_.reserve_events > 0) {
      // Pre-size the per-LP kernel and commit buffers so warm-up never
      // reallocates on the hot path (an allocation hint only: geometry
      // and ordering are unaffected).
      Lp& lp = *lps_.back();
      lp.sim_.reserve(spec_.reserve_events);
      lp.pending_.reserve(spec_.reserve_events);
      lp.batch_.reserve(spec_.reserve_events);
      lp.span_.reserve(spec_.reserve_events);
    }
  }
}

void ParallelEngine::drain() {
  for (auto& src : lps_) {
    for (std::uint32_t d = 0; d < lps(); ++d) {
      Mailbox& box = src->out_[d];
      if (box.empty()) continue;
      auto& pending = lps_[d]->pending_;
      pending.insert(pending.end(), box.begin(), box.end());
      box.clear();
    }
  }
  for (auto& lp : lps_) {
    if (lp->pending_.size() > stats_.max_pending) {
      stats_.max_pending = lp->pending_.size();
    }
  }
}

std::uint64_t ParallelEngine::run(Time until) {
  const std::uint64_t before = executed();
  const double lookahead = spec_.lookahead;
  for (;;) {
    drain();
    // Conservative horizon: nothing anywhere can happen before tmin, and
    // (because every cross-LP delay is >= lookahead) nothing NEW can
    // arrive at or before tmin + lookahead.
    Time tmin = Simulator::kForever;
    for (auto& lp : lps_) {
      tmin = std::min(tmin, lp->sim_.next_time());
      for (const Message& m : lp->pending_) tmin = std::min(tmin, m.t);
    }
    if (tmin > until || tmin >= Simulator::kForever) break;
    const Time end = std::min(until, tmin + lookahead);
    ++stats_.windows;
    pool_.parallel_run(lps_.size(),
                       [&](std::size_t i) { lps_[i]->commit_and_run(end); });
  }
  if (until < Simulator::kForever) {
    // Align every clock with the horizon, mirroring Simulator::run's
    // now_ = until on early stop.  Executes nothing: tmin > until.
    for (auto& lp : lps_) lp->sim_.run(until);
  }
  return executed() - before;
}

ParallelEngine::Stats ParallelEngine::stats() const {
  Stats s = stats_;
  for (const auto& lp : lps_) {
    s.sent += lp->sent_;
    s.committed += lp->delivered_;
    s.executed += lp->sim_.executed();
    s.cancelled += lp->sim_.cancelled();
  }
  return s;
}

std::uint64_t ParallelEngine::executed() const {
  std::uint64_t n = 0;
  for (const auto& lp : lps_) n += lp->sim_.executed();
  return n;
}

std::uint64_t ParallelEngine::cancelled() const {
  std::uint64_t n = 0;
  for (const auto& lp : lps_) n += lp->sim_.cancelled();
  return n;
}

#if ARCH21_OBS_ENABLED
void ParallelEngine::publish_metrics() const {
  auto& m = obs::MetricsRegistry::global();
  if (!m.enabled()) return;
  const Stats s = stats();
  m.add(m.counter("pdes.window.count"), s.windows);
  m.add(m.counter("pdes.mailbox.sent"), s.sent);
  m.add(m.counter("pdes.mailbox.committed"), s.committed);
  m.gauge_max(m.gauge("pdes.mailbox.max_pending"),
              static_cast<double>(s.max_pending));
}
#endif

// ------------------------------------------------------- LoopbackEngine

LoopbackEngine::LoopbackEngine(const PartitionSpec& spec) : spec_(spec) {
  spec_.validate();
  if (spec_.reserve_events > 0) {
    // One shared kernel hosts every LP's events here, so the per-LP hint
    // scales by the LP count.
    sim_.reserve(spec_.reserve_events * spec_.lps);
  }
  lps_.reserve(spec_.lps);
  for (std::uint32_t i = 0; i < spec_.lps; ++i) {
    auto lp = std::make_unique<Lp>();
    lp->engine_ = this;
    lp->id_ = i;
    lps_.push_back(std::move(lp));
  }
}

Time LoopbackEngine::Lp::now() const noexcept { return engine_->sim_.now(); }

Simulator& LoopbackEngine::Lp::sim() noexcept { return engine_->sim_; }

void LoopbackEngine::Lp::send(std::uint32_t dst, Time delay,
                              const Payload& p) {
  if (dst >= engine_->lps()) {
    throw std::invalid_argument("Lp::send: destination LP out of range");
  }
  if (dst != id_ && !(delay >= engine_->lookahead())) {
    throw std::invalid_argument(
        "Lp::send: cross-LP delay below the engine lookahead");
  }
  Lp* to = engine_->lps_[dst].get();
  engine_->sim_.schedule(delay, [to, p] { to->handler_(*to, p); });
}

}  // namespace arch21::des
