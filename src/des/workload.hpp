#pragma once
// Seeded DES queue workloads, templated over the simulator implementation
// so the exact same event program replays through the production ladder
// queue (des::Simulator) and the reference binary heap
// (des::ReferenceSimulator).  Every executed event appends its id to the
// replay's order log; the differential determinism check
// (tests/test_des_queue.cpp and bench/bench_des_queue.cpp) asserts the
// two logs are identical element-for-element.
//
// All randomness comes from one Rng consumed inside event callbacks in
// execution order, so identical execution order implies identical draws
// -- and any ordering divergence between the two queues derails the
// comparison immediately rather than hiding in aggregate stats.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace arch21::des {

/// Execution-order log plus final kernel counters of one replay.
struct WorkloadResult {
  std::vector<std::uint32_t> order;
  double final_now = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  /// Total queue operations the workload performed (events executed +
  /// cancelled discards); the events/sec numerator for benches.
  std::uint64_t events() const noexcept { return executed + cancelled; }

  bool operator==(const WorkloadResult&) const = default;
};

/// Schedule-heavy: `n` events pre-scheduled over a wide horizon, one in
/// 16 flung far into the future so the stream keeps crossing the
/// ladder/overflow boundary.  Exercises bulk insertion and draining.
template <typename Sim>
WorkloadResult replay_schedule_heavy(std::uint64_t seed, std::uint32_t n) {
  Sim sim;
  sim.reserve(n);
  WorkloadResult out;
  out.order.reserve(n);
  Rng rng(seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    double t = rng.uniform(0.0, 1000.0);
    if (i % 16 == 0) t = 1000.0 + rng.uniform(0.0, 1e6);
    sim.schedule_at(t, [&out, i] { out.order.push_back(i); });
  }
  sim.run();
  out.final_now = sim.now();
  out.executed = sim.executed();
  out.cancelled = sim.cancelled();
  return out;
}

/// The schedule-heavy program again, but fed through the batch
/// schedule_n() API in spans of `batch` events.  Times, ids, and span
/// order match replay_schedule_heavy(seed, n) exactly, so the order log
/// must be identical to the one-at-a-time replay on the same kernel (and
/// to the reference heap's) -- the differential check for schedule_n's
/// amortized bookkeeping.  This is also the PDES window-commit shape: a
/// sorted span of cross-LP messages committed in one call.
template <typename Sim>
WorkloadResult replay_schedule_heavy_batched(std::uint64_t seed,
                                             std::uint32_t n,
                                             std::uint32_t batch = 64) {
  using TimedAction = typename Sim::TimedAction;
  Sim sim;
  sim.reserve(n);
  WorkloadResult out;
  out.order.reserve(n);
  Rng rng(seed);
  if (batch == 0) batch = 1;
  std::vector<TimedAction> span;
  span.reserve(batch);
  for (std::uint32_t i = 0; i < n; ++i) {
    double t = rng.uniform(0.0, 1000.0);
    if (i % 16 == 0) t = 1000.0 + rng.uniform(0.0, 1e6);
    span.push_back(TimedAction{t, [&out, i] { out.order.push_back(i); }});
    if (span.size() == batch) {
      sim.schedule_n(span.data(), span.size());
      span.clear();
    }
  }
  sim.schedule_n(span.data(), span.size());
  sim.run();
  out.final_now = sim.now();
  out.executed = sim.executed();
  out.cancelled = sim.cancelled();
  return out;
}

/// Cancel-heavy: the timeout-per-call pattern of the resilience layer.
/// Each of `calls` arrivals issues a completion plus a cancellable
/// timeout; the completion cancels the timeout (most timeouts die
/// unfired), a fired timeout issues one retry.  Arrivals are 1000x denser
/// than the timeout horizon, so thousands of cancellable events are
/// outstanding at once -- the regime where the reference heap pays a hash
/// insert+find+erase and an O(log n) big-heap pop per event.
template <typename Sim>
WorkloadResult replay_cancel_heavy(std::uint64_t seed, std::uint32_t calls) {
  using Action = typename Sim::Action;
  using Handle =
      decltype(std::declval<Sim&>().schedule_cancellable_at(0.0, Action{}));
  struct Ctx {
    Sim sim;
    Rng rng;
    WorkloadResult out;
    std::vector<Handle> timeouts;
    explicit Ctx(std::uint64_t seed) : rng(seed) {}
  };
  auto ctx = std::make_unique<Ctx>(seed);
  Ctx* c = ctx.get();
  c->sim.reserve(calls);
  c->out.order.reserve(std::size_t{4} * calls);
  c->timeouts.resize(calls);
  constexpr double kTimeout = 5.0;
  double t = 0;
  for (std::uint32_t i = 0; i < calls; ++i) {
    t += c->rng.exponential(0.001);
    c->sim.schedule_at(t, [c, i] {
      c->out.order.push_back(4 * i);
      const double service = c->rng.exponential(1.5);
      c->sim.schedule(service, [c, i] {
        c->out.order.push_back(4 * i + 1);
        c->sim.cancel(c->timeouts[i]);
      });
      c->timeouts[i] = c->sim.schedule_cancellable(kTimeout, [c, i] {
        c->out.order.push_back(4 * i + 2);
        const double retry = c->rng.exponential(1.5);
        c->sim.schedule(retry, [c, i] { c->out.order.push_back(4 * i + 3); });
      });
    });
  }
  c->sim.run();
  c->out.final_now = c->sim.now();
  c->out.executed = c->sim.executed();
  c->out.cancelled = c->sim.cancelled();
  return std::move(c->out);
}

/// Cluster-like replay: fan-out query bursts with per-leaf timeouts and a
/// per-query deadline, mimicking the cloud cluster's event mix (bursts of
/// simultaneous near-future completions, timers that almost always
/// cancel, occasional retries).
template <typename Sim>
WorkloadResult replay_cluster_like(std::uint64_t seed, std::uint32_t queries,
                                   std::uint32_t fanout) {
  using Action = typename Sim::Action;
  using Handle =
      decltype(std::declval<Sim&>().schedule_cancellable_at(0.0, Action{}));
  struct Ctx {
    Sim sim;
    Rng rng;
    WorkloadResult out;
    std::vector<Handle> timeouts;   // one per (query, leaf)
    std::vector<Handle> deadlines;  // one per query
    std::vector<std::uint32_t> replied;
    std::uint32_t fanout = 0;
    explicit Ctx(std::uint64_t seed) : rng(seed) {}
  };
  auto ctx = std::make_unique<Ctx>(seed);
  Ctx* c = ctx.get();
  c->sim.reserve(std::size_t{2} * queries * fanout);
  c->out.order.reserve(std::size_t{3} * queries * (fanout + 1));
  c->timeouts.resize(std::size_t{1} * queries * fanout);
  c->deadlines.resize(queries);
  c->replied.assign(queries, 0);
  c->fanout = fanout;
  constexpr double kLeafTimeout = 6.0;
  constexpr double kDeadline = 20.0;
  const std::uint32_t stride = 4 * fanout + 2;
  double t = 0;
  for (std::uint32_t q = 0; q < queries; ++q) {
    t += c->rng.exponential(1.0);
    const std::uint32_t base = q * stride;
    c->sim.schedule_at(t, [c, q, base] {
      c->out.order.push_back(base);
      c->deadlines[q] = c->sim.schedule_cancellable(
          kDeadline, [c, base] { c->out.order.push_back(base + 1); });
      for (std::uint32_t l = 0; l < c->fanout; ++l) {
        const std::uint32_t call = q * c->fanout + l;
        const double service = c->rng.exponential(2.0);
        c->sim.schedule(service, [c, q, base, l, call] {
          c->out.order.push_back(base + 2 + l);
          c->sim.cancel(c->timeouts[call]);
          if (++c->replied[q] == c->fanout) c->sim.cancel(c->deadlines[q]);
        });
        c->timeouts[call] = c->sim.schedule_cancellable(
            kLeafTimeout, [c, base, l, call] {
              c->out.order.push_back(base + 2 + c->fanout + l);
              const double retry = c->rng.exponential(2.0);
              c->sim.schedule(retry, [c, base, l] {
                c->out.order.push_back(base + 2 + 2 * c->fanout + l);
              });
            });
      }
    });
  }
  c->sim.run();
  c->out.final_now = c->sim.now();
  c->out.executed = c->sim.executed();
  c->out.cancelled = c->sim.cancelled();
  return std::move(c->out);
}

}  // namespace arch21::des
