#include "des/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#if ARCH21_OBS_ENABLED
#include "obs/trace.hpp"
#endif

namespace arch21::des {

#if ARCH21_OBS_ENABLED
void Simulator::set_trace(obs::TraceBuffer* t, std::uint32_t tid) {
  trace_ = t;
  trace_tid_ = tid;
  if (t) {
    tr_fire_ = t->intern("des.fire");
    tr_discard_ = t->intern("des.discard");
  }
}
#endif

// --------------------------------------------------------------- insert

void Simulator::insert(Event ev) {
  if (width_ > 0) {
    // Track the live scheduling horizon: a decaying max of how far ahead
    // of the clock events are being scheduled.  reanchor() sizes the
    // window to kSpreadSlack times this, so in steady state new events
    // land in the ladder, not the overflow tier.  The 1/1024 decay lets
    // the window shrink again within ~a thousand events when a phase
    // with long timers ends.
    const double ahead = ev.t - now_;
    live_spread_ -= live_spread_ * (1.0 / 1024.0);
    if (ahead > live_spread_ && ahead < kForever) live_spread_ = ahead;
  }
  place(std::move(ev));
}

void Simulator::place(Event ev) {
  ++size_;
  if (width_ > 0) {
    // Bucket index is floor((t - origin) / width), computed in doubles so
    // absurdly far timestamps (kForever) cannot overflow the integer
    // conversion.  floor of a monotone function is monotone, so bucket
    // order always respects timestamp order; the clamp to the cursor
    // bucket (events scheduled "behind" the cursor after a run(until)
    // stopped the clock early) only ever moves an event *earlier*, which
    // the per-bucket heap absorbs without breaking order.
    const double rel = (ev.t - origin_) / width_;
    if (rel < static_cast<double>(cur_bucket_ + kBucketCount)) {
      std::uint64_t b = cur_bucket_;
      if (rel > static_cast<double>(cur_bucket_)) {
        b = static_cast<std::uint64_t>(rel);
        if (b < cur_bucket_) b = cur_bucket_;  // fp edge at the boundary
      }
      auto& bucket = buckets_[b & kBucketMask];
      bucket.push_back(std::move(ev));
      // Only the bucket under the cursor is kept as a heap; the rest are
      // append-only until the cursor reaches them (peek() heapifies).
      if (b == heapified_bucket_) {
        std::push_heap(bucket.begin(), bucket.end(), Later{});
      }
      ++ladder_size_;
      return;
    }
  }
  overflow_.push_back(std::move(ev));
  if (overflow_heapified_) {
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void Simulator::reanchor() {
  // Called only when every bucket is empty: the window geometry may
  // change freely because no event straddles old and new placement.
  //
  // Width policy: at least kGapsPerBucket mean inter-execution gaps per
  // bucket (the density floor), widened so the whole window spans
  // kSpreadSlack times the live scheduling horizon -- the regime where
  // timeout-per-call workloads keep thousands of timers ~spread ahead of
  // the clock, which must land in the ladder, not churn through the
  // overflow heap.  Before any execution history exists (everything was
  // scheduled ahead of the first run), estimate the gap from the overflow
  // backlog's span and population instead.
  double lo = overflow_.front().t;
  double hi = lo;
  if (overflow_heapified_) {
    // Heap min is the next event to fire; hi is only needed when there
    // is no gap history, which cannot outlast the first reanchor.
  } else {
    for (const Event& e : overflow_) {
      lo = std::min(lo, e.t);
      hi = std::max(hi, e.t);
    }
  }
  double w = gap_ewma_ * kGapsPerBucket;
  if (!(w > 0)) {
    if (overflow_heapified_) {
      for (const Event& e : overflow_) hi = std::max(hi, e.t);
    }
    w = kGapsPerBucket * (hi - lo) / static_cast<double>(overflow_.size());
    if (!(w > 0)) w = 1.0;  // all at one timestamp; any width works
  }
  const double spread_w = kSpreadSlack * live_spread_ / kBucketCount;
  if (spread_w > w) w = spread_w;
  width_ = w;
  origin_ = lo;
  cur_bucket_ = 0;
  heapified_bucket_ = kNoBucket;  // absolute numbering restarted
  if (!overflow_heapified_) {
    // First anchor over a pre-scheduled backlog: partition the unsorted
    // overflow vector in one O(n) pass -- window events drop into their
    // buckets (append-only; heapified lazily by the cursor), the rest are
    // compacted in place and heapified once.  No per-event O(log n).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      Event& e = overflow_[i];
      const double rel = (e.t - origin_) / width_;
      if (rel < static_cast<double>(kBucketCount)) {
        std::uint64_t b = rel > 0 ? static_cast<std::uint64_t>(rel) : 0;
        if (b >= kBucketCount) b = kBucketCount - 1;  // fp edge
        buckets_[b].push_back(std::move(e));
        ++ladder_size_;
      } else {
        if (keep != i) overflow_[keep] = std::move(e);
        ++keep;
      }
    }
    overflow_.resize(keep);
    std::make_heap(overflow_.begin(), overflow_.end(), Later{});
    overflow_heapified_ = true;
    return;
  }
  // Steady state: migrate the window prefix of the overflow heap by
  // popping -- O(m log n) for the m events moved, never a full scan, so
  // a far-future trickle drains one window at a time.  At least the heap
  // minimum fits (rel == 0), so the ladder always gains an event.
  // Bucket/overflow capacities are retained across windows, so steady
  // state allocates nothing.
  while (!overflow_.empty()) {
    const double rel = (overflow_.front().t - origin_) / width_;
    if (!(rel < static_cast<double>(kBucketCount))) break;
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event e = std::move(overflow_.back());
    overflow_.pop_back();
    std::uint64_t b = rel > 0 ? static_cast<std::uint64_t>(rel) : 0;
    if (b >= kBucketCount) b = kBucketCount - 1;  // fp edge
    buckets_[b].push_back(std::move(e));
    ++ladder_size_;
  }
}

const Simulator::Event* Simulator::peek() {
  if (size_ == 0) return nullptr;
  if (ladder_size_ == 0) {
    reanchor();  // overflow is nonempty (size_ > 0) and its min fits the
                 // new window by construction, so the ladder gains >= 1
  }
  // Advance the cursor to the next nonempty bucket.  Every ladder event
  // sits at an absolute bucket >= the cursor (inserts clamp), and within
  // cur_bucket_ + kBucketCount of some earlier cursor position, so this
  // scan is bounded and amortizes to O(1) per event.
  while (buckets_[cur_bucket_ & kBucketMask].empty()) ++cur_bucket_;
  auto& cur = buckets_[cur_bucket_ & kBucketMask];
  if (heapified_bucket_ != cur_bucket_) {
    // First visit since the bucket filled: one make_heap instead of a
    // push_heap per insert (amortized O(1) per event).
    std::make_heap(cur.begin(), cur.end(), Later{});
    heapified_bucket_ = cur_bucket_;
  }
  const Event& lh = cur.front();
  // An overflow event can become earlier than the ladder head as the
  // window slides past its insert-time horizon; order is decided by the
  // exact (t, seq) comparison, never by which tier an event sits in.
  if (!overflow_.empty()) {
    if (!overflow_heapified_) {
      std::make_heap(overflow_.begin(), overflow_.end(), Later{});
      overflow_heapified_ = true;
    }
    const Event& oh = overflow_.front();
    if (oh.t < lh.t || (oh.t == lh.t && oh.seq < lh.seq)) {
      head_in_overflow_ = true;
      return &oh;
    }
  }
  head_in_overflow_ = false;
  return &lh;
}

Simulator::Event Simulator::pop_head() {
  auto& v = head_in_overflow_ ? overflow_ : buckets_[cur_bucket_ & kBucketMask];
  std::pop_heap(v.begin(), v.end(), Later{});
  Event ev = std::move(v.back());
  v.pop_back();
  if (!head_in_overflow_) --ladder_size_;
  --size_;
  return ev;
}

// ------------------------------------------------------------ scheduling

std::uint32_t Simulator::store_action(Action a) {
  if (!free_actions_.empty()) {
    const std::uint32_t idx = free_actions_.back();
    free_actions_.pop_back();
    actions_[idx] = std::move(a);
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(actions_.size());
  actions_.push_back(std::move(a));
  return idx;
}

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  insert(Event{t, next_seq_++, kNoSlot, store_action(std::move(action))});
}

void Simulator::schedule_n(TimedAction* evs, std::size_t n) {
  if (n == 0) return;
  // One validation pass up front (so a bad entry throws before any state
  // mutates) that also finds the span's scheduling horizon.
  double max_ahead = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (evs[i].t < now_) {
      throw std::invalid_argument("Simulator::schedule_n: time in the past");
    }
    const double ahead = evs[i].t - now_;
    if (ahead > max_ahead && ahead < kForever) max_ahead = ahead;
  }
  // Reserve the action slab for the whole span (free-list hits don't
  // grow it, but the worst case is n fresh slots).
  const std::size_t fresh =
      n > free_actions_.size() ? n - free_actions_.size() : 0;
  actions_.reserve(actions_.size() + fresh);
  // One spread-estimator update for the batch instead of n decay+max
  // steps.  This changes only ladder geometry (window width at the next
  // re-anchor), which is tuning, never ordering -- the determinism
  // contract is independent of bucket geometry by construction.
  if (width_ > 0) {
    live_spread_ -= live_spread_ * (1.0 / 1024.0);
    if (max_ahead > live_spread_) live_spread_ = max_ahead;
  }
  for (std::size_t i = 0; i < n; ++i) {
    place(Event{evs[i].t, next_seq_++, kNoSlot,
                store_action(std::move(evs[i].action))});
  }
}

EventHandle Simulator::schedule_cancellable_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  CancelSlot& cs = slots_[s];
  cs.live = true;
  cs.cancelled = false;
  const std::uint32_t gen = cs.gen;
  insert(Event{t, next_seq_++, s, store_action(std::move(action))});
  return EventHandle{s, gen};
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slots_.size()) return false;
  CancelSlot& cs = slots_[h.slot];
  if (!cs.live || cs.gen != h.gen || cs.cancelled) return false;
  cs.cancelled = true;
  return true;
}

// --------------------------------------------------------------- running

std::uint64_t Simulator::run(Time until) {
  std::uint64_t ran = 0;
  while (step(until)) ++ran;
  return ran;
}

bool Simulator::step(Time until) {
  for (;;) {
    const Event* head = peek();
    if (!head) return false;
    if (head->t > until) {
      now_ = until;
      return false;
    }
    Event ev = pop_head();
    if (ev.slot != kNoSlot) {
      CancelSlot& cs = slots_[ev.slot];
      const bool was_cancelled = cs.cancelled;
      cs.live = false;
      cs.cancelled = false;
      ++cs.gen;  // stale handles can never touch this slot's next tenant
      free_slots_.push_back(ev.slot);
      if (was_cancelled) {
        // Discard without advancing the clock or executing: a cancelled
        // event behaves as if it had never been scheduled.  Destroy the
        // closure (it may hold resources) and recycle its slab index.
        actions_[ev.act] = Action{};
        free_actions_.push_back(ev.act);
        ++cancelled_;
#if ARCH21_OBS_ENABLED
        if (trace_) trace_->instant(tr_discard_, ev.t, trace_tid_);
#endif
        continue;
      }
    }
    now_ = ev.t;
    ++executed_;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_fire_, ev.t, trace_tid_);
#endif
    // Feed the ladder-width estimator (nonzero gaps only: simultaneous
    // events share a bucket regardless of width).
    if (executed_ > 1 && ev.t > last_exec_t_) {
      const double gap = ev.t - last_exec_t_;
      gap_ewma_ = gap_ewma_ > 0 ? gap_ewma_ + 0.02 * (gap - gap_ewma_) : gap;
    }
    last_exec_t_ = ev.t;
    // Move the closure out and recycle its index *before* invoking: the
    // action may schedule new events that reuse the slot immediately.
    Action a = std::move(actions_[ev.act]);
    free_actions_.push_back(ev.act);
    a();
    return true;
  }
}

}  // namespace arch21::des
