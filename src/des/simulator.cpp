#include "des/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace arch21::des {

std::uint64_t Simulator::enqueue(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push_back(Event{t, seq, std::move(action)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return seq;
}

void Simulator::schedule_at(Time t, Action action) {
  enqueue(t, std::move(action));
}

EventHandle Simulator::schedule_cancellable_at(Time t, Action action) {
  const std::uint64_t seq = enqueue(t, std::move(action));
  cancellable_.emplace(seq, false);
  return EventHandle{seq};
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto it = cancellable_.find(h.seq);
  if (it == cancellable_.end() || it->second) return false;
  it->second = true;
  return true;
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t ran = 0;
  while (step(until)) ++ran;
  return ran;
}

bool Simulator::step(Time until) {
  for (;;) {
    if (queue_.empty()) return false;
    if (queue_.front().t > until) {
      now_ = until;
      return false;
    }
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    if (!cancellable_.empty()) {
      const auto it = cancellable_.find(ev.seq);
      if (it != cancellable_.end()) {
        const bool was_cancelled = it->second;
        cancellable_.erase(it);
        if (was_cancelled) {
          // Discard without advancing the clock or executing: a cancelled
          // event behaves as if it had never been scheduled.
          ++cancelled_;
          continue;
        }
      }
    }
    now_ = ev.t;
    ++executed_;
    ev.action();
    return true;
  }
}

}  // namespace arch21::des
