#include "des/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace arch21::des {

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t ran = 0;
  while (step(until)) ++ran;
  return ran;
}

bool Simulator::step(Time until) {
  if (queue_.empty()) return false;
  if (queue_.top().t > until) {
    now_ = until;
    return false;
  }
  // priority_queue::top() is const; move out via const_cast on the action
  // only after copying the header fields.  This is safe because we pop
  // immediately and never observe the moved-from element.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.action();
  return true;
}

}  // namespace arch21::des
