#include "des/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#if ARCH21_OBS_ENABLED
#include "obs/trace.hpp"
#endif

namespace arch21::des {

#if ARCH21_OBS_ENABLED
void Simulator::set_trace(obs::TraceBuffer* t, std::uint32_t tid) {
  trace_ = t;
  trace_tid_ = tid;
  if (t) {
    tr_fire_ = t->intern("des.fire");
    tr_discard_ = t->intern("des.discard");
  }
}
#endif

// ----------------------------------------------- SoA min-heap primitives
//
// A bucket heap is two parallel lanes; every comparison reads the 16-byte
// key lane only, and each sift moves key and payload in lockstep.  Keys
// are unique, so the pop sequence of any valid min-heap over them is the
// exact (t, seq) sorted order -- internal heap layout is unobservable.

void Simulator::sift_up(Key* k, Ref* r, std::size_t i) noexcept {
  const Key kv = k[i];
  const Ref rv = r[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(kv, k[parent])) break;
    k[i] = k[parent];
    r[i] = r[parent];
    i = parent;
  }
  k[i] = kv;
  r[i] = rv;
}

void Simulator::sift_down(Key* k, Ref* r, std::size_t n,
                          std::size_t i) noexcept {
  const Key kv = k[i];
  const Ref rv = r[i];
  for (;;) {
    std::size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && earlier(k[c + 1], k[c])) ++c;
    if (!earlier(k[c], kv)) break;
    k[i] = k[c];
    r[i] = r[c];
    i = c;
  }
  k[i] = kv;
  r[i] = rv;
}

void Simulator::purge_cancelled(Bucket& b) {
  const std::size_t n = b.keys.size();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = b.refs[i].slot;
    if (slot != kNoSlot && slots_[slot].cancelled) {
      // Same bookkeeping as the fire-time discard in fire_event().
      CancelSlot& cs = slots_[slot];
      cs.live = false;
      cs.cancelled = false;
      ++cs.gen;
      free_slots_.push_back(slot);
      actions_[b.refs[i].act] = Action{};
      free_actions_.push_back(b.refs[i].act);
      ++cancelled_;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_discard_, b.keys[i].t, trace_tid_);
#endif
      continue;
    }
    if (keep != i) {
      b.keys[keep] = b.keys[i];
      b.refs[keep] = b.refs[i];
    }
    ++keep;
  }
  if (keep != n) {
    b.keys.resize(keep);
    b.refs.resize(keep);
    ladder_size_ -= n - keep;
    size_ -= n - keep;
  }
}

void Simulator::sort_bucket(Bucket& b) {
  const std::size_t n = b.keys.size();
  if (n < 2) return;
  // Join the lanes into contiguous 24-byte records, introsort them (far
  // fewer branch misses and cache misses than n heap pops over the same
  // data), and split back.  The two O(n) copies are noise next to the
  // O(n log n) compare/swap work they make cheap.
  sort_buf_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sort_buf_[i] =
        Event{b.keys[i].t, b.keys[i].seq, b.refs[i].slot, b.refs[i].act};
  }
  std::sort(sort_buf_.begin(), sort_buf_.end(),
            [](const Event& a, const Event& c) noexcept {
              if (a.t != c.t) return a.t < c.t;
              return a.seq < c.seq;
            });
  for (std::size_t i = 0; i < n; ++i) {
    b.keys[i] = Key{sort_buf_[i].t, sort_buf_[i].seq};
    b.refs[i] = Ref{sort_buf_[i].slot, sort_buf_[i].act};
  }
}

void Simulator::pop_min(Bucket& b, Event& out) noexcept {
  out.t = b.keys.front().t;
  out.seq = b.keys.front().seq;
  out.slot = b.refs.front().slot;
  out.act = b.refs.front().act;
  const std::size_t n = b.keys.size() - 1;
  if (n > 0) {
    b.keys.front() = b.keys[n];
    b.refs.front() = b.refs[n];
  }
  b.keys.pop_back();
  b.refs.pop_back();
  if (n > 1) sift_down(b.keys.data(), b.refs.data(), n, 0);
}

// --------------------------------------------------------------- insert

void Simulator::insert(Event ev) {
  if (width_ > 0) {
    // Track the live scheduling horizon: a decaying max of how far ahead
    // of the clock events are being scheduled.  reanchor() sizes the
    // window to kSpreadSlack times this, so in steady state new events
    // land in the ladder, not the overflow tier.  The 1/1024 decay lets
    // the window shrink again within ~a thousand events when a phase
    // with long timers ends.
    const double ahead = ev.t - now_;
    live_spread_ -= live_spread_ * (1.0 / 1024.0);
    if (ahead > live_spread_ && ahead < kForever) live_spread_ = ahead;
  }
  place(ev);
}

void Simulator::place(Event ev) {
  // Splice check for the batched drain: an insert below the drain's
  // bound must fire within the active drain, so splice it into the
  // unfired remainder at its key position -- the span stays sorted and
  // the drain keeps going without an abort.  The sentinel (-inf) makes
  // this compare false outside a drain.  Inserts can never be due
  // before (or at) the element currently firing: t >= now_ and seq is
  // monotone, so the insert point is strictly inside [batch_pos_, end).
  // Span events are not counted in size_ (they were decremented when the
  // slice was popped), keeping the accounting uniform across the span.
  if (earlier(Key{ev.t, ev.seq}, batch_limit_)) [[unlikely]] {
    const Key k{ev.t, ev.seq};
    const auto it = std::upper_bound(
        scratch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_),
        scratch_.end(), k, [](const Key& a, const Event& c) noexcept {
          return earlier(a, Key{c.t, c.seq});
        });
    scratch_.insert(it, ev);
    return;
  }
  ++size_;
  if (width_ > 0) {
    // Bucket index is floor((t - origin) / width), computed in doubles so
    // absurdly far timestamps (kForever) cannot overflow the integer
    // conversion.  floor of a monotone function is monotone, so bucket
    // order always respects timestamp order; the clamp to the cursor
    // bucket (events scheduled "behind" the cursor after a run(until)
    // stopped the clock early) only ever moves an event *earlier*, which
    // the per-bucket heap absorbs without breaking order.
    const double rel = (ev.t - origin_) / width_;
    if (rel < static_cast<double>(cur_bucket_ + kBucketCount)) {
      std::uint64_t b = cur_bucket_;
      if (rel > static_cast<double>(cur_bucket_)) {
        b = static_cast<std::uint64_t>(rel);
        if (b < cur_bucket_) b = cur_bucket_;  // fp edge at the boundary
      }
      place_ladder(ev, b);
      return;
    }
  }
  // Overflow insert: O(1) append to the staging tail plus a cached-min
  // update; ordering work is deferred until the tier must yield events.
  overflow_staging_.push_back(ev);
  if (earlier(Key{ev.t, ev.seq}, staging_min_)) {
    staging_min_ = Key{ev.t, ev.seq};
  }
}

void Simulator::overflow_merge_staging() {
  if (overflow_staging_.empty()) return;
  std::sort(overflow_staging_.begin(), overflow_staging_.end(), Later{});
  const auto mid = static_cast<std::ptrdiff_t>(overflow_.size());
  overflow_.insert(overflow_.end(), overflow_staging_.begin(),
                   overflow_staging_.end());
  std::inplace_merge(overflow_.begin(), overflow_.begin() + mid,
                     overflow_.end(), Later{});
  overflow_staging_.clear();
  staging_min_ = Key{kForever, ~std::uint64_t{0}};
}

void Simulator::place_ladder(const Event& ev, std::uint64_t b) {
  Bucket& bucket = buckets_[b & kBucketMask];
  occ_set(b & kBucketMask);
  // Only the bucket under the cursor is kept ordered; the rest are
  // append-only until the cursor reaches them (peek() sorts).
  if (b == heapified_bucket_) {
    if (cur_sorted_) {
      if (bucket.keys.empty() ||
          !earlier(Key{ev.t, ev.seq}, bucket.keys.back())) {
        // In-order append: the bucket stays fully sorted.
        bucket.keys.push_back(Key{ev.t, ev.seq});
        bucket.refs.push_back(Ref{ev.slot, ev.act});
      } else if (bucket.keys.size() - cur_head_ <= 256) {
        // Small bucket: absorb the out-of-order insert by shifting (one
        // short memmove) so drains stay contiguous slices.  The cap
        // bounds the shift cost; larger buckets drop to heap
        // maintenance below.
        const Key k{ev.t, ev.seq};
        auto it = std::upper_bound(
            bucket.keys.begin() + static_cast<std::ptrdiff_t>(cur_head_),
            bucket.keys.end(), k,
            [](const Key& a, const Key& c) noexcept { return earlier(a, c); });
        const std::ptrdiff_t pos = it - bucket.keys.begin();
        bucket.keys.insert(it, k);
        bucket.refs.insert(bucket.refs.begin() + pos, Ref{ev.slot, ev.act});
      } else {
        // Out-of-order insert: compact the consumed prefix and drop to
        // plain heap maintenance for the rest of this visit (a sorted
        // array is a valid heap, so sift_up just works).
        bucket.keys.erase(bucket.keys.begin(),
                          bucket.keys.begin() +
                              static_cast<std::ptrdiff_t>(cur_head_));
        bucket.refs.erase(bucket.refs.begin(),
                          bucket.refs.begin() +
                              static_cast<std::ptrdiff_t>(cur_head_));
        cur_head_ = 0;
        cur_sorted_ = false;
        bucket.keys.push_back(Key{ev.t, ev.seq});
        bucket.refs.push_back(Ref{ev.slot, ev.act});
        sift_up(bucket.keys.data(), bucket.refs.data(),
                bucket.keys.size() - 1);
      }
    } else {
      bucket.keys.push_back(Key{ev.t, ev.seq});
      bucket.refs.push_back(Ref{ev.slot, ev.act});
      sift_up(bucket.keys.data(), bucket.refs.data(), bucket.keys.size() - 1);
    }
  } else {
    bucket.keys.push_back(Key{ev.t, ev.seq});
    bucket.refs.push_back(Ref{ev.slot, ev.act});
  }
  ++ladder_size_;
}

void Simulator::migrate_overflow() {
  // The overflow head has slid inside the ladder window (peek() saw it
  // earlier than the ladder head, which always lies in the window).
  // Move it -- and every further overflow event the window now covers --
  // into the ladder buckets, so these events fire through the batched
  // bucket drains instead of paying a peek/pop/fire round-trip each.
  // Pops come off the back of the sorted run, O(1) per event; the
  // staging tail folds in (one sort + merge) only if it holds the head.
  // Events stay counted in size_; only the tier changes.
  const double limit = static_cast<double>(cur_bucket_ + kBucketCount);
  for (;;) {
    if (overflow_.empty() ||
        (!overflow_staging_.empty() &&
         earlier(staging_min_,
                 Key{overflow_.back().t, overflow_.back().seq}))) {
      overflow_merge_staging();
    }
    const Event e = overflow_.back();
    overflow_.pop_back();
    const double rel = (e.t - origin_) / width_;
    std::uint64_t b = cur_bucket_;
    if (rel > static_cast<double>(cur_bucket_)) {
      b = static_cast<std::uint64_t>(rel);
      if (b < cur_bucket_) b = cur_bucket_;  // fp edge at the boundary
    }
    place_ladder(e, b);
    if (overflow_empty()) return;
    const Key h = overflow_head();
    if (!((h.t - origin_) / width_ < limit)) return;
  }
}

void Simulator::reanchor() {
  // Called only when every bucket is empty (so the occupancy bitmap is
  // all-zero too): the window geometry may change freely because no
  // event straddles old and new placement.
  //
  // Width policy: at least kGapsPerBucket mean inter-execution gaps per
  // bucket (the density floor), widened so the whole window spans
  // kSpreadSlack times the live scheduling horizon -- the regime where
  // timeout-per-call workloads keep thousands of timers ~spread ahead of
  // the clock, which must land in the ladder, not churn through the
  // overflow heap.  Before any execution history exists (everything was
  // scheduled ahead of the first run), estimate the gap from the overflow
  // backlog's span and population instead.
  if (width_ == 0) {
    // First anchor over a pre-scheduled backlog.  Nothing has migrated
    // yet, so the sorted run is empty and every event sits in the
    // unsorted staging tail: scan it for the span, partition it in one
    // O(n) pass -- window events drop into their buckets (append-only;
    // sorted lazily by the cursor), the rest are compacted in place and
    // sorted once to become the run.  No per-event O(log n).
    double lo = overflow_staging_.front().t;
    double hi = lo;
    for (const Event& e : overflow_staging_) {
      lo = std::min(lo, e.t);
      hi = std::max(hi, e.t);
    }
    double w = gap_ewma_ * kGapsPerBucket;
    if (!(w > 0)) {
      w = kGapsPerBucket * (hi - lo) /
          static_cast<double>(overflow_staging_.size());
      if (!(w > 0)) w = 1.0;  // all at one timestamp; any width works
    }
    const double spread_w = kSpreadSlack * live_spread_ / kBucketCount;
    if (spread_w > w) w = spread_w;
    width_ = w;
    origin_ = lo;
    anchor_executed_ = executed_;
    cur_bucket_ = 0;
    heapified_bucket_ = kNoBucket;  // absolute numbering restarted
    cur_sorted_ = false;
    cur_head_ = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < overflow_staging_.size(); ++i) {
      const Event& e = overflow_staging_[i];
      const double rel = (e.t - origin_) / width_;
      if (rel < static_cast<double>(kBucketCount)) {
        std::uint64_t b = rel > 0 ? static_cast<std::uint64_t>(rel) : 0;
        if (b >= kBucketCount) b = kBucketCount - 1;  // fp edge
        buckets_[b].keys.push_back(Key{e.t, e.seq});
        buckets_[b].refs.push_back(Ref{e.slot, e.act});
        occ_set(b);
        ++ladder_size_;
      } else {
        if (keep != i) overflow_staging_[keep] = e;
        ++keep;
      }
    }
    overflow_staging_.resize(keep);
    overflow_.swap(overflow_staging_);  // staging keeps its capacity via
                                        // the (reserved) old run vector
    std::sort(overflow_.begin(), overflow_.end(), Later{});
    staging_min_ = Key{kForever, ~std::uint64_t{0}};
    return;
  }
  // Steady state: fold any staged inserts into the sorted run (the only
  // potentially super-constant step, amortized over the inserts that
  // filled the staging tail), then set the window and migrate its prefix
  // by popping off the back -- O(1) per event moved, never a full scan,
  // so a far-future trickle drains one window at a time.  At least the
  // overall minimum fits (rel == 0), so the ladder always gains an
  // event.  Bucket/overflow capacities are retained across windows, so
  // steady state allocates nothing.
  overflow_merge_staging();
  const double lo = overflow_.back().t;
  double w = gap_ewma_ * kGapsPerBucket;
  if (!(w > 0)) {
    const double hi = overflow_.front().t;  // descending: front is max
    w = kGapsPerBucket * (hi - lo) / static_cast<double>(overflow_.size());
    if (!(w > 0)) w = 1.0;  // all at one timestamp; any width works
  }
  const double spread_w = kSpreadSlack * live_spread_ / kBucketCount;
  if (spread_w > w) w = spread_w;
  width_ = w;
  origin_ = lo;
  anchor_executed_ = executed_;
  cur_bucket_ = 0;
  heapified_bucket_ = kNoBucket;  // absolute numbering restarted
  cur_sorted_ = false;
  cur_head_ = 0;
  while (!overflow_.empty()) {
    const double rel = (overflow_.back().t - origin_) / width_;
    if (!(rel < static_cast<double>(kBucketCount))) break;
    const Event e = overflow_.back();
    overflow_.pop_back();
    std::uint64_t b = rel > 0 ? static_cast<std::uint64_t>(rel) : 0;
    if (b >= kBucketCount) b = kBucketCount - 1;  // fp edge
    buckets_[b].keys.push_back(Key{e.t, e.seq});
    buckets_[b].refs.push_back(Ref{e.slot, e.act});
    occ_set(b);
    ++ladder_size_;
  }
}

bool Simulator::maybe_rebucket() {
  // Only judge the fit once the gap estimator has real history behind
  // it, and re-fit only on a >2x mismatch either way: the EWMA moves
  // smoothly, so once the width tracks it, re-fits need a genuine
  // regime change, not noise.
  constexpr std::uint64_t kMinExecuted = 64;
  if (executed_ - anchor_executed_ < kMinExecuted || !(gap_ewma_ > 0)) {
    return false;
  }
  double target = gap_ewma_ * kGapsPerBucket;
  const double spread_w = kSpreadSlack * live_spread_ / kBucketCount;
  if (spread_w > target) target = spread_w;
  if (!(target > width_ * 2.0) && !(target * 2.0 < width_)) return false;
  // Collect every live ladder event (the cursor bucket's consumed prefix
  // is dead and excluded), re-seat the window at the clock, and re-place
  // under the new width; events the narrower window no longer covers
  // drop to the overflow staging tail.  All pending events satisfy
  // t >= now_ (firing follows global key order), so origin_ = now_ is a
  // lower bound and bucket indices stay non-negative.
  sort_buf_.clear();
  for (std::size_t word = 0; word < occ_.size(); ++word) {
    std::uint64_t bits = occ_[word];
    while (bits != 0) {
      const auto ring = (word << 6) |
                        static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      Bucket& bk = buckets_[ring];
      const std::size_t start =
          (ring == (cur_bucket_ & kBucketMask) && cur_sorted_) ? cur_head_ : 0;
      for (std::size_t i = start; i < bk.keys.size(); ++i) {
        sort_buf_.push_back(Event{bk.keys[i].t, bk.keys[i].seq,
                                  bk.refs[i].slot, bk.refs[i].act});
      }
      bk.keys.clear();
      bk.refs.clear();
    }
  }
  occ_.fill(0);
  width_ = target;
  origin_ = now_;
  cur_bucket_ = 0;
  heapified_bucket_ = kNoBucket;
  cur_sorted_ = false;
  cur_head_ = 0;
  ladder_size_ = 0;
  anchor_executed_ = executed_;
  for (const Event& e : sort_buf_) {
    const double rel = (e.t - origin_) / width_;
    if (rel < static_cast<double>(kBucketCount)) {
      std::uint64_t b = rel > 0 ? static_cast<std::uint64_t>(rel) : 0;
      if (b >= kBucketCount) b = kBucketCount - 1;  // fp edge
      buckets_[b].keys.push_back(Key{e.t, e.seq});
      buckets_[b].refs.push_back(Ref{e.slot, e.act});
      occ_set(b);
      ++ladder_size_;
    } else {
      overflow_staging_.push_back(e);
      if (earlier(Key{e.t, e.seq}, staging_min_)) {
        staging_min_ = Key{e.t, e.seq};
      }
    }
  }
  sort_buf_.clear();
  return true;
}

const Simulator::Key* Simulator::peek() {
  if (size_ == 0) return nullptr;
  Bucket* curp;
  for (;;) {
    if (ladder_size_ == 0) {
      if (overflow_empty()) return nullptr;  // purges drained everything
      reanchor();  // the overflow minimum fits the new window by
                   // construction, so the ladder gains >= 1 event
    }
    // Advance the cursor to the next nonempty bucket.  Every ladder
    // event sits at an absolute bucket >= the cursor (inserts clamp),
    // and within cur_bucket_ + kBucketCount of some earlier cursor
    // position, so the occupancy-bitmap scan is bounded: finish the word
    // under the cursor, then test 64 buckets per word.
    {
      const std::size_t ring = cur_bucket_ & kBucketMask;
      const std::uint64_t head_word = occ_[ring >> 6] >> (ring & 63);
      if (head_word != 0) {
        cur_bucket_ += static_cast<std::uint64_t>(std::countr_zero(head_word));
      } else {
        cur_bucket_ += 64 - (ring & 63);
        for (;;) {
          const std::uint64_t word = occ_[(cur_bucket_ & kBucketMask) >> 6];
          if (word != 0) {
            cur_bucket_ += static_cast<std::uint64_t>(std::countr_zero(word));
            break;
          }
          cur_bucket_ += 64;
        }
      }
    }
    curp = &buckets_[cur_bucket_ & kBucketMask];
    if (heapified_bucket_ == cur_bucket_) break;
    // Fresh bucket: the one spot where ladder geometry is re-judged
    // against the gap estimator (cheap compare; the re-fit itself is
    // rare) before the first-visit purge + sort.
    if (maybe_rebucket()) continue;
    // First visit since the bucket filled: drop already-cancelled events
    // in one compaction pass, then one sort instead of a sift_up per
    // insert (amortized O(log bucket) per event, contiguous).
    purge_cancelled(*curp);
    if (curp->keys.empty()) {
      occ_clear(cur_bucket_ & kBucketMask);
      if (size_ == 0) return nullptr;
      continue;  // everything here was cancelled; keep scanning
    }
    sort_bucket(*curp);
    heapified_bucket_ = cur_bucket_;
    cur_sorted_ = true;
    cur_head_ = 0;
    break;
  }
  Bucket& cur = *curp;
  const Key& lh = cur.keys[cur_sorted_ ? cur_head_ : 0];
  // An overflow event can become earlier than the ladder head as the
  // window slides past its insert-time horizon; order is decided by the
  // exact (t, seq) comparison, never by which tier an event sits in.
  if (!overflow_empty()) {
    const Key oh = overflow_head();  // O(1): run back vs cached staging min
    if (earlier(oh, lh)) {
      head_in_overflow_ = true;
      overflow_head_key_ = oh;
      return &overflow_head_key_;
    }
  }
  head_in_overflow_ = false;
  return &lh;
}

Simulator::Event Simulator::pop_head() {
  // Callers migrate the overflow head into the ladder first (see
  // migrate_overflow), so the head is always in the cursor bucket here.
  Event ev;
  {
    Bucket& b = buckets_[cur_bucket_ & kBucketMask];
    if (cur_sorted_) {
      ev = Event{b.keys[cur_head_].t, b.keys[cur_head_].seq,
                 b.refs[cur_head_].slot, b.refs[cur_head_].act};
      if (++cur_head_ == b.keys.size()) {
        b.keys.clear();
        b.refs.clear();
        cur_head_ = 0;
        occ_clear(cur_bucket_ & kBucketMask);
      }
    } else {
      pop_min(b, ev);
      if (b.keys.empty()) occ_clear(cur_bucket_ & kBucketMask);
    }
    --ladder_size_;
  }
  --size_;
  return ev;
}

// ------------------------------------------------------------ scheduling

std::uint32_t Simulator::store_action(Action a) {
  if (!free_actions_.empty()) {
    const std::uint32_t idx = free_actions_.back();
    free_actions_.pop_back();
    actions_[idx] = std::move(a);
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(actions_.size());
  actions_.push_back(std::move(a));
  return idx;
}

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  insert(Event{t, next_seq_++, kNoSlot, store_action(std::move(action))});
}

void Simulator::schedule_n(TimedAction* evs, std::size_t n) {
  if (n == 0) return;
  // One validation pass up front (so a bad entry throws before any state
  // mutates) that also finds the span's scheduling horizon.
  double max_ahead = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (evs[i].t < now_) {
      throw std::invalid_argument("Simulator::schedule_n: time in the past");
    }
    const double ahead = evs[i].t - now_;
    if (ahead > max_ahead && ahead < kForever) max_ahead = ahead;
  }
  // Reserve the action slab for the whole span (free-list hits don't
  // grow it, but the worst case is n fresh slots).
  const std::size_t fresh =
      n > free_actions_.size() ? n - free_actions_.size() : 0;
  actions_.reserve(actions_.size() + fresh);
  // One spread-estimator update for the batch instead of n decay+max
  // steps.  This changes only ladder geometry (window width at the next
  // re-anchor), which is tuning, never ordering -- the determinism
  // contract is independent of bucket geometry by construction.
  if (width_ > 0) {
    live_spread_ -= live_spread_ * (1.0 / 1024.0);
    if (max_ahead > live_spread_) live_spread_ = max_ahead;
  }
  for (std::size_t i = 0; i < n; ++i) {
    place(Event{evs[i].t, next_seq_++, kNoSlot,
                store_action(std::move(evs[i].action))});
  }
}

EventHandle Simulator::schedule_cancellable_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  CancelSlot& cs = slots_[s];
  cs.live = true;
  cs.cancelled = false;
  const std::uint32_t gen = cs.gen;
  insert(Event{t, next_seq_++, s, store_action(std::move(action))});
  return EventHandle{s, gen};
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot >= slots_.size()) return false;
  CancelSlot& cs = slots_[h.slot];
  if (!cs.live || cs.gen != h.gen || cs.cancelled) return false;
  cs.cancelled = true;
  return true;
}

// --------------------------------------------------------------- running

bool Simulator::fire_event(const Event& ev) {
  if (ev.slot != kNoSlot) {
    CancelSlot& cs = slots_[ev.slot];
    const bool was_cancelled = cs.cancelled;
    cs.live = false;
    cs.cancelled = false;
    ++cs.gen;  // stale handles can never touch this slot's next tenant
    free_slots_.push_back(ev.slot);
    if (was_cancelled) {
      // Discard without advancing the clock or executing: a cancelled
      // event behaves as if it had never been scheduled.  Destroy the
      // closure (it may hold resources) and recycle its slab index.
      actions_[ev.act] = Action{};
      free_actions_.push_back(ev.act);
      ++cancelled_;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_discard_, ev.t, trace_tid_);
#endif
      return false;
    }
  }
  now_ = ev.t;
  ++executed_;
#if ARCH21_OBS_ENABLED
  if (trace_) trace_->instant(tr_fire_, ev.t, trace_tid_);
#endif
  // Feed the ladder-width estimator (nonzero gaps only: simultaneous
  // events share a bucket regardless of width).
  if (executed_ > 1 && ev.t > last_exec_t_) {
    const double gap = ev.t - last_exec_t_;
    gap_ewma_ = gap_ewma_ > 0 ? gap_ewma_ + 0.02 * (gap - gap_ewma_) : gap;
  }
  last_exec_t_ = ev.t;
  // Move the closure out and recycle its index *before* invoking: the
  // action may schedule new events that reuse the slot immediately.
  Action a = std::move(actions_[ev.act]);
  free_actions_.push_back(ev.act);
  a();
  return true;
}

std::uint64_t Simulator::drain_bucket(Time until) {
  // peek() has just heapified the cursor bucket (and the overflow tier
  // if nonempty) and established that the bucket head is due.  Pop the
  // whole due prefix -- everything at or before `until` and before the
  // overflow head -- into the scratch span in one heap-drain pass, then
  // fire the span as a tight loop.  All other pending events (later
  // buckets, overflow) are at or past the splice bound computed below,
  // so only *new* inserts can land inside the span; place() detects
  // those against batch_limit_ and splices them into the sorted unfired
  // remainder, which preserves the exact step()-at-a-time order without
  // ever aborting the batch.
  Bucket& b = buckets_[cur_bucket_ & kBucketMask];
  Key lim{until, ~std::uint64_t{0}};
  if (!overflow_empty()) {
    const Key ok = overflow_head();
    if (earlier(ok, lim)) lim = ok;
  }
  scratch_.clear();
  bool emptied = false;
  if (cur_sorted_) {
    // Sorted bucket: the due events are the contiguous prefix starting
    // at cur_head_ -- slice it into scratch with no heap work at all.
    const std::size_t n = b.keys.size();
    std::size_t m = cur_head_;
    while (m < n && !earlier(lim, b.keys[m])) ++m;
    scratch_.reserve(m - cur_head_);
    for (std::size_t j = cur_head_; j < m; ++j) {
      scratch_.push_back(Event{b.keys[j].t, b.keys[j].seq, b.refs[j].slot,
                               b.refs[j].act});
    }
    cur_head_ = m;
    if (cur_head_ == n) {
      b.keys.clear();
      b.refs.clear();
      cur_head_ = 0;
      occ_clear(cur_bucket_ & kBucketMask);
      emptied = true;
    }
  } else {
    while (!b.keys.empty() && !earlier(lim, b.keys.front())) {
      Event ev;
      pop_min(b, ev);
      scratch_.push_back(ev);
    }
    if (b.keys.empty()) {
      occ_clear(cur_bucket_ & kBucketMask);
      emptied = true;
    }
  }
  const std::size_t popped = scratch_.size();
  ladder_size_ -= popped;
  size_ -= popped;
  std::uint64_t ran = 0;
  // The splice bound: strictly below every pending event outside the
  // span, and at or above every span key, so place() can route exactly
  // the events that must fire within this drain into the span.  The
  // slice conditions give lim >= every span key and lim <= the bucket
  // remainder (if any); when the bucket drained empty the rest of the
  // ladder lives at or past the bucket's end wall, so the bound extends
  // there -- that is what lets a self-perpetuating stream (each action
  // scheduling its successor a fraction of a bucket ahead) chain through
  // the whole bucket span in ONE drain call instead of paying a
  // peek/place/drain round-trip per event.  The max-with-span-tail guard
  // covers the fp edge where an event at the exact end wall was floored
  // into this bucket.
  {
    Key bound = lim;
    if (emptied) {
      const Key end_wall{
          origin_ + static_cast<double>(cur_bucket_ + 1) * width_, 0};
      if (earlier(end_wall, bound)) bound = end_wall;
      const Key span_max{scratch_[popped - 1].t, scratch_[popped - 1].seq};
      if (earlier(bound, span_max)) bound = span_max;
    }
    batch_limit_ = bound;
  }
  // Fire the span front to back.  Actions may splice new events into the
  // unfired remainder (see place()), growing scratch_ under us, so the
  // bound is re-read every iteration and the event is copied out before
  // firing (the vector may reallocate mid-action).
  for (batch_pos_ = 0; batch_pos_ < scratch_.size();) {
    const Event ev = scratch_[batch_pos_];
    ++batch_pos_;  // place() splices after this index; bump it first
    if (fire_event(ev)) ++ran;
  }
  batch_limit_ = Key{-kForever, 0};
  return ran;
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t ran = 0;
  for (;;) {
    const Key* head = peek();
    if (!head) return ran;
    if (head->t > until) {
      now_ = until;
      return ran;
    }
    if (head_in_overflow_) {
      migrate_overflow();  // window slid over overflow events: pull them
      continue;            // into the ladder and re-peek
    }
    ran += drain_bucket(until);
  }
}

bool Simulator::step(Time until) {
  for (;;) {
    const Key* head = peek();
    if (!head) return false;
    if (head->t > until) {
      now_ = until;
      return false;
    }
    if (head_in_overflow_) {
      migrate_overflow();
      continue;
    }
    const Event ev = pop_head();
    if (fire_event(ev)) return true;
  }
}

}  // namespace arch21::des
