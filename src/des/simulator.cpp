#include "des/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace arch21::des {

void Simulator::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  queue_.push_back(Event{t, next_seq_++, std::move(action)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

std::uint64_t Simulator::run(Time until) {
  std::uint64_t ran = 0;
  while (step(until)) ++ran;
  return ran;
}

bool Simulator::step(Time until) {
  if (queue_.empty()) return false;
  if (queue_.front().t > until) {
    now_ = until;
    return false;
  }
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.t;
  ++executed_;
  ev.action();
  return true;
}

}  // namespace arch21::des
