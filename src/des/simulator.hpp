#pragma once
// Deterministic discrete-event-simulation (DES) kernel.  The cloud
// fork-join simulator, the task-DAG scheduler, and the intermittent-
// computing sensor simulator all run on this.
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation driven
// by a seeded Rng reproduces exactly, which the test suite relies on.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace arch21::des {

/// Simulation time, in seconds.
using Time = double;

/// The event-driven simulator core.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Action action);

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the number of events executed.
  std::uint64_t run(Time until = kForever);

  /// Execute exactly one event if any is pending before `until`.
  /// Returns true if an event ran.
  bool step(Time until = kForever);

  /// True if no events are pending.
  bool idle() const noexcept { return queue_.empty(); }

  /// Number of pending events.
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  static constexpr Time kForever = 1e300;

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace arch21::des
