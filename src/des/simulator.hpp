#pragma once
// Deterministic discrete-event-simulation (DES) kernel.  The cloud
// fork-join simulator, the task-DAG scheduler, and the intermittent-
// computing sensor simulator all run on this.
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation driven
// by a seeded Rng reproduces exactly, which the test suite relies on.

#include <cstdint>
#include <vector>

#include "util/inline_function.hpp"

namespace arch21::des {

/// Simulation time, in seconds.
using Time = double;

/// The event-driven simulator core.
class Simulator {
 public:
  /// Scheduled callables are stored inline in the event record -- no heap
  /// allocation per event for closures up to Action::capacity() bytes
  /// (sized so des::Resource's completion closure, `this` + two doubles +
  /// a std::function, fits; verified by test_des).  Larger closures fall
  /// back to the heap.  Actions may be move-only.
  using Action = InlineFunction<56>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Action action);

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the number of events executed.
  std::uint64_t run(Time until = kForever);

  /// Execute exactly one event if any is pending before `until`.
  /// Returns true if an event ran.
  bool step(Time until = kForever);

  /// True if no events are pending.
  bool idle() const noexcept { return queue_.empty(); }

  /// Number of pending events.
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Pre-size the event heap for an expected number of simultaneously
  /// outstanding events, avoiding growth reallocations in schedule-heavy
  /// runs (the cloud cluster sim schedules millions of events).
  void reserve(std::size_t events) { queue_.reserve(events); }

  static constexpr Time kForever = 1e300;

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Binary heap managed with std::push_heap/std::pop_heap over a plain
  // vector (instead of std::priority_queue) so storage can be reserved
  // and the top event moved out without const_cast tricks.
  std::vector<Event> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace arch21::des
