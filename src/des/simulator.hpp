#pragma once
// Deterministic discrete-event-simulation (DES) kernel.  The cloud
// fork-join cluster simulator, the task-DAG scheduler, and the
// intermittent-computing sensor simulator all run on this.
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation driven
// by a seeded Rng reproduces exactly, which the test suite relies on.
//
// Event queue: a two-tier ladder/calendar queue.  Near-future events live
// in a ring of `kBucketCount` time buckets (each a small binary heap
// ordered by timestamp+seq); far-future events wait in an overflow heap
// and migrate into the ladder when its window reaches them.  Scheduling
// and firing are O(1) amortized instead of the O(log n) of one big binary
// heap, and the small per-bucket heaps stay cache-resident.  Ordering is
// decided purely by (timestamp, seq) -- bucket geometry (width, window
// position, re-anchoring) affects performance only, never order, so the
// determinism contract is independent of the tuning heuristics
// (tests/test_des_queue.cpp replays seeded workloads against a reference
// binary heap and asserts identical execution order).
//
// Cancellation: schedule_cancellable() stamps the event with a slot index
// into a generation-counted side table, so cancel() is one array indexing
// plus a generation compare -- O(1), no hashing, no allocation once the
// slot free list is warm.  Cancelled events are discarded lazily when
// their timestamp is reached.

#include <array>
#include <cstdint>
#include <vector>

#include "obs/enabled.hpp"
#include "util/inline_function.hpp"

#if ARCH21_OBS_ENABLED
namespace arch21::obs {
class TraceBuffer;
}
#endif

namespace arch21::des {

/// Simulation time, in seconds.
using Time = double;

/// Handle to an event scheduled with schedule_cancellable(): a slot index
/// into the simulator's cancellation table plus the slot's generation at
/// scheduling time.  When the event fires or is discarded the slot's
/// generation is bumped and the slot reused, so stale handles (kept after
/// their event resolved) can never cancel an unrelated later event.
/// Default-constructed handles are invalid; cancel() on them is a no-op.
struct EventHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;
  bool valid() const noexcept { return slot != kInvalidSlot; }
};

/// The event-driven simulator core.
class Simulator {
 public:
  /// Scheduled callables are stored in a recycled slab (indexed by the
  /// event record) -- no heap allocation per event for closures up to
  /// Action::capacity() bytes (sized so des::Resource's completion
  /// closure and the cluster simulator's handle-captured timers fit;
  /// verified by test_des).  Larger closures fall back to the heap.
  /// Actions may be move-only.
  using Action = InlineFunction<56>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Action action);

  /// One (time, action) entry of a schedule_n() batch.
  struct TimedAction {
    Time t;
    Action action;
  };

  /// Batch scheduling: equivalent to calling schedule_at(evs[i].t,
  /// move(evs[i].action)) for i in [0, n) -- sequence numbers are
  /// assigned in span order, so same-time events fire in span order and
  /// the call is a drop-in replacement for the loop -- but the
  /// validation, action-slab growth, and ladder-window estimator updates
  /// are amortized over the whole span (one pass, one reservation, one
  /// spread update).  The PDES window-commit path feeds each window's
  /// sorted cross-LP message batch through this.  Actions are moved from;
  /// the caller may reuse the span's storage afterwards.
  void schedule_n(TimedAction* evs, std::size_t n);

  /// Schedule a *cancellable* event (the timeout/hedge-timer primitive of
  /// the resilience layer).  Costs one slot in the generation-stamped
  /// cancellation table; both this and the plain path are allocation-free
  /// in steady state (the slot free list recycles).
  EventHandle schedule_cancellable(Time delay, Action action) {
    return schedule_cancellable_at(now_ + delay, std::move(action));
  }

  /// Cancellable variant of schedule_at().
  EventHandle schedule_cancellable_at(Time t, Action action);

  /// Cancel a pending cancellable event.  Returns true if the event was
  /// still pending (it will now never fire); false if it already fired,
  /// was already cancelled, or the handle is invalid.  A cancelled event
  /// is discarded lazily when its timestamp is reached -- it does not
  /// advance the clock, count as executed, or run its action.  O(1).
  bool cancel(EventHandle h);

  /// Number of cancelled events discarded so far.
  std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the number of events executed.
  std::uint64_t run(Time until = kForever);

  /// Execute exactly one event if any is pending before `until`.
  /// Returns true if an event ran.
  bool step(Time until = kForever);

  /// True if no events are pending.
  bool idle() const noexcept { return size_ == 0; }

  /// Timestamp of the earliest pending event, or kForever when idle.
  /// A cancelled-but-undiscarded event still reports its timestamp (it
  /// occupies the queue until reached), so the value is a lower bound on
  /// the next *execution* -- exactly what the conservative PDES window
  /// computation needs.  May advance the bucket cursor / re-anchor the
  /// ladder internally; geometry changes never affect event order.
  Time next_time() {
    const Event* head = peek();
    return head ? head->t : kForever;
  }

  /// Number of pending events (cancelled-but-not-yet-discarded events
  /// still count until their timestamp passes).
  std::size_t pending() const noexcept { return size_; }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Pre-size the event storage for an expected number of simultaneously
  /// outstanding events: the overflow tier (which absorbs everything
  /// scheduled ahead of the first run()) *and* the cancellable slot table
  /// and its free list.  The resilience path arms a timeout/hedge timer
  /// per leaf call, so cancellable events dominate schedule-heavy runs;
  /// pre-sizing both keeps the whole hot loop free of growth
  /// reallocations (the cloud cluster sim schedules millions of events).
  void reserve(std::size_t events) {
    overflow_.reserve(events);
    actions_.reserve(events);
    free_actions_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  static constexpr Time kForever = 1e300;

#if ARCH21_OBS_ENABLED
  /// Attach an observability trace: every executed event emits a
  /// "des.fire" instant and every lazily-discarded cancelled event a
  /// "des.discard" instant on track `tid` of `t` (timestamps in
  /// simulation time; nullptr detaches).  `tid` defaults to the
  /// historical track 0; the PDES engine gives each logical process's
  /// kernel its own track so per-LP event streams stay separable in the
  /// Chrome trace.  The hook is read-only -- it can never change event
  /// order or simulation results -- and costs one pointer test per event
  /// while detached.  Compiled out under -DARCH21_OBS=OFF.
  void set_trace(obs::TraceBuffer* t, std::uint32_t tid = 0);
#endif

 private:
  /// 24-byte POD queue entry.  The action lives in the actions_ slab, not
  /// in the event record, so every heap sift / bucket migration moves a
  /// trivially-copyable key instead of relocating a 56-byte closure
  /// through an indirect call -- the closure is moved exactly twice (into
  /// the slab at schedule, out at fire) no matter how deep the queue is.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;  // cancellation slot, or kNoSlot for plain events
    std::uint32_t act;   // index into the action slab
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct CancelSlot {
    std::uint32_t gen = 0;
    bool live = false;       // bound to a pending event
    bool cancelled = false;  // cancel() called, discard pending
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kBucketBits = 13;
  static constexpr std::size_t kBucketCount = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kBucketMask = kBucketCount - 1;
  /// Mean inter-event gaps per bucket: ~1 targets the ideal calendar
  /// occupancy (pops from near-singleton buckets cost no heap moves);
  /// much below that the cursor wastes time skipping empty buckets.
  static constexpr double kGapsPerBucket = 1.0;
  /// The window must span this multiple of the observed live scheduling
  /// horizon (max delay of events scheduled while running), so events
  /// scheduled `spread` ahead land mid-window -- and because the insert
  /// window *slides* with the cursor, they keep landing in the ladder
  /// without any re-anchor; the overflow tier stays a slow path.  2x is
  /// enough for that and keeps buckets twice as fine as a larger slack
  /// would (lower occupancy = cheaper pops).
  static constexpr double kSpreadSlack = 2.0;
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  /// Update the scheduling-horizon estimator, then place().
  void insert(Event ev);
  /// Drop `ev` into its ladder bucket or the overflow tier (no estimator
  /// update -- schedule_n() amortizes that over a whole span).
  void place(Event ev);
  /// Park `a` in the action slab (recycling a freed index when one is
  /// available) and return its index.
  std::uint32_t store_action(Action a);
  /// Earliest pending event, advancing the bucket cursor / re-anchoring
  /// as needed.  Sets head_in_overflow_.  nullptr if nothing pending.
  const Event* peek();
  /// Pop the event peek() just returned (no mutation may happen between).
  Event pop_head();
  /// Re-seat the ladder window at the overflow minimum and pull every
  /// overflow event inside the new window into its bucket.
  void reanchor();

  // Buckets and the overflow tier are heapified *lazily*: a bucket is a
  // plain append vector until the cursor reaches it (heapified_bucket_
  // tracks the one bucket currently kept as a heap), and the overflow
  // vector is heapified on first use, so bulk pre-run scheduling is O(1)
  // per event instead of O(log n).
  std::array<std::vector<Event>, kBucketCount> buckets_;
  std::vector<Event> overflow_;
  std::size_t ladder_size_ = 0;  // events across all buckets
  std::size_t size_ = 0;         // ladder + overflow
  std::uint64_t cur_bucket_ = 0; // absolute bucket number of the cursor
  std::uint64_t heapified_bucket_ = kNoBucket;  // abs number, or kNoBucket
  bool overflow_heapified_ = false;
  double origin_ = 0;            // time of absolute bucket 0
  double width_ = 0;             // bucket width; 0 = ladder not anchored
  double gap_ewma_ = 0;          // mean nonzero inter-execution gap
  double live_spread_ = 0;       // decaying max of (t - now) over inserts
  Time last_exec_t_ = 0;
  bool head_in_overflow_ = false;

  std::vector<Action> actions_;
  std::vector<std::uint32_t> free_actions_;

  std::vector<CancelSlot> slots_;
  std::vector<std::uint32_t> free_slots_;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;

#if ARCH21_OBS_ENABLED
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t trace_tid_ = 0;   // track carrying this kernel's instants
  std::uint32_t tr_fire_ = 0;     // interned "des.fire"
  std::uint32_t tr_discard_ = 0;  // interned "des.discard"
#endif
};

}  // namespace arch21::des
