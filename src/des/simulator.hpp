#pragma once
// Deterministic discrete-event-simulation (DES) kernel.  The cloud
// fork-join simulator, the task-DAG scheduler, and the intermittent-
// computing sensor simulator all run on this.
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation driven
// by a seeded Rng reproduces exactly, which the test suite relies on.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/inline_function.hpp"

namespace arch21::des {

/// Simulation time, in seconds.
using Time = double;

/// Handle to an event scheduled with schedule_cancellable().  Default-
/// constructed handles are invalid; cancel() on them is a no-op.
struct EventHandle {
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  std::uint64_t seq = kInvalid;
  bool valid() const noexcept { return seq != kInvalid; }
};

/// The event-driven simulator core.
class Simulator {
 public:
  /// Scheduled callables are stored inline in the event record -- no heap
  /// allocation per event for closures up to Action::capacity() bytes
  /// (sized so des::Resource's completion closure, `this` + two doubles +
  /// a std::function, fits; verified by test_des).  Larger closures fall
  /// back to the heap.  Actions may be move-only.
  using Action = InlineFunction<56>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Action action);

  /// Schedule a *cancellable* event (the timeout/hedge-timer primitive of
  /// the resilience layer).  Costs one hash-map entry per outstanding
  /// cancellable event; the plain schedule path stays allocation-free.
  EventHandle schedule_cancellable(Time delay, Action action) {
    return schedule_cancellable_at(now_ + delay, std::move(action));
  }

  /// Cancellable variant of schedule_at().
  EventHandle schedule_cancellable_at(Time t, Action action);

  /// Cancel a pending cancellable event.  Returns true if the event was
  /// still pending (it will now never fire); false if it already fired,
  /// was already cancelled, or the handle is invalid.  A cancelled event
  /// is discarded lazily when its timestamp is reached -- it does not
  /// advance the clock, count as executed, or run its action.
  bool cancel(EventHandle h);

  /// Number of cancelled events discarded so far.
  std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the number of events executed.
  std::uint64_t run(Time until = kForever);

  /// Execute exactly one event if any is pending before `until`.
  /// Returns true if an event ran.
  bool step(Time until = kForever);

  /// True if no events are pending.
  bool idle() const noexcept { return queue_.empty(); }

  /// Number of pending events (cancelled-but-not-yet-discarded events
  /// still count until their timestamp passes).
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Pre-size the event heap for an expected number of simultaneously
  /// outstanding events, avoiding growth reallocations in schedule-heavy
  /// runs (the cloud cluster sim schedules millions of events).
  void reserve(std::size_t events) { queue_.reserve(events); }

  static constexpr Time kForever = 1e300;

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::uint64_t enqueue(Time t, Action action);

  // Binary heap managed with std::push_heap/std::pop_heap over a plain
  // vector (instead of std::priority_queue) so storage can be reserved
  // and the top event moved out without const_cast tricks.
  std::vector<Event> queue_;
  // seq -> cancelled?  Holds only events scheduled via the cancellable
  // path, so the hot loop's lookup is skipped entirely (one empty() test)
  // when no cancellable events are outstanding.
  std::unordered_map<std::uint64_t, bool> cancellable_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace arch21::des
