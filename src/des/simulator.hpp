#pragma once
// Deterministic discrete-event-simulation (DES) kernel.  The cloud
// fork-join cluster simulator, the task-DAG scheduler, and the
// intermittent-computing sensor simulator all run on this.
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation driven
// by a seeded Rng reproduces exactly, which the test suite relies on.
//
// Event queue: a two-tier ladder/calendar queue.  Near-future events live
// in a ring of `kBucketCount` time buckets; far-future events wait in a
// sorted-run overflow tier and migrate into the ladder when its window
// reaches them.
// Scheduling and firing are O(1) amortized instead of the O(log n) of one
// big binary heap, and the small per-bucket heaps stay cache-resident.
//
// Memory layout (structure-of-arrays): each ladder bucket stores its
// events as two parallel lanes -- a 16-byte key lane (timestamp, seq)
// that every comparison touches, and an 8-byte payload lane (cancel slot,
// action index) that is only read when an event actually fires.  Heap
// sifts and min-scans therefore stream through densely packed keys (4 per
// cache line) instead of 24-byte mixed records, and a 1-bit-per-bucket
// occupancy bitmap lets the cursor skip runs of 64 empty buckets with one
// count-trailing-zeros.  Ordering is decided purely by (timestamp, seq)
// -- bucket geometry (width, window position, re-anchoring) and layout
// (SoA lanes, batch drains) affect performance only, never order, so the
// determinism contract is independent of the tuning heuristics
// (tests/test_des_queue.cpp replays seeded workloads against a reference
// binary heap and asserts identical execution order).
//
// Batched drain: run() pops every due event of the bucket under the
// cursor into a contiguous scratch span in one heap-drain pass, then
// fires the span as a tight loop -- per-event peek/cursor/overflow checks
// are amortized over the whole bucket.  An action that schedules a new
// event below the drain's splice bound (everything outside the span is
// provably at or past it) has the event spliced into the sorted unfired
// remainder of the span, so it fires within the same drain -- a
// self-perpetuating stream chains through a whole bucket in one call --
// and batch execution order stays element-for-element identical to
// step()-at-a-time execution.
//
// Cancellation: schedule_cancellable() stamps the event with a slot index
// into a generation-counted side table, so cancel() is one array indexing
// plus a generation compare -- O(1), no hashing, no allocation once the
// slot free list is warm.  Cancelled events are discarded lazily when
// their timestamp is reached.

#include <array>
#include <cstdint>
#include <vector>

#include "obs/enabled.hpp"
#include "util/inline_function.hpp"

#if ARCH21_OBS_ENABLED
namespace arch21::obs {
class TraceBuffer;
}
#endif

namespace arch21::des {

/// Simulation time, in seconds.
using Time = double;

/// Handle to an event scheduled with schedule_cancellable(): a slot index
/// into the simulator's cancellation table plus the slot's generation at
/// scheduling time.  When the event fires or is discarded the slot's
/// generation is bumped and the slot reused, so stale handles (kept after
/// their event resolved) can never cancel an unrelated later event.
/// Default-constructed handles are invalid; cancel() on them is a no-op.
struct EventHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;
  bool valid() const noexcept { return slot != kInvalidSlot; }
};

/// The event-driven simulator core.
class Simulator {
 public:
  /// Scheduled callables are stored in a recycled slab (indexed by the
  /// event record) -- no heap allocation per event for closures up to
  /// Action::capacity() bytes (sized so des::Resource's completion
  /// closure and the cluster simulator's handle-captured timers fit;
  /// verified by test_des and by static_asserts at the closure sites).
  /// Larger closures fall back to the heap.  Actions may be move-only.
  using Action = InlineFunction<56>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute time `t` (must be >= now()).
  void schedule_at(Time t, Action action);

  /// One (time, action) entry of a schedule_n() batch.
  struct TimedAction {
    Time t;
    Action action;
  };

  /// Batch scheduling: equivalent to calling schedule_at(evs[i].t,
  /// move(evs[i].action)) for i in [0, n) -- sequence numbers are
  /// assigned in span order, so same-time events fire in span order and
  /// the call is a drop-in replacement for the loop -- but the
  /// validation, action-slab growth, and ladder-window estimator updates
  /// are amortized over the whole span (one pass, one reservation, one
  /// spread update).  The PDES window-commit path feeds each window's
  /// sorted cross-LP message batch through this.  Actions are moved from;
  /// the caller may reuse the span's storage afterwards.
  void schedule_n(TimedAction* evs, std::size_t n);

  /// Schedule a *cancellable* event (the timeout/hedge-timer primitive of
  /// the resilience layer).  Costs one slot in the generation-stamped
  /// cancellation table; both this and the plain path are allocation-free
  /// in steady state (the slot free list recycles).
  EventHandle schedule_cancellable(Time delay, Action action) {
    return schedule_cancellable_at(now_ + delay, std::move(action));
  }

  /// Cancellable variant of schedule_at().
  EventHandle schedule_cancellable_at(Time t, Action action);

  /// Cancel a pending cancellable event.  Returns true if the event was
  /// still pending (it will now never fire); false if it already fired,
  /// was already cancelled, or the handle is invalid.  A cancelled event
  /// is discarded lazily when its timestamp is reached -- it does not
  /// advance the clock, count as executed, or run its action.  O(1).
  bool cancel(EventHandle h);

  /// Number of cancelled events discarded so far.
  std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first).  Returns the number of events executed.  Uses the batched
  /// bucket drain internally; execution order is element-for-element
  /// identical to calling step() in a loop (differentially tested).
  /// Not reentrant: an action must not call run()/step() on its own
  /// simulator (it may schedule and cancel freely).
  std::uint64_t run(Time until = kForever);

  /// Execute exactly one event if any is pending before `until`.
  /// Returns true if an event ran.
  bool step(Time until = kForever);

  /// True if no events are pending.
  bool idle() const noexcept { return size_ == 0; }

  /// Timestamp of the earliest pending event, or kForever when idle.
  /// A cancelled-but-undiscarded event still reports its timestamp (it
  /// occupies the queue until reached), so the value is a lower bound on
  /// the next *execution* -- exactly what the conservative PDES window
  /// computation needs.  May advance the bucket cursor / re-anchor the
  /// ladder internally; geometry changes never affect event order.
  Time next_time() {
    const Key* head = peek();
    return head ? head->t : kForever;
  }

  /// Number of pending events (cancelled-but-not-yet-discarded events
  /// still count until their timestamp passes).
  std::size_t pending() const noexcept { return size_; }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Pre-size the event storage for an expected number of simultaneously
  /// outstanding events: the overflow tier (which absorbs everything
  /// scheduled ahead of the first run()) *and* the cancellable slot table
  /// and its free list.  The resilience path arms a timeout/hedge timer
  /// per leaf call, so cancellable events dominate schedule-heavy runs;
  /// pre-sizing both keeps the whole hot loop free of growth
  /// reallocations (the cloud cluster sim schedules millions of events).
  void reserve(std::size_t events) {
    overflow_.reserve(events);
    overflow_staging_.reserve(events);
    actions_.reserve(events);
    free_actions_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  static constexpr Time kForever = 1e300;

#if ARCH21_OBS_ENABLED
  /// Attach an observability trace: every executed event emits a
  /// "des.fire" instant and every lazily-discarded cancelled event a
  /// "des.discard" instant on track `tid` of `t` (timestamps in
  /// simulation time; nullptr detaches).  `tid` defaults to the
  /// historical track 0; the PDES engine gives each logical process's
  /// kernel its own track so per-LP event streams stay separable in the
  /// Chrome trace.  The hook is read-only -- it can never change event
  /// order or simulation results -- and costs one pointer test per event
  /// while detached.  Compiled out under -DARCH21_OBS=OFF.
  void set_trace(obs::TraceBuffer* t, std::uint32_t tid = 0);
#endif

 private:
  /// 16-byte key lane entry: everything a comparison needs.  Keys are
  /// unique ((t, seq) with a process-monotone seq), so any min-heap pop
  /// sequence over them is THE sorted order -- heap layout, SoA lanes,
  /// and batch drains can never reorder two events.
  struct Key {
    Time t;
    std::uint64_t seq;
  };
  /// 8-byte payload lane entry, touched only when an event fires.
  struct Ref {
    std::uint32_t slot;  // cancellation slot, or kNoSlot for plain events
    std::uint32_t act;   // index into the action slab
  };
  /// Combined record: the overflow tier (cold, churned rarely) and the
  /// drain scratch span keep the joined form.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t act;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  static bool earlier(const Key& a, const Key& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  /// One ladder bucket: parallel key/payload lanes, kept as a binary
  /// min-heap (lazily, see heapified_bucket_) whose sifts compare keys
  /// only and move both lanes in lockstep.
  struct Bucket {
    std::vector<Key> keys;
    std::vector<Ref> refs;
  };
  struct CancelSlot {
    std::uint32_t gen = 0;
    bool live = false;       // bound to a pending event
    bool cancelled = false;  // cancel() called, discard pending
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kBucketBits = 13;
  static constexpr std::size_t kBucketCount = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kBucketMask = kBucketCount - 1;
  /// Mean inter-event gaps per bucket: ~1 targets the ideal calendar
  /// occupancy (pops from near-singleton buckets cost no heap moves);
  /// much below that the cursor wastes time skipping empty buckets.
  static constexpr double kGapsPerBucket = 4.0;
  /// The window must span this multiple of the observed live scheduling
  /// horizon (max delay of events scheduled while running), so events
  /// scheduled `spread` ahead land mid-window -- and because the insert
  /// window *slides* with the cursor, they keep landing in the ladder
  /// without any re-anchor; the overflow tier stays a slow path.  2x is
  /// enough for that and keeps buckets twice as fine as a larger slack
  /// would (lower occupancy = cheaper pops).
  static constexpr double kSpreadSlack = 2.0;
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  // -- SoA min-heap primitives (keys compared, both lanes moved) --
  static void sift_up(Key* k, Ref* r, std::size_t i) noexcept;
  static void sift_down(Key* k, Ref* r, std::size_t n,
                        std::size_t i) noexcept;
  /// Pop the minimum of a heapified bucket into `out` (both lanes).
  static void pop_min(Bucket& b, Event& out) noexcept;
  /// Sort both lanes of `b` ascending by key (one contiguous introsort).
  /// A sorted array satisfies the min-heap property, so a sorted bucket
  /// is usable everywhere a heapified one is -- but pops become O(1)
  /// front advances (cur_head_) and drains become prefix slices, with no
  /// sift_down at all on the common path.
  void sort_bucket(Bucket& b);
  /// Discard already-cancelled events from `b` in one compaction pass
  /// (run when the cursor first reaches the bucket, before sorting).
  /// The discard bookkeeping is byte-identical to the lazy fire-time
  /// path -- it just happens earlier, which no result can observe (a
  /// discard never advances the clock, runs code, or appears in the
  /// order log) -- and the timeout-heavy workloads where most events die
  /// cancelled skip the sort/drain/fire cost for all of them.
  void purge_cancelled(Bucket& b);

  /// Update the scheduling-horizon estimator, then place().
  void insert(Event ev);
  /// Drop `ev` into its ladder bucket or the overflow tier (no estimator
  /// update -- schedule_n() amortizes that over a whole span).
  void place(Event ev);
  /// Push `ev` into ladder bucket `b` (absolute number), maintaining the
  /// cursor bucket's sorted/heap discipline.  ++ladder_size_; the caller
  /// accounts size_.
  void place_ladder(const Event& ev, std::uint64_t b);
  /// Move the overflow head -- and every further overflow event the
  /// sliding window now covers -- into the ladder buckets, so they fire
  /// through batched drains instead of one-at-a-time off the heap.
  void migrate_overflow();
  bool overflow_empty() const noexcept {
    return overflow_.empty() && overflow_staging_.empty();
  }
  /// Minimum key across both overflow regions (sorted run back + cached
  /// staging minimum).  Precondition: !overflow_empty().
  Key overflow_head() const noexcept {
    if (overflow_.empty()) return staging_min_;
    const Event& e = overflow_.back();
    const Key k{e.t, e.seq};
    return earlier(staging_min_, k) ? staging_min_ : k;
  }
  /// Fold the staging tail into the sorted run: one sort of the tail plus
  /// one in-place merge, amortized O(log n) per staged event.
  void overflow_merge_staging();
  /// Park `a` in the action slab (recycling a freed index when one is
  /// available) and return its index.
  std::uint32_t store_action(Action a);
  /// Key of the earliest pending event, advancing the bucket cursor /
  /// re-anchoring as needed.  Sets head_in_overflow_.  nullptr if nothing
  /// pending.
  const Key* peek();
  /// Pop the event peek() just returned (no mutation may happen between).
  Event pop_head();
  /// Re-seat the ladder window at the overflow minimum and pull every
  /// overflow event inside the new window into its bucket.
  void reanchor();
  /// Geometry misfit check, run when the cursor enters a fresh bucket:
  /// once enough executions have accumulated since the last anchor, if
  /// the width the anchor policy would pick *now* disagrees with the
  /// live width by more than 2x either way, re-place every ladder event
  /// under the new width (O(live events), amortized to nothing by the
  /// hysteresis).  Returns true if the ladder was re-anchored, in which
  /// case the caller must rescan from the restarted cursor.  This is
  /// what rescues a ladder whose first anchor had no execution history
  /// to consult -- e.g. a per-LP PDES kernel seeded with one event
  /// whose fallback width lands far from the real event gap.
  bool maybe_rebucket();
  /// Fire (or lazily discard) one popped event: the shared body of
  /// step() and the batched drain.  Returns true if the action executed.
  bool fire_event(const Event& ev);
  /// Batched drain of the current (heapified) bucket: pop every event
  /// due by `until` and before the overflow head into scratch_, then
  /// fire the span, absorbing intruders in place.  Returns events
  /// executed.
  std::uint64_t drain_bucket(Time until);
  void occ_set(std::size_t ring) noexcept {
    occ_[ring >> 6] |= std::uint64_t{1} << (ring & 63);
  }
  void occ_clear(std::size_t ring) noexcept {
    occ_[ring >> 6] &= ~(std::uint64_t{1} << (ring & 63));
  }

  // Buckets are ordered *lazily*: a bucket is a plain append vector
  // until the cursor reaches it (heapified_bucket_ tracks the one bucket
  // currently kept ordered), so bulk pre-run scheduling is O(1) per
  // event instead of O(log n).
  std::array<Bucket, kBucketCount> buckets_;
  /// One bit per ring bucket, set iff the bucket is nonempty; the cursor
  /// advance scans 64 buckets per word instead of touching 64 Bucket
  /// headers.
  std::array<std::uint64_t, kBucketCount / 64> occ_{};
  /// Overflow tier: far-future events beyond the ladder window, kept as
  /// a descending-sorted run (minimum at the back, so migrating the
  /// window prefix into the ladder is an O(1) pop per event) plus an
  /// unsorted staging tail for recent inserts with its minimum cached
  /// (insert O(1), min query O(1)).  Staging folds into the run with
  /// one sort + inplace_merge only when an event must leave the tier --
  /// amortized O(log n) per event with contiguous, branch-light passes
  /// instead of the pointer-chasing sift of a binary heap.
  std::vector<Event> overflow_;          // sorted descending by key
  std::vector<Event> overflow_staging_;  // unsorted inserts since merge
  Key staging_min_{kForever, ~std::uint64_t{0}};  // sentinel when empty
  std::size_t ladder_size_ = 0;  // events across all buckets
  std::size_t size_ = 0;         // ladder + overflow
  std::uint64_t cur_bucket_ = 0; // absolute bucket number of the cursor
  std::uint64_t heapified_bucket_ = kNoBucket;  // abs number, or kNoBucket
  /// When the cursor reaches a bucket it is *sorted* (not just
  /// heapified); consumed events are a dead prefix tracked by cur_head_
  /// instead of being erased.  Inserts that arrive in key order (the
  /// common append pattern) keep the bucket sorted; an out-of-order
  /// insert compacts the dead prefix and drops the bucket to plain heap
  /// maintenance (sift_up/sift_down) for the rest of the visit.
  bool cur_sorted_ = false;
  std::size_t cur_head_ = 0;  // first live index of the sorted bucket
  double origin_ = 0;            // time of absolute bucket 0
  double width_ = 0;             // bucket width; 0 = ladder not anchored
  double gap_ewma_ = 0;          // mean nonzero inter-execution gap
  double live_spread_ = 0;       // decaying max of (t - now) over inserts
  std::uint64_t anchor_executed_ = 0;  // executed_ at the last (re)anchor
  Time last_exec_t_ = 0;
  bool head_in_overflow_ = false;
  /// Copy of the overflow head's key when head_in_overflow_ (peek()
  /// returns a pointer to it; bucket heads are pointed at in place).
  Key overflow_head_key_{0, 0};

  /// Batched-drain state: the scratch span of popped-but-unfired events
  /// plus the active drain's splice bound -- a key at or above every
  /// span element and at or below every pending event outside the span
  /// (see drain_bucket() for its construction), so one compare in
  /// place() routes each new insert: below the bound it *must* fire in
  /// this drain and is spliced into the unfired remainder [batch_pos_,
  /// end) at its key position (the span stays sorted and the drain never
  /// aborts); at or above the bound it takes the normal ladder/overflow
  /// path.  The splice position is always strictly after the element
  /// being fired -- an action runs at t = now_, schedules at t >= now_,
  /// and draws a fresh monotone seq -- so the fired prefix is never
  /// disturbed.  batch_limit_'s sentinel (-inf) compares earlier than
  /// every real key, so the splice test is branch-predictable false
  /// outside a drain.
  std::vector<Event> scratch_;
  std::vector<Event> sort_buf_;  // joined staging for sort_bucket()
  Key batch_limit_{-kForever, 0};
  std::size_t batch_pos_ = 0;  // next scratch_ index the drain will fire

  std::vector<Action> actions_;
  std::vector<std::uint32_t> free_actions_;

  std::vector<CancelSlot> slots_;
  std::vector<std::uint32_t> free_slots_;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;

#if ARCH21_OBS_ENABLED
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t trace_tid_ = 0;   // track carrying this kernel's instants
  std::uint32_t tr_fire_ = 0;     // interned "des.fire"
  std::uint32_t tr_discard_ = 0;  // interned "des.discard"
#endif
};

}  // namespace arch21::des
