#pragma once
// Conservative parallel DES (PDES) engine: shards one scenario across
// logical processes (des/lp.hpp) executed by the work-stealing
// ThreadPool under window synchronization.
//
// Window algorithm (one iteration of ParallelEngine::run's loop):
//   1. barrier drain (serial): move every (src, dst) mailbox into the
//      destination LP's pending buffer.  parallel_run's return is the
//      happens-before edge, so this is race-free without atomics.
//   2. horizon: tmin = min over LPs of (kernel head time, pending
//      message times).  If tmin > until, the run is complete.
//   3. window end = min(until, tmin + lookahead).  Every cross-LP send
//      has delay >= lookahead, so no event executing in [tmin, end] can
//      cause an arrival at or before `end` that is not already pending
//      -- the conservative-safety invariant.
//   4. parallel phase: each LP independently commits its due messages
//      (sorted canonically, scheduled via one schedule_n batch) and runs
//      its private kernel through `end` (Lp::commit_and_run).
//
// Why determinism survives (DESIGN.md "Parallel kernel" has the long
// form): the drain collects *all* messages produced by completed
// windows, so the pending sets -- and from them tmin, the window end,
// each LP's commit batch, and the canonical (t, sent_at, src, seq) batch
// order -- are pure functions of simulation state, never of thread
// timing.  LPs share no mutable state during the parallel phase, each
// kernel executes in its own (t, seq) order, and end-of-run folds
// (stats, ClusterResult merges) walk LPs in index order.  Results are
// therefore bit-identical at any worker count, pinned by
// tests/test_pdes.cpp differentially against LoopbackEngine below.
//
// LoopbackEngine is that serial reference: the identical scenario-facing
// surface (lps / lp(i) / send / handler / run) backed by ONE unchanged
// des::Simulator, with send() lowered to a plain schedule().  Scenarios
// are written once, templated over the engine, and replayed through
// both -- the ReferenceSimulator pattern from the ladder-queue PR lifted
// one level up.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/lp.hpp"
#include "des/mailbox.hpp"
#include "des/partition.hpp"
#include "des/simulator.hpp"
#include "util/thread_pool.hpp"

namespace arch21::des {

class ParallelEngine {
 public:
  /// Worker-count-independent run counters (all derived from barrier
  /// state; see the file comment).
  struct Stats {
    std::uint64_t windows = 0;      ///< synchronization windows executed
    std::uint64_t sent = 0;         ///< cross-LP messages produced
    std::uint64_t committed = 0;    ///< messages delivered into kernels
    std::size_t max_pending = 0;    ///< high-water of one LP's pending
                                    ///< buffer at a barrier
    std::uint64_t executed = 0;     ///< sum of LP kernels' executed()
    std::uint64_t cancelled = 0;    ///< sum of LP kernels' cancelled()
  };

  /// `spec` is validated (throws on lookahead <= 0); `pool` supplies the
  /// workers -- pass a 1-thread pool for a serial parallel engine (same
  /// results, by contract).
  ParallelEngine(const PartitionSpec& spec, ThreadPool& pool);

  std::uint32_t lps() const noexcept {
    return static_cast<std::uint32_t>(lps_.size());
  }
  double lookahead() const noexcept { return spec_.lookahead; }
  Lp& lp(std::uint32_t i) { return *lps_[i]; }

  /// Run every LP until all of them are quiet past `until` (or forever
  /// on the default).  Returns events executed by this call.  May be
  /// called repeatedly with increasing horizons, like Simulator::run.
  std::uint64_t run(Time until = Simulator::kForever);

  Stats stats() const;

  /// Total events executed / cancelled across LPs (id order).
  std::uint64_t executed() const;
  std::uint64_t cancelled() const;

#if ARCH21_OBS_ENABLED
  /// Publish run counters into the global metrics registry
  /// (pdes.window.count, pdes.mailbox.sent / .committed /
  /// .max_pending).  Counters are integers folded from barrier state,
  /// so published values are identical at any worker count.
  void publish_metrics() const;
#endif

 private:
  friend class Lp;
  /// Barrier phase: drain every mailbox into its destination's pending
  /// buffer and update the message counters.
  void drain();

  PartitionSpec spec_;
  ThreadPool& pool_;
  std::vector<std::unique_ptr<Lp>> lps_;
  Stats stats_;
};

/// Serial reference engine: the same scenario surface on one shared
/// des::Simulator.  See the file comment.
class LoopbackEngine {
 public:
  class Lp {
   public:
    using Handler = std::function<void(Lp&, const Payload&)>;

    std::uint32_t id() const noexcept { return id_; }
    Time now() const noexcept;
    Simulator& sim() noexcept;
    void set_handler(Handler h) { handler_ = std::move(h); }
    /// Same validation as the parallel engine's send (so a scenario that
    /// runs here also runs there), lowered to one schedule() on the
    /// shared kernel.
    void send(std::uint32_t dst, Time delay, const Payload& p);

   private:
    friend class LoopbackEngine;
    LoopbackEngine* engine_ = nullptr;
    std::uint32_t id_ = 0;
    Handler handler_;
  };

  explicit LoopbackEngine(const PartitionSpec& spec);

  std::uint32_t lps() const noexcept {
    return static_cast<std::uint32_t>(lps_.size());
  }
  double lookahead() const noexcept { return spec_.lookahead; }
  Lp& lp(std::uint32_t i) { return *lps_[i]; }
  Simulator& sim() noexcept { return sim_; }

  std::uint64_t run(Time until = Simulator::kForever) {
    return sim_.run(until);
  }
  std::uint64_t executed() const noexcept { return sim_.executed(); }
  std::uint64_t cancelled() const noexcept { return sim_.cancelled(); }

 private:
  PartitionSpec spec_;
  Simulator sim_;
  std::vector<std::unique_ptr<Lp>> lps_;
};

}  // namespace arch21::des
