#include "mem/prefetch.hpp"

#include <algorithm>

namespace arch21::mem {

StridePrefetcher::StridePrefetcher(Hierarchy& hierarchy, PrefetchConfig cfg)
    : h_(hierarchy), cfg_(cfg), table_(cfg.table_entries) {
  inflight_.reserve(256);
}

ServiceLevel StridePrefetcher::access(Addr addr, bool write) {
  ++stats_.demand_accesses;
  const std::uint32_t line_bytes = h_.l1().config().line_bytes;
  const Addr line = addr / line_bytes;

  // Usefulness attribution: was this line brought in by a prefetch?
  const auto it = std::find(inflight_.begin(), inflight_.end(), line);
  if (it != inflight_.end()) {
    ++stats_.useful;
    inflight_.erase(it);
  }

  const ServiceLevel lvl = h_.access(addr, write);
  if (lvl == ServiceLevel::L1) ++stats_.demand_hits_l1;

  // Train the stride table.
  const std::uint64_t region = addr / cfg_.region_bytes;
  Entry& e = table_[region % table_.size()];
  const auto sline = static_cast<std::int64_t>(line);
  if (e.region != region) {
    e = Entry{region, sline, 0, false};
  } else {
    const std::int64_t delta = sline - e.last_line;
    if (delta != 0) {
      if (delta == e.stride) {
        e.armed = true;
      } else {
        e.stride = delta;
        e.armed = false;
      }
      e.last_line = sline;
    }
  }

  // Issue prefetches.
  if (e.armed && e.stride != 0) {
    for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
      const std::int64_t target =
          sline + e.stride * static_cast<std::int64_t>(d);
      if (target < 0) continue;
      const Addr target_addr = static_cast<Addr>(target) * line_bytes;
      // Only fetch lines not already resident in L1 (filter).
      if (h_.l1().contains(target_addr)) continue;
      ++stats_.issued;
      h_.access(target_addr, false);
      if (inflight_.size() >= 256) inflight_.erase(inflight_.begin());
      inflight_.push_back(static_cast<Addr>(target));
    }
  }
  return lvl;
}

}  // namespace arch21::mem
