#pragma once
// Multi-level memory hierarchy: L1 -> L2 -> LLC -> DRAM, with per-access
// latency and energy accounting through the energy catalogue.  Used by
// the fetch-energy experiment (E6), the streaming/compression experiment
// (E18), and the core cross-layer evaluator.

#include <array>
#include <cstdint>

#include "energy/catalogue.hpp"
#include "mem/cache.hpp"

namespace arch21::mem {

/// Where an access was serviced.
enum class ServiceLevel { L1, L2, LLC, Dram };

const char* to_string(ServiceLevel s);

/// Latency (cycles) of each level, configurable.
struct HierarchyLatency {
  std::uint32_t l1 = 4;
  std::uint32_t l2 = 12;
  std::uint32_t llc = 38;
  std::uint32_t dram = 200;
};

/// Aggregate hierarchy statistics.
struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::array<std::uint64_t, 4> serviced_at{};  ///< indexed by ServiceLevel
  std::uint64_t writebacks_to_dram = 0;
  double total_energy_j = 0;
  std::uint64_t total_latency_cycles = 0;

  double amat_cycles() const noexcept {
    return accesses ? static_cast<double>(total_latency_cycles) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double energy_per_access() const noexcept {
    return accesses ? total_energy_j / static_cast<double>(accesses) : 0.0;
  }
};

/// A three-level cache hierarchy in front of DRAM.
///
/// Inclusion policy: non-inclusive, non-exclusive (the common "NINE"
/// arrangement) -- misses allocate at every level on the way in, and
/// evictions at an outer level do not force inner invalidations.
class Hierarchy {
 public:
  Hierarchy(CacheConfig l1, CacheConfig l2, CacheConfig llc,
            const energy::Catalogue& cat, HierarchyLatency lat = {});

  /// Perform one 64-bit demand access; returns the servicing level.
  ServiceLevel access(Addr addr, bool write);

  const HierarchyStats& stats() const noexcept { return stats_; }
  const Cache& l1() const noexcept { return l1_; }
  const Cache& l2() const noexcept { return l2_; }
  const Cache& llc() const noexcept { return llc_; }
  void reset_stats();

 private:
  Cache l1_;
  Cache l2_;
  Cache llc_;
  const energy::Catalogue& cat_;
  HierarchyLatency lat_;
  HierarchyStats stats_;
};

}  // namespace arch21::mem
