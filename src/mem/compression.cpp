#include "mem/compression.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace arch21::mem {

namespace {

template <typename T>
std::vector<T> as_words(std::span<const std::uint8_t> line) {
  std::vector<T> out(line.size() / sizeof(T));
  std::memcpy(out.data(), line.data(), out.size() * sizeof(T));
  return out;
}

template <typename T>
void append_value(std::vector<std::uint8_t>& v, T x) {
  const auto n = v.size();
  v.resize(n + sizeof(T));
  std::memcpy(v.data() + n, &x, sizeof(T));
}

template <typename T>
T read_value(std::span<const std::uint8_t> s, std::size_t off) {
  if (off + sizeof(T) > s.size()) {
    throw std::invalid_argument("bdi: truncated encoding");
  }
  T x;
  std::memcpy(&x, s.data() + off, sizeof(T));
  return x;
}

/// Try base+delta with Base-sized words and Delta-sized deltas.
/// Returns an encoding (scheme byte + base + deltas) or empty on failure.
template <typename Base, typename Delta>
std::vector<std::uint8_t> try_base_delta(std::span<const std::uint8_t> line,
                                         BdiScheme scheme) {
  static_assert(sizeof(Delta) < sizeof(Base));
  const auto words = as_words<Base>(line);
  if (words.empty()) return {};
  const Base base = words.front();
  using SB = std::make_signed_t<Base>;
  using SD = std::make_signed_t<Delta>;
  std::vector<std::uint8_t> enc;
  enc.push_back(static_cast<std::uint8_t>(scheme));
  append_value(enc, base);
  for (const Base w : words) {
    const SB diff = static_cast<SB>(w - base);
    if (diff < std::numeric_limits<SD>::min() ||
        diff > std::numeric_limits<SD>::max()) {
      return {};
    }
    append_value(enc, static_cast<Delta>(static_cast<SD>(diff)));
  }
  return enc;
}

template <typename Base, typename Delta>
std::vector<std::uint8_t> decode_base_delta(std::span<const std::uint8_t> enc,
                                            std::size_t original_size) {
  using SD = std::make_signed_t<Delta>;
  const Base base = read_value<Base>(enc, 1);
  const std::size_t nwords = original_size / sizeof(Base);
  std::vector<std::uint8_t> out(original_size);
  std::size_t off = 1 + sizeof(Base);
  for (std::size_t i = 0; i < nwords; ++i) {
    const auto d = static_cast<SD>(read_value<Delta>(enc, off));
    off += sizeof(Delta);
    const Base w = static_cast<Base>(base + static_cast<Base>(d));
    std::memcpy(out.data() + i * sizeof(Base), &w, sizeof(Base));
  }
  return out;
}

}  // namespace

const char* to_string(BdiScheme s) {
  switch (s) {
    case BdiScheme::Zeros: return "zeros";
    case BdiScheme::Repeat8: return "repeat8";
    case BdiScheme::Base8Delta1: return "b8d1";
    case BdiScheme::Base8Delta2: return "b8d2";
    case BdiScheme::Base8Delta4: return "b8d4";
    case BdiScheme::Base4Delta1: return "b4d1";
    case BdiScheme::Base4Delta2: return "b4d2";
    case BdiScheme::Base2Delta1: return "b2d1";
    case BdiScheme::Raw: return "raw";
  }
  return "?";
}

BdiResult bdi_compress(std::span<const std::uint8_t> line) {
  if (line.empty() || line.size() % 8 != 0) {
    throw std::invalid_argument("bdi_compress: line size must be multiple of 8");
  }

  BdiResult best;
  best.scheme = BdiScheme::Raw;
  best.bytes.reserve(line.size() + 1);
  best.bytes.push_back(static_cast<std::uint8_t>(BdiScheme::Raw));
  best.bytes.insert(best.bytes.end(), line.begin(), line.end());

  auto consider = [&](BdiScheme scheme, std::vector<std::uint8_t> enc) {
    if (!enc.empty() && enc.size() < best.bytes.size()) {
      best.scheme = scheme;
      best.bytes = std::move(enc);
    }
  };

  // Zeros.
  {
    bool all_zero = true;
    for (auto b : line) {
      if (b != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      consider(BdiScheme::Zeros,
               {static_cast<std::uint8_t>(BdiScheme::Zeros)});
    }
  }

  // Repeated 64-bit value.
  {
    const auto w = as_words<std::uint64_t>(line);
    bool same = true;
    for (auto x : w) {
      if (x != w.front()) {
        same = false;
        break;
      }
    }
    if (same) {
      std::vector<std::uint8_t> enc;
      enc.push_back(static_cast<std::uint8_t>(BdiScheme::Repeat8));
      append_value(enc, w.front());
      consider(BdiScheme::Repeat8, std::move(enc));
    }
  }

  consider(BdiScheme::Base8Delta1,
           try_base_delta<std::uint64_t, std::uint8_t>(line, BdiScheme::Base8Delta1));
  consider(BdiScheme::Base8Delta2,
           try_base_delta<std::uint64_t, std::uint16_t>(line, BdiScheme::Base8Delta2));
  consider(BdiScheme::Base8Delta4,
           try_base_delta<std::uint64_t, std::uint32_t>(line, BdiScheme::Base8Delta4));
  consider(BdiScheme::Base4Delta1,
           try_base_delta<std::uint32_t, std::uint8_t>(line, BdiScheme::Base4Delta1));
  consider(BdiScheme::Base4Delta2,
           try_base_delta<std::uint32_t, std::uint16_t>(line, BdiScheme::Base4Delta2));
  consider(BdiScheme::Base2Delta1,
           try_base_delta<std::uint16_t, std::uint8_t>(line, BdiScheme::Base2Delta1));
  return best;
}

std::vector<std::uint8_t> bdi_decompress(std::span<const std::uint8_t> enc,
                                         std::size_t original_size) {
  if (enc.empty()) throw std::invalid_argument("bdi_decompress: empty");
  const auto scheme = static_cast<BdiScheme>(enc[0]);
  switch (scheme) {
    case BdiScheme::Zeros:
      return std::vector<std::uint8_t>(original_size, 0);
    case BdiScheme::Repeat8: {
      const auto v = read_value<std::uint64_t>(enc, 1);
      std::vector<std::uint8_t> out(original_size);
      for (std::size_t i = 0; i < original_size; i += 8) {
        std::memcpy(out.data() + i, &v, 8);
      }
      return out;
    }
    case BdiScheme::Base8Delta1:
      return decode_base_delta<std::uint64_t, std::uint8_t>(enc, original_size);
    case BdiScheme::Base8Delta2:
      return decode_base_delta<std::uint64_t, std::uint16_t>(enc, original_size);
    case BdiScheme::Base8Delta4:
      return decode_base_delta<std::uint64_t, std::uint32_t>(enc, original_size);
    case BdiScheme::Base4Delta1:
      return decode_base_delta<std::uint32_t, std::uint8_t>(enc, original_size);
    case BdiScheme::Base4Delta2:
      return decode_base_delta<std::uint32_t, std::uint16_t>(enc, original_size);
    case BdiScheme::Base2Delta1:
      return decode_base_delta<std::uint16_t, std::uint8_t>(enc, original_size);
    case BdiScheme::Raw: {
      if (enc.size() != original_size + 1) {
        throw std::invalid_argument("bdi_decompress: bad raw length");
      }
      return std::vector<std::uint8_t>(enc.begin() + 1, enc.end());
    }
  }
  throw std::invalid_argument("bdi_decompress: unknown scheme");
}

double bdi_ratio(std::span<const std::uint8_t> line) {
  const auto r = bdi_compress(line);
  return static_cast<double>(line.size()) / static_cast<double>(r.size());
}

}  // namespace arch21::mem
