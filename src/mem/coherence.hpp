#pragma once
// Snooping MESI coherence over a shared bus.  N private caches keep
// per-line MESI state; reads and writes trigger the standard transitions
// with bus reads (BusRd), exclusive reads (BusRdX), upgrades (BusUpgr),
// cache-to-cache transfers, and write-backs.  The simulator counts every
// bus transaction and prices coherence traffic through the energy
// catalogue, quantifying the paper's "communication more expensive than
// computation" at the on-chip scale (false sharing is the classic
// pathological case, exercised in the tests and the parallel bench).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "energy/catalogue.hpp"
#include "mem/cache.hpp"

namespace arch21::mem {

/// Per-line MESI state in one cache.
enum class Mesi : std::uint8_t { Invalid, Shared, Exclusive, Modified };

const char* to_string(Mesi s);

/// Bus transaction kinds (for stats).
struct CoherenceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t bus_rd = 0;        ///< read miss -> fetch
  std::uint64_t bus_rdx = 0;       ///< write miss -> fetch exclusive
  std::uint64_t bus_upgr = 0;      ///< S->M upgrade (invalidate sharers)
  std::uint64_t invalidations = 0; ///< lines invalidated in other caches
  std::uint64_t c2c_transfers = 0; ///< data supplied cache-to-cache
  std::uint64_t writebacks = 0;    ///< M lines flushed to memory
  double bus_energy_j = 0;         ///< energy of all bus data movement

  double miss_rate() const noexcept {
    const auto acc = reads + writes;
    const auto hits = read_hits + write_hits;
    return acc ? 1.0 - static_cast<double>(hits) / static_cast<double>(acc) : 0;
  }
};

/// A multi-core coherent cache system (one private cache level per core
/// over a shared bus to memory).
class CoherentSystem {
 public:
  /// `cores` private caches with geometry `cfg`; energies from `cat`.
  CoherentSystem(std::uint32_t cores, CacheConfig cfg,
                 const energy::Catalogue& cat);

  std::uint32_t cores() const noexcept { return static_cast<std::uint32_t>(caches_.size()); }

  /// Core `c` reads the line containing `addr`.
  void read(std::uint32_t c, Addr addr);

  /// Core `c` writes the line containing `addr`.
  void write(std::uint32_t c, Addr addr);

  /// Current MESI state of `addr`'s line in core `c`'s cache.
  Mesi state(std::uint32_t c, Addr addr) const;

  const CoherenceStats& stats() const noexcept { return stats_; }
  const Cache& cache(std::uint32_t c) const { return caches_.at(c); }

  /// Protocol invariant: at most one M or E copy; M/E excludes S copies.
  /// Verified by tests after every operation sequence.
  bool invariants_hold() const;

 private:
  Addr line_of(Addr addr) const noexcept;
  Mesi& state_ref(std::uint32_t c, Addr line);
  /// Evict handling when the capacity cache drops a line.
  void handle_eviction(std::uint32_t c, Addr line);
  double line_move_energy() const noexcept;

  std::vector<Cache> caches_;
  std::vector<std::unordered_map<Addr, Mesi>> states_;  ///< by line addr
  const energy::Catalogue& cat_;
  std::uint32_t line_bytes_;
  CoherenceStats stats_;
};

}  // namespace arch21::mem
