#include "mem/dram.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace arch21::mem {

Dram::Dram(DramConfig cfg) : cfg_(cfg) {
  if (cfg.banks == 0 || cfg.row_bytes == 0) {
    throw std::invalid_argument("Dram: bad geometry");
  }
  open_row_.assign(cfg.banks, -1);
}

DramAccess Dram::access(Addr addr, bool write) {
  (void)write;  // symmetric read/write timing at this fidelity
  const std::uint64_t row = addr / cfg_.row_bytes;
  const std::uint32_t bank = static_cast<std::uint32_t>(row % cfg_.banks);

  DramAccess out;
  if (open_row_[bank] == static_cast<std::int64_t>(row)) {
    ++row_hits_;
    out.row_hit = true;
    out.latency_ns = cfg_.t_cas_ns;
    out.energy_j = cfg_.e_rw_per64b_nj * units::nano;
  } else {
    ++row_misses_;
    const bool was_open = open_row_[bank] >= 0;
    out.latency_ns = (was_open ? cfg_.t_rp_ns : 0.0) + cfg_.t_rcd_ns + cfg_.t_cas_ns;
    out.energy_j =
        (cfg_.e_activate_nj + cfg_.e_rw_per64b_nj) * units::nano;
    open_row_[bank] = static_cast<std::int64_t>(row);
  }
  energy_j_ += out.energy_j;
  return out;
}

}  // namespace arch21::mem
