#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace arch21::mem {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint64_t mix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(Replacement r) {
  switch (r) {
    case Replacement::Lru: return "lru";
    case Replacement::Fifo: return "fifo";
    case Replacement::Random: return "random";
    case Replacement::Plru: return "plru";
  }
  return "?";
}

Cache::Cache(CacheConfig cfg) : cfg_(cfg), rand_state_(cfg.seed) {
  if (!is_pow2(cfg.size_bytes) || !is_pow2(cfg.line_bytes) ||
      !is_pow2(cfg.ways)) {
    throw std::invalid_argument("Cache: sizes must be powers of two");
  }
  if (cfg.size_bytes < static_cast<std::uint64_t>(cfg.line_bytes) * cfg.ways) {
    throw std::invalid_argument("Cache: size < line * ways");
  }
  sets_ = cfg.sets();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(cfg.line_bytes)));
  lines_.assign(sets_ * cfg.ways, Line{});
  if (cfg.policy == Replacement::Plru) {
    if (cfg.ways > 16) {
      // The per-set tree is packed into 32 bits (heap-indexed nodes).
      throw std::invalid_argument("Cache: PLRU supports at most 16 ways");
    }
    plru_.assign(sets_, 0);
  }
}

std::uint64_t Cache::set_index(Addr addr) const noexcept {
  return (addr >> line_shift_) & (sets_ - 1);
}

Addr Cache::tag_of(Addr addr) const noexcept {
  return addr >> line_shift_ >> std::countr_zero(sets_);
}

Addr Cache::line_addr(Addr tag, std::uint64_t set) const noexcept {
  return ((tag << std::countr_zero(sets_)) | set) << line_shift_;
}

void Cache::touch(std::uint64_t set, std::uint32_t way) noexcept {
  Line& ln = lines_[set * cfg_.ways + way];
  ln.lru = ++tick_;
  if (cfg_.policy == Replacement::Plru && cfg_.ways > 1) {
    // Walk the tree from root to the leaf `way`, pointing each node AWAY
    // from the path taken (standard tree-PLRU promotion).
    std::uint32_t& bits = plru_[set];
    std::uint32_t node = 0;  // root at index 0
    std::uint32_t lo = 0;
    std::uint32_t hi = cfg_.ways;
    while (hi - lo > 1) {
      const std::uint32_t mid = (lo + hi) / 2;
      const bool right = way >= mid;
      // Bit = 1 means "next victim is on the left"; set it opposite to
      // where this access went.
      if (right) {
        bits |= (1u << node);
      } else {
        bits &= ~(1u << node);
      }
      node = 2 * node + (right ? 2 : 1);
      (right ? lo : hi) = mid;
    }
  }
}

std::uint32_t Cache::pick_victim(std::uint64_t set) noexcept {
  const Line* base = &lines_[set * cfg_.ways];
  // Invalid ways always win.
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) return w;
  }
  switch (cfg_.policy) {
    case Replacement::Lru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
        if (base[w].lru < base[victim].lru) victim = w;
      }
      return victim;
    }
    case Replacement::Fifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
        if (base[w].fifo < base[victim].fifo) victim = w;
      }
      return victim;
    }
    case Replacement::Random:
      return static_cast<std::uint32_t>(mix64(rand_state_) % cfg_.ways);
    case Replacement::Plru: {
      if (cfg_.ways == 1) return 0;
      const std::uint32_t bits = plru_[set];
      std::uint32_t node = 0;
      std::uint32_t lo = 0;
      std::uint32_t hi = cfg_.ways;
      while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const bool go_left = (bits >> node) & 1u;
        node = 2 * node + (go_left ? 1 : 2);
        (go_left ? hi : lo) = mid;
      }
      return lo;
    }
  }
  return 0;
}

AccessResult Cache::access(Addr addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];

  // Hit path.
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      ++stats_.hits;
      touch(set, w);
      if (write) ln.dirty = true;
      return {.hit = true, .writeback_addr = std::nullopt,
              .evicted_addr = std::nullopt};
    }
  }

  // Miss: select a victim per policy.
  ++stats_.misses;
  const std::uint32_t vw = pick_victim(set);
  Line& victim = base[vw];

  AccessResult res;
  if (victim.valid) {
    ++stats_.evictions;
    res.evicted_addr = line_addr(victim.tag, set);
    if (victim.dirty) {
      ++stats_.writebacks;
      res.writeback_addr = res.evicted_addr;
    }
  }
  victim.tag = tag;
  victim.valid = true;
  victim.dirty = write;
  victim.fifo = ++tick_;
  touch(set, vw);
  return res;
}

bool Cache::contains(Addr addr) const noexcept {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(Addr addr) noexcept {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      const bool was_dirty = ln.dirty;
      ln = Line{};
      return was_dirty;
    }
  }
  return false;
}

bool Cache::clean(Addr addr) noexcept {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      const bool was_dirty = ln.dirty;
      ln.dirty = false;
      return was_dirty;
    }
  }
  return false;
}

std::uint64_t Cache::resident_lines() const noexcept {
  std::uint64_t n = 0;
  for (const auto& ln : lines_) n += ln.valid ? 1 : 0;
  return n;
}

}  // namespace arch21::mem
