#pragma once
// Memory-controller scheduling: FCFS vs FR-FCFS (first-ready, first-come
// first-served) over the row-buffer DRAM model.  FR-FCFS reorders the
// request queue to drain row-buffer hits before opening new rows --
// one of the concrete "new interfaces (beyond the JEDEC standards)"
// levers the paper's datacenter-memory discussion points at, and a
// classic throughput-vs-fairness tradeoff.

#include <cstdint>
#include <vector>

#include "mem/dram.hpp"

namespace arch21::mem {

/// Controller scheduling policy.
enum class MemSchedule : std::uint8_t {
  Fcfs,    ///< strict arrival order
  FrFcfs,  ///< row hits first, then oldest
};

const char* to_string(MemSchedule p);

/// One memory request.
struct MemRequest {
  Addr addr = 0;
  bool write = false;
  std::uint64_t id = 0;  ///< arrival order, for latency/fairness tracking
};

/// Result of draining a request batch.
struct MemSchedStats {
  std::uint64_t requests = 0;
  std::uint64_t row_hits = 0;
  double total_time_ns = 0;         ///< time to drain the batch
  double total_energy_j = 0;
  double mean_latency_ns = 0;       ///< mean completion time per request
  double max_latency_ns = 0;        ///< worst case (fairness indicator)

  double row_hit_rate() const noexcept {
    return requests ? static_cast<double>(row_hits) /
                          static_cast<double>(requests)
                    : 0;
  }
  double throughput_gbs(double bytes_per_req = 64) const noexcept {
    return total_time_ns > 0
               ? static_cast<double>(requests) * bytes_per_req /
                     total_time_ns
               : 0;
  }
};

/// Drain a batch of requests through a fresh DRAM channel under the
/// given policy.  FR-FCFS uses a bounded reorder window.
MemSchedStats drain_batch(const std::vector<MemRequest>& batch,
                          MemSchedule policy, const DramConfig& cfg = {},
                          std::size_t window = 16);

/// Build an interleaved multi-stream batch: `streams` sequential readers
/// round-robin their requests (the access pattern that punishes FCFS).
std::vector<MemRequest> make_interleaved_streams(std::uint32_t streams,
                                                 std::uint32_t per_stream,
                                                 std::uint64_t stride_bytes,
                                                 std::uint64_t row_bytes);

}  // namespace arch21::mem
