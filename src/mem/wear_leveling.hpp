#pragma once
// Start-Gap wear leveling (Qureshi et al., MICRO 2009): an algebraic
// logical-to-physical line remapping that needs no translation table.
// One spare "gap" line rotates through the device; every `gap_interval`
// writes, the line just before the gap moves into it and the gap shifts
// down by one.  After lines+1 full rotations every logical line has
// occupied every physical slot, spreading hot-spot writes uniformly.
//
// This is the concrete mechanism behind the paper's "device wear out"
// re-architecting requirement; experiment E10 measures achieved lifetime
// with and without it under a skewed (hot-line) write workload.

#include <cstdint>
#include <vector>

#include "mem/nvm.hpp"

namespace arch21::mem {

/// Start-Gap remapper in front of an NvmDevice.
class StartGap {
 public:
  /// `gap_interval`: writes between gap movements (the paper's psi; 100
  /// gives ~1% write overhead).
  StartGap(NvmDevice& device, std::uint32_t gap_interval = 100);

  /// Logical line count (device lines minus the spare).
  std::uint64_t logical_lines() const noexcept { return n_; }

  /// Map a logical line to its current physical line.
  std::uint64_t map(std::uint64_t logical) const;

  /// Write through the remap; may trigger a gap move (one extra device
  /// write).  Returns the device access result for the payload write.
  NvmAccess write(std::uint64_t logical);

  /// Read through the remap.
  NvmAccess read(std::uint64_t logical);

  std::uint64_t gap_moves() const noexcept { return gap_moves_; }

 private:
  void move_gap();

  NvmDevice& dev_;
  std::uint64_t n_;        ///< logical lines = physical - 1
  std::uint64_t gap_;      ///< physical index of the gap slot
  std::uint32_t interval_;
  std::uint32_t since_move_ = 0;
  std::uint64_t gap_moves_ = 0;
  // Explicit permutation.  The original paper derives an O(1)-state
  // algebraic map; the explicit form is behaviourally identical (same gap
  // moves, same wear distribution) and directly checkable by tests.
  std::vector<std::uint32_t> phys_of_;     ///< logical -> physical slot
  std::vector<std::int64_t> logical_at_;   ///< physical slot -> logical, -1 = gap
};

}  // namespace arch21::mem
