#pragma once
// Base-Delta-Immediate (BDI) cache-line compression (Pekhimenko et al.,
// PACT 2012), implemented as a real codec: compress() emits an encoded
// byte stream and decompress() restores the exact line.  The memory
// system uses the compressed size to cut bandwidth and therefore data-
// movement energy -- the paper's "memory systems must seek energy
// efficiency through specialization (e.g., through compression...)".
//
// Schemes tried, best (smallest) wins:
//   Zeros            -- all-zero line, 1 byte of metadata
//   Repeat8          -- one repeated 64-bit value
//   Base8Delta{1,2,4} -- 64-bit base + narrow per-word deltas
//   Base4Delta{1,2}  -- 32-bit base + narrow per-word deltas
//   Base2Delta1      -- 16-bit base + 1-byte deltas
//   Raw              -- uncompressed fallback

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace arch21::mem {

/// Compression scheme identifiers (first byte of every encoding).
enum class BdiScheme : std::uint8_t {
  Zeros = 0,
  Repeat8 = 1,
  Base8Delta1 = 2,
  Base8Delta2 = 3,
  Base8Delta4 = 4,
  Base4Delta1 = 5,
  Base4Delta2 = 6,
  Base2Delta1 = 7,
  Raw = 8,
};

const char* to_string(BdiScheme s);

/// Result of compressing one line.
struct BdiResult {
  BdiScheme scheme = BdiScheme::Raw;
  std::vector<std::uint8_t> bytes;  ///< scheme byte + payload

  std::size_t size() const noexcept { return bytes.size(); }
};

/// Compress a cache line (length must be a multiple of 8; typically 64).
BdiResult bdi_compress(std::span<const std::uint8_t> line);

/// Decompress an encoding produced by bdi_compress; `original_size` is
/// the line length.  Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> bdi_decompress(std::span<const std::uint8_t> enc,
                                         std::size_t original_size);

/// Compression ratio (original / compressed) for a line.
double bdi_ratio(std::span<const std::uint8_t> line);

}  // namespace arch21::mem
