#include "mem/wear_leveling.hpp"

#include <numeric>
#include <stdexcept>

namespace arch21::mem {

StartGap::StartGap(NvmDevice& device, std::uint32_t gap_interval)
    : dev_(device),
      n_(device.config().lines - 1),
      gap_(device.config().lines - 1),
      interval_(gap_interval) {
  if (device.config().lines < 2) {
    throw std::invalid_argument("StartGap: device too small");
  }
  if (gap_interval == 0) {
    throw std::invalid_argument("StartGap: gap_interval must be > 0");
  }
  phys_of_.resize(n_);
  std::iota(phys_of_.begin(), phys_of_.end(), 0u);
  logical_at_.assign(n_ + 1, -1);
  for (std::uint64_t i = 0; i < n_; ++i) {
    logical_at_[i] = static_cast<std::int64_t>(i);
  }
}

std::uint64_t StartGap::map(std::uint64_t logical) const {
  if (logical >= n_) throw std::out_of_range("StartGap::map");
  return phys_of_[logical];
}

NvmAccess StartGap::read(std::uint64_t logical) {
  return dev_.read(map(logical));
}

NvmAccess StartGap::write(std::uint64_t logical) {
  const auto res = dev_.write(map(logical));
  ++since_move_;
  if (since_move_ >= interval_) {
    since_move_ = 0;
    move_gap();
  }
  return res;
}

void StartGap::move_gap() {
  // The line in the slot circularly "before" the gap moves into the gap;
  // the gap shifts to that slot.  Over lines+1 moves the gap sweeps the
  // whole device once and every line has shifted by one slot, which is
  // what spreads a write hot-spot across all physical lines.
  const std::uint64_t slots = n_ + 1;
  const std::uint64_t src = (gap_ + slots - 1) % slots;
  const std::int64_t moving = logical_at_[src];
  if (moving >= 0) {
    // Device traffic for the migration: read the source, write the gap.
    dev_.read(src);
    dev_.write(gap_);
    logical_at_[gap_] = moving;
    phys_of_[static_cast<std::uint64_t>(moving)] =
        static_cast<std::uint32_t>(gap_);
    logical_at_[src] = -1;
  }
  gap_ = src;
  ++gap_moves_;
}

}  // namespace arch21::mem
