#pragma once
// Non-volatile memory (PCM-class) device model: asymmetric read/write
// latency and energy, limited write endurance with cell-to-cell
// variation, and wear tracking at line granularity.
//
// Paper hook (section 2.3): emerging NVM technologies "require
// re-architecting memory and storage systems to address the device
// capabilities (e.g., longer, asymmetric, or variable latency, as well as
// device wear out)."  The wear-leveling module (mem/wear_leveling.hpp)
// plugs in front of this model; experiment E10 measures the lifetime it
// buys.

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"
#include "util/rng.hpp"

namespace arch21::mem {

/// PCM-class device parameters (representative mid-2010s literature
/// values; DRAM comparison: read ~2-4x slower, write ~10x slower and
/// ~5-10x more energy, zero refresh power).
struct NvmConfig {
  double read_ns = 60;
  double write_ns = 150;
  double e_read_per64b_nj = 1.0;
  double e_write_per64b_nj = 8.0;
  double mean_endurance = 1e8;   ///< mean writes per line before failure
  double endurance_shape = 5.0;  ///< Weibull shape (variation across cells)
  std::uint64_t lines = 1 << 16; ///< device capacity in lines
  std::uint32_t line_bytes = 64;
  std::uint64_t seed = 42;       ///< endurance draw seed
};

/// Result of an NVM access.
struct NvmAccess {
  double latency_ns = 0;
  double energy_j = 0;
  bool line_failed = false;  ///< this write exhausted the line's endurance
};

/// The device.  Addresses are *physical line indices* (wear leveling maps
/// logical -> physical above this layer).
class NvmDevice {
 public:
  explicit NvmDevice(NvmConfig cfg);

  const NvmConfig& config() const noexcept { return cfg_; }

  NvmAccess read(std::uint64_t line);
  NvmAccess write(std::uint64_t line);

  std::uint64_t writes_to(std::uint64_t line) const { return writes_.at(line); }
  std::uint64_t endurance_of(std::uint64_t line) const { return endurance_.at(line); }
  std::uint64_t failed_lines() const noexcept { return failed_count_; }
  std::uint64_t total_writes() const noexcept { return total_writes_; }
  double total_energy_j() const noexcept { return energy_j_; }

  /// Maximum per-line write count so far (wear skew indicator).
  std::uint64_t max_wear() const;
  /// Coefficient of variation of per-line wear (0 = perfectly even).
  double wear_cv() const;

 private:
  NvmConfig cfg_;
  std::vector<std::uint64_t> writes_;
  std::vector<std::uint64_t> endurance_;  ///< per-line write budget
  std::uint64_t failed_count_ = 0;
  std::uint64_t total_writes_ = 0;
  double energy_j_ = 0;
};

}  // namespace arch21::mem
