#include "mem/hierarchy.hpp"

namespace arch21::mem {

const char* to_string(ServiceLevel s) {
  switch (s) {
    case ServiceLevel::L1: return "L1";
    case ServiceLevel::L2: return "L2";
    case ServiceLevel::LLC: return "LLC";
    case ServiceLevel::Dram: return "DRAM";
  }
  return "?";
}

Hierarchy::Hierarchy(CacheConfig l1, CacheConfig l2, CacheConfig llc,
                     const energy::Catalogue& cat, HierarchyLatency lat)
    : l1_(l1), l2_(l2), llc_(llc), cat_(cat), lat_(lat) {}

ServiceLevel Hierarchy::access(Addr addr, bool write) {
  ++stats_.accesses;
  using energy::Level;

  // Every lookup that happens costs its level's access energy, whether it
  // hits or misses (the tag+data array is read either way).
  double energy = cat_.access(Level::L1);
  std::uint64_t latency = lat_.l1;
  ServiceLevel serviced = ServiceLevel::L1;

  // A dirty victim is *installed dirty* in the next level (write-back
  // write-allocate), which can cascade further evictions outward.
  auto spill_to_llc = [&](Addr victim) {
    energy += cat_.access(Level::LLC);
    const auto r = llc_.access(victim, /*write=*/true);
    if (r.writeback_addr) {
      ++stats_.writebacks_to_dram;
      energy += cat_.access(Level::Dram);
    }
  };
  auto spill_to_l2 = [&](Addr victim) {
    energy += cat_.access(Level::L2);
    const auto r = l2_.access(victim, /*write=*/true);
    if (r.writeback_addr) spill_to_llc(*r.writeback_addr);
  };

  const auto r1 = l1_.access(addr, write);
  if (!r1.hit) {
    energy += cat_.access(Level::L2);
    latency += lat_.l2;
    serviced = ServiceLevel::L2;
    const auto r2 = l2_.access(addr, false);
    if (!r2.hit) {
      energy += cat_.access(Level::LLC);
      latency += lat_.llc;
      serviced = ServiceLevel::LLC;
      const auto r3 = llc_.access(addr, false);
      if (!r3.hit) {
        energy += cat_.access(Level::Dram);
        latency += lat_.dram;
        serviced = ServiceLevel::Dram;
      }
      if (r3.writeback_addr) {
        ++stats_.writebacks_to_dram;
        energy += cat_.access(Level::Dram);
      }
    }
    if (r2.writeback_addr) spill_to_llc(*r2.writeback_addr);
  }
  if (r1.writeback_addr) spill_to_l2(*r1.writeback_addr);

  stats_.serviced_at[static_cast<std::size_t>(serviced)] += 1;
  stats_.total_energy_j += energy;
  stats_.total_latency_cycles += latency;
  return serviced;
}

void Hierarchy::reset_stats() {
  stats_ = {};
  l1_.reset_stats();
  l2_.reset_stats();
  llc_.reset_stats();
}

}  // namespace arch21::mem
