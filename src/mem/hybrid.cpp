#include "mem/hybrid.hpp"

#include <stdexcept>

namespace arch21::mem {

HybridMemory::HybridMemory(Dram& dram, NvmDevice& nvm, HybridConfig cfg)
    : dram_(dram), nvm_(nvm), cfg_(cfg) {
  if (cfg.dram_pages == 0 || cfg.page_bytes == 0) {
    throw std::invalid_argument("HybridMemory: bad config");
  }
  resident_.reserve(cfg.dram_pages);
}

bool HybridMemory::in_dram(Addr addr) const {
  return resident_pos_.count(page_of(addr)) != 0;
}

void HybridMemory::access(Addr addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t page = page_of(addr);
  auto& info = info_[page];
  info.count += 1;

  const auto pos = resident_pos_.find(page);
  if (pos != resident_pos_.end()) {
    ++stats_.dram_hits;
    info.referenced = true;
    const auto a = dram_.access(addr, write);
    stats_.total_latency_ns += a.latency_ns;
    stats_.total_energy_j += a.energy_j;
  } else {
    ++stats_.nvm_hits;
    const std::uint64_t line =
        (addr / nvm_.config().line_bytes) % nvm_.config().lines;
    const auto a = write ? nvm_.write(line) : nvm_.read(line);
    stats_.total_latency_ns += a.latency_ns;
    stats_.total_energy_j += a.energy_j;
    if (info.count >= cfg_.promote_threshold) promote(page);
  }

  if (++since_epoch_ >= cfg_.epoch_accesses) {
    since_epoch_ = 0;
    decay_counters();
  }
}

void HybridMemory::promote(std::uint64_t page) {
  if (resident_.size() >= cfg_.dram_pages) demote_victim();
  ++stats_.promotions;
  // Migration traffic: read the page from NVM, write it into DRAM.
  const std::uint64_t words = cfg_.page_bytes / 8;
  for (std::uint64_t w = 0; w < words; w += 8) {  // 64 B line granularity
    const std::uint64_t line =
        (page * cfg_.page_bytes / nvm_.config().line_bytes + w / 8) %
        nvm_.config().lines;
    const auto r = nvm_.read(line);
    stats_.total_energy_j += r.energy_j;
    const auto d = dram_.access(page * cfg_.page_bytes + w * 8, true);
    stats_.total_energy_j += d.energy_j;
  }
  resident_pos_[page] = resident_.size();
  resident_.push_back(page);
  info_[page].referenced = true;
}

void HybridMemory::demote_victim() {
  // CLOCK: sweep until an unreferenced page is found.
  for (;;) {
    if (resident_.empty()) return;
    clock_hand_ %= resident_.size();
    const std::uint64_t page = resident_[clock_hand_];
    auto& info = info_[page];
    if (info.referenced) {
      info.referenced = false;
      ++clock_hand_;
      continue;
    }
    // Demote: write the page back to NVM.
    ++stats_.demotions;
    const std::uint64_t lines_per_page =
        cfg_.page_bytes / nvm_.config().line_bytes;
    for (std::uint64_t l = 0; l < lines_per_page; ++l) {
      const std::uint64_t line =
          (page * lines_per_page + l) % nvm_.config().lines;
      const auto wcost = nvm_.write(line);
      stats_.total_energy_j += wcost.energy_j;
    }
    // Remove from the ring (swap with last).
    const std::size_t pos = clock_hand_;
    resident_pos_.erase(page);
    resident_[pos] = resident_.back();
    if (pos != resident_.size() - 1) resident_pos_[resident_[pos]] = pos;
    resident_.pop_back();
    info_[page].count = 0;
    return;
  }
}

void HybridMemory::decay_counters() {
  for (auto& [page, info] : info_) info.count /= 2;
}

}  // namespace arch21::mem
