#pragma once
// Set-associative cache simulator with true-LRU replacement and
// write-back/write-allocate policy.  This is the building block of the
// memory-hierarchy model (mem/hierarchy.hpp) and of the MESI coherence
// simulator (mem/coherence.hpp).
//
// The simulator is functional (tag-state only, no data payload): it
// answers hit/miss and tracks evictions, which is all the energy and
// performance models need.

#include <cstdint>
#include <optional>
#include <vector>

namespace arch21::mem {

/// Physical/virtual address type used by all memory models.
using Addr = std::uint64_t;

/// Replacement policy.
enum class Replacement : std::uint8_t {
  Lru,     ///< true LRU (timestamp)
  Fifo,    ///< evict oldest insertion
  Random,  ///< uniform random victim (seeded, deterministic)
  Plru,    ///< tree pseudo-LRU (requires power-of-two ways)
};

const char* to_string(Replacement r);

/// Cache geometry.  All sizes in bytes; everything must be a power of two
/// and size >= line_size * ways.
struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  Replacement policy = Replacement::Lru;
  std::uint64_t seed = 1;  ///< for Replacement::Random

  std::uint64_t sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }
};

/// Result of a cache access.
struct AccessResult {
  bool hit = false;
  /// Set when a dirty line was evicted to make room (write-back traffic).
  std::optional<Addr> writeback_addr;
  /// Set when any valid line was evicted (for inclusion upkeep upstream).
  std::optional<Addr> evicted_addr;
};

/// Running statistics.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const noexcept {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses)
                    : 0.0;
  }
  double miss_rate() const noexcept { return accesses ? 1.0 - hit_rate() : 0.0; }
};

/// One cache level.
class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  const CacheConfig& config() const noexcept { return cfg_; }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Perform a demand access.  `write` marks the line dirty on hit or on
  /// the allocated line (write-allocate).
  AccessResult access(Addr addr, bool write);

  /// Probe without updating LRU or stats (coherence snoops use this).
  bool contains(Addr addr) const noexcept;

  /// Invalidate a line if present; returns true when the line was dirty
  /// (the caller owes a write-back).
  bool invalidate(Addr addr) noexcept;

  /// Downgrade a line to clean (coherence: M -> S supplies data).
  /// Returns true if the line was present and dirty.
  bool clean(Addr addr) noexcept;

  /// Number of valid lines currently resident.
  std::uint64_t resident_lines() const noexcept;

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;   ///< larger = more recently used (LRU)
    std::uint64_t fifo = 0;  ///< insertion order (FIFO)
  };

  std::uint64_t set_index(Addr addr) const noexcept;
  Addr tag_of(Addr addr) const noexcept;
  Addr line_addr(Addr tag, std::uint64_t set) const noexcept;
  std::uint32_t pick_victim(std::uint64_t set) noexcept;
  void touch(std::uint64_t set, std::uint32_t way) noexcept;

  CacheConfig cfg_;
  std::uint64_t sets_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  ///< sets_ * ways, row-major by set
  std::vector<std::uint32_t> plru_;  ///< per-set PLRU tree bits
  std::uint64_t tick_ = 0;
  std::uint64_t rand_state_;
  CacheStats stats_;
};

}  // namespace arch21::mem
