#include "mem/nvm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace arch21::mem {

NvmDevice::NvmDevice(NvmConfig cfg) : cfg_(cfg) {
  if (cfg.lines == 0) throw std::invalid_argument("NvmDevice: zero lines");
  writes_.assign(cfg.lines, 0);
  endurance_.resize(cfg.lines);
  Rng rng(cfg.seed);
  for (auto& e : endurance_) {
    // Weibull endurance with the configured mean: mean = lambda*Gamma(1+1/k).
    const double k = cfg.endurance_shape;
    const double lambda = cfg.mean_endurance / std::tgamma(1.0 + 1.0 / k);
    e = static_cast<std::uint64_t>(std::max(1.0, rng.weibull(lambda, k)));
  }
}

NvmAccess NvmDevice::read(std::uint64_t line) {
  if (line >= cfg_.lines) throw std::out_of_range("NvmDevice::read");
  NvmAccess a;
  a.latency_ns = cfg_.read_ns;
  a.energy_j = cfg_.e_read_per64b_nj * units::nano *
               (static_cast<double>(cfg_.line_bytes) / 8.0);
  energy_j_ += a.energy_j;
  return a;
}

NvmAccess NvmDevice::write(std::uint64_t line) {
  if (line >= cfg_.lines) throw std::out_of_range("NvmDevice::write");
  NvmAccess a;
  a.latency_ns = cfg_.write_ns;
  a.energy_j = cfg_.e_write_per64b_nj * units::nano *
               (static_cast<double>(cfg_.line_bytes) / 8.0);
  energy_j_ += a.energy_j;
  ++total_writes_;
  auto& w = writes_[line];
  ++w;
  if (w == endurance_[line]) {
    ++failed_count_;
    a.line_failed = true;
  }
  return a;
}

std::uint64_t NvmDevice::max_wear() const {
  return *std::max_element(writes_.begin(), writes_.end());
}

double NvmDevice::wear_cv() const {
  OnlineStats s;
  for (auto w : writes_) s.add(static_cast<double>(w));
  return s.mean() > 0 ? s.stddev() / s.mean() : 0.0;
}

}  // namespace arch21::mem
