#pragma once
// First-order DRAM timing/energy model with per-bank row buffers.
// Captures the behaviour that matters to the experiments: row-buffer hits
// are fast and cheap, row misses pay precharge+activate, and refresh
// consumes background power.  Used as the volatile half of the hybrid
// memory experiments (E10) and the baseline for the NVM comparison.

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"

namespace arch21::mem {

/// DRAM device/channel configuration.
struct DramConfig {
  std::uint32_t banks = 8;
  std::uint64_t row_bytes = 8 * 1024;     ///< row-buffer size
  double t_cas_ns = 14;                   ///< row-hit access
  double t_rcd_ns = 14;                   ///< activate
  double t_rp_ns = 14;                    ///< precharge
  double e_activate_nj = 1.0;             ///< energy per activate
  double e_rw_per64b_nj = 0.5;            ///< column access energy
  double background_w_per_gib = 0.15;     ///< refresh + standby power
};

/// Outcome of one DRAM access.
struct DramAccess {
  bool row_hit = false;
  double latency_ns = 0;
  double energy_j = 0;
};

/// Open-page DRAM channel model.
class Dram {
 public:
  explicit Dram(DramConfig cfg);

  const DramConfig& config() const noexcept { return cfg_; }

  /// Access the 64-bit word at `addr`; banks interleave by row.
  DramAccess access(Addr addr, bool write);

  std::uint64_t row_hits() const noexcept { return row_hits_; }
  std::uint64_t row_misses() const noexcept { return row_misses_; }
  double row_hit_rate() const noexcept {
    const auto t = row_hits_ + row_misses_;
    return t ? static_cast<double>(row_hits_) / static_cast<double>(t) : 0;
  }
  double total_energy_j() const noexcept { return energy_j_; }

 private:
  DramConfig cfg_;
  std::vector<std::int64_t> open_row_;  ///< -1 = closed, else row id
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  double energy_j_ = 0;
};

}  // namespace arch21::mem
