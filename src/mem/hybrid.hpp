#pragma once
// Hybrid DRAM + NVM main memory with hotness-based page migration.
// DRAM is the small, fast, write-friendly tier; NVM is the large,
// non-volatile, write-limited tier.  A CLOCK-with-counters policy
// promotes hot pages into DRAM and demotes cold ones, answering the
// paper's "rethinking the relationship between memory and storage".

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/nvm.hpp"

namespace arch21::mem {

/// Hybrid-memory configuration.
struct HybridConfig {
  std::uint64_t page_bytes = 4096;
  std::uint64_t dram_pages = 256;       ///< DRAM tier capacity
  std::uint32_t promote_threshold = 8;  ///< accesses-per-epoch to promote
  std::uint64_t epoch_accesses = 4096;  ///< counter-decay period
};

/// Aggregate statistics.
struct HybridStats {
  std::uint64_t accesses = 0;
  std::uint64_t dram_hits = 0;     ///< serviced from the DRAM tier
  std::uint64_t nvm_hits = 0;      ///< serviced from the NVM tier
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  double total_latency_ns = 0;
  double total_energy_j = 0;

  double dram_fraction() const noexcept {
    return accesses ? static_cast<double>(dram_hits) /
                          static_cast<double>(accesses)
                    : 0;
  }
  double mean_latency_ns() const noexcept {
    return accesses ? total_latency_ns / static_cast<double>(accesses) : 0;
  }
};

/// The hybrid manager.  Addresses are byte addresses; the manager works
/// at page granularity and forwards word traffic to the tier models.
class HybridMemory {
 public:
  HybridMemory(Dram& dram, NvmDevice& nvm, HybridConfig cfg);

  /// One 64-bit access.
  void access(Addr addr, bool write);

  const HybridStats& stats() const noexcept { return stats_; }
  bool in_dram(Addr addr) const;
  std::uint64_t dram_resident() const noexcept { return resident_.size(); }

 private:
  struct PageInfo {
    std::uint32_t count = 0;  ///< accesses this epoch
    bool referenced = false;  ///< CLOCK bit (DRAM-resident pages)
  };

  std::uint64_t page_of(Addr addr) const noexcept { return addr / cfg_.page_bytes; }
  void promote(std::uint64_t page);
  void demote_victim();
  void decay_counters();

  Dram& dram_;
  NvmDevice& nvm_;
  HybridConfig cfg_;
  std::unordered_map<std::uint64_t, PageInfo> info_;
  std::vector<std::uint64_t> resident_;  ///< DRAM-resident pages (CLOCK ring)
  std::unordered_map<std::uint64_t, std::size_t> resident_pos_;
  std::size_t clock_hand_ = 0;
  std::uint64_t since_epoch_ = 0;
  HybridStats stats_;
};

}  // namespace arch21::mem
