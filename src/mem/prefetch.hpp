#pragma once
// Stride prefetching in front of the cache hierarchy, with honest energy
// accounting: every prefetch issued costs real fetch energy, so a
// low-accuracy prefetcher *wastes* energy even when it helps latency --
// the canonical energy-first tension ("memory hierarchies ... usually
// optimized for performance first", section 2.2).
//
// The prefetcher is a table of region-local stride detectors: the address
// space is divided into 4 KiB regions; each tracked region remembers its
// last line and a confirmed stride; two consecutive matching deltas arm
// the entry, after which each demand access prefetches `degree` lines
// ahead.

#include <cstdint>
#include <vector>

#include "mem/hierarchy.hpp"

namespace arch21::mem {

/// Prefetcher configuration.
struct PrefetchConfig {
  std::uint32_t table_entries = 64;  ///< tracked regions (direct-mapped)
  std::uint32_t degree = 2;          ///< lines fetched ahead when armed
  std::uint64_t region_bytes = 4096;
};

/// Prefetcher statistics.
struct PrefetchStats {
  std::uint64_t issued = 0;       ///< prefetches sent to the hierarchy
  std::uint64_t useful = 0;       ///< prefetched lines later demanded
  std::uint64_t demand_accesses = 0;
  std::uint64_t demand_hits_l1 = 0;

  double accuracy() const noexcept {
    return issued ? static_cast<double>(useful) / static_cast<double>(issued)
                  : 0;
  }
};

/// A stride prefetcher bolted onto a Hierarchy.
class StridePrefetcher {
 public:
  StridePrefetcher(Hierarchy& hierarchy, PrefetchConfig cfg = {});

  /// Forward one demand access through the prefetcher.
  /// Returns the level that serviced the *demand* access.
  ServiceLevel access(Addr addr, bool write);

  const PrefetchStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::uint64_t region = ~0ull;
    std::int64_t last_line = 0;
    std::int64_t stride = 0;
    bool armed = false;
  };

  Hierarchy& h_;
  PrefetchConfig cfg_;
  std::vector<Entry> table_;
  /// Lines brought in by prefetch, awaiting first demand touch
  /// (bounded FIFO window for usefulness attribution).
  std::vector<Addr> inflight_;
  PrefetchStats stats_;
};

}  // namespace arch21::mem
