#include "mem/sidechannel.hpp"

#include <algorithm>

namespace arch21::mem {

namespace {

/// Attacker line for (set, way): distinct tags all landing in `set`.
Addr attacker_line(const CacheConfig& cfg, std::uint64_t set,
                   std::uint32_t way) {
  const std::uint64_t sets = cfg.sets();
  // Tag region 0x100.. keeps attacker tags distinct from victim tags.
  return ((0x1000 + way) * sets + set) * cfg.line_bytes;
}

/// Victim line whose set index equals the secret.
Addr victim_line(const CacheConfig& cfg, std::uint32_t secret) {
  const std::uint64_t sets = cfg.sets();
  return ((0x9000ull) * sets + secret) * cfg.line_bytes;
}

}  // namespace

AttackResult prime_probe_attack(const SidechannelConfig& cfg,
                                std::uint32_t secret, bool partitioned) {
  const std::uint64_t sets = cfg.cache.sets();
  Rng rng(cfg.seed);
  AttackResult res;
  res.secret = secret % static_cast<std::uint32_t>(sets);

  // Shared cache, or -- under the defense -- two statically partitioned
  // halves (attacker and victim each get ways/2).
  CacheConfig half = cfg.cache;
  half.ways = std::max(1u, cfg.cache.ways / 2);
  half.size_bytes = cfg.cache.size_bytes / 2;

  Cache shared(cfg.cache);
  Cache att_part(half);
  Cache vic_part(half);
  Cache& attacker_view = partitioned ? att_part : shared;
  Cache& victim_view = partitioned ? vic_part : shared;
  const std::uint32_t prime_ways =
      partitioned ? half.ways : cfg.cache.ways;

  std::uint64_t total_probe_misses = 0;
  std::uint32_t hits_on_secret = 0;

  for (std::uint32_t trial = 0; trial < cfg.trials; ++trial) {
    // Aggregate probe misses over several rounds: the secret set misses
    // every round while noise lands uniformly.
    std::vector<std::uint32_t> misses(sets, 0);
    for (std::uint32_t round = 0; round < cfg.rounds_per_trial; ++round) {
      // Prime: attacker owns every way of every set (in its view).
      for (std::uint64_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < prime_ways; ++w) {
          attacker_view.access(attacker_line(cfg.cache, s, w), false);
        }
      }
      // Victim: secret-dependent access plus background noise.
      victim_view.access(victim_line(cfg.cache, res.secret), false);
      for (std::uint32_t n = 0; n < cfg.noise_accesses; ++n) {
        const auto s = rng.below(sets);
        victim_view.access(victim_line(cfg.cache,
                                       static_cast<std::uint32_t>(
                                           (s + 1 + res.secret) % sets)) +
                               0x40000000ull,
                           false);
      }
      // Probe: attacker re-touches its lines; a miss means the victim
      // displaced something in that set.
      for (std::uint64_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < prime_ways; ++w) {
          const auto r = attacker_view.access(attacker_line(cfg.cache, s, w),
                                              false);
          if (!r.hit) ++misses[s];
        }
      }
    }
    for (auto m : misses) total_probe_misses += m;
    const auto guess = static_cast<std::uint32_t>(
        std::max_element(misses.begin(), misses.end()) - misses.begin());
    res.guesses.push_back(guess);
    if (guess == res.secret) ++hits_on_secret;
  }

  res.accuracy =
      static_cast<double>(hits_on_secret) / static_cast<double>(cfg.trials);
  res.mean_probe_misses = static_cast<double>(total_probe_misses) /
                          static_cast<double>(cfg.trials);
  return res;
}

double channel_accuracy(const SidechannelConfig& cfg, bool partitioned) {
  const std::uint64_t sets = cfg.cache.sets();
  double acc = 0;
  for (std::uint64_t s = 0; s < sets; ++s) {
    acc += prime_probe_attack(cfg, static_cast<std::uint32_t>(s), partitioned)
               .accuracy;
  }
  return acc / static_cast<double>(sets);
}

}  // namespace arch21::mem
