#include "mem/memctrl.hpp"

#include <algorithm>
#include <deque>

namespace arch21::mem {

const char* to_string(MemSchedule p) {
  switch (p) {
    case MemSchedule::Fcfs: return "fcfs";
    case MemSchedule::FrFcfs: return "fr-fcfs";
  }
  return "?";
}

MemSchedStats drain_batch(const std::vector<MemRequest>& batch,
                          MemSchedule policy, const DramConfig& cfg,
                          std::size_t window) {
  Dram dram(cfg);
  MemSchedStats stats;
  stats.requests = batch.size();
  if (batch.empty()) return stats;
  if (window == 0) window = 1;

  // The open row per bank, tracked controller-side so FR-FCFS can test
  // "would this hit?" without touching the device.
  std::vector<std::int64_t> open_row(cfg.banks, -1);
  auto row_of = [&](Addr a) {
    return static_cast<std::int64_t>(a / cfg.row_bytes);
  };
  auto bank_of = [&](Addr a) {
    return static_cast<std::uint32_t>(row_of(a) % cfg.banks);
  };

  std::deque<MemRequest> queue(batch.begin(), batch.end());
  double now_ns = 0;
  double latency_sum = 0;

  while (!queue.empty()) {
    std::size_t chosen = 0;
    if (policy == MemSchedule::FrFcfs) {
      // First ready: the oldest row-hit within the reorder window.
      const std::size_t limit = std::min(window, queue.size());
      bool found = false;
      for (std::size_t i = 0; i < limit; ++i) {
        const auto& r = queue[i];
        if (open_row[bank_of(r.addr)] == row_of(r.addr)) {
          chosen = i;
          found = true;
          break;
        }
      }
      if (!found) chosen = 0;  // fall back to the oldest request
    }
    const MemRequest req = queue[chosen];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(chosen));

    const auto acc = dram.access(req.addr, req.write);
    open_row[bank_of(req.addr)] = row_of(req.addr);
    now_ns += acc.latency_ns;
    stats.total_energy_j += acc.energy_j;
    stats.row_hits += acc.row_hit ? 1 : 0;
    latency_sum += now_ns;  // completion time since batch start
    stats.max_latency_ns = std::max(stats.max_latency_ns, now_ns);
  }
  stats.total_time_ns = now_ns;
  stats.mean_latency_ns =
      latency_sum / static_cast<double>(stats.requests);
  return stats;
}

std::vector<MemRequest> make_interleaved_streams(std::uint32_t streams,
                                                 std::uint32_t per_stream,
                                                 std::uint64_t stride_bytes,
                                                 std::uint64_t row_bytes) {
  std::vector<MemRequest> out;
  out.reserve(static_cast<std::size_t>(streams) * per_stream);
  std::uint64_t id = 0;
  for (std::uint32_t i = 0; i < per_stream; ++i) {
    for (std::uint32_t s = 0; s < streams; ++s) {
      MemRequest r;
      // Each stream walks its own region (separated by many rows).
      r.addr = static_cast<Addr>(s) * row_bytes * 64 +
               static_cast<Addr>(i) * stride_bytes;
      r.id = id++;
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace arch21::mem
