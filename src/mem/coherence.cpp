#include "mem/coherence.hpp"

#include <stdexcept>

namespace arch21::mem {

const char* to_string(Mesi s) {
  switch (s) {
    case Mesi::Invalid: return "I";
    case Mesi::Shared: return "S";
    case Mesi::Exclusive: return "E";
    case Mesi::Modified: return "M";
  }
  return "?";
}

CoherentSystem::CoherentSystem(std::uint32_t cores, CacheConfig cfg,
                               const energy::Catalogue& cat)
    : cat_(cat), line_bytes_(cfg.line_bytes) {
  if (cores == 0) throw std::invalid_argument("CoherentSystem: cores == 0");
  caches_.reserve(cores);
  states_.resize(cores);
  for (std::uint32_t i = 0; i < cores; ++i) caches_.emplace_back(cfg);
}

Addr CoherentSystem::line_of(Addr addr) const noexcept {
  return addr & ~static_cast<Addr>(line_bytes_ - 1);
}

Mesi& CoherentSystem::state_ref(std::uint32_t c, Addr line) {
  return states_[c][line];
}

Mesi CoherentSystem::state(std::uint32_t c, Addr addr) const {
  const auto it = states_.at(c).find(line_of(addr));
  return it == states_.at(c).end() ? Mesi::Invalid : it->second;
}

double CoherentSystem::line_move_energy() const noexcept {
  return cat_.move(energy::Distance::AcrossChip,
                   static_cast<double>(line_bytes_) * 8.0);
}

void CoherentSystem::handle_eviction(std::uint32_t c, Addr line) {
  auto& m = states_[c];
  const auto it = m.find(line);
  if (it == m.end()) return;
  if (it->second == Mesi::Modified) {
    ++stats_.writebacks;
    stats_.bus_energy_j +=
        cat_.move(energy::Distance::ToDram, static_cast<double>(line_bytes_) * 8.0);
  }
  m.erase(it);
}

void CoherentSystem::read(std::uint32_t c, Addr addr) {
  ++stats_.reads;
  const Addr line = line_of(addr);
  Mesi& st = state_ref(c, line);

  if (st != Mesi::Invalid) {
    // Hit in any of M/E/S: no bus action.
    ++stats_.read_hits;
    caches_[c].access(addr, /*write=*/false);
    return;
  }

  // Read miss: BusRd.  Any M holder supplies data and downgrades to S;
  // any E holder downgrades to S.  If another cache holds the line we get
  // S, otherwise E.
  ++stats_.bus_rd;
  bool others_have = false;
  for (std::uint32_t o = 0; o < cores(); ++o) {
    if (o == c) continue;
    auto it = states_[o].find(line);
    if (it == states_[o].end() || it->second == Mesi::Invalid) continue;
    others_have = true;
    if (it->second == Mesi::Modified) {
      // Supplier flushes: cache-to-cache transfer + memory update.
      ++stats_.c2c_transfers;
      ++stats_.writebacks;
      caches_[o].clean(line);
    } else if (it->second == Mesi::Exclusive) {
      ++stats_.c2c_transfers;
    }
    it->second = Mesi::Shared;
  }
  stats_.bus_energy_j += line_move_energy();
  if (!others_have) {
    stats_.bus_energy_j += cat_.move(
        energy::Distance::ToDram, static_cast<double>(line_bytes_) * 8.0);
  }
  st = others_have ? Mesi::Shared : Mesi::Exclusive;

  const auto r = caches_[c].access(addr, false);
  if (r.evicted_addr && line_of(*r.evicted_addr) != line) {
    handle_eviction(c, line_of(*r.evicted_addr));
  }
}

void CoherentSystem::write(std::uint32_t c, Addr addr) {
  ++stats_.writes;
  const Addr line = line_of(addr);
  Mesi& st = state_ref(c, line);

  if (st == Mesi::Modified) {
    ++stats_.write_hits;
    caches_[c].access(addr, true);
    return;
  }
  if (st == Mesi::Exclusive) {
    // Silent E -> M upgrade.
    ++stats_.write_hits;
    st = Mesi::Modified;
    caches_[c].access(addr, true);
    return;
  }

  // S or I: must invalidate every other copy.
  if (st == Mesi::Shared) {
    ++stats_.bus_upgr;
  } else {
    ++stats_.bus_rdx;
    stats_.bus_energy_j += line_move_energy();
  }
  for (std::uint32_t o = 0; o < cores(); ++o) {
    if (o == c) continue;
    auto it = states_[o].find(line);
    if (it == states_[o].end() || it->second == Mesi::Invalid) continue;
    if (it->second == Mesi::Modified) {
      // Dirty copy flushes before invalidation.
      ++stats_.writebacks;
      ++stats_.c2c_transfers;
      caches_[o].clean(line);
    }
    states_[o].erase(it);
    caches_[o].invalidate(line);
    ++stats_.invalidations;
  }
  st = Mesi::Modified;

  const auto r = caches_[c].access(addr, true);
  if (r.evicted_addr && line_of(*r.evicted_addr) != line) {
    handle_eviction(c, line_of(*r.evicted_addr));
  }
}

bool CoherentSystem::invariants_hold() const {
  // Gather the union of known lines, then check: at most one M/E copy
  // overall, and an M/E copy excludes S copies elsewhere.
  std::unordered_map<Addr, int> owners;  // count of M|E holders
  std::unordered_map<Addr, int> sharers;
  for (std::uint32_t c = 0; c < cores(); ++c) {
    for (const auto& [line, st] : states_[c]) {
      if (st == Mesi::Modified || st == Mesi::Exclusive) owners[line] += 1;
      if (st == Mesi::Shared) sharers[line] += 1;
    }
  }
  for (const auto& [line, n] : owners) {
    if (n > 1) return false;
    if (sharers.count(line) && sharers.at(line) > 0) return false;
  }
  return true;
}

}  // namespace arch21::mem
