#pragma once
// Cache timing side channel (prime+probe) and its partitioning defense.
//
// Paper hook (section 2.4): hardware as the "root of trust" must support
// "information flow tracking (reducing side-channel attacks)".  DIFT
// (isa/machine.hpp) covers explicit flows; this module demonstrates the
// *implicit* flow DIFT cannot see: a victim's secret-dependent memory
// access perturbs shared-cache state, and an attacker recovers the secret
// purely from its own hit/miss timing.
//
// The lab runs the classic attack on the set-associative cache model:
//   prime:  attacker fills every set with its own lines;
//   victim: accesses a line whose SET INDEX depends on a secret nibble;
//   probe:  attacker re-touches its lines and observes which set misses.
// Defense: static way partitioning -- the victim gets dedicated ways, so
// its accesses can no longer evict attacker lines.

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"
#include "util/rng.hpp"

namespace arch21::mem {

/// Result of one prime+probe attack campaign.
struct AttackResult {
  std::vector<std::uint32_t> guesses;  ///< recovered value per trial
  std::uint32_t secret = 0;            ///< ground truth
  double accuracy = 0;                 ///< fraction of trials recovering it
  double mean_probe_misses = 0;        ///< attacker observable
};

/// Shared-cache lab configuration.
struct SidechannelConfig {
  CacheConfig cache{.size_bytes = 4096, .line_bytes = 64, .ways = 4};
  std::uint32_t trials = 50;
  /// Prime/victim/probe rounds aggregated per guess.  Noise spreads
  /// uniformly over sets while the secret set accumulates every round,
  /// so a handful of rounds separates signal from noise -- exactly how
  /// real prime+probe attacks average out background activity.
  std::uint32_t rounds_per_trial = 8;
  /// Victim accesses `noise_accesses` random lines besides the secret-
  /// dependent one (background activity the attacker must average out).
  std::uint32_t noise_accesses = 2;
  std::uint64_t seed = 99;
};

/// Run prime+probe against a victim whose secret selects one cache set.
/// `partitioned` gives the victim dedicated ways (the defense).
AttackResult prime_probe_attack(const SidechannelConfig& cfg,
                                std::uint32_t secret, bool partitioned);

/// Channel capacity proxy: attack accuracy across all possible secrets.
/// Returns mean accuracy in [1/sets (chance) .. 1.0 (leak)].
double channel_accuracy(const SidechannelConfig& cfg, bool partitioned);

}  // namespace arch21::mem
