#pragma once
// Aligned text tables and CSV emission.  Every bench in bench/ regenerates
// one of the paper's tables or quantitative claims and prints it through
// this writer, so the output format is uniform and diffable run-to-run.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace arch21 {

/// A simple column-aligned table builder.
///
///   TextTable t({"node", "freq", "power"});
///   t.row({"45nm", "3.0 GHz", "130 W"});
///   t.print(std::cout);           // aligned ASCII
///   t.write_csv(std::cout);       // machine-readable
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void row(std::vector<std::string> cells);

  /// Convenience: format doubles with %.4g alongside strings.
  /// Cell helper for numeric values.
  static std::string num(double v, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Print with column alignment, a header underline, and `indent` spaces
  /// of left margin.
  void print(std::ostream& os, int indent = 2) const;

  /// Comma-separated output with minimal quoting (cells containing commas
  /// or quotes are double-quoted).
  void write_csv(std::ostream& os) const;

  /// Render to a string (print() into a buffer).
  std::string to_string(int indent = 2) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace arch21
