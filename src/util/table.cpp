#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace arch21 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

const std::string& TextTable::cell(std::size_t r, std::size_t c) const {
  return rows_.at(r).at(c);
}

void TextTable::print(std::ostream& os, int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const std::string margin(static_cast<std::size_t>(indent), ' ');
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << margin;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << margin << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void TextTable::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& s = cells[c];
      const bool quote = s.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : s) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << s;
      }
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string(int indent) const {
  std::ostringstream oss;
  print(oss, indent);
  return oss.str();
}

}  // namespace arch21
