#pragma once
// Signed Q-format fixed-point arithmetic.  The sensor module's
// approximate-computing models (precision scaling) use this to quantify
// the accuracy/energy tradeoff of dropping mantissa bits -- the paper's
// "sensor data is inherently approximate ... approximate computing
// techniques can lead to significant energy savings".

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace arch21 {

/// Fixed<F>: signed 64-bit value with F fractional bits (Q(63-F).F).
/// Arithmetic saturates on overflow rather than wrapping, matching DSP
/// hardware behaviour.
template <int F>
class Fixed {
  static_assert(F >= 0 && F < 63, "fraction bits must be in [0, 62]");

 public:
  using rep = std::int64_t;

  constexpr Fixed() = default;

  /// Quantize a double to this format (round to nearest).
  static constexpr Fixed from_double(double v) noexcept {
    constexpr double scale = static_cast<double>(rep{1} << F);
    const double scaled = v * scale;
    if (scaled >= static_cast<double>(std::numeric_limits<rep>::max())) {
      return from_raw(std::numeric_limits<rep>::max());
    }
    if (scaled <= static_cast<double>(std::numeric_limits<rep>::min())) {
      return from_raw(std::numeric_limits<rep>::min());
    }
    // llround is not constexpr pre-C++23 on all compilers; emulate.
    const double r = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
    return from_raw(static_cast<rep>(r));
  }

  static constexpr Fixed from_raw(rep r) noexcept {
    Fixed f;
    f.raw_ = r;
    return f;
  }

  constexpr rep raw() const noexcept { return raw_; }

  constexpr double to_double() const noexcept {
    constexpr double inv = 1.0 / static_cast<double>(rep{1} << F);
    return static_cast<double>(raw_) * inv;
  }

  /// Smallest representable increment.
  static constexpr double resolution() noexcept {
    return 1.0 / static_cast<double>(rep{1} << F);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_raw(sat_add(a.raw_, b.raw_));
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_raw(sat_add(a.raw_, -b.raw_));
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) noexcept {
    // 128-bit intermediate keeps full precision before the shift back.
    const __int128 prod = static_cast<__int128>(a.raw_) * b.raw_;
    const __int128 shifted = prod >> F;
    return from_raw(sat_narrow(shifted));
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) noexcept {
    if (b.raw_ == 0) {
      return from_raw(a.raw_ >= 0 ? std::numeric_limits<rep>::max()
                                  : std::numeric_limits<rep>::min());
    }
    const __int128 num = static_cast<__int128>(a.raw_) << F;
    return from_raw(sat_narrow(num / b.raw_));
  }
  friend constexpr bool operator==(Fixed a, Fixed b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr auto operator<=>(Fixed a, Fixed b) noexcept {
    return a.raw_ <=> b.raw_;
  }

 private:
  static constexpr rep sat_add(rep a, rep b) noexcept {
    rep r = 0;
    if (__builtin_add_overflow(a, b, &r)) {
      return a > 0 ? std::numeric_limits<rep>::max()
                   : std::numeric_limits<rep>::min();
    }
    return r;
  }
  static constexpr rep sat_narrow(__int128 v) noexcept {
    if (v > std::numeric_limits<rep>::max()) return std::numeric_limits<rep>::max();
    if (v < std::numeric_limits<rep>::min()) return std::numeric_limits<rep>::min();
    return static_cast<rep>(v);
  }

  rep raw_ = 0;
};

/// Quantization helper used by the approximate-computing model: round `v`
/// to `frac_bits` fractional bits (as a double), i.e. the value a Fixed
/// with that many bits would hold.
inline double quantize(double v, int frac_bits) noexcept {
  const double scale = std::ldexp(1.0, frac_bits);
  return std::nearbyint(v * scale) / scale;
}

}  // namespace arch21
