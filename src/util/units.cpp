#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace arch21::units {

namespace {

struct Prefix {
  double scale;
  const char* symbol;
};

constexpr std::array<Prefix, 11> kPrefixes = {{
    {1e18, "E"},
    {1e15, "P"},
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1.0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
}};

}  // namespace

std::string si_format(double value, const char* unit, int precision) {
  if (value == 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "0 %s", unit);
    return buf;
  }
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f %s%s", precision, value / chosen->scale,
                chosen->symbol, unit);
  return buf;
}

std::string time_format(double seconds, int precision) {
  return si_format(seconds, "s", precision);
}

std::string bytes_format(double bytes, int precision) {
  char buf[96];
  if (bytes >= GiB) {
    std::snprintf(buf, sizeof buf, "%.*f GiB", precision, bytes / GiB);
  } else if (bytes >= MiB) {
    std::snprintf(buf, sizeof buf, "%.*f MiB", precision, bytes / MiB);
  } else if (bytes >= KiB) {
    std::snprintf(buf, sizeof buf, "%.*f KiB", precision, bytes / KiB);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f B", precision, bytes);
  }
  return buf;
}

}  // namespace arch21::units
