#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace arch21 {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  Percentiles p(std::vector<double>(xs.begin(), xs.end()));
  return p.at(q);
}

Percentiles::Percentiles(std::vector<double> xs) : sorted_(std::move(xs)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const {
  if (sorted_.empty()) throw std::invalid_argument("percentile of empty set");
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  const double h = q * (static_cast<double>(sorted_.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double Percentiles::min() const {
  if (sorted_.empty()) throw std::invalid_argument("min of empty set");
  return sorted_.front();
}

double Percentiles::max() const {
  if (sorted_.empty()) throw std::invalid_argument("max of empty set");
  return sorted_.back();
}

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  OnlineStats os;
  for (double x : xs) os.add(x);
  Percentiles p(std::vector<double>(xs.begin(), xs.end()));
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = p.min();
  s.p50 = p.at(0.50);
  s.p90 = p.at(0.90);
  s.p99 = p.at(0.99);
  s.p999 = p.at(0.999);
  s.max = p.max();
  return s;
}

std::string Summary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g "
                "p99=%.4g p99.9=%.4g max=%.4g",
                n, mean, stddev, min, p50, p90, p99, p999, max);
  return buf;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  OnlineStats sx;
  OnlineStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(xs[i]);
    sy.add(ys[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(n);
  const double denom = sx.stddev() * sy.stddev();
  return denom > 0 ? cov / denom : 0.0;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return {};
  OnlineStats sx;
  OnlineStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(xs[i]);
    sy.add(ys[i]);
  }
  double cov = 0.0;
  double varx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
    varx += (xs[i] - sx.mean()) * (xs[i] - sx.mean());
  }
  LinearFit f;
  f.slope = varx > 0 ? cov / varx : 0.0;
  f.intercept = sy.mean() - f.slope * sx.mean();
  return f;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    assert(x > 0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace arch21
