#pragma once
// SI units, prefixes and engineering formatting.  The library's models
// span twelve orders of magnitude (a 10 mW sensor to a 10 MW datacenter
// -- the white paper's efficiency ladder), so consistent unit handling
// and readable formatting matter more than usual.
//
// Conventions used throughout arch21:
//   time    : seconds (double)
//   energy  : joules
//   power   : watts
//   capacity: bytes
//   rates   : per-second (ops/s, bytes/s)

#include <cmath>
#include <cstdint>
#include <string>

namespace arch21::units {

// ---- scale constants -------------------------------------------------
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double tera = 1e12;
inline constexpr double peta = 1e15;
inline constexpr double exa = 1e18;

inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
inline constexpr double femto = 1e-15;

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
inline constexpr double GiB = 1024.0 * 1024.0 * 1024.0;

// ---- common derived helpers -------------------------------------------

/// Joules from picojoules (most per-op energies are quoted in pJ).
constexpr double from_pJ(double pj) noexcept { return pj * pico; }
/// Picojoules from joules.
constexpr double to_pJ(double j) noexcept { return j / pico; }
/// Joules from nanojoules.
constexpr double from_nJ(double nj) noexcept { return nj * nano; }
/// Seconds from nanoseconds.
constexpr double from_ns(double ns) noexcept { return ns * nano; }
/// Nanoseconds from seconds.
constexpr double to_ns(double s) noexcept { return s / nano; }
/// Seconds from a frequency (period).
constexpr double period(double hz) noexcept { return 1.0 / hz; }

/// Operations per second per watt = operations per joule.
constexpr double ops_per_watt(double ops_per_s, double watts) noexcept {
  return watts > 0 ? ops_per_s / watts : 0.0;
}

// ---- formatting --------------------------------------------------------

/// Format a value with an SI prefix, e.g. si_format(2.5e9, "op/s")
/// -> "2.50 Gop/s".  Covers f..E prefixes.
std::string si_format(double value, const char* unit, int precision = 3);

/// Format seconds with an appropriate unit (ns/us/ms/s).
std::string time_format(double seconds, int precision = 3);

/// Format bytes with binary prefixes (KiB/MiB/GiB).
std::string bytes_format(double bytes, int precision = 3);

}  // namespace arch21::units
