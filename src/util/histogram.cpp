#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace arch21 {

LogHistogram::LogHistogram(double lowest, double highest,
                           std::size_t buckets_per_decade)
    : lowest_(lowest), highest_(highest) {
  if (!(lowest > 0) || !(highest > lowest) || buckets_per_decade == 0) {
    throw std::invalid_argument("LogHistogram: bad construction parameters");
  }
  const double log_growth =
      std::log(10.0) / static_cast<double>(buckets_per_decade);
  growth_ = std::exp(log_growth);
  log_lowest_ = std::log(lowest_);
  inv_log_growth_ = 1.0 / log_growth;
  const auto n = static_cast<std::size_t>(
      std::ceil((std::log(highest_) - log_lowest_) * inv_log_growth_));
  counts_.assign(n + 2, 0);  // +under +over
}

std::size_t LogHistogram::bucket_of(double v) const {
  // Precondition: v is finite and >= 0 (add() and fraction_above() route
  // NaN/inf to the invalid bin / early returns).  A NaN here would fall
  // through both range checks into a float->size_t cast of a NaN log,
  // which is undefined behaviour.
  assert(!std::isnan(v) && !std::isinf(v));
  if (v < lowest_) return 0;                       // underflow
  if (v >= highest_) return counts_.size() - 1;    // overflow
  const auto i = static_cast<std::size_t>(
      (std::log(v) - log_lowest_) * inv_log_growth_);
  return std::min(i + 1, counts_.size() - 2);
}

double LogHistogram::bucket_lo(std::size_t i) const {
  // i is an interior index (1..n); interior bucket k = i-1 starts at
  // lowest * growth^k.
  return std::exp(log_lowest_ +
                  static_cast<double>(i - 1) / inv_log_growth_);
}

void LogHistogram::add(double v, std::uint64_t count) {
  if (count == 0) return;
  // Reject unrepresentable samples before any of them can reach the
  // bucket index math: log(NaN) cast to size_t is UB (an out-of-bounds
  // write on typical codegen), and NaN/inf would poison min/max/sum.
  // !(v >= 0) catches NaN and negatives in one comparison.
  if (!(v >= 0) || std::isinf(v)) {
    invalid_ += count;
    return;
  }
  // Branch-light min/max update: the first-sample case folds into the
  // select instead of a separately predicted branch.
  const bool first = total_ == 0;
  min_seen_ = first ? v : std::min(min_seen_, v);
  max_seen_ = first ? v : std::max(max_seen_, v);
  counts_[bucket_of(v)] += count;
  total_ += count;
  sum_ += v * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.lowest_ != lowest_ ||
      other.highest_ != highest_) {
    throw std::invalid_argument("LogHistogram::merge: incompatible layout");
  }
  // Branch-free fixed-stride fold over the contiguous count arrays; the
  // trip count is hoisted out of the loop condition so GCC auto-
  // vectorizes it (verified with -fopt-info-vec-optimized).  Integer
  // adds are exact, so the result is bit-identical to any fold order.
  std::uint64_t* dst = counts_.data();
  const std::uint64_t* src = other.counts_.data();
  const std::size_t n = counts_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
  if (other.total_) {
    if (total_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  total_ += other.total_;
  invalid_ += other.invalid_;
  sum_ += other.sum_;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Pinned edge semantics (see header): without these, a histogram whose
  // only mass sits in the underflow bucket returned min_seen_ for EVERY
  // q (the walk stops in bucket 0), and overflow-only mass returned
  // max_seen_ even for q = 0.
  if (q == 0.0) return min_seen_;
  if (q == 1.0) return max_seen_;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = static_cast<double>(cum + counts_[i]);
    if (next >= target) {
      if (i == 0) return min_seen_;                    // underflow bucket
      if (i == counts_.size() - 1) return max_seen_;   // overflow bucket
      // Interpolate within the bucket by rank fraction.
      const double lo = bucket_lo(i);
      const double hi = lo * growth_;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts_[i]);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, min_seen_, max_seen_);
    }
    cum += counts_[i];
  }
  return max_seen_;
}

double LogHistogram::fraction_above(double v) const {
  if (total_ == 0) return 0.0;
  if (std::isnan(v)) return 0.0;  // NaN must not reach bucket_of (UB)
  if (v <= min_seen_) return 1.0;
  if (v > max_seen_) return 0.0;
  const std::size_t vb = bucket_of(v);
  // Suffix-sum as a branch-free reduction over the contiguous tail
  // (auto-vectorized; exact integer adds).
  const std::uint64_t* c = counts_.data();
  const std::size_t n = counts_.size();
  std::uint64_t above = 0;
  for (std::size_t i = vb + 1; i < n; ++i) above += c[i];
  double in_bucket = 0;
  if (counts_[vb] > 0 && vb > 0 && vb < counts_.size() - 1) {
    const double lo = bucket_lo(vb);
    const double hi = lo * growth_;
    const double frac = std::clamp((hi - v) / (hi - lo), 0.0, 1.0);
    in_bucket = frac * static_cast<double>(counts_[vb]);
  } else if (counts_[vb] > 0 && vb == counts_.size() - 1) {
    in_bucket = static_cast<double>(counts_[vb]);  // overflow: all >= v
  }
  return (static_cast<double>(above) + in_bucket) /
         static_cast<double>(total_);
}

std::string LogHistogram::percentile_line() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "p50=%.4g p90=%.4g p99=%.4g p99.9=%.4g max=%.4g (n=%llu)",
                quantile(0.5), quantile(0.9), quantile(0.99), quantile(0.999),
                max_seen_, static_cast<unsigned long long>(total_));
  return buf;
}

}  // namespace arch21
