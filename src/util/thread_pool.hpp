#pragma once
// Work-stealing thread pool with deterministic parallel loops.  Monte
// Carlo benches (tail latency, fault injection) and the DSE engines use
// it to spread trials across hardware threads; everything remains
// deterministic because each chunk derives its RNG from
// Rng(seed, chunk_index) -- never from thread identity or timing.
//
// Scheduling: each worker owns a deque (guarded by its own mutex).  A
// worker pops from the back of its own deque (LIFO, cache-warm) and, when
// empty, steals from the front of a sibling's deque (FIFO, oldest work
// first).  External submits are distributed round-robin.
//
// Determinism contract (relied on by src/core, src/cloud, src/reliab,
// src/sensor and documented in DESIGN.md):
//   * parallel_for splits [0, n) into
//         chunks = clamp(n / grain, 1, size() * 4)
//     contiguous chunks whose lengths differ by at most one, so every
//     chunk is non-empty and the decomposition is a pure function of
//     (n, grain, size()).  Chunk indices are stable across runs.
//   * parallel_reduce splits [0, n) into ceil(n / grain) chunks --
//     independent of the worker count -- and combines the chunk results
//     in ascending chunk-index order.  Floating-point reductions are
//     therefore bit-identical for ANY pool size (threads=1 == threads=N);
//     the grain sets the fork granularity so tiny trip counts run inline.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace arch21 {

/// Fixed-size pool of worker threads with per-worker work-stealing deques.
class ThreadPool {
 public:
  /// `threads` == 0 selects default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Cumulative scheduling counters.  The pool keeps plain counters
  /// instead of talking to obs::MetricsRegistry directly (obs sits above
  /// util in the layering); benches snapshot these and publish them as
  /// gauges.  All fields are maintained under the pool mutex the hot
  /// path already takes, so tracking them adds no new synchronization.
  struct Stats {
    std::uint64_t submitted = 0;      ///< tasks ever submitted
    std::uint64_t executed = 0;       ///< tasks completed
    std::uint64_t steals = 0;         ///< pops from a sibling's deque
    std::size_t max_queue_depth = 0;  ///< high-water of not-yet-taken tasks
  };
  /// Consistent snapshot of the counters (taken under the pool mutex).
  Stats stats() const;

  /// Split [0, n) into clamp(n / grain, 1, size()*4) balanced chunks and
  /// run body(begin, end, chunk_index) on the pool; blocks until done.
  /// Chunk indices are stable across runs for RNG derivation.  The first
  /// exception thrown by any chunk is rethrown on the calling thread.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& body,
                    std::size_t grain = 1);

  /// Run task(i) for every i in [0, n) and block until ALL have finished
  /// -- the phase/barrier primitive of the conservative PDES engine: each
  /// window phase submits one task per logical process, and the return of
  /// parallel_run IS the window barrier (the happens-before edge that
  /// lets the committing thread read every LP's mailboxes without
  /// atomics).  Unlike parallel_for there is no chunking: task i is
  /// always its own pool task, so long-running LPs spread across workers
  /// and indices are stable for any deterministic per-task state.  n == 1
  /// (or a single-worker pool would gain nothing) runs inline in index
  /// order.  The first exception thrown by any task is rethrown here
  /// after the barrier.
  void parallel_run(std::size_t n,
                    const std::function<void(std::size_t)>& task);

  /// Number of chunks parallel_reduce uses for a given (n, grain) --
  /// ceil(n / grain), never a function of the pool size.
  static std::size_t reduce_chunks(std::size_t n, std::size_t grain) noexcept {
    if (grain == 0) grain = 1;
    return n == 0 ? 0 : (n + grain - 1) / grain;
  }

  /// Deterministic ordered map-reduce over [0, n).
  ///
  /// `map(begin, end, chunk_index) -> T` evaluates one contiguous chunk;
  /// `combine(acc, chunk_result) -> T` folds results in ascending
  /// chunk-index order, starting from `identity`.  Because the chunk
  /// decomposition depends only on (n, grain) and the fold order is
  /// fixed, the result is bit-identical for any pool size.  A single
  /// chunk (n <= grain) runs inline on the calling thread, so tiny trip
  /// counts pay no fork overhead.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, T identity, std::size_t grain, Map&& map,
                    Combine&& combine) {
    const std::size_t chunks = reduce_chunks(n, grain);
    if (chunks == 0) return identity;
    if (grain == 0) grain = 1;
    auto bounds = [&](std::size_t c) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(begin + grain, n);
      return std::pair{begin, end};
    };
    if (chunks == 1 || size() == 1) {
      // Same chunking and fold order as the parallel path, run inline.
      T acc = std::move(identity);
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [b, e] = bounds(c);
        acc = combine(std::move(acc), map(b, e, c));
      }
      return acc;
    }
    std::vector<T> results(chunks, identity);
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = chunks;
    std::exception_ptr error;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [b, e] = bounds(c);
      submit([&, b, e, c] {
        try {
          results[c] = map(b, e, c);
        } catch (...) {
          std::lock_guard lk(done_mu);
          if (!error) error = std::current_exception();
        }
        std::lock_guard lk(done_mu);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    {
      std::unique_lock lk(done_mu);
      done_cv.wait(lk, [&] { return remaining == 0; });
      if (error) std::rethrow_exception(error);
    }
    T acc = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c) {
      acc = combine(std::move(acc), std::move(results[c]));
    }
    return acc;
  }

  /// Worker count used by default-constructed pools and by global():
  /// the ARCH21_THREADS environment variable if set to a positive
  /// integer, otherwise std::thread::hardware_concurrency() (min 1).
  static std::size_t default_threads();

  /// Shared process-wide pool (lazily created with default_threads()).
  /// Engines take it when the caller passes no pool of their own.
  static ThreadPool& global();

 private:
  struct WorkDeque {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t id, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;
  // guards queued_/in_flight_/stop_/next_deque_/stats_ + sleeping
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t queued_ = 0;     // tasks not yet taken by a worker
  std::size_t in_flight_ = 0;  // tasks submitted but not yet finished
  std::size_t next_deque_ = 0;
  bool stop_ = false;
  Stats stats_;
};

}  // namespace arch21
