#pragma once
// A small work-sharing thread pool with a blocking parallel_for.  Monte
// Carlo benches (tail latency, fault injection) use it to spread trials
// across hardware threads; everything remains deterministic because each
// chunk derives its RNG from (seed, chunk_index), not from thread
// identity or timing.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace arch21 {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Split [0, n) into roughly size()*4 chunks and run
  /// body(begin, end, chunk_index) on the pool; blocks until done.
  /// Chunk indices are stable across runs for RNG derivation.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace arch21
