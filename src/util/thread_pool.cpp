#include "util/thread_pool.hpp"

#include <algorithm>

namespace arch21 {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::size_t chunk_index = 0;
  for (std::size_t begin = 0; begin < n; begin += step, ++chunk_index) {
    const std::size_t end = std::min(begin + step, n);
    submit([&body, begin, end, chunk_index] { body(begin, end, chunk_index); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace arch21
