#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace arch21 {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("ARCH21_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t victim;
  {
    std::lock_guard lk(mu_);
    ++queued_;
    ++in_flight_;
    ++stats_.submitted;
    if (queued_ > stats_.max_queue_depth) stats_.max_queue_depth = queued_;
    victim = next_deque_++ % deques_.size();
  }
  {
    WorkDeque& d = *deques_[victim];
    std::lock_guard dk(d.mu);
    d.q.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // chunks = clamp(n / grain, 1, size()*4); lengths differ by at most one,
  // so every chunk is non-empty (see header contract).
  const std::size_t chunks =
      std::clamp<std::size_t>(n / grain, 1, size() * 4);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  std::exception_ptr error;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&, begin, end, c] {
      try {
        body(begin, end, c);
      } catch (...) {
        std::lock_guard lk(done_mu);
        if (!error) error = std::current_exception();
      }
      std::lock_guard lk(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
    begin = end;
  }
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return remaining == 0; });
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_run(std::size_t n,
                              const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    // Nothing to overlap: run in index order on the calling thread.  The
    // barrier semantics are trivially preserved.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = n;
  std::exception_ptr error;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&, i] {
      try {
        task(i);
      } catch (...) {
        std::lock_guard lk(done_mu);
        if (!error) error = std::current_exception();
      }
      std::lock_guard lk(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return remaining == 0; });
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::try_pop(std::size_t id, std::function<void()>& out) {
  bool got = false;
  bool stolen = false;
  {
    // Own deque: pop newest (LIFO keeps caches warm).
    WorkDeque& d = *deques_[id];
    std::lock_guard dk(d.mu);
    if (!d.q.empty()) {
      out = std::move(d.q.back());
      d.q.pop_back();
      got = true;
    }
  }
  for (std::size_t off = 1; !got && off < deques_.size(); ++off) {
    // Steal oldest from a sibling (FIFO preserves rough submission order).
    WorkDeque& d = *deques_[(id + off) % deques_.size()];
    std::lock_guard dk(d.mu);
    if (!d.q.empty()) {
      out = std::move(d.q.front());
      d.q.pop_front();
      got = true;
      stolen = true;
    }
  }
  if (got) {
    std::lock_guard lk(mu_);
    --queued_;
    if (stolen) ++stats_.steals;
  }
  return got;
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    std::function<void()> task;
    if (!try_pop(id, task)) {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      continue;  // re-scan the deques
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      ++stats_.executed;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace arch21
