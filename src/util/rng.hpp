#pragma once
// Deterministic, seedable random-number generation for all arch21
// simulators.  Every stochastic component in the library takes an explicit
// seed so that simulations are exactly reproducible across runs and
// platforms (a requirement the white paper's "verifiability" agenda makes
// explicit: you cannot verify what you cannot replay).
//
// We implement our own small generators (SplitMix64 for seeding,
// xoshiro256** for the main stream) instead of std::mt19937 because their
// output is specified bit-exactly, they are 4-8x faster, and their state
// is trivially copyable -- useful when a simulator snapshots its RNG as
// part of a checkpoint (see reliab/checkpoint.hpp).

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace arch21 {

/// SplitMix64: a tiny, high-quality 64-bit mixer.  Used to expand one
/// 64-bit seed into the larger state of xoshiro256**, and as a cheap
/// standalone generator for non-critical randomness.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's main pseudo-random generator.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a single 64-bit seed (expanded via SplitMix64).
  explicit constexpr Rng(std::uint64_t seed = 0x21c3a5c7u) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Construct sub-stream `stream` of `seed`.  This is the repo-wide
  /// seed-derivation convention for chunked parallel loops: chunk i of a
  /// computation seeded with S draws from Rng(S, i), so results depend
  /// only on the (fixed) chunk decomposition, never on which thread runs
  /// the chunk.  See "Parallel execution & determinism" in DESIGN.md.
  explicit constexpr Rng(std::uint64_t seed, std::uint64_t stream) noexcept
      : Rng(SplitMix64(seed).next() ^
            SplitMix64(stream ^ 0x6a09e667f3bcc909ULL).next()) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.  Uses rejection sampling
  /// to avoid modulo bias.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential variate with the given mean (inverse-transform).
  double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal variate parameterized by the *underlying* normal's mu and
  /// sigma.  Heavy-tailed service times in the cloud simulator use this.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto (Type I) variate with scale x_m > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Weibull variate with scale lambda and shape k (device-wearout model).
  double weibull(double lambda, double k) noexcept {
    return lambda * std::pow(-std::log1p(-uniform()), 1.0 / k);
  }

  /// Poisson variate with the given mean (Knuth for small, normal approx
  /// for large means).
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0) return 0;
    if (mean > 64.0) {
      const double x = normal(mean, std::sqrt(mean));
      return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }

  /// Split off an independent child generator (for per-entity streams).
  constexpr Rng split() noexcept { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace arch21
