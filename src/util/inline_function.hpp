#pragma once
// Small-buffer-optimized, move-only callables for hot paths that schedule
// millions of closures (the DES kernel and its Resource stations
// foremost).  Unlike std::function they never heap-allocate for callables
// whose size fits the inline buffer, and they accept move-only callables.
// Closures larger than the buffer fall back to the heap; every fallback is
// counted in a process-wide counter so tests and benches can assert that a
// hot path stayed allocation-free.
//
// `InlineCallback<Sig, N>` is the general form (any call signature);
// `InlineFunction<N>` is the historical `void()` alias the DES event queue
// uses.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace arch21 {

namespace detail {
/// Process-wide count of InlineCallback/InlineFunction heap fallbacks
/// (monotone).
inline std::atomic<std::uint64_t> inline_function_heap_allocs{0};
}  // namespace detail

/// Number of times any InlineCallback has fallen back to the heap since
/// process start.  Sample before/after a hot loop to verify it allocated
/// nothing (see test_des.cpp).
inline std::uint64_t inline_function_heap_allocations() noexcept {
  return detail::inline_function_heap_allocs.load(std::memory_order_relaxed);
}

template <typename Sig, std::size_t Capacity = 48>
class InlineCallback;  // primary template: specialized on R(Args...) below

/// Move-only `R(Args...)` callable with `Capacity` bytes of inline
/// storage.  Callables with sizeof <= Capacity (and suitable alignment)
/// are stored in place; larger ones are heap-allocated behind a pointer
/// kept in the same buffer.  Invoking an empty InlineCallback is undefined
/// (like calling through a null function pointer); check with operator
/// bool.
template <typename R, typename... Args, std::size_t Capacity>
class InlineCallback<R(Args...), Capacity> {
 public:
  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wrap any `R(Args...)`-invocable.  Taken by value so both lvalues
  /// (copied in) and rvalues (moved in) work, including move-only
  /// callables.
  template <typename F>
    requires(!std::is_same_v<F, InlineCallback> &&
             !std::is_same_v<F, std::nullptr_t> &&
             std::is_invocable_r_v<R, F&, Args...>)
  InlineCallback(F f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(F) <= Capacity &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) F(std::move(f));
      vt_ = &kInlineVTable<F>;
    } else {
      ::new (static_cast<void*>(buf_)) F*(new F(std::move(f)));
      detail::inline_function_heap_allocs.fetch_add(1,
                                                    std::memory_order_relaxed);
      vt_ = &kHeapVTable<F>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Largest callable stored without a heap allocation.
  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-construct dst's buffer from src's buffer, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr VTable kInlineVTable = {
      [](void* p, Args&&... args) -> R {
        return static_cast<R>((*std::launder(reinterpret_cast<F*>(p)))(
            std::forward<Args>(args)...));
      },
      [](void* dst, void* src) noexcept {
        F* s = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*s));
        s->~F();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<F*>(p))->~F(); },
  };

  template <typename F>
  static constexpr VTable kHeapVTable = {
      [](void* p, Args&&... args) -> R {
        return static_cast<R>((**std::launder(reinterpret_cast<F**>(p)))(
            std::forward<Args>(args)...));
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<F**>(p)); },
  };

  void move_from(InlineCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

/// Historical alias: the `void()` flavour the DES event queue stores.
template <std::size_t Capacity = 48>
using InlineFunction = InlineCallback<void(), Capacity>;

}  // namespace arch21
