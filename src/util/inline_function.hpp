#pragma once
// Small-buffer-optimized, move-only `void()` callable for hot paths that
// schedule millions of closures (the DES kernel foremost).  Unlike
// std::function it never heap-allocates for callables whose size fits the
// inline buffer, and it accepts move-only callables.  Closures larger
// than the buffer fall back to the heap; every fallback is counted in a
// process-wide counter so tests and benches can assert that a hot path
// stayed allocation-free.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace arch21 {

namespace detail {
/// Process-wide count of InlineFunction heap fallbacks (monotone).
inline std::atomic<std::uint64_t> inline_function_heap_allocs{0};
}  // namespace detail

/// Number of times any InlineFunction has fallen back to the heap since
/// process start.  Sample before/after a hot loop to verify it allocated
/// nothing (see test_des.cpp).
inline std::uint64_t inline_function_heap_allocations() noexcept {
  return detail::inline_function_heap_allocs.load(std::memory_order_relaxed);
}

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
/// Callables with sizeof <= Capacity (and suitable alignment) are stored
/// in place; larger ones are heap-allocated behind a pointer kept in the
/// same buffer.  Invoking an empty InlineFunction is undefined (like
/// calling through a null function pointer); check with operator bool.
template <std::size_t Capacity = 48>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;

  /// Wrap any `void()`-invocable.  Taken by value so both lvalues (copied
  /// in) and rvalues (moved in) work, including move-only callables.
  template <typename F>
    requires(!std::is_same_v<F, InlineFunction> && std::is_invocable_v<F&>)
  InlineFunction(F f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(F) <= Capacity &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) F(std::move(f));
      vt_ = &kInlineVTable<F>;
    } else {
      ::new (static_cast<void*>(buf_)) F*(new F(std::move(f)));
      detail::inline_function_heap_allocs.fetch_add(1,
                                                    std::memory_order_relaxed);
      vt_ = &kHeapVTable<F>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Largest callable stored without a heap allocation.
  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct dst's buffer from src's buffer, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static constexpr VTable kInlineVTable = {
      [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
      [](void* dst, void* src) noexcept {
        F* s = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*s));
        s->~F();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<F*>(p))->~F(); },
  };

  template <typename F>
  static constexpr VTable kHeapVTable = {
      [](void* p) { (**std::launder(reinterpret_cast<F**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<F**>(p)); },
  };

  void move_from(InlineFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace arch21
