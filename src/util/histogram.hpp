#pragma once
// Log-scaled histogram with bounded relative error, in the spirit of HDR
// histograms.  The cloud simulator records millions of request latencies;
// storing raw samples for percentile queries is wasteful, so latency
// telemetry uses this instead.  Values are bucketed geometrically so a
// quantile query has relative error bounded by the per-bucket growth
// factor.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace arch21 {

/// Geometric-bucket histogram over (0, +inf).
///
/// Bucket i covers [lo * g^i, lo * g^(i+1)) where g = growth().  Values
/// below `lo` fall in an underflow bucket; an overflow bucket catches the
/// top.  Quantile queries interpolate within a bucket, so the result's
/// relative error is at most (g - 1).
class LogHistogram {
 public:
  /// `lowest`: smallest representable value (> 0);
  /// `highest`: values >= highest land in the overflow bucket;
  /// `buckets_per_decade`: resolution; 90 gives ~2.6% relative error.
  LogHistogram(double lowest = 1e-9, double highest = 1e6,
               std::size_t buckets_per_decade = 90);

  /// Record `count` occurrences of `v`.  Values that the histogram's
  /// (0, +inf) domain cannot represent -- NaN, +/-inf, and negatives --
  /// are routed to a counted invalid bin (see invalid()) instead of being
  /// bucketed: NaN would otherwise reach an undefined float->size_t cast
  /// in the bucket index math and poison min/max/mean.  Zero, denormals,
  /// and any finite value below `lowest` land in the underflow bucket.
  void add(double v, std::uint64_t count = 1);

  /// Fold `other`'s samples (including its invalid-bin count) into this
  /// histogram.  Both histograms must share the exact same layout
  /// (lowest, highest, and bucket count); throws std::invalid_argument
  /// otherwise -- silently merging misaligned buckets would corrupt
  /// every quantile downstream.
  void merge(const LogHistogram& other);

  /// Recorded samples (invalid ones excluded).
  std::uint64_t count() const noexcept { return total_; }
  /// Samples rejected by add() as unrepresentable (NaN, +/-inf, < 0).
  std::uint64_t invalid() const noexcept { return invalid_; }

  /// Quantile of the recorded samples.  Edge semantics are pinned:
  /// quantile(0) == min_seen() and quantile(1) == max_seen() exactly
  /// (not whatever edge of whatever bucket the cumulative walk stops
  /// in); interior quantiles interpolate within their bucket.  Returns 0
  /// on an empty histogram.  `q` outside [0, 1] is clamped.
  double quantile(double q) const;
  /// Fraction of recorded samples >= v (within-bucket linear
  /// interpolation, same error bound as quantile()).  The tail-latency
  /// experiments use this for "fraction of queries over the leaf p99".
  double fraction_above(double v) const;
  double median() const { return quantile(0.5); }
  double mean() const noexcept { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  double max_seen() const noexcept { return max_seen_; }
  double min_seen() const noexcept { return min_seen_; }

  /// Per-bucket growth factor g.
  double growth() const noexcept { return growth_; }

  /// Exact (bit-level for the FP accumulators) equality: same layout AND
  /// same recorded samples in the same order-sensitive sum.  This is the
  /// determinism instrument -- the PDES differential tests assert whole
  /// ClusterResults identical across worker counts, histograms included.
  bool operator==(const LogHistogram&) const = default;

  /// Render "p50=… p90=… p99=… p99.9=…" for bench output.
  std::string percentile_line() const;

 private:
  std::size_t bucket_of(double v) const;
  double bucket_lo(std::size_t i) const;

  double lowest_;
  double highest_;
  double log_lowest_;
  double inv_log_growth_;
  double growth_;
  std::vector<std::uint64_t> counts_;  // [under, b0..bn-1, over]
  std::uint64_t invalid_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0;
  double max_seen_ = 0;
  double min_seen_ = 0;
};

}  // namespace arch21
