#pragma once
// Descriptive statistics used throughout the library: streaming moments
// (Welford), exact percentiles over stored samples, and a compact summary
// type that benches print.  Tail percentiles are first-class citizens
// because the white paper's datacenter section is built around them
// ("infrequent tail latencies become performance critical").

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace arch21 {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// O(1) memory; numerically stable; mergeable (parallel reduction).
class OnlineStats {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (Chan et al. update).
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 if fewer than 2 samples.
  double variance() const noexcept;
  /// Sample variance (n-1 in the denominator); 0 if fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile of a sample set using linear interpolation between
/// closest ranks (the "type 7" estimator used by R and NumPy).
/// `q` in [0,1].  The input span is copied and sorted; for repeated
/// queries over the same data prefer `Percentiles`.
double percentile(std::span<const double> xs, double q);

/// Sorted-sample percentile reader: sort once, query many.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> xs);

  /// q in [0,1]; linear interpolation between closest ranks.
  double at(double q) const;
  double median() const { return at(0.5); }
  double p99() const { return at(0.99); }
  std::size_t count() const noexcept { return sorted_.size(); }
  double min() const;
  double max() const;

 private:
  std::vector<double> sorted_;
};

/// Compact five-number-plus summary for bench output.
struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;

  /// Compute all fields from a sample set.
  static Summary of(std::span<const double> xs);

  /// One-line human-readable rendering.
  std::string to_string() const;
};

/// Pearson correlation coefficient of two equal-length series.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Ordinary-least-squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean (all inputs must be > 0).
double geomean(std::span<const double> xs);

}  // namespace arch21
