#pragma once
// Free-list slab arena indexed by 32-bit handles, for per-request state
// that is created and destroyed millions of times per simulation (the
// cloud cluster's query/leaf-call records foremost).  Compared to
// make_shared-per-request this keeps all records in one contiguous
// vector (cache locality), reuses freed slots without touching the
// allocator (allocation-free in steady state once the high-water mark is
// reached), and replaces 16-byte pointers with 4-byte handles inside
// closures, which keeps event captures inside InlineFunction's inline
// buffer.
//
// Lifetime is managed by an intrusive, non-atomic reference count per
// slot (single-threaded simulators only).  `acquire()` returns a slot
// with one reference owned by the caller; `retain`/`release` adjust it.
// When the count reaches zero the slot's value is reset to a
// default-constructed T (running destructors of anything it owns) and the
// slot goes back on the free list.
//
// Handles stay valid across growth (they are indices, not pointers), but
// a `T&` from operator[] is invalidated by the next acquire() -- re-index
// after any call that can create a slot.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace arch21 {

template <typename T>
class Slab {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  /// Take a free slot (or grow by one) and hand it to the caller with a
  /// reference count of 1.  The slot's value is default-constructed.
  Handle acquire() {
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
    } else {
      h = static_cast<Handle>(items_.size());
      items_.emplace_back();
    }
    items_[h].refs = 1;
    ++live_;
    if (live_ > live_hwm_) live_hwm_ = live_;
    return h;
  }

  void retain(Handle h) noexcept {
    assert(h < items_.size() && items_[h].refs > 0);
    ++items_[h].refs;
  }

  /// Drop one reference.  Returns true when that was the last reference:
  /// the slot has been reset and recycled (the caller may need to release
  /// resources the value referenced *before* calling; see cluster.cpp's
  /// release_call for the cross-slab pattern).
  bool release(Handle h) {
    assert(h < items_.size() && items_[h].refs > 0);
    if (--items_[h].refs != 0) return false;
    items_[h].value = T{};
    free_.push_back(h);
    --live_;
    return true;
  }

  T& operator[](Handle h) noexcept {
    assert(h < items_.size() && items_[h].refs > 0);
    return items_[h].value;
  }
  const T& operator[](Handle h) const noexcept {
    assert(h < items_.size() && items_[h].refs > 0);
    return items_[h].value;
  }

  std::uint32_t refs(Handle h) const noexcept { return items_[h].refs; }

  /// Slots currently held (acquired and not yet fully released).
  std::size_t live() const noexcept { return live_; }
  /// High-water mark of *simultaneously* live slots -- the arena's true
  /// working-set size, which the observability layer reports as an
  /// occupancy gauge (capacity_used() can exceed it only via free-list
  /// fragmentation, which this design does not have).
  std::size_t high_water() const noexcept { return live_hwm_; }
  /// High-water mark of slots ever created.
  std::size_t capacity_used() const noexcept { return items_.size(); }

  void reserve(std::size_t n) {
    items_.reserve(n);
    free_.reserve(n);
  }

 private:
  struct Item {
    T value{};
    std::uint32_t refs = 0;
  };
  std::vector<Item> items_;
  std::vector<Handle> free_;
  std::size_t live_ = 0;
  std::size_t live_hwm_ = 0;
};

}  // namespace arch21
