#include "isa/programs.hpp"

#include <sstream>

namespace arch21::isa::programs {

std::string sum_loop(std::uint64_t n) {
  std::ostringstream os;
  os << "    li   r1, 0          # accumulator\n"
     << "    li   r2, 1          # i\n"
     << "    li   r3, " << n << "\n"
     << "loop:\n"
     << "    add  r1, r1, r2\n"
     << "    addi r2, r2, 1\n"
     << "    bge  r3, r2, loop   # while i <= n\n"
     << "    out  r1\n"
     << "    halt\n";
  return os.str();
}

std::string stride_walk(std::uint64_t base, std::uint64_t stride,
                        std::uint64_t count) {
  std::ostringstream os;
  os << "    li   r1, " << base << "\n"
     << "    li   r2, 0\n"
     << "    li   r3, " << count << "\n"
     << "loop:\n"
     << "    ld   r4, r1, 0\n"
     << "    addi r1, r1, " << stride << "\n"
     << "    addi r2, r2, 1\n"
     << "    blt  r2, r3, loop\n"
     << "    halt\n";
  return os.str();
}

std::string vulnerable_dispatch() {
  // The attacker supplies the dispatch target directly; nothing checks it.
  // Under DIFT the JR sees a tainted register and traps.
  return R"(    in   r1             # attacker-controlled "handler address"
    jr   r1              # CWE-691-style unchecked indirect transfer
h0:
    li   r6, 100
    out  r6
    halt
h1:
    li   r6, 200
    out  r6
    halt
)";
}

std::string sanitized_dispatch() {
  // Trusted dispatch table built from program constants at 0x1000.  The
  // tainted input only *indexes* the table after a bounds check; the
  // value that reaches JR is untainted program data, so DIFT stays quiet.
  // Handler instruction indices (h0 = 10, h1 = 13) match the layout below.
  return R"(    li   r4, 10          # &h0
    st   r4, r0, 0x1000
    li   r4, 13          # &h1
    st   r4, r0, 0x1008
    in   r1              # tainted index
    li   r5, 2
    bge  r1, r5, bad     # bounds check
    shli r2, r1, 3
    ld   r3, r2, 0x1000  # load from trusted table
    jr   r3              # untainted target
h0:
    li   r6, 100
    out  r6
    halt
h1:
    li   r6, 200
    out  r6
    halt
bad:
    halt
)";
}

}  // namespace arch21::isa::programs
