#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <unordered_map>

namespace arch21::isa {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::optional<Reg> parse_reg(std::string_view s) {
  if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R')) return std::nullopt;
  int v = 0;
  const auto* begin = s.data() + 1;
  const auto* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || p != end || v < 0 || v >= kNumRegs) {
    return std::nullopt;
  }
  return static_cast<Reg>(v);
}

std::optional<std::int64_t> parse_imm(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  std::uint64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [p, ec] = std::from_chars(begin, end, v, base);
  if (ec != std::errc() || p != end) return std::nullopt;
  auto sv = static_cast<std::int64_t>(v);
  return neg ? -sv : sv;
}

struct OpSpec {
  Op op;
  enum class Form { Rrr, Rri, Ri64, Mem, Branch, Jump, JalForm, OneReg,
                    ImmOnly, NoArg } form;
};

const std::unordered_map<std::string, OpSpec>& op_table() {
  using F = OpSpec::Form;
  static const std::unordered_map<std::string, OpSpec> t = {
      {"add", {Op::Add, F::Rrr}},   {"sub", {Op::Sub, F::Rrr}},
      {"mul", {Op::Mul, F::Rrr}},   {"div", {Op::Div, F::Rrr}},
      {"and", {Op::And, F::Rrr}},   {"or", {Op::Or, F::Rrr}},
      {"xor", {Op::Xor, F::Rrr}},   {"shl", {Op::Shl, F::Rrr}},
      {"shr", {Op::Shr, F::Rrr}},   {"slt", {Op::Slt, F::Rrr}},
      {"addi", {Op::Addi, F::Rri}}, {"andi", {Op::Andi, F::Rri}},
      {"ori", {Op::Ori, F::Rri}},   {"xori", {Op::Xori, F::Rri}},
      {"shli", {Op::Shli, F::Rri}}, {"shri", {Op::Shri, F::Rri}},
      {"slti", {Op::Slti, F::Rri}}, {"li", {Op::Li, F::Ri64}},
      {"ld", {Op::Ld, F::Mem}},     {"st", {Op::St, F::Mem}},
      {"ldb", {Op::Ldb, F::Mem}},   {"stb", {Op::Stb, F::Mem}},
      {"beq", {Op::Beq, F::Branch}}, {"bne", {Op::Bne, F::Branch}},
      {"blt", {Op::Blt, F::Branch}}, {"bge", {Op::Bge, F::Branch}},
      {"jmp", {Op::Jmp, F::Jump}},  {"jal", {Op::Jal, F::JalForm}},
      {"jr", {Op::Jr, F::OneReg}},  {"in", {Op::In, F::OneReg}},
      {"out", {Op::Out, F::OneReg}}, {"halt", {Op::Halt, F::NoArg}},
      {"hint", {Op::Hint, F::ImmOnly}},
  };
  return t;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

AssemblyResult assemble(std::string_view source) {
  AssemblyResult res;
  struct Pending {
    std::size_t instr_index;
    std::string label;
    int line;
  };
  std::unordered_map<std::string, std::uint64_t> labels;
  std::vector<Pending> fixups;

  int line_no = 0;
  std::size_t start = 0;
  auto error = [&](int line, const std::string& msg) {
    res.errors.push_back("line " + std::to_string(line) + ": " + msg);
  };

  while (start <= source.size()) {
    const std::size_t eol = source.find('\n', start);
    const std::string_view line =
        source.substr(start, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - start);
    start = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    auto toks = tokenize(line);
    if (toks.empty()) continue;

    // Label definitions (possibly followed by an instruction).
    while (!toks.empty() && toks.front().back() == ':') {
      std::string name = toks.front().substr(0, toks.front().size() - 1);
      if (labels.count(name)) {
        error(line_no, "duplicate label '" + name + "'");
      }
      labels[name] = res.program.code.size();
      toks.erase(toks.begin());
    }
    if (toks.empty()) continue;

    const std::string mnemonic = lower(toks[0]);

    if (mnemonic == ".data") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto v = parse_imm(toks[i]);
        if (!v) {
          error(line_no, "bad .data value '" + toks[i] + "'");
          continue;
        }
        const auto u = static_cast<std::uint64_t>(*v);
        for (int b = 0; b < 8; ++b) {
          res.program.data.push_back(
              static_cast<std::uint8_t>((u >> (8 * b)) & 0xff));
        }
      }
      continue;
    }

    const auto it = op_table().find(mnemonic);
    if (it == op_table().end()) {
      error(line_no, "unknown mnemonic '" + mnemonic + "'");
      continue;
    }
    const OpSpec spec = it->second;
    Instruction ins;
    ins.op = spec.op;

    auto need = [&](std::size_t n) {
      if (toks.size() != n + 1) {
        error(line_no, "expected " + std::to_string(n) + " operands for '" +
                           mnemonic + "'");
        return false;
      }
      return true;
    };
    auto reg_at = [&](std::size_t i, Reg& out) {
      const auto r = parse_reg(toks[i]);
      if (!r) {
        error(line_no, "bad register '" + toks[i] + "'");
        return false;
      }
      out = *r;
      return true;
    };
    auto imm_at = [&](std::size_t i, std::int64_t& out) {
      const auto v = parse_imm(toks[i]);
      if (!v) {
        error(line_no, "bad immediate '" + toks[i] + "'");
        return false;
      }
      out = *v;
      return true;
    };
    auto label_at = [&](std::size_t i) {
      fixups.push_back({res.program.code.size(), toks[i], line_no});
    };

    using F = OpSpec::Form;
    bool ok = true;
    switch (spec.form) {
      case F::Rrr:
        ok = need(3) && reg_at(1, ins.rd) && reg_at(2, ins.ra) &&
             reg_at(3, ins.rb);
        break;
      case F::Rri:
        ok = need(3) && reg_at(1, ins.rd) && reg_at(2, ins.ra) &&
             imm_at(3, ins.imm);
        break;
      case F::Ri64:
        ok = need(2) && reg_at(1, ins.rd) && imm_at(2, ins.imm);
        break;
      case F::Mem:
        ok = need(3) && reg_at(1, ins.rd) && reg_at(2, ins.ra) &&
             imm_at(3, ins.imm);
        break;
      case F::Branch:
        ok = need(3) && reg_at(1, ins.ra) && reg_at(2, ins.rb);
        if (ok) label_at(3);
        break;
      case F::Jump:
        ok = need(1);
        if (ok) label_at(1);
        break;
      case F::JalForm:
        ok = need(2) && reg_at(1, ins.rd);
        if (ok) label_at(2);
        break;
      case F::OneReg:
        ok = need(1);
        if (ok) {
          Reg r = 0;
          ok = reg_at(1, r);
          // IN writes rd; OUT/JR read ra.
          if (spec.op == Op::In) {
            ins.rd = r;
          } else {
            ins.ra = r;
          }
        }
        break;
      case F::ImmOnly:
        ok = need(1) && imm_at(1, ins.imm);
        break;
      case F::NoArg:
        ok = need(0);
        break;
    }
    if (ok) res.program.code.push_back(ins);
  }

  for (const auto& fx : fixups) {
    const auto it = labels.find(fx.label);
    if (it == labels.end()) {
      error(fx.line, "undefined label '" + fx.label + "'");
      continue;
    }
    if (fx.instr_index < res.program.code.size()) {
      res.program.code[fx.instr_index].target = it->second;
    }
  }
  return res;
}

}  // namespace arch21::isa
