#include "isa/machine.hpp"

#include <cstring>
#include <stdexcept>

namespace arch21::isa {

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Halted: return "halted";
    case StopReason::CycleLimit: return "cycle-limit";
    case StopReason::MemoryFault: return "memory-fault";
    case StopReason::DivideByZero: return "divide-by-zero";
    case StopReason::BadJump: return "bad-jump";
    case StopReason::DiftTrap: return "dift-trap";
  }
  return "?";
}

Machine::Machine(Program program, std::size_t mem_bytes, DiftPolicy dift)
    : prog_(std::move(program)),
      mem_(mem_bytes, 0),
      regs_(kNumRegs, 0),
      dift_(dift),
      taint_reg_(kNumRegs, 0),
      taint_mem_(dift.enabled ? mem_bytes : 0, 0) {
  if (!prog_.data.empty()) {
    if (prog_.data_base + prog_.data.size() > mem_.size()) {
      throw std::invalid_argument("Machine: data image exceeds memory");
    }
    std::memcpy(mem_.data() + prog_.data_base, prog_.data.data(),
                prog_.data.size());
  }
}

std::uint64_t Machine::load64(std::uint64_t addr) const {
  if (!in_bounds(addr, 8)) throw std::out_of_range("Machine::load64");
  std::uint64_t v;
  std::memcpy(&v, mem_.data() + addr, 8);
  return v;
}

void Machine::store64(std::uint64_t addr, std::uint64_t v) {
  if (!in_bounds(addr, 8)) throw std::out_of_range("Machine::store64");
  std::memcpy(mem_.data() + addr, &v, 8);
}

bool Machine::mem_tainted(std::uint64_t addr) const {
  if (taint_mem_.empty() || addr >= taint_mem_.size()) return false;
  return taint_mem_[addr] != 0;
}

void Machine::violation(Op op, std::string reason) {
  violations_.push_back({pc_, op, std::move(reason)});
}

StopReason Machine::run(std::uint64_t max_instructions) {
  const bool dift = dift_.enabled;
  Intent intent = Intent::Default;
  while (stats_.instructions < max_instructions) {
    if (pc_ >= prog_.code.size()) return StopReason::BadJump;
    const Instruction& I = prog_.code[pc_];
    ++stats_.instructions;
    ++stats_.instrs_by_intent[static_cast<std::size_t>(intent)];
    std::uint64_t next_pc = pc_ + 1;

    const std::uint64_t a = regs_[I.ra];
    const std::uint64_t b = regs_[I.rb];
    const bool ta = dift && taint_reg_[I.ra];
    const bool tb = dift && taint_reg_[I.rb];

    // Writes rd with an explicit taint bit.  ALU call sites pre-apply the
    // propagate_alu policy; loads and IN pass their own source taint.
    auto set_rd = [&](std::uint64_t v, bool taint) {
      if (I.rd != 0) {
        regs_[I.rd] = v;
        if (dift) {
          taint_reg_[I.rd] = taint ? 1 : 0;
          ++stats_.shadow_ops;
        }
      }
    };
    const bool palu = dift_.propagate_alu;

    switch (I.op) {
      case Op::Add: ++stats_.alu_ops; set_rd(a + b, palu && (ta || tb)); break;
      case Op::Sub: ++stats_.alu_ops; set_rd(a - b, palu && (ta || tb)); break;
      case Op::Mul: ++stats_.alu_ops; set_rd(a * b, palu && (ta || tb)); break;
      case Op::Div:
        ++stats_.alu_ops;
        if (b == 0) return StopReason::DivideByZero;
        set_rd(a / b, palu && (ta || tb));
        break;
      case Op::And: ++stats_.alu_ops; set_rd(a & b, palu && (ta || tb)); break;
      case Op::Or: ++stats_.alu_ops; set_rd(a | b, palu && (ta || tb)); break;
      case Op::Xor: ++stats_.alu_ops; set_rd(a ^ b, palu && (ta || tb)); break;
      case Op::Shl: ++stats_.alu_ops; set_rd(a << (b & 63), palu && (ta || tb)); break;
      case Op::Shr: ++stats_.alu_ops; set_rd(a >> (b & 63), palu && (ta || tb)); break;
      case Op::Slt:
        ++stats_.alu_ops;
        set_rd(static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b) ? 1 : 0,
               palu && (ta || tb));
        break;
      case Op::Addi: ++stats_.alu_ops; set_rd(a + static_cast<std::uint64_t>(I.imm), palu && ta); break;
      case Op::Andi: ++stats_.alu_ops; set_rd(a & static_cast<std::uint64_t>(I.imm), palu && ta); break;
      case Op::Ori: ++stats_.alu_ops; set_rd(a | static_cast<std::uint64_t>(I.imm), palu && ta); break;
      case Op::Xori: ++stats_.alu_ops; set_rd(a ^ static_cast<std::uint64_t>(I.imm), palu && ta); break;
      case Op::Shli: ++stats_.alu_ops; set_rd(a << (I.imm & 63), palu && ta); break;
      case Op::Shri: ++stats_.alu_ops; set_rd(a >> (I.imm & 63), palu && ta); break;
      case Op::Slti:
        ++stats_.alu_ops;
        set_rd(static_cast<std::int64_t>(a) < I.imm ? 1 : 0, palu && ta);
        break;
      case Op::Li: set_rd(static_cast<std::uint64_t>(I.imm), false); break;

      case Op::Ld: {
        ++stats_.loads;
        const std::uint64_t addr = a + static_cast<std::uint64_t>(I.imm);
        if (!in_bounds(addr, 8)) return StopReason::MemoryFault;
        if (trace_) trace_({addr, false});
        std::uint64_t v;
        std::memcpy(&v, mem_.data() + addr, 8);
        bool t = false;
        if (dift) {
          for (int i = 0; i < 8; ++i) t = t || taint_mem_[addr + i];
          if (dift_.propagate_load_addr) t = t || ta;
          ++stats_.shadow_ops;
        }
        set_rd(v, t);
        break;
      }
      case Op::St: {
        ++stats_.stores;
        const std::uint64_t addr = a + static_cast<std::uint64_t>(I.imm);
        if (!in_bounds(addr, 8)) return StopReason::MemoryFault;
        if (dift && dift_.trap_tainted_store_addr && ta) {
          violation(I.op, "store through tainted address");
          return StopReason::DiftTrap;
        }
        if (trace_) trace_({addr, true});
        const std::uint64_t v = regs_[I.rd];  // rd slot holds the source
        std::memcpy(mem_.data() + addr, &v, 8);
        if (dift) {
          const std::uint8_t t = taint_reg_[I.rd];
          std::memset(taint_mem_.data() + addr, t, 8);
          ++stats_.shadow_ops;
        }
        break;
      }
      case Op::Ldb: {
        ++stats_.loads;
        const std::uint64_t addr = a + static_cast<std::uint64_t>(I.imm);
        if (!in_bounds(addr, 1)) return StopReason::MemoryFault;
        if (trace_) trace_({addr, false});
        bool t = false;
        if (dift) {
          t = taint_mem_[addr];
          if (dift_.propagate_load_addr) t = t || ta;
          ++stats_.shadow_ops;
        }
        set_rd(mem_[addr], t);
        break;
      }
      case Op::Stb: {
        ++stats_.stores;
        const std::uint64_t addr = a + static_cast<std::uint64_t>(I.imm);
        if (!in_bounds(addr, 1)) return StopReason::MemoryFault;
        if (dift && dift_.trap_tainted_store_addr && ta) {
          violation(I.op, "store through tainted address");
          return StopReason::DiftTrap;
        }
        if (trace_) trace_({addr, true});
        mem_[addr] = static_cast<std::uint8_t>(regs_[I.rd]);
        if (dift) {
          taint_mem_[addr] = taint_reg_[I.rd];
          ++stats_.shadow_ops;
        }
        break;
      }

      case Op::Beq: {
        ++stats_.branches;
        const bool taken = a == b;
        if (branch_sink_) branch_sink_({pc_, taken});
        if (taken) { next_pc = I.target; ++stats_.taken_branches; }
        break;
      }
      case Op::Bne: {
        ++stats_.branches;
        const bool taken = a != b;
        if (branch_sink_) branch_sink_({pc_, taken});
        if (taken) { next_pc = I.target; ++stats_.taken_branches; }
        break;
      }
      case Op::Blt: {
        ++stats_.branches;
        const bool taken = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        if (branch_sink_) branch_sink_({pc_, taken});
        if (taken) {
          next_pc = I.target;
          ++stats_.taken_branches;
        }
        break;
      }
      case Op::Bge: {
        ++stats_.branches;
        const bool taken = static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
        if (branch_sink_) branch_sink_({pc_, taken});
        if (taken) {
          next_pc = I.target;
          ++stats_.taken_branches;
        }
        break;
      }
      case Op::Jmp:
        ++stats_.branches;
        ++stats_.taken_branches;
        next_pc = I.target;
        break;
      case Op::Jal:
        ++stats_.branches;
        ++stats_.taken_branches;
        set_rd(pc_ + 1, false);
        next_pc = I.target;
        break;
      case Op::Jr:
        ++stats_.branches;
        ++stats_.taken_branches;
        if (dift && dift_.trap_tainted_jump && ta) {
          violation(I.op, "indirect jump to tainted target");
          return StopReason::DiftTrap;
        }
        next_pc = a;
        break;

      case Op::In: {
        std::uint64_t v = 0;
        if (input_pos_ < input_.size()) v = input_[input_pos_++];
        set_rd(v, dift_.taint_input);
        break;
      }
      case Op::Out:
        if (dift && dift_.trap_tainted_out && ta) {
          violation(I.op, "output of tainted data");
          return StopReason::DiftTrap;
        }
        output_.push_back(a);
        break;
      case Op::Halt:
        return StopReason::Halted;
      case Op::Hint: {
        ++stats_.hints;
        const auto v = static_cast<std::uint64_t>(I.imm);
        intent = v < kNumIntents ? static_cast<Intent>(v) : Intent::Default;
        break;
      }
    }
    pc_ = next_pc;
  }
  return StopReason::CycleLimit;
}

}  // namespace arch21::isa
