#pragma once
// Two-pass assembler for SR1 assembly text.
//
// Syntax (one instruction per line; '#' starts a comment):
//   label:            -- define a code label
//   add  rd, ra, rb   -- register ALU
//   addi rd, ra, 42   -- immediate ALU (decimal or 0x hex)
//   li   rd, 0xdead   -- 64-bit load immediate
//   ld   rd, ra, 8    -- rd = mem64[ra + 8]
//   st   rs, ra, 8    -- mem64[ra + 8] = rs   (rs parsed in rd slot)
//   beq  ra, rb, loop -- branch to label
//   jmp  loop / jal rd, fn / jr ra
//   in   rd / out ra / halt
//   .data 1, 2, 3     -- append 64-bit words to the data image

#include <string>
#include <string_view>
#include <vector>

#include "isa/sr1.hpp"

namespace arch21::isa {

/// Assembly outcome: either a program or a list of errors with line
/// numbers.
struct AssemblyResult {
  Program program;
  std::vector<std::string> errors;

  bool ok() const noexcept { return errors.empty(); }
};

/// Assemble SR1 source text.
AssemblyResult assemble(std::string_view source);

}  // namespace arch21::isa
