#pragma once
// SR1: a small 64-bit load/store RISC ISA defined for this library.
// It exists so the security experiments (dynamic information-flow
// tracking, E14) can demonstrate *mechanisms* end-to-end -- taint
// sources, propagation rules, and policy sinks -- on real executing
// programs, not on abstractions.  The assembler (isa/assembler.hpp)
// builds programs from text; the machine (isa/machine.hpp) executes them
// and can emit memory traces for the cache simulator.
//
// Architectural summary:
//   * 16 general registers r0..r15; r0 reads as zero, writes ignored.
//   * Flat byte-addressable memory, little-endian 64-bit words.
//   * I/O: IN reads a 64-bit value from the input stream (taint source),
//     OUT appends to the output stream (taint sink).
//   * JAL/JR give calls and returns; HALT stops the machine.

#include <cstdint>
#include <string>
#include <vector>

namespace arch21::isa {

/// Register index (0..15).
using Reg = std::uint8_t;

inline constexpr Reg kNumRegs = 16;

/// Opcodes.  Three-operand ALU ops read ra,rb and write rd; immediate
/// forms read ra and imm.  Branches compare ra,rb and jump to `target`.
enum class Op : std::uint8_t {
  // ALU register-register
  Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
  // ALU register-immediate
  Addi, Andi, Ori, Xori, Shli, Shri, Slti,
  // 64-bit load-immediate
  Li,
  // memory (64-bit word and single byte)
  Ld, St, Ldb, Stb,
  // control flow
  Beq, Bne, Blt, Bge, Jmp, Jal, Jr,
  // I/O and termination
  In, Out, Halt,
  // Cross-layer intent interface: convey application intent to the
  // hardware (section 2.4, "Better Interfaces for High-Level
  // Information").  imm selects an Intent (see machine.hpp); the
  // machine attributes subsequent instructions to that intent so an
  // energy governor can pick per-phase operating points.
  Hint,
};

const char* to_string(Op op);

/// True when the op writes register rd.
bool writes_rd(Op op);

/// One decoded instruction.
struct Instruction {
  Op op = Op::Halt;
  Reg rd = 0;
  Reg ra = 0;
  Reg rb = 0;
  std::int64_t imm = 0;     ///< immediate / address offset
  std::uint64_t target = 0; ///< branch/jump target (instruction index)
};

/// An assembled program.
struct Program {
  std::vector<Instruction> code;
  /// Initial data image copied to memory offset `data_base` at reset.
  std::vector<std::uint8_t> data;
  std::uint64_t data_base = 0x1000;
};

}  // namespace arch21::isa
