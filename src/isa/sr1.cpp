#include "isa/sr1.hpp"

namespace arch21::isa {

const char* to_string(Op op) {
  switch (op) {
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Slt: return "slt";
    case Op::Addi: return "addi";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Xori: return "xori";
    case Op::Shli: return "shli";
    case Op::Shri: return "shri";
    case Op::Slti: return "slti";
    case Op::Li: return "li";
    case Op::Ld: return "ld";
    case Op::St: return "st";
    case Op::Ldb: return "ldb";
    case Op::Stb: return "stb";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blt: return "blt";
    case Op::Bge: return "bge";
    case Op::Jmp: return "jmp";
    case Op::Jal: return "jal";
    case Op::Jr: return "jr";
    case Op::In: return "in";
    case Op::Out: return "out";
    case Op::Halt: return "halt";
    case Op::Hint: return "hint";
  }
  return "?";
}

bool writes_rd(Op op) {
  switch (op) {
    case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
    case Op::And: case Op::Or: case Op::Xor: case Op::Shl:
    case Op::Shr: case Op::Slt: case Op::Addi: case Op::Andi:
    case Op::Ori: case Op::Xori: case Op::Shli: case Op::Shri:
    case Op::Slti: case Op::Li: case Op::Ld: case Op::Ldb:
    case Op::Jal: case Op::In:
      return true;
    default:
      return false;
  }
}

}  // namespace arch21::isa
