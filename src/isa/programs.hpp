#pragma once
// Canned SR1 programs used by tests, benches, and examples:
//   * sum_loop        -- arithmetic kernel (N loop iterations)
//   * stride_walk     -- memory kernel emitting a strided trace
//   * vulnerable_dispatch -- an indirect-dispatch routine that jumps to an
//     address *computed from unchecked input*: the classic control-flow
//     hijack that DIFT must catch (tainted JR target)
//   * sanitized_dispatch -- the fixed version, which masks the input to a
//     valid range via a bounds check before dispatching

#include <cstdint>
#include <string>

namespace arch21::isa::programs {

/// Sums 1..n; result in r1 and OUT.
std::string sum_loop(std::uint64_t n);

/// Walks `count` loads with byte stride `stride` starting at `base`.
std::string stride_walk(std::uint64_t base, std::uint64_t stride,
                        std::uint64_t count);

/// Reads a handler *address* from input and jumps to it unchecked.
/// With DIFT on, the JR of a tainted value traps.
std::string vulnerable_dispatch();

/// Same dispatcher but validates the input index against a bound and
/// loads the target from a trusted in-program table, so the final jump
/// target is untainted program data.
std::string sanitized_dispatch();

}  // namespace arch21::isa::programs
