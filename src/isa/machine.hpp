#pragma once
// The SR1 interpreter with optional dynamic information-flow tracking
// (DIFT).  DIFT keeps a shadow taint bit per register and per memory
// byte.  Data arriving through IN is tainted; taint propagates through
// ALU ops and memory traffic; configurable policy sinks raise violations:
//
//   * tainted indirect-jump target (JR)  -- control-flow hijack
//   * tainted store/load *address*       -- pointer injection
//   * tainted OUT payload                -- information leak
//
// This is the paper's "information flow tracking (reducing side-channel
// attacks)" / "root of trust" mechanism made concrete.  The DIFT
// experiment measures detection on an injection attack and the tracking
// overhead (shadow operations per instruction).

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "isa/sr1.hpp"

namespace arch21::isa {

/// DIFT policy switches.
struct DiftPolicy {
  bool enabled = false;
  bool taint_input = true;        ///< IN produces tainted data
  bool propagate_alu = true;      ///< dest = ra | rb taint
  bool propagate_load_addr = false;  ///< loads also inherit address taint
  bool trap_tainted_jump = true;  ///< JR with tainted target -> violation
  bool trap_tainted_store_addr = true;  ///< ST to tainted address
  bool trap_tainted_out = false;  ///< OUT of tainted data (leak policy)
};

/// A raised policy violation.
struct DiftViolation {
  std::uint64_t pc = 0;
  Op op = Op::Halt;
  std::string reason;
};

/// Why the machine stopped.
enum class StopReason { Halted, CycleLimit, MemoryFault, DivideByZero,
                        BadJump, DiftTrap };

const char* to_string(StopReason r);

/// Application intents conveyed by the HINT instruction.
enum class Intent : std::uint8_t { Default = 0, Efficiency = 1,
                                   Performance = 2 };

inline constexpr std::size_t kNumIntents = 3;

/// Execution statistics.
struct MachineStats {
  std::uint64_t instructions = 0;
  std::uint64_t alu_ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t shadow_ops = 0;  ///< DIFT bookkeeping operations
  std::uint64_t hints = 0;       ///< HINT instructions executed
  /// Instructions executed while each Intent was active (cross-layer
  /// interface: the governor prices each phase separately).
  std::array<std::uint64_t, kNumIntents> instrs_by_intent{};
};

/// One memory-trace record (for feeding the cache simulator).
struct TraceRecord {
  std::uint64_t addr;
  bool write;
};

/// One branch-outcome record (for feeding branch predictors).
struct BranchRecord {
  std::uint64_t pc;    ///< instruction index of the branch
  bool taken;
};

/// The SR1 machine.
class Machine {
 public:
  /// `mem_bytes`: flat memory size.
  explicit Machine(Program program, std::size_t mem_bytes = 1 << 20,
                   DiftPolicy dift = {});

  /// Queue input values consumed by IN (FIFO).
  void push_input(std::uint64_t v) { input_.push_back(v); }

  /// Run until halt/fault or `max_instructions`.
  StopReason run(std::uint64_t max_instructions = 10'000'000);

  // --- state inspection ---
  std::uint64_t reg(Reg r) const { return regs_.at(r); }
  void set_reg(Reg r, std::uint64_t v) { if (r != 0) regs_.at(r) = v; }
  std::uint64_t load64(std::uint64_t addr) const;
  void store64(std::uint64_t addr, std::uint64_t v);
  std::uint64_t pc() const noexcept { return pc_; }

  const std::vector<std::uint64_t>& output() const noexcept { return output_; }
  const MachineStats& stats() const noexcept { return stats_; }
  const std::vector<DiftViolation>& violations() const noexcept {
    return violations_;
  }

  /// Taint inspection (meaningful when DIFT enabled).
  bool reg_tainted(Reg r) const { return taint_reg_.at(r); }
  bool mem_tainted(std::uint64_t addr) const;

  /// Install a memory-trace sink (called per load/store).
  void set_trace_sink(std::function<void(TraceRecord)> sink) {
    trace_ = std::move(sink);
  }

  /// Install a branch-outcome sink (called per conditional branch).
  void set_branch_sink(std::function<void(BranchRecord)> sink) {
    branch_sink_ = std::move(sink);
  }

 private:
  bool in_bounds(std::uint64_t addr, std::size_t len) const noexcept {
    return addr + len <= mem_.size() && addr + len >= addr;
  }
  void violation(Op op, std::string reason);

  Program prog_;
  std::vector<std::uint8_t> mem_;
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> input_;
  std::size_t input_pos_ = 0;
  std::vector<std::uint64_t> output_;
  std::uint64_t pc_ = 0;
  DiftPolicy dift_;
  std::vector<std::uint8_t> taint_reg_;
  std::vector<std::uint8_t> taint_mem_;
  MachineStats stats_;
  std::vector<DiftViolation> violations_;
  std::function<void(TraceRecord)> trace_;
  std::function<void(BranchRecord)> branch_sink_;
};

}  // namespace arch21::isa
