#pragma once
// Open-loop traffic generation for the multi-region scenario (E31).
//
// Everything the cluster simulator drives is *closed-loop at the edge*:
// arrivals are thinned by what the system already absorbed (a client
// stuck in a queue is a client not issuing its next query).  Real
// planetary-scale load is open-loop -- millions of independent users do
// not coordinate with the datacenter's backlog -- and that difference is
// what makes overload real: when a region slows down, the offered load
// does NOT, which is the precondition for every metastable-failure
// cascade this repo studies (E29, E31).
//
// The generator produces a *pure function of its config and seed*: a
// time-sorted vector of query arrivals, independent of anything the
// consumer does with them.  Three structural ingredients, each from the
// paper's datacenter agenda:
//   * a diurnal load curve (sinusoidal rate modulation -- blackouts at
//     peak are the drill that matters),
//   * heavy-tailed session sizes (a truncated Pareto number of queries
//     per session: most users issue a few, some issue hundreds), and
//   * >= 2 request classes with distinct latency SLOs (interactive vs
//     bulk -- the QoS dimension of "tail at scale").

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace arch21::cloud {

/// One request class: a share of sessions with its own latency objective
/// and service-weight multiplier (bulk work is heavier per query).
struct TrafficClass {
  std::string name = "interactive";
  double slo_ms = 100;        ///< end-to-end latency objective
  double weight = 1.0;        ///< relative share of sessions
  double service_scale = 1.0; ///< multiplier on the serving region's work

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The canonical two-class mix: 75% interactive (tight SLO), 25% bulk
/// (loose SLO, 2.5x the per-query work).
std::vector<TrafficClass> default_traffic_classes();

/// Open-loop workload configuration.  Instantaneous session rate:
///   rate(t) = session_rate_hz * (1 + diurnal_amplitude *
///             cos(2*pi*(t - diurnal_peak_s) / diurnal_period_s))
/// so the curve peaks at t = diurnal_peak_s.
struct TrafficConfig {
  double session_rate_hz = 40;     ///< mean session arrival rate
  double diurnal_amplitude = 0.5;  ///< rate swing, in [0, 1)
  double diurnal_period_s = 80;
  double diurnal_peak_s = 40;      ///< time of the first peak
  /// Session length (queries per session) is a truncated Pareto with
  /// this mean and tail shape: heavy-tailed "whale" sessions are most
  /// of the offered load.
  double session_mean_queries = 8;
  double session_alpha = 1.8;          ///< Pareto shape, > 1
  std::uint32_t session_max_queries = 500;  ///< truncation cap
  /// Mean spacing between a session's queries (exponential, open-loop:
  /// spacing never waits for completions).
  double think_time_ms = 120;
  std::vector<TrafficClass> classes = default_traffic_classes();

  /// Instantaneous session arrival rate at time `t_s`.
  double session_rate_at(double t_s) const noexcept;
  /// Mean offered *query* rate (sessions x mean session length).
  double mean_query_rate_hz() const noexcept {
    return session_rate_hz * session_mean_queries;
  }

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One generated query arrival.
struct TrafficRequest {
  double t_ms = 0;           ///< arrival time
  std::uint32_t cls = 0;     ///< index into TrafficConfig::classes
  std::uint32_t origin = 0;  ///< user zone in [0, origins)
};

/// Generate the arrival stream over [0, duration_s): sessions arrive by
/// a thinned nonhomogeneous Poisson process following the diurnal curve,
/// each draws an origin zone, a class (by weight), and a truncated-
/// Pareto query count spaced by exponential think times.  The result is
/// sorted by arrival time and is a pure function of (cfg, duration_s,
/// origins, seed) -- bit-identical across runs, hosts, and thread
/// counts, per the repo-wide determinism contract.
std::vector<TrafficRequest> generate_traffic(const TrafficConfig& cfg,
                                             double duration_s,
                                             unsigned origins,
                                             std::uint64_t seed);

}  // namespace arch21::cloud
