// The LP-sharded network-latency cluster scenario, written ONCE and
// templated over the PDES engine: des::LoopbackEngine (one serial kernel
// -- the differential reference) or des::ParallelEngine (conservative
// window synchronization on the thread pool).  simulate_cluster_pdes()
// picks the engine from ClusterConfig::workers; results are bit-identical
// either way (tests/test_pdes.cpp).
//
// Partitioning: LP 0 is the root -- query arrivals plus the entire
// client-side policy engine (deadlines, hedges, retries, budgets,
// admission, per-replica breakers), a direct port of cluster.cpp's
// ClusterSim client half.  LPs 1..G each own a contiguous group of
// leaves: their des::Resource queues, their background load, and their
// fault transitions.  Every root<->leaf exchange travels net_latency_ms
// one way, which is exactly the engine's conservative lookahead.
//
// Differences from the legacy zero-latency model (this is a NEW scenario,
// gated on net_latency_ms > 0; the legacy path is untouched):
//   * A request sent to a down leaf is counted lost at the LEAF, when it
//     arrives -- the root only learns through its timeout, as a real
//     client would.  (Legacy checked leaf_up_ at send time.)
//   * A bounded-queue rejection reaches the root as an explicit reject
//     message after the return latency, and only then feeds the breaker.
//   * leaf_ms/query latencies include two network hops.
//
// Determinism: all client-side state (slabs, breakers, budget/admission
// buckets, histograms, crng_/brng_ draws) is touched only by root-LP
// events; each group's state only by that group's events; cross-LP
// effects only via engine messages.  Every RNG is either consumed at
// setup (background, query plan, services, fault trace) in a fixed order
// or owned by one LP, so a fixed partition replays identically on any
// engine and any worker count.

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/gray_detect.hpp"
#include "des/partition.hpp"
#include "des/pdes.hpp"
#include "des/resource.hpp"
#include "reliab/failure_trace.hpp"
#include "util/slab.hpp"
#include "util/thread_pool.hpp"

#if ARCH21_OBS_ENABLED
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace arch21::cloud {

namespace {

constexpr double kMsPerHour = 3.6e6;

template <class Engine>
class PdesClusterSim {
  using LpT = std::remove_reference_t<decltype(std::declval<Engine&>().lp(0))>;

 public:
  /// Extra arguments construct the engine in place (LoopbackEngine takes
  /// the spec; ParallelEngine takes spec + pool).  The engine lives
  /// INSIDE this object, after the slabs, so teardown order matches
  /// ClusterSim's contract (see the member comment below).
  template <class... EngineArgs>
  PdesClusterSim(const ClusterConfig& cfg, unsigned groups,
                 EngineArgs&&... engine_args)
      : cfg_(cfg),
        pol_(cfg.policy),
        groups_(groups),
        eng_(std::forward<EngineArgs>(engine_args)...),
        root_(eng_.lp(0)),
        rsim_(eng_.lp(0).sim()) {
    if (pol_.hedge_after_ms == 0 && cfg.hedge_after_ms > 0) {
      pol_.hedge_after_ms = cfg.hedge_after_ms;
    }
  }

  ClusterResult run();

 private:
  static constexpr std::uint32_t kNull = Slab<int>::kNull;

  /// Cross-LP message tags (des::Payload::kind).
  enum : std::uint32_t {
    kReq = 1,    ///< root -> group: u32 = leaf, a = serial, x = service_ms
    kReply = 2,  ///< group -> root: u32 = leaf, a = serial
    kReject = 3  ///< group -> root: bounced off a full leaf queue
  };

  struct QueryRec {
    unsigned replied = 0;
    double start_ms = 0;
    bool closed = false;
    des::EventHandle deadline{};
#if ARCH21_OBS_ENABLED
    std::uint64_t trace_serial = 0;
#endif
  };
  struct CallRec {
    bool done = false;
    unsigned attempts = 0;
    bool hedged = false;
    des::EventHandle timeout{};
    des::EventHandle hedge{};
    std::uint32_t query = kNull;
  };
  struct Breaker {
    enum State : std::uint8_t { kClosed, kOpen, kHalfOpen };
    State state = kClosed;
    std::uint64_t bits = 0;
    std::uint32_t filled = 0;
    std::uint32_t idx = 0;
    std::uint32_t fails = 0;
    std::uint32_t probes_left = 0;
    double opened_at = 0;
    double open_until = 0;
  };
  struct Adopt {};
  struct QueryRef {
    PdesClusterSim* s = nullptr;
    std::uint32_t h = kNull;
    QueryRef(PdesClusterSim* sim, std::uint32_t handle) : s(sim), h(handle) {
      s->queries_.retain(h);
    }
    QueryRef(Adopt, PdesClusterSim* sim, std::uint32_t handle) noexcept
        : s(sim), h(handle) {}
    QueryRef(const QueryRef& o) : s(o.s), h(o.h) {
      if (s) s->queries_.retain(h);
    }
    QueryRef(QueryRef&& o) noexcept : s(o.s), h(o.h) { o.s = nullptr; }
    QueryRef& operator=(const QueryRef&) = delete;
    QueryRef& operator=(QueryRef&&) = delete;
    ~QueryRef() {
      if (s) s->queries_.release(h);
    }
    QueryRec* operator->() const noexcept { return &s->queries_[h]; }
  };
  struct CallRef {
    PdesClusterSim* s = nullptr;
    std::uint32_t h = kNull;
    CallRef(Adopt, PdesClusterSim* sim, std::uint32_t handle) noexcept
        : s(sim), h(handle) {}
    CallRef(const CallRef& o) : s(o.s), h(o.h) {
      if (s) s->calls_.retain(h);
    }
    CallRef(CallRef&& o) noexcept : s(o.s), h(o.h) { o.s = nullptr; }
    CallRef& operator=(const CallRef&) = delete;
    CallRef& operator=(CallRef&&) = delete;
    ~CallRef() {
      if (s) s->release_call(h);
    }
    CallRec* operator->() const noexcept { return &s->calls_[h]; }
  };

  void release_call(std::uint32_t h) {
    const std::uint32_t q = calls_[h].query;
    if (calls_.release(h) && q != kNull) queries_.release(q);
  }

  /// One leaf-group LP's server-side state.  Touched only by that
  /// group's events (plus serial setup/teardown).
  struct Group {
    std::vector<std::unique_ptr<des::Resource>> leaves;  // local index
    std::vector<char> up;
    std::uint64_t lost = 0;   ///< arrivals at a down leaf + fail_all kills
    unsigned first = 0;       ///< first global leaf id of this group
    std::uint32_t trace_tid = 0;
  };

  unsigned group_of_leaf(unsigned l) const noexcept {
    return des::group_of(l, cfg_.leaves, groups_);
  }

  // ----------------------------------------------------- leaf-group side

  void on_group_msg(unsigned g, LpT& lp, const des::Payload& p) {
    // Only kReq arrives here.
    Group& grp = grps_[g];
    const unsigned leaf = p.u32;
    const unsigned li = leaf - grp.first;
    const std::uint64_t serial = p.a;
    if (!grp.up[li]) {
      // The request vanishes into a dead leaf; only the root's timeout
      // (or the query deadline) will tell the client.
      ++grp.lost;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_lost_, lp.now(), grp.trace_tid);
#endif
      return;
    }
    LpT* lpp = &lp;
    if (!grp.leaves[li]->request(
            p.x, [this, lpp, leaf, serial](double, double) {
              des::Payload reply;
              reply.kind = kReply;
              reply.u32 = leaf;
              reply.a = serial;
              lpp->send(0, cfg_.net_latency_ms, reply);
            })) {
      // Bounced off a full bounded queue: tell the root explicitly (the
      // reject notice rides the same return latency).
      des::Payload rej;
      rej.kind = kReject;
      rej.u32 = leaf;
      rej.a = serial;
      lp.send(0, cfg_.net_latency_ms, rej);
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_rejected_, lp.now(), grp.trace_tid);
#endif
    }
  }

  void on_leaf_transition(unsigned g, unsigned li, bool up) {
    Group& grp = grps_[g];
    if (grp.up[li] && !up) {
      // Crash: everything queued or in service on this leaf is lost.
      grp.lost += grp.leaves[li]->fail_all();
    }
    grp.up[li] = up ? 1 : 0;
  }

  // ------------------------------------------------------- root side
  // A direct port of ClusterSim's client engine: same policy order, same
  // RNG streams; the leaf send/receive is replaced by engine messages.

  bool admit() {
    const AdmissionPolicy& a = pol_.admission;
    if (a.max_in_flight > 0 && in_flight_ >= a.max_in_flight) return false;
    if (a.rate_qps > 0) {
      const double now = rsim_.now();
      adm_tokens_ = std::min(
          a.burst, adm_tokens_ + (now - adm_last_ms_) * a.rate_qps / 1000.0);
      adm_last_ms_ = now;
      if (adm_tokens_ < 1.0) return false;
      adm_tokens_ -= 1.0;
    }
    ++in_flight_;
    return true;
  }

  void free_in_flight() {
    if (in_flight_ > 0) --in_flight_;
  }

  void note_answered() {
    if (window_ms_ <= 0) return;
    const auto idx = static_cast<std::size_t>(rsim_.now() / window_ms_);
    if (idx >= res_.answered_per_window.size()) {
      res_.answered_per_window.resize(idx + 1, 0);
    }
    ++res_.answered_per_window[idx];
  }

  void breaker_open(Breaker& b) {
    b.state = Breaker::kOpen;
    b.opened_at = rsim_.now();
    b.open_until =
        rsim_.now() +
        pol_.breaker.open_ms *
            (1.0 + pol_.breaker.open_jitter_frac * brng_.uniform(-1.0, 1.0));
    ++res_.breaker_open_transitions;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_brk_open_, rsim_.now(), 0);
#endif
  }

  bool breaker_allows(unsigned l) {
    Breaker& b = breakers_[l];
    if (b.state == Breaker::kClosed) return true;
    if (b.state == Breaker::kOpen) {
      if (rsim_.now() < b.open_until) return false;
      res_.breaker_open_ms += b.open_until - b.opened_at;
      b.state = Breaker::kHalfOpen;
      b.probes_left = pol_.breaker.half_open_probes;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_brk_half_, rsim_.now(), 0);
#endif
    }
    if (b.probes_left == 0) return false;
    --b.probes_left;
    ++res_.breaker_probes;
    return true;
  }

  void breaker_record(unsigned l, bool ok) {
    if (!pol_.breaker.enabled) return;
    Breaker& b = breakers_[l];
    switch (b.state) {
      case Breaker::kOpen:
        return;
      case Breaker::kHalfOpen:
        if (ok) {
          b = Breaker{};
#if ARCH21_OBS_ENABLED
          if (trace_) trace_->instant(tr_brk_close_, rsim_.now(), 0);
#endif
        } else {
          breaker_open(b);
        }
        return;
      case Breaker::kClosed: {
        const CircuitBreakerPolicy& p = pol_.breaker;
        const std::uint64_t bit = std::uint64_t{1} << b.idx;
        if (b.filled == p.window) {
          if (b.bits & bit) --b.fails;
        } else {
          ++b.filled;
        }
        if (ok) {
          b.bits &= ~bit;
        } else {
          b.bits |= bit;
          ++b.fails;
        }
        b.idx = (b.idx + 1) % p.window;
        if (b.filled >= p.min_samples &&
            static_cast<double>(b.fails) >=
                p.failure_threshold * static_cast<double>(b.filled)) {
          breaker_open(b);
        }
        return;
      }
    }
  }

  void on_query_start(std::size_t services_base) {
    if (pol_.admission.enabled && !admit()) {
      ++res_.shed_queries;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_shed_, rsim_.now(), 0);
#endif
      return;
    }
    QueryRef q(Adopt{}, this, queries_.acquire());
    q->start_ms = rsim_.now();
    ++started_;
#if ARCH21_OBS_ENABLED
    if (trace_) {
      q->trace_serial = started_;
      trace_->async_begin(tr_query_, q->trace_serial, rsim_.now());
    }
#endif
    if (pol_.quorum.enabled()) {
      q->deadline = rsim_.schedule_cancellable(
          pol_.quorum.deadline_ms, [this, q] { on_deadline(q); });
    }
    for (unsigned l = 0; l < cfg_.leaves; ++l) {
      const std::uint32_t ch = calls_.acquire();
      queries_.retain(q.h);
      calls_[ch].query = q.h;
      CallRef call(Adopt{}, this, ch);
      issue(q, call, services_[services_base + l], l, false);
    }
  }

  /// Issue one attempt (or hedge) of a leaf call: same breaker
  /// short-circuit/redirect policy as the legacy engine, but the send is
  /// a kReq message to the target's group LP, identified by a fresh
  /// per-attempt serial (slab handles recycle, so raw handles cannot ride
  /// in messages; the serial table pins the call until its response).
  void issue(const QueryRef& q, const CallRef& call, double service,
             unsigned target, bool is_hedge) {
    if (call->done || q->closed) return;
    ++res_.leaf_requests;
    if (is_hedge) {
      ++res_.hedges;
    } else {
      ++call->attempts;
      if (pol_.budget.enabled && call->attempts == 1) {
        budget_tokens_ =
            std::min(budget_tokens_ + pol_.budget.ratio, pol_.budget.burst);
      }
    }

    unsigned t = target;
    bool send = true;
    if (gdet_.engaged() && gdet_.evicted(t)) {
      // Gray-evicted replica: steer the send to a healthy peer chosen
      // round-robin (deterministic), same policy as the serial engine.
      ++res_.gray_redirected_sends;
      const unsigned alt = gdet_.redirect_target(t);
      if (alt == GrayDetector::kNone) {
        send = false;
      } else {
        t = alt;
      }
    }
    if (send && pol_.breaker.enabled && !breaker_allows(t)) {
      ++res_.breaker_short_circuits;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_brk_short_, rsim_.now(), 0);
#endif
      send = false;
      for (int k = 0; k < 3; ++k) {
        const unsigned alt = static_cast<unsigned>(brng_.below(cfg_.leaves));
        if (breaker_allows(alt)) {
          t = alt;
          send = true;
          break;
        }
      }
    }

    if (send) {
      if (gdet_.engaged()) gdet_.on_sent(t);
      const std::uint64_t serial = call_by_serial_.size();
      calls_.retain(call.h);
      call_by_serial_.push_back(call.h);
      des::Payload req;
      req.kind = kReq;
      req.u32 = t;
      req.a = serial;
      req.x = service;
      root_.send(1 + group_of_leaf(t), cfg_.net_latency_ms, req);
    }

    if (!is_hedge && pol_.hedge_after_ms > 0 && !call->hedged &&
        call->attempts == 1) {
      auto hedge = [this, q, call, service] { on_hedge(q, call, service); };
      static_assert(sizeof(hedge) <= des::Simulator::Action::capacity(),
                    "hedge closure must fit the Action inline buffer");
      call->hedge =
          rsim_.schedule_cancellable(pol_.hedge_after_ms, std::move(hedge));
    }
    if (!is_hedge && pol_.retry.timeout_ms > 0) {
      // Armed per leaf call: with the completion closure this is the
      // hottest allocation candidate in the whole scenario.  The adaptive
      // deadline (when on) replaces the fixed timeout with the detector's
      // tracked p99-based value.
      const double to = gdet_.engaged() && pol_.gray.adaptive_deadline
                            ? gdet_.timeout_ms()
                            : pol_.retry.timeout_ms;
      auto timeout = [this, q, call, service, t] {
        on_timeout(q, call, service, t);
      };
      static_assert(sizeof(timeout) <= des::Simulator::Action::capacity(),
                    "timeout closure must fit the Action inline buffer");
      call->timeout = rsim_.schedule_cancellable(to, std::move(timeout));
    }
  }

  void on_root_msg(const des::Payload& p) {
    if (p.kind == kReply) {
      on_reply(p.u32, p.a);
    } else {
      on_reject(p.u32, p.a);
    }
  }

  void on_reply(unsigned leaf, std::uint64_t serial) {
    breaker_record(leaf, true);
    const std::uint32_t h = call_by_serial_[serial];
    if (h == kNull) return;  // record already resolved and freed
    call_by_serial_[serial] = kNull;
    CallRef call(Adopt{}, this, h);  // adopt the table's reference
    if (call->done) return;          // a faster attempt already answered
    call->done = true;
    QueryRef q(this, call->query);
    rsim_.cancel(call->timeout);
    rsim_.cancel(call->hedge);
    const double lat = rsim_.now() - q->start_ms;
    // The detector scores every reply it can still attribute to a query
    // (serial-resolved records lose the start time, so replies racing an
    // already-resolved record go unscored -- a bounded difference from
    // the serial engine, identical across PDES engines/worker counts).
    if (gdet_.engaged()) gdet_.on_reply(leaf, lat);
    res_.leaf_ms.add(lat);
    if (q->closed) return;  // degraded/failed; reply arrived late
    if (++q->replied == cfg_.leaves) {
      q->closed = true;
      free_in_flight();
      rsim_.cancel(q->deadline);
      ++res_.ok_queries;
      res_.sum_result_quality += 1.0;
      res_.query_ms.add(lat);
      note_answered();
#if ARCH21_OBS_ENABLED
      if (mreg_) mreg_->record(m_query_ms_, lat);
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, rsim_.now(),
                          tr_quality_arg_, 1.0);
      }
#endif
    }
  }

  void on_reject(unsigned leaf, std::uint64_t serial) {
    // A rejecting replica is an overloaded replica; the armed timeout
    // recovers the call itself.  For the gray detector the bounce is a
    // LOUD refusal, not a silent non-reply -- discount it from the
    // reply-rate denominator or redirected load evicts healthy replicas.
    breaker_record(leaf, false);
    if (gdet_.engaged()) gdet_.on_rejected(leaf);
    const std::uint32_t h = call_by_serial_[serial];
    if (h == kNull) return;
    call_by_serial_[serial] = kNull;
    CallRef drop(Adopt{}, this, h);  // release the table's reference
  }

  void on_deadline(const QueryRef& q) {
    if (q->closed) return;
    q->closed = true;
    free_in_flight();
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_deadline_, rsim_.now(), 0);
#endif
    if (q->replied >= quorum_needed_) {
      ++res_.degraded_queries;
      const double quality = static_cast<double>(q->replied) /
                             static_cast<double>(cfg_.leaves);
      res_.sum_result_quality += quality;
      res_.query_ms.add(rsim_.now() - q->start_ms);
      note_answered();
#if ARCH21_OBS_ENABLED
      if (mreg_) mreg_->record(m_query_ms_, rsim_.now() - q->start_ms);
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, rsim_.now(),
                          tr_quality_arg_, quality);
      }
#endif
    } else {
      ++res_.failed_queries;
#if ARCH21_OBS_ENABLED
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, rsim_.now(),
                          tr_quality_arg_, 0.0);
      }
#endif
    }
  }

  void on_hedge(const QueryRef& q, const CallRef& call, double service) {
    if (call->done || q->closed) return;
    call->hedged = true;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_hedge_, rsim_.now(), 0);
#endif
    issue(q, call, service, static_cast<unsigned>(crng_.below(cfg_.leaves)),
          true);
  }

  void on_timeout(const QueryRef& q, const CallRef& call, double service,
                  unsigned target) {
    breaker_record(target, false);
    if (call->done || q->closed) return;
    ++res_.timeouts;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_timeout_, rsim_.now(), 0);
#endif
    if (call->attempts > pol_.retry.max_retries) return;
    if (pol_.budget.enabled) {
      if (budget_tokens_ < 1.0) {
        ++res_.budget_denials;
#if ARCH21_OBS_ENABLED
        if (trace_) trace_->instant(tr_denied_, rsim_.now(), 0);
#endif
        return;
      }
      budget_tokens_ -= 1.0;
    }
    ++res_.retries;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_retry_, rsim_.now(), 0);
#endif
    const double backoff = pol_.retry.backoff_ms(call->attempts - 1, crng_);
    const unsigned alt = static_cast<unsigned>(crng_.below(cfg_.leaves));
    auto retry = [this, q, call, service, alt] {
      issue(q, call, service, alt, false);
    };
    static_assert(sizeof(retry) <= des::Simulator::Action::capacity(),
                  "retry closure must fit the Action inline buffer");
    rsim_.schedule(backoff, std::move(retry));
  }

#if ARCH21_OBS_ENABLED
  /// One trace ring is single-writer, so attaching requires workers <= 1
  /// (enforced by ClusterConfig::validate).  Track map: 0 = root kernel
  /// + client lifecycle markers, 1 + l = leaf l's serve spans, and
  /// 1 + leaves + g = group g's kernel instants (per-LP event streams
  /// stay separable in the Chrome trace).
  void attach_trace(obs::TraceBuffer* t) {
    trace_ = t;
    rsim_.set_trace(t, 0);
    t->name_thread(0, "pdes-root");
    for (unsigned g = 0; g < groups_; ++g) {
      Group& grp = grps_[g];
      des::Simulator& gs = eng_.lp(1 + g).sim();
      if (&gs != &rsim_) {
        // Parallel engine: each group LP owns a kernel of its own.
        grp.trace_tid = 1 + cfg_.leaves + g;
        gs.set_trace(t, grp.trace_tid);
        t->name_thread(grp.trace_tid, "pdes-lp-" + std::to_string(1 + g));
      }
      for (unsigned li = 0; li < grp.leaves.size(); ++li) {
        const unsigned l = grp.first + li;
        t->name_thread(1 + l, "leaf-" + std::to_string(l));
        grp.leaves[li]->set_trace(t, 1 + l);
      }
    }
    tr_query_ = t->intern("query");
    tr_retry_ = t->intern("retry");
    tr_hedge_ = t->intern("hedge");
    tr_timeout_ = t->intern("timeout");
    tr_lost_ = t->intern("lost");
    tr_denied_ = t->intern("budget-denied");
    tr_deadline_ = t->intern("deadline");
    tr_quality_arg_ = t->intern("quality");
    tr_shed_ = t->intern("shed");
    tr_rejected_ = t->intern("rejected");
    tr_brk_open_ = t->intern("breaker-open");
    tr_brk_half_ = t->intern("breaker-half-open");
    tr_brk_close_ = t->intern("breaker-close");
    tr_brk_short_ = t->intern("breaker-short-circuit");
  }

  void publish_metrics() {
    auto& m = obs::MetricsRegistry::global();
    if (!m.enabled()) return;
    m.add(m.counter("cluster.queries"), res_.queries);
    m.add(m.counter("cluster.retries"), res_.retries);
    m.add(m.counter("cluster.hedges"), res_.hedges);
    m.add(m.counter("cluster.timeouts"), res_.timeouts);
    m.add(m.counter("cluster.lost_requests"), res_.lost_requests);
    m.add(m.counter("cluster.budget_denials"), res_.budget_denials);
    m.add(m.counter("cluster.shed.queries"), res_.shed_queries);
    m.add(m.counter("cluster.shed.rejected"), res_.rejected_requests);
    m.add(m.counter("cluster.shed.expired"), res_.expired_drops);
    m.add(m.counter("cluster.breaker.opens"), res_.breaker_open_transitions);
    m.add(m.counter("cluster.breaker.short_circuits"),
          res_.breaker_short_circuits);
    m.add(m.counter("cluster.breaker.probes"), res_.breaker_probes);
    m.gauge_max(m.gauge("cluster.breaker.open_ms"), res_.breaker_open_ms);
    std::size_t qhwm = 0;
    for (const Group& grp : grps_) {
      for (const auto& leaf : grp.leaves) {
        qhwm = std::max(qhwm, leaf->queue_high_water());
      }
    }
    m.gauge_max(m.gauge("cluster.leaf_queue.hwm"), static_cast<double>(qhwm));
    m.add(m.counter("des.executed"), eng_.executed());
    m.add(m.counter("des.cancelled"), eng_.cancelled());
    m.gauge_max(m.gauge("slab.queries.hwm"),
                static_cast<double>(queries_.high_water()));
    m.gauge_max(m.gauge("slab.calls.hwm"),
                static_cast<double>(calls_.high_water()));
    if constexpr (requires { eng_.publish_metrics(); }) {
      eng_.publish_metrics();  // pdes.window.* / pdes.mailbox.*
    }
  }
#endif

  const ClusterConfig& cfg_;
  ResiliencePolicy pol_;
  unsigned groups_ = 0;
  ClusterResult res_;
  // Declaration order is a destruction contract, mirroring ClusterSim:
  // the slabs come before eng_ so pending actions destroyed during
  // Simulator teardown (e.g. after an exception) can still release the
  // QueryRef/CallRef guards they captured, and grps_ comes after eng_ so
  // every Resource is torn down while its owning Simulator is alive.
  Slab<QueryRec> queries_;
  Slab<CallRec> calls_;
  Engine eng_;
  LpT& root_;
  des::Simulator& rsim_;
  std::vector<Group> grps_;
  std::vector<Breaker> breakers_;
  /// serial -> call handle (kNull once resolved).  Each entry holds one
  /// counted reference from send until its reply/reject arrives; replies
  /// that never come (lost to a crash) keep their record until teardown.
  std::vector<std::uint32_t> call_by_serial_;
  reliab::FailureTraceConfig fcfg_;
  GrayDetector gdet_;  ///< client-side fail-slow detector (root LP only)
  std::vector<double> services_;
  Rng crng_{0};
  Rng brng_{0};
  double budget_tokens_ = 0;
  double adm_tokens_ = 0;
  double adm_last_ms_ = 0;
  unsigned in_flight_ = 0;
  double window_ms_ = 0;
  unsigned quorum_needed_ = 0;
  double horizon_ms_ = 0;
  std::uint64_t started_ = 0;

#if ARCH21_OBS_ENABLED
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t tr_query_ = 0, tr_retry_ = 0, tr_hedge_ = 0, tr_timeout_ = 0,
                tr_lost_ = 0, tr_denied_ = 0, tr_deadline_ = 0,
                tr_quality_arg_ = 0, tr_shed_ = 0, tr_rejected_ = 0,
                tr_brk_open_ = 0, tr_brk_half_ = 0, tr_brk_close_ = 0,
                tr_brk_short_ = 0;
  obs::MetricsRegistry* mreg_ = nullptr;
  obs::MetricsRegistry::MetricId m_query_ms_ = 0;
#endif
};

template <class Engine>
ClusterResult PdesClusterSim<Engine>::run() {
  Rng rng(cfg_.seed);
  horizon_ms_ = cfg_.duration_s * 1000.0;
  window_ms_ = cfg_.goodput_window_s * 1000.0;
  res_.goodput_window_s = cfg_.goodput_window_s;

  // --- LP wiring: handlers, leaf resources, pre-sizing ---
  root_.set_handler(
      [this](LpT&, const des::Payload& p) { on_root_msg(p); });
  grps_.resize(groups_);
  for (unsigned g = 0; g < groups_; ++g) {
    Group& grp = grps_[g];
    const auto [lo, hi] = des::group_range(g, cfg_.leaves, groups_);
    grp.first = lo;
    grp.up.assign(hi - lo, 1);
    des::Simulator& gs = eng_.lp(1 + g).sim();
    grp.leaves.reserve(hi - lo);
    for (unsigned l = lo; l < hi; ++l) {
      grp.leaves.push_back(
          std::make_unique<des::Resource>(gs, 1, cfg_.leaf_queue));
    }
    eng_.lp(1 + g).set_handler([this, g](LpT& lp, const des::Payload& p) {
      on_group_msg(g, lp, p);
    });
    gs.reserve(static_cast<std::size_t>(cfg_.duration_s *
                                        cfg_.background_rate_hz *
                                        static_cast<double>(hi - lo) * 1.1) +
               2 * (hi - lo) + 64);
  }
  rsim_.reserve(static_cast<std::size_t>(cfg_.duration_s *
                                         cfg_.query_rate_hz * 1.2) +
                2 * cfg_.leaves + 64);
  if (pol_.breaker.enabled) {
    breakers_.assign(cfg_.leaves, Breaker{});
    brng_ = Rng(cfg_.seed, 0xB4EA);
  }
  if (pol_.gray.enabled) {
    // Detection is root-LP state only (all scoring happens on replies the
    // root observes), so the port needs no cross-LP coordination.  Gray
    // INJECTION is a serial-engine feature (validate() rejects it here).
    gdet_.init(pol_.gray, cfg_.leaves, pol_.retry.timeout_ms);
    const double step = pol_.gray.eval_interval_ms;
    const auto evals = static_cast<std::uint64_t>(std::ceil(horizon_ms_ / step));
    for (std::uint64_t k = 1; k <= evals; ++k) {
      rsim_.schedule_at(static_cast<double>(k) * step,
                        [this] { gdet_.eval(rsim_.now()); });
    }
  }
#if ARCH21_OBS_ENABLED
  if (cfg_.trace) attach_trace(cfg_.trace);
  {
    auto& mreg = obs::MetricsRegistry::global();
    if (mreg.enabled()) {
      mreg_ = &mreg;
      m_query_ms_ = mreg.timer("cluster.query_ms", 1e-2, 1e5, 90);
    }
  }
#endif
  if (window_ms_ > 0) {
    res_.answered_per_window.reserve(
        static_cast<std::size_t>(horizon_ms_ / window_ms_) + 4);
  }
  const double mu_log = std::log(cfg_.leaf_service_ms) -
                        0.5 * cfg_.service_sigma * cfg_.service_sigma;

  // --- failure injection: expand the stochastic trace + deterministic
  // burst into per-leaf EFFECTIVE up/down transitions at setup (a serial
  // replay of the legacy own/domain state machine), then schedule each
  // leaf's transitions on its owning group LP.  No cross-LP coordination
  // is needed at runtime because the expansion already resolved the
  // domain coupling. ---
  {
    struct Raw {
      double t_ms;
      int order;  // stable tie-break: scheduling order of the legacy path
      reliab::FailureEvent ev;
      int burst = 0;  // 0 = trace event, 1 = burst down, 2 = burst up
    };
    std::vector<Raw> raw;
    if (cfg_.faults.enabled) {
      fcfg_.leaves = cfg_.leaves;
      fcfg_.leaves_per_domain = cfg_.faults.leaves_per_domain;
      fcfg_.leaf = cfg_.faults.leaf;
      fcfg_.domain = cfg_.faults.domain;
      fcfg_.horizon_hours = horizon_ms_ / kMsPerHour;
      fcfg_.seed = Rng(cfg_.seed, 0xFA17).next();
      const reliab::FailureTrace trace = reliab::generate_failure_trace(fcfg_);
      res_.leaf_failures = trace.leaf_failures;
      res_.domain_failures = trace.domain_failures;
      res_.availability_measured = trace.measured_leaf_availability(fcfg_);
      res_.availability_predicted = fcfg_.predicted_leaf_availability();
      raw.reserve(trace.events.size() + 2);
      for (const reliab::FailureEvent& ev : trace.events) {
        raw.push_back(Raw{ev.t_hours * kMsPerHour,
                          static_cast<int>(raw.size()), ev});
      }
    }
    if (cfg_.faults.burst_enabled()) {
      const double t0 = cfg_.faults.burst_start_s * 1000.0;
      raw.push_back(
          Raw{t0, static_cast<int>(raw.size()), reliab::FailureEvent{}, 1});
      raw.push_back(Raw{t0 + cfg_.faults.burst_duration_s * 1000.0,
                        static_cast<int>(raw.size()), reliab::FailureEvent{},
                        2});
      res_.leaf_failures += std::min(cfg_.faults.burst_leaves, cfg_.leaves);
    }
    std::stable_sort(raw.begin(), raw.end(), [](const Raw& a, const Raw& b) {
      return a.t_ms < b.t_ms;
    });
    std::vector<char> own(cfg_.leaves, 1);
    std::vector<char> eff(cfg_.leaves, 1);
    std::vector<char> dom(std::max(fcfg_.domains(), 1u), 1);
    auto set_eff = [&](double t_ms, unsigned l, bool up) {
      if ((eff[l] != 0) == up) return;
      eff[l] = up ? 1 : 0;
      const unsigned g = group_of_leaf(l);
      const unsigned li = l - grps_[g].first;
      eng_.lp(1 + g).sim().schedule_at(
          t_ms, [this, g, li, up] { on_leaf_transition(g, li, up); });
    };
    for (const Raw& r : raw) {
      if (r.burst == 1) {
        const unsigned n = std::min(cfg_.faults.burst_leaves, cfg_.leaves);
        for (unsigned l = 0; l < n; ++l) {
          own[l] = 0;
          set_eff(r.t_ms, l, false);
        }
      } else if (r.burst == 2) {
        const unsigned n = std::min(cfg_.faults.burst_leaves, cfg_.leaves);
        for (unsigned l = 0; l < n; ++l) {
          own[l] = 1;
          const bool dom_ok = fcfg_.leaves_per_domain == 0 ||
                              dom[l / fcfg_.leaves_per_domain];
          set_eff(r.t_ms, l, dom_ok);
        }
      } else if (r.ev.is_domain) {
        dom[r.ev.entity] = r.ev.up ? 1 : 0;
        const unsigned begin = r.ev.entity * fcfg_.leaves_per_domain;
        const unsigned end =
            std::min(begin + fcfg_.leaves_per_domain, cfg_.leaves);
        for (unsigned l = begin; l < end; ++l) {
          set_eff(r.t_ms, l, r.ev.up && own[l]);
        }
      } else {
        own[r.ev.entity] = r.ev.up ? 1 : 0;
        const bool dom_ok = fcfg_.leaves_per_domain == 0 ||
                            dom[r.ev.entity / fcfg_.leaves_per_domain];
        set_eff(r.t_ms, r.ev.entity, r.ev.up && dom_ok);
      }
    }
  }

  // --- background load on each leaf (dropped while the leaf is down);
  // RNG split in GLOBAL leaf order so draws are partition-independent ---
  for (unsigned l = 0; l < cfg_.leaves; ++l) {
    double t = 0;
    Rng brng = rng.split();
    if (cfg_.background_rate_hz <= 0) continue;
    const unsigned g = group_of_leaf(l);
    Group& grp = grps_[g];
    const unsigned li = l - grp.first;
    des::Resource* leaf = grp.leaves[li].get();
    const char* up = &grp.up[li];
    des::Simulator& gs = eng_.lp(1 + g).sim();
    while (true) {
      t += brng.exponential(1000.0 / cfg_.background_rate_hz);
      if (t >= horizon_ms_) break;
      const double sz = brng.exponential(cfg_.background_ms);
      gs.schedule_at(t, [leaf, sz, up] {
        if (*up) leaf->request(sz, nullptr);
      });
    }
  }

  // --- fan-out queries through the policy engine ---
  Rng qrng = rng.split();
  crng_ = rng.split();
  budget_tokens_ = pol_.budget.burst;
  adm_tokens_ = pol_.admission.burst;
  quorum_needed_ = static_cast<unsigned>(std::ceil(
      pol_.quorum.quorum_fraction * static_cast<double>(cfg_.leaves)));

  double qt = 0;
  while (true) {
    qt += qrng.exponential(1000.0 / cfg_.query_rate_hz);
    if (qt >= horizon_ms_) break;
    const std::size_t base = services_.size();
    for (unsigned l = 0; l < cfg_.leaves; ++l) {
      services_.push_back(qrng.lognormal(mu_log, cfg_.service_sigma));
    }
    rsim_.schedule_at(qt, [this, base] { on_query_start(base); });
  }

  eng_.run();  // drain: completions may straggle past the horizon

  res_.queries = started_;
  res_.failed_queries += started_ - res_.ok_queries - res_.degraded_queries -
                         res_.failed_queries;

  // Server-side folds, in global leaf order (deterministic).
  for (const Group& grp : grps_) {
    res_.lost_requests += grp.lost;
    for (const auto& leaf : grp.leaves) {
      res_.rejected_requests += leaf->rejected();
      res_.expired_drops += leaf->expired();
    }
  }
  if (gdet_.engaged()) {
    res_.gray_evictions = gdet_.evictions();
    res_.gray_probations = gdet_.probations();
    res_.gray_zombies = gdet_.zombies();
    res_.adaptive_deadline_ms =
        pol_.gray.adaptive_deadline ? gdet_.timeout_ms() : 0;
  }
  if (pol_.breaker.enabled) {
    // Close the books at the time of the LAST event anywhere -- the same
    // instant on either engine (the loopback clock stops at the global
    // last event; the parallel engine's per-LP maximum equals it).
    double end = 0;
    for (std::uint32_t i = 0; i < eng_.lps(); ++i) {
      end = std::max(end, eng_.lp(i).now());
    }
    for (const Breaker& b : breakers_) {
      if (b.state == Breaker::kOpen) {
        res_.breaker_open_ms += std::min(end, b.open_until) - b.opened_at;
      }
    }
  }

  double util = 0;
  for (const Group& grp : grps_) {
    for (const auto& leaf : grp.leaves) {
      util += leaf->busy_time() / horizon_ms_;
    }
  }
  res_.mean_leaf_utilization = util / static_cast<double>(cfg_.leaves);
  res_.hedge_fraction =
      res_.leaf_requests ? static_cast<double>(res_.hedges) /
                               static_cast<double>(res_.leaf_requests)
                         : 0;
  res_.retry_amplification =
      started_ ? static_cast<double>(res_.leaf_requests) /
                     (static_cast<double>(started_) *
                      static_cast<double>(cfg_.leaves))
               : 0;
  res_.goodput_qps =
      static_cast<double>(res_.ok_queries + res_.degraded_queries) /
      cfg_.duration_s;
  res_.frac_over_leaf_p99 =
      res_.query_ms.fraction_above(res_.leaf_ms.quantile(0.99));
#if ARCH21_OBS_ENABLED
  publish_metrics();
#endif
  return std::move(res_);
}

}  // namespace

ClusterResult simulate_cluster_pdes(const ClusterConfig& cfg) {
  cfg.validate();
  if (!(cfg.net_latency_ms > 0)) {
    throw std::invalid_argument(
        "simulate_cluster_pdes: net_latency_ms must be > 0");
  }
  const unsigned groups = cfg.leaf_groups
                              ? cfg.leaf_groups
                              : des::balanced_groups(cfg.leaves, 8);
  des::PartitionSpec spec;
  spec.lps = 1 + groups;
  spec.lookahead = cfg.net_latency_ms;
  // Per-LP allocation hint: the engines pre-size each LP's kernel and
  // commit buffers for the per-window message burst (a window spans the
  // lookahead, so the burst is bounded by the query rate times the
  // lookahead times the fanout, with slack for leaf answers and timer
  // events) so warm-up never grows a vector mid-run.  The scenario ctor
  // still applies its finer per-sim estimates on top.
  spec.reserve_events =
      static_cast<std::size_t>(cfg.query_rate_hz * cfg.net_latency_ms * 1e-3 *
                               static_cast<double>(cfg.leaves) * 8.0) +
      1024;
  if (cfg.workers == 0) {
    PdesClusterSim<des::LoopbackEngine> sim(cfg, groups, spec);
    return sim.run();
  }
  ThreadPool pool(cfg.workers);  // outlives the engine inside `sim`
  PdesClusterSim<des::ParallelEngine> sim(cfg, groups, spec, pool);
  return sim.run();
}

}  // namespace arch21::cloud
