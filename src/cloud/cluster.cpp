#include "cloud/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/gray_detect.hpp"
#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "reliab/failure_trace.hpp"
#include "reliab/gray.hpp"
#include "util/slab.hpp"

#if ARCH21_OBS_ENABLED
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace arch21::cloud {

// Simulation time unit: milliseconds.

namespace {

constexpr double kMsPerHour = 3.6e6;

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

}  // namespace

void ClusterFaultConfig::validate() const {
  // The burst is independent of the stochastic trace, so its fields are
  // checked whether or not `enabled` is set.
  if (!(burst_start_s >= 0)) {
    bad("ClusterFaultConfig", "burst_start_s must be >= 0");
  }
  if (!(burst_duration_s >= 0)) {
    bad("ClusterFaultConfig", "burst_duration_s must be >= 0");
  }
  if (burst_leaves > 0 && !(burst_duration_s > 0)) {
    bad("ClusterFaultConfig", "burst_leaves requires burst_duration_s > 0");
  }
  if (!enabled) return;
  if (!(leaf.mtbf_hours > 0)) {
    bad("ClusterFaultConfig", "leaf.mtbf_hours must be > 0");
  }
  if (!(leaf.mttr_hours >= 0)) {
    bad("ClusterFaultConfig", "leaf.mttr_hours must be >= 0");
  }
  if (leaves_per_domain > 0) {
    if (!(domain.mtbf_hours > 0)) {
      bad("ClusterFaultConfig", "domain.mtbf_hours must be > 0");
    }
    if (!(domain.mttr_hours >= 0)) {
      bad("ClusterFaultConfig", "domain.mttr_hours must be >= 0");
    }
  }
}

void ClusterGrayConfig::validate() const {
  // Burst fields are independent of the stochastic trace, so they are
  // checked whether or not `enabled` is set (like ClusterFaultConfig).
  if (!(burst_start_s >= 0)) {
    bad("ClusterGrayConfig", "burst_start_s must be >= 0");
  }
  if (!(burst_duration_s >= 0)) {
    bad("ClusterGrayConfig", "burst_duration_s must be >= 0");
  }
  if (burst_leaves > 0) {
    if (!(burst_duration_s > 0)) {
      bad("ClusterGrayConfig", "burst_leaves requires burst_duration_s > 0");
    }
    switch (burst_mode) {
      case reliab::GrayMode::kSlow:
        if (!(burst_severity > 1) || !std::isfinite(burst_severity)) {
          bad("ClusterGrayConfig", "slow burst_severity must be finite and > 1");
        }
        break;
      case reliab::GrayMode::kLossy:
        if (!(burst_severity > 0) || burst_severity > 1) {
          bad("ClusterGrayConfig", "lossy burst_severity must be in (0, 1]");
        }
        break;
      case reliab::GrayMode::kZombie:
        break;  // total reply loss; severity ignored
      case reliab::GrayMode::kJittery:
        if (!(burst_severity > 0) || !std::isfinite(burst_severity)) {
          bad("ClusterGrayConfig",
              "jittery burst_severity must be finite and > 0");
        }
        break;
    }
  }
  if (!(spike_prob > 0) || spike_prob > 1) {
    bad("ClusterGrayConfig", "spike_prob must be in (0, 1]");
  }
  if (!enabled) return;
  // The trace parameterization is exactly a GrayTraceConfig; delegate so
  // the two layers can never drift apart on what is legal.
  reliab::GrayTraceConfig gcfg;
  gcfg.entities = 1;
  gcfg.episode = episode;
  gcfg.w_slow = w_slow;
  gcfg.w_lossy = w_lossy;
  gcfg.w_zombie = w_zombie;
  gcfg.w_jittery = w_jittery;
  gcfg.slow_factor_min = slow_factor_min;
  gcfg.slow_factor_max = slow_factor_max;
  gcfg.loss_fraction_min = loss_fraction_min;
  gcfg.loss_fraction_max = loss_fraction_max;
  gcfg.spike_ms_min = spike_ms_min;
  gcfg.spike_ms_max = spike_ms_max;
  gcfg.spike_prob = spike_prob;
  gcfg.validate();
}

void ClusterConfig::validate() const {
  if (leaves == 0) bad("ClusterConfig", "leaves must be > 0");
  if (!(query_rate_hz > 0)) bad("ClusterConfig", "query_rate_hz must be > 0");
  if (!(leaf_service_ms > 0)) {
    bad("ClusterConfig", "leaf_service_ms must be > 0");
  }
  if (!(service_sigma > 0)) bad("ClusterConfig", "service_sigma must be > 0");
  if (!(background_rate_hz >= 0)) {
    bad("ClusterConfig", "background_rate_hz must be >= 0");
  }
  if (background_rate_hz > 0 && !(background_ms > 0)) {
    bad("ClusterConfig", "background_ms must be > 0");
  }
  if (!(duration_s > 0)) bad("ClusterConfig", "duration_s must be > 0");
  if (!(hedge_after_ms >= 0)) {
    bad("ClusterConfig", "hedge_after_ms must be >= 0");
  }
  leaf_queue.validate();
  if (!(goodput_window_s >= 0)) {
    bad("ClusterConfig", "goodput_window_s must be >= 0");
  }
  if (!(net_latency_ms >= 0) || !std::isfinite(net_latency_ms)) {
    bad("ClusterConfig", "net_latency_ms must be finite and >= 0");
  }
  if (workers > 0 && !(net_latency_ms > 0)) {
    // The conservative engine needs latency to hide behind; the
    // zero-latency model stays on the (serial) legacy path.
    bad("ClusterConfig", "workers > 0 requires net_latency_ms > 0");
  }
  if (leaf_groups > leaves) {
    bad("ClusterConfig", "leaf_groups must be <= leaves");
  }
#if ARCH21_OBS_ENABLED
  if (trace != nullptr && workers > 1) {
    // The trace ring is single-writer; with one worker the parallel
    // engine runs LP phases sequentially, so one ring still works.
    bad("ClusterConfig", "trace requires workers <= 1");
  }
#endif
  faults.validate();
  if (faults.burst_leaves > leaves) {
    bad("ClusterFaultConfig", "burst_leaves must be <= leaves");
  }
  policy.validate();
  powercap.validate();
  if (powercap.enabled && net_latency_ms > 0) {
    // The window energy contract is cluster-global state; the LP-sharded
    // engine has no home for it.  (workers > 0 is excluded transitively:
    // it requires net_latency_ms > 0.)
    bad("ClusterConfig", "powercap requires net_latency_ms == 0");
  }
  gray.validate();
  if (gray.burst_leaves > leaves) {
    bad("ClusterGrayConfig", "burst_leaves must be <= leaves");
  }
  if (gray.any() && net_latency_ms > 0) {
    // The injection hooks live on the serial engine's leaves; the
    // LP-sharded path rejects the config rather than silently ignoring
    // it.  (Gray DETECTION -- policy.gray -- runs on both engines.)
    bad("ClusterConfig", "gray injection requires net_latency_ms == 0");
  }
  if (gray.any() && powercap.enabled) {
    // Both layers drive Resource::set_speed; composed, one would silently
    // overwrite the other's p-state.
    bad("ClusterConfig", "gray injection and powercap are mutually exclusive");
  }
}

void ClusterResult::merge(const ClusterResult& other) {
  const double w_self = static_cast<double>(trials);
  const double w_other = static_cast<double>(other.trials);
  const double w = w_self + w_other;
  auto avg = [&](double a, double b) { return (a * w_self + b * w_other) / w; };

  queries += other.queries;
  ok_queries += other.ok_queries;
  degraded_queries += other.degraded_queries;
  failed_queries += other.failed_queries;
  query_ms.merge(other.query_ms);
  leaf_ms.merge(other.leaf_ms);
  mean_leaf_utilization =
      avg(mean_leaf_utilization, other.mean_leaf_utilization);
  hedge_fraction = avg(hedge_fraction, other.hedge_fraction);
  leaf_requests += other.leaf_requests;
  retries += other.retries;
  hedges += other.hedges;
  timeouts += other.timeouts;
  lost_requests += other.lost_requests;
  budget_denials += other.budget_denials;
  leaf_failures += other.leaf_failures;
  domain_failures += other.domain_failures;
  shed_queries += other.shed_queries;
  rejected_requests += other.rejected_requests;
  expired_drops += other.expired_drops;
  breaker_open_transitions += other.breaker_open_transitions;
  breaker_short_circuits += other.breaker_short_circuits;
  breaker_probes += other.breaker_probes;
  breaker_open_ms += other.breaker_open_ms;
  // Goodput windows are raw counts over the same wall-clock grid in every
  // trial, so merging is an element-wise sum (trials may differ in length
  // by a window when completions straggle past the horizon).  The grids
  // must actually match: summing counts recorded on different window
  // sizes would silently corrupt the hysteresis measurement.
  if (goodput_window_s > 0 && other.goodput_window_s > 0 &&
      goodput_window_s != other.goodput_window_s) {
    throw std::invalid_argument(
        "ClusterResult::merge: goodput_window_s mismatch");
  }
  if (goodput_window_s == 0) goodput_window_s = other.goodput_window_s;
  if (answered_per_window.size() < other.answered_per_window.size()) {
    answered_per_window.resize(other.answered_per_window.size(), 0);
  }
  for (std::size_t i = 0; i < other.answered_per_window.size(); ++i) {
    answered_per_window[i] += other.answered_per_window[i];
  }
  power_shed_queries += other.power_shed_queries;
  power_gate_stalls += other.power_gate_stalls;
  power_overruns += other.power_overruns;
  energy_j += other.energy_j;
  // The max (not a mean): a merged aggregate must still certify that no
  // accounting window in ANY trial exceeded the cap.
  peak_window_w = std::max(peak_window_w, other.peak_window_w);
  if (power_cap_w > 0 && other.power_cap_w > 0 &&
      power_cap_w != other.power_cap_w) {
    throw std::invalid_argument("ClusterResult::merge: power_cap_w mismatch");
  }
  if (power_cap_w == 0) power_cap_w = other.power_cap_w;
  if (power_window_s > 0 && other.power_window_s > 0 &&
      power_window_s != other.power_window_s) {
    throw std::invalid_argument(
        "ClusterResult::merge: power_window_s mismatch");
  }
  if (power_window_s == 0) power_window_s = other.power_window_s;
  if (energy_j_per_window.size() < other.energy_j_per_window.size()) {
    energy_j_per_window.resize(other.energy_j_per_window.size(), 0.0);
  }
  for (std::size_t i = 0; i < other.energy_j_per_window.size(); ++i) {
    energy_j_per_window[i] += other.energy_j_per_window[i];
  }
  gray_episodes += other.gray_episodes;
  gray_dropped_replies += other.gray_dropped_replies;
  gray_evictions += other.gray_evictions;
  gray_probations += other.gray_probations;
  gray_zombies += other.gray_zombies;
  gray_redirected_sends += other.gray_redirected_sends;
  adaptive_deadline_ms = avg(adaptive_deadline_ms, other.adaptive_deadline_ms);
  retry_amplification = avg(retry_amplification, other.retry_amplification);
  goodput_qps = avg(goodput_qps, other.goodput_qps);
  availability_measured =
      avg(availability_measured, other.availability_measured);
  availability_predicted =
      avg(availability_predicted, other.availability_predicted);
  sum_result_quality += other.sum_result_quality;
  trials += other.trials;
  frac_over_leaf_p99 = query_ms.fraction_above(leaf_ms.quantile(0.99));
}

namespace {

// One cluster trial.  Per-query / per-call state lives in slab arenas
// indexed by 32-bit handles (util/slab.hpp) instead of a
// shared_ptr<QueryState>/shared_ptr<LeafCall> web, and the
// attempt/hedge/retry/timeout flow is plain member functions instead of a
// recursive std::function, so after the slabs and the event tiers reach
// their high-water marks a trial performs no heap allocation at all.
// Event closures capture `this` plus 16-byte RAII handle guards, which
// keeps every action inside the Simulator's inline buffer.
//
// The setup sequence, per-event operation order, and every Rng draw site
// are kept identical to the historical shared_ptr implementation, so
// results are bit-identical with pre-slab builds (locked in by
// tests/test_resilience.cpp's golden aggregates).  The overload layer
// preserves that contract: admission sheds before any per-query state is
// touched, and every breaker draw comes from a dedicated Rng stream, so
// configs with the new policies disabled stay bit-identical too.
class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& cfg) : cfg_(cfg), pol_(cfg.policy) {
    // Effective policy: the legacy hedge knob feeds the unified engine.
    if (pol_.hedge_after_ms == 0 && cfg.hedge_after_ms > 0) {
      pol_.hedge_after_ms = cfg.hedge_after_ms;
    }
  }

  ClusterResult run();

 private:
  static constexpr std::uint32_t kNull = Slab<int>::kNull;

  struct QueryRec {
    unsigned replied = 0;
    double start_ms = 0;
    bool closed = false;
    des::EventHandle deadline{};
#if ARCH21_OBS_ENABLED
    /// Monotone per-trial serial keying the query's async trace span
    /// (slab handles recycle, so they cannot key overlapping spans).
    std::uint64_t trace_serial = 0;
#endif
  };
  struct CallRec {
    bool done = false;
    unsigned attempts = 0;  // non-hedge issues so far
    bool hedged = false;
    des::EventHandle timeout{};
    des::EventHandle hedge{};
    /// Counted reference to the owning query, dropped by release_call()
    /// when the call record itself dies.
    std::uint32_t query = kNull;
  };

  /// Per-replica circuit breaker state.  The rolling outcome window is a
  /// bit set in a single word (CircuitBreakerPolicy caps window at 64),
  /// so recording an outcome is a handful of ALU ops and the whole
  /// breaker array stays cache-resident.
  struct Breaker {
    enum State : std::uint8_t { kClosed, kOpen, kHalfOpen };
    State state = kClosed;
    std::uint64_t bits = 0;       // rolling outcomes, 1 = failure
    std::uint32_t filled = 0;     // outcomes currently in the window
    std::uint32_t idx = 0;        // next write position
    std::uint32_t fails = 0;      // failures currently in the window
    std::uint32_t probes_left = 0;
    double opened_at = 0;
    double open_until = 0;
  };

  /// Tag: take ownership of the reference acquire() created instead of
  /// adding a new one.
  struct Adopt {};

  /// RAII counted reference to a QueryRec slot: retains on construction
  /// and copy, releases on destruction, so a closure capturing one keeps
  /// the record alive exactly as long as a captured shared_ptr would.
  /// 16 bytes (pointer + handle), the point of the exercise.
  struct QueryRef {
    ClusterSim* s = nullptr;
    std::uint32_t h = kNull;
    QueryRef(ClusterSim* sim, std::uint32_t handle) : s(sim), h(handle) {
      s->queries_.retain(h);
    }
    QueryRef(Adopt, ClusterSim* sim, std::uint32_t handle) noexcept
        : s(sim), h(handle) {}
    QueryRef(const QueryRef& o) : s(o.s), h(o.h) {
      if (s) s->queries_.retain(h);
    }
    QueryRef(QueryRef&& o) noexcept : s(o.s), h(o.h) { o.s = nullptr; }
    QueryRef& operator=(const QueryRef&) = delete;
    QueryRef& operator=(QueryRef&&) = delete;
    ~QueryRef() {
      if (s) s->queries_.release(h);
    }
    QueryRec* operator->() const noexcept { return &s->queries_[h]; }
  };

  /// RAII counted reference to a CallRec slot (see QueryRef).
  struct CallRef {
    ClusterSim* s = nullptr;
    std::uint32_t h = kNull;
    CallRef(Adopt, ClusterSim* sim, std::uint32_t handle) noexcept
        : s(sim), h(handle) {}
    CallRef(const CallRef& o) : s(o.s), h(o.h) {
      if (s) s->calls_.retain(h);
    }
    CallRef(CallRef&& o) noexcept : s(o.s), h(o.h) { o.s = nullptr; }
    CallRef& operator=(const CallRef&) = delete;
    CallRef& operator=(CallRef&&) = delete;
    ~CallRef() {
      if (s) s->release_call(h);
    }
    CallRec* operator->() const noexcept { return &s->calls_[h]; }
  };

  /// Drop one reference to a call record; when it was the last, also drop
  /// the record's reference to its query (read out *before* release()
  /// resets the slot -- the cross-slab pattern slab.hpp documents).
  void release_call(std::uint32_t h) {
    const std::uint32_t q = calls_[h].query;
    if (calls_.release(h) && q != kNull) queries_.release(q);
  }

  void set_effective(unsigned l, bool up) {
    if (leaf_up_[l] && !up) {
      // Crash: everything queued or in service on this leaf is lost.
      res_.lost_requests += leaves_[l]->fail_all();
    }
    leaf_up_[l] = up ? 1 : 0;
  }

  // leaf_up_[l] is the *effective* state: own state AND domain state.
  void apply_transition(const reliab::FailureEvent& ev) {
    if (ev.is_domain) {
      domain_up_[ev.entity] = ev.up ? 1 : 0;
      const unsigned begin = ev.entity * fcfg_.leaves_per_domain;
      const unsigned end =
          std::min(begin + fcfg_.leaves_per_domain, cfg_.leaves);
      for (unsigned l = begin; l < end; ++l) {
        set_effective(l, ev.up && own_up_[l]);
      }
    } else {
      own_up_[ev.entity] = ev.up ? 1 : 0;
      const bool dom_ok = fcfg_.leaves_per_domain == 0 ||
                          domain_up_[ev.entity / fcfg_.leaves_per_domain];
      set_effective(ev.entity, ev.up && dom_ok);
    }
  }

  /// Apply one gray-degradation transition to leaf `l`.  Slow mode acts
  /// through the leaf's service speed (work genuinely takes longer);
  /// lossy/zombie/jittery act on the reply path in on_leaf_reply().  A
  /// clear restores full speed and deactivates the reply effects.
  void apply_gray(unsigned l, reliab::GrayMode mode, double severity,
                  bool onset) {
    LeafGray& g = gray_[l];
    if (onset) {
      ++res_.gray_episodes;
      if (g.active && g.mode == reliab::GrayMode::kSlow &&
          mode != reliab::GrayMode::kSlow) {
        leaves_[l]->set_speed(1.0);  // mode switch out of slow
      }
      g.mode = mode;
      g.severity = severity;
      g.active = true;
      if (mode == reliab::GrayMode::kSlow) {
        leaves_[l]->set_speed(1.0 / severity);
      }
    } else {
      if (g.active && g.mode == reliab::GrayMode::kSlow) {
        leaves_[l]->set_speed(1.0);
      }
      g.active = false;
    }
  }

  /// Admission decision for one arriving query: concurrency cap first
  /// (a full root burns no rate tokens), then the token bucket.  Only
  /// called while admission is enabled; an admitted query holds an
  /// in-flight slot until it closes.
  bool admit() {
    const AdmissionPolicy& a = pol_.admission;
    if (a.max_in_flight > 0 && in_flight_ >= a.max_in_flight) return false;
    if (a.rate_qps > 0) {
      const double now = sim_.now();
      adm_tokens_ = std::min(
          a.burst, adm_tokens_ + (now - adm_last_ms_) * a.rate_qps / 1000.0);
      adm_last_ms_ = now;
      if (adm_tokens_ < 1.0) return false;
      adm_tokens_ -= 1.0;
    }
    ++in_flight_;
    return true;
  }

  /// Close the query's root-side bookkeeping (callers set q->closed).
  void free_in_flight() {
    if (in_flight_ > 0) --in_flight_;
  }

  /// Count an answered (ok or degraded) query into its goodput window.
  void note_answered() {
    if (window_ms_ <= 0) return;
    const auto idx = static_cast<std::size_t>(sim_.now() / window_ms_);
    if (idx >= res_.answered_per_window.size()) {
      res_.answered_per_window.resize(idx + 1, 0);
    }
    ++res_.answered_per_window[idx];
  }

  /// Trip a breaker open with a jittered cooldown.
  void breaker_open(Breaker& b) {
    b.state = Breaker::kOpen;
    b.opened_at = sim_.now();
    b.open_until =
        sim_.now() +
        pol_.breaker.open_ms *
            (1.0 + pol_.breaker.open_jitter_frac * brng_.uniform(-1.0, 1.0));
    ++res_.breaker_open_transitions;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_brk_open_, sim_.now(), 0);
#endif
  }

  /// May this send go to replica `l`?  Consumes a half-open probe slot
  /// when it grants one, and performs the lazy open -> half-open
  /// transition once the cooldown has elapsed (the breaker needs no
  /// scheduled events of its own).
  bool breaker_allows(unsigned l) {
    Breaker& b = breakers_[l];
    if (b.state == Breaker::kClosed) return true;
    if (b.state == Breaker::kOpen) {
      if (sim_.now() < b.open_until) return false;
      res_.breaker_open_ms += b.open_until - b.opened_at;
      b.state = Breaker::kHalfOpen;
      b.probes_left = pol_.breaker.half_open_probes;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_brk_half_, sim_.now(), 0);
#endif
    }
    if (b.probes_left == 0) return false;
    --b.probes_left;
    ++res_.breaker_probes;
    return true;
  }

  /// Record an observed outcome against replica `l`: a reply is a
  /// success; a timeout or synchronous queue rejection is a failure.
  /// While half-open, any failure re-opens -- including a straggling
  /// timeout from before the trip, which is deliberately conservative
  /// (the replica is still hurting us).  While open, outcomes are
  /// ignored; the cooldown timer alone decides re-entry.
  void breaker_record(unsigned l, bool ok) {
    if (!pol_.breaker.enabled) return;
    Breaker& b = breakers_[l];
    switch (b.state) {
      case Breaker::kOpen:
        return;
      case Breaker::kHalfOpen:
        if (ok) {
          b = Breaker{};  // close with a fresh window
#if ARCH21_OBS_ENABLED
          if (trace_) trace_->instant(tr_brk_close_, sim_.now(), 0);
#endif
        } else {
          breaker_open(b);
        }
        return;
      case Breaker::kClosed: {
        const CircuitBreakerPolicy& p = pol_.breaker;
        const std::uint64_t bit = std::uint64_t{1} << b.idx;
        if (b.filled == p.window) {
          if (b.bits & bit) --b.fails;
        } else {
          ++b.filled;
        }
        if (ok) {
          b.bits &= ~bit;
        } else {
          b.bits |= bit;
          ++b.fails;
        }
        b.idx = (b.idx + 1) % p.window;
        if (b.filled >= p.min_samples &&
            static_cast<double>(b.fails) >=
                p.failure_threshold * static_cast<double>(b.filled)) {
          breaker_open(b);
        }
        return;
      }
    }
  }

  /// A query's start event: admission first (a shed query touches no
  /// per-query state and issues nothing -- its pre-drawn service times
  /// are simply never used, which keeps workload draws aligned across
  /// protected/unprotected configs); then create the record, arm the
  /// quorum deadline, and issue the first attempt on every leaf.
  void on_query_start(std::size_t services_base) {
    // The power cap is the primary constraint: the governor's cap-aware
    // admission sheds BEFORE the resilience-policy admission (and long
    // before any leaf would throttle) -- a power-shed query touches no
    // per-query state, exactly like a policy shed.
    if (pcap_ && !pcap_->admit(sim_.now())) {
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_pshed_, sim_.now(), 0);
#endif
      return;
    }
    if (pol_.admission.enabled && !admit()) {
      ++res_.shed_queries;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_shed_, sim_.now(), 0);
#endif
      return;
    }
    QueryRef q(Adopt{}, this, queries_.acquire());
    q->start_ms = sim_.now();
    ++started_;
#if ARCH21_OBS_ENABLED
    if (trace_) {
      q->trace_serial = started_;
      trace_->async_begin(tr_query_, q->trace_serial, sim_.now());
    }
#endif
    if (pol_.quorum.enabled()) {
      q->deadline = sim_.schedule_cancellable(
          pol_.quorum.deadline_ms, [this, q] { on_deadline(q); });
    }
    for (unsigned l = 0; l < cfg_.leaves; ++l) {
      const std::uint32_t ch = calls_.acquire();
      queries_.retain(q.h);
      calls_[ch].query = q.h;
      CallRef call(Adopt{}, this, ch);
      issue(q, call, services_[services_base + l], l, false);
    }
  }

  /// Issue one attempt (or hedge) of a leaf call against `target`.  An
  /// open breaker short-circuits the send and redirects it (up to three
  /// draws from the breaker stream) to a replica that admits traffic; if
  /// none does, nothing is sent and the armed timeout recovers the call.
  /// A send bounced off a full bounded leaf queue likewise falls back to
  /// the timeout, and counts as a breaker failure observation (a
  /// rejecting replica is an overloaded replica).
  void issue(const QueryRef& q, const CallRef& call, double service,
             unsigned target, bool is_hedge) {
    if (call->done || q->closed) return;
    ++res_.leaf_requests;
    if (is_hedge) {
      ++res_.hedges;
    } else {
      ++call->attempts;
      if (pol_.budget.enabled && call->attempts == 1) {
        budget_tokens_ =
            std::min(budget_tokens_ + pol_.budget.ratio, pol_.budget.burst);
      }
    }

    unsigned t = target;
    bool send = true;
    if (gdet_.engaged() && gdet_.evicted(t)) {
      // Down-weighted to zero: steer the send to a healthy peer chosen
      // round-robin (deterministic -- no redirect storm, no RNG).  With
      // no healthy peer left, nothing is sent and the armed timeout
      // recovers the call.
      ++res_.gray_redirected_sends;
      const unsigned alt = gdet_.redirect_target(t);
      if (alt == GrayDetector::kNone) {
        send = false;
      } else {
        t = alt;
      }
    }
    if (send && pol_.breaker.enabled && !breaker_allows(t)) {
      ++res_.breaker_short_circuits;
#if ARCH21_OBS_ENABLED
      if (trace_) trace_->instant(tr_brk_short_, sim_.now(), 0);
#endif
      send = false;
      for (int k = 0; k < 3; ++k) {
        const unsigned alt = static_cast<unsigned>(brng_.below(cfg_.leaves));
        if (breaker_allows(alt)) {
          t = alt;
          send = true;
          break;
        }
      }
    }

    if (send) {
      if (gdet_.engaged()) gdet_.on_sent(t);
      if (leaf_up_[t]) {
        if (!leaves_[t]->request(service, [this, q, call, t](double, double) {
              on_leaf_reply(q, call, t);
            })) {
          breaker_record(t, false);
          // A bounce is a LOUD refusal, not a silent non-reply: the gray
          // detector must not count it toward the reply-rate check, or
          // redirect-concentrated load evicts the healthy majority.
          if (gdet_.engaged()) gdet_.on_rejected(t);
#if ARCH21_OBS_ENABLED
          if (trace_) trace_->instant(tr_rejected_, sim_.now(), 0);
#endif
        }
      } else {
        // The request vanishes into a dead leaf; only a timeout (or the
        // query deadline) will tell the client.
        ++res_.lost_requests;
#if ARCH21_OBS_ENABLED
        if (trace_) trace_->instant(tr_lost_, sim_.now(), 0);
#endif
      }
    }

    if (!is_hedge && pol_.hedge_after_ms > 0 && !call->hedged &&
        call->attempts == 1) {
      auto hedge = [this, q, call, service] { on_hedge(q, call, service); };
      static_assert(sizeof(hedge) <= des::Simulator::Action::capacity(),
                    "hedge closure must fit the Action inline buffer");
      call->hedge =
          sim_.schedule_cancellable(pol_.hedge_after_ms, std::move(hedge));
    }
    if (!is_hedge && pol_.retry.timeout_ms > 0) {
      // The adaptive deadline (when on) replaces the fixed per-attempt
      // timeout with the detector's tracked p99-based value, clamped to
      // [deadline_min_ms, the fixed timeout].
      const double to = gdet_.engaged() && pol_.gray.adaptive_deadline
                            ? gdet_.timeout_ms()
                            : pol_.retry.timeout_ms;
      auto timeout = [this, q, call, service, t] {
        on_timeout(q, call, service, t);
      };
      static_assert(sizeof(timeout) <= des::Simulator::Action::capacity(),
                    "timeout closure must fit the Action inline buffer");
      call->timeout = sim_.schedule_cancellable(to, std::move(timeout));
    }
  }

  /// A leaf finished serving an attempt: apply gray reply effects before
  /// the client sees anything.  A lossy/zombie leaf eats the reply (only
  /// the client's timeout will tell it); a jittery leaf delays it by an
  /// exponential spike -- the leaf itself kept full capacity, so this is
  /// a NIC/GC hiccup, not queueing.  All coins/draws come from the
  /// dedicated gray stream, and only while an episode is active.
  void on_leaf_reply(const QueryRef& q, const CallRef& call, unsigned target) {
    if (gray_active_) {
      const LeafGray& g = gray_[target];
      if (g.active) {
        switch (g.mode) {
          case reliab::GrayMode::kZombie:
            ++res_.gray_dropped_replies;
            return;
          case reliab::GrayMode::kLossy:
            if (grng_.chance(g.severity)) {
              ++res_.gray_dropped_replies;
              return;
            }
            break;
          case reliab::GrayMode::kJittery:
            if (grng_.chance(cfg_.gray.spike_prob)) {
              auto deliver = [this, q, call, target] {
                on_leaf_done(q, call, target);
              };
              static_assert(
                  sizeof(deliver) <= des::Simulator::Action::capacity(),
                  "spiked-reply closure must fit the Action inline buffer");
              sim_.schedule(grng_.exponential(g.severity), std::move(deliver));
              return;
            }
            break;
          case reliab::GrayMode::kSlow:
            break;  // slow acts through set_speed at onset
        }
      }
    }
    on_leaf_done(q, call, target);
  }

  void on_leaf_done(const QueryRef& q, const CallRef& call, unsigned target) {
    breaker_record(target, true);  // a reply is a success observation
    // The detector observes every reply that reaches the client --
    // including late and duplicate ones, which are exactly the fail-slow
    // signal the breaker window launders into successes.
    if (gdet_.engaged()) gdet_.on_reply(target, sim_.now() - q->start_ms);
    if (call->done) return;  // a faster attempt already answered
    call->done = true;
    sim_.cancel(call->timeout);
    sim_.cancel(call->hedge);
    const double lat = sim_.now() - q->start_ms;
    res_.leaf_ms.add(lat);
    if (q->closed) return;  // degraded/failed; reply arrived late
    if (++q->replied == cfg_.leaves) {
      q->closed = true;
      free_in_flight();
      sim_.cancel(q->deadline);
      ++res_.ok_queries;
      res_.sum_result_quality += 1.0;
      res_.query_ms.add(lat);
      note_answered();
#if ARCH21_OBS_ENABLED
      if (mreg_) mreg_->record(m_query_ms_, lat);
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, sim_.now(),
                          tr_quality_arg_, 1.0);
      }
#endif
    }
  }

  /// Quorum deadline: close the query with whatever has replied.
  void on_deadline(const QueryRef& q) {
    if (q->closed) return;
    q->closed = true;
    free_in_flight();
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_deadline_, sim_.now(), 0);
#endif
    if (q->replied >= quorum_needed_) {
      ++res_.degraded_queries;
      const double quality = static_cast<double>(q->replied) /
                             static_cast<double>(cfg_.leaves);
      res_.sum_result_quality += quality;
      res_.query_ms.add(sim_.now() - q->start_ms);
      note_answered();
#if ARCH21_OBS_ENABLED
      if (mreg_) mreg_->record(m_query_ms_, sim_.now() - q->start_ms);
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, sim_.now(),
                          tr_quality_arg_, quality);
      }
#endif
    } else {
      ++res_.failed_queries;
#if ARCH21_OBS_ENABLED
      if (trace_) {
        trace_->async_end(tr_query_, q->trace_serial, sim_.now(),
                          tr_quality_arg_, 0.0);
      }
#endif
    }
  }

  void on_hedge(const QueryRef& q, const CallRef& call, double service) {
    if (call->done || q->closed) return;
    call->hedged = true;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_hedge_, sim_.now(), 0);
#endif
    issue(q, call, service, static_cast<unsigned>(crng_.below(cfg_.leaves)),
          true);
  }

  void on_timeout(const QueryRef& q, const CallRef& call, double service,
                  unsigned target) {
    // The attempt against `target` got no reply in time: a failure
    // observation whether or not we still care about the query.
    breaker_record(target, false);
    if (call->done || q->closed) return;
    ++res_.timeouts;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_timeout_, sim_.now(), 0);
#endif
    if (call->attempts > pol_.retry.max_retries) return;
    if (pol_.budget.enabled) {
      if (budget_tokens_ < 1.0) {
        ++res_.budget_denials;
#if ARCH21_OBS_ENABLED
        if (trace_) trace_->instant(tr_denied_, sim_.now(), 0);
#endif
        return;
      }
      budget_tokens_ -= 1.0;
    }
    ++res_.retries;
#if ARCH21_OBS_ENABLED
    if (trace_) trace_->instant(tr_retry_, sim_.now(), 0);
#endif
    const double backoff = pol_.retry.backoff_ms(call->attempts - 1, crng_);
    // Retry against a random replica, like the hedge path.
    const unsigned alt = static_cast<unsigned>(crng_.below(cfg_.leaves));
    auto retry = [this, q, call, service, alt] {
      issue(q, call, service, alt, false);
    };
    static_assert(sizeof(retry) <= des::Simulator::Action::capacity(),
                  "retry closure must fit the Action inline buffer");
    sim_.schedule(backoff, std::move(retry));
  }

#if ARCH21_OBS_ENABLED
  /// Wire the trace sink into every layer of this trial: DES kernel
  /// instants on track 0, leaf l's serve spans on track 1 + l (each leaf
  /// is a single-server Resource, so one track per leaf suffices), and
  /// the query/retry/hedge lifecycle emitted by the policy engine above.
  void attach_trace(obs::TraceBuffer* t) {
    trace_ = t;
    sim_.set_trace(t);
    t->name_thread(0, "des-kernel");
    for (unsigned l = 0; l < cfg_.leaves; ++l) {
      t->name_thread(1 + l, "leaf-" + std::to_string(l));
      leaves_[l]->set_trace(t, 1 + l);
    }
    tr_query_ = t->intern("query");
    tr_retry_ = t->intern("retry");
    tr_hedge_ = t->intern("hedge");
    tr_timeout_ = t->intern("timeout");
    tr_lost_ = t->intern("lost");
    tr_denied_ = t->intern("budget-denied");
    tr_deadline_ = t->intern("deadline");
    tr_quality_arg_ = t->intern("quality");
    tr_shed_ = t->intern("shed");
    tr_rejected_ = t->intern("rejected");
    tr_brk_open_ = t->intern("breaker-open");
    tr_brk_half_ = t->intern("breaker-half-open");
    tr_brk_close_ = t->intern("breaker-close");
    tr_brk_short_ = t->intern("breaker-short-circuit");
    tr_pshed_ = t->intern("power-shed");
  }

  /// Fold this trial's counters and slab high-water marks into the
  /// process-wide registry.  Called once at the end of run(); a no-op
  /// while the registry is disabled.
  void publish_metrics() {
    auto& m = obs::MetricsRegistry::global();
    if (!m.enabled()) return;
    m.add(m.counter("cluster.queries"), res_.queries);
    m.add(m.counter("cluster.retries"), res_.retries);
    m.add(m.counter("cluster.hedges"), res_.hedges);
    m.add(m.counter("cluster.timeouts"), res_.timeouts);
    m.add(m.counter("cluster.lost_requests"), res_.lost_requests);
    m.add(m.counter("cluster.budget_denials"), res_.budget_denials);
    m.add(m.counter("cluster.shed.queries"), res_.shed_queries);
    m.add(m.counter("cluster.shed.rejected"), res_.rejected_requests);
    m.add(m.counter("cluster.shed.expired"), res_.expired_drops);
    m.add(m.counter("cluster.breaker.opens"), res_.breaker_open_transitions);
    m.add(m.counter("cluster.breaker.short_circuits"),
          res_.breaker_short_circuits);
    m.add(m.counter("cluster.breaker.probes"), res_.breaker_probes);
    m.gauge_max(m.gauge("cluster.breaker.open_ms"), res_.breaker_open_ms);
    if (pcap_) {
      m.add(m.counter("cluster.power.shed"), res_.power_shed_queries);
      m.add(m.counter("cluster.power.stalls"), res_.power_gate_stalls);
      m.gauge_max(m.gauge("cluster.power.peak_window_w"),
                  res_.peak_window_w);
    }
    std::size_t qhwm = 0;
    for (const auto& leaf : leaves_) {
      qhwm = std::max(qhwm, leaf->queue_high_water());
    }
    m.gauge_max(m.gauge("cluster.leaf_queue.hwm"),
                static_cast<double>(qhwm));
    m.add(m.counter("des.executed"), sim_.executed());
    m.add(m.counter("des.cancelled"), sim_.cancelled());
    m.gauge_max(m.gauge("slab.queries.hwm"),
                static_cast<double>(queries_.high_water()));
    m.gauge_max(m.gauge("slab.calls.hwm"),
                static_cast<double>(calls_.high_water()));
  }
#endif

  const ClusterConfig& cfg_;
  ResiliencePolicy pol_;
  ClusterResult res_;
  // The slabs are declared before sim_ and leaves_ so that pending
  // actions destroyed during Simulator/Resource teardown (e.g. after an
  // exception) can still release the handle guards they captured.
  Slab<QueryRec> queries_;
  Slab<CallRec> calls_;
  des::Simulator sim_;
  std::vector<std::unique_ptr<des::Resource>> leaves_;
  /// Power-capped co-simulation engine (null unless powercap.enabled).
  /// Declared after leaves_ so its gates detach before the leaves die.
  std::unique_ptr<PowercapRuntime> pcap_;
  std::vector<char> leaf_up_;
  std::vector<char> own_up_;
  std::vector<char> domain_up_;
  std::vector<Breaker> breakers_;
  reliab::FailureTraceConfig fcfg_;
  /// Live gray-degradation state of one leaf (injection side).
  struct LeafGray {
    reliab::GrayMode mode = reliab::GrayMode::kSlow;
    double severity = 0;
    bool active = false;
  };
  std::vector<LeafGray> gray_;
  bool gray_active_ = false;  // any gray injection configured this trial
  GrayDetector gdet_;         // client-side fail-slow detector (no RNG)
  std::vector<double> services_;  // pre-drawn per-(query,leaf) service times
  Rng crng_{0};  // client-side picks: hedge/retry targets, jitter
  Rng brng_{0};  // breaker-only stream: cooldown jitter, redirect draws
  Rng grng_{0};  // gray-injection-only stream: loss coins, jitter spikes
  double budget_tokens_ = 0;
  double adm_tokens_ = 0;    // admission rate-gate bucket
  double adm_last_ms_ = 0;   // last refill time of adm_tokens_
  unsigned in_flight_ = 0;   // queries open at the root
  double window_ms_ = 0;     // goodput window size (0 = off)
  unsigned quorum_needed_ = 0;
  double horizon_ms_ = 0;
  std::uint64_t started_ = 0;

#if ARCH21_OBS_ENABLED
  obs::TraceBuffer* trace_ = nullptr;
  std::uint32_t tr_query_ = 0, tr_retry_ = 0, tr_hedge_ = 0, tr_timeout_ = 0,
                tr_lost_ = 0, tr_denied_ = 0, tr_deadline_ = 0,
                tr_quality_arg_ = 0, tr_shed_ = 0, tr_rejected_ = 0,
                tr_brk_open_ = 0, tr_brk_half_ = 0, tr_brk_close_ = 0,
                tr_brk_short_ = 0, tr_pshed_ = 0;
  obs::MetricsRegistry* mreg_ = nullptr;  // set iff enabled at trial start
  obs::MetricsRegistry::MetricId m_query_ms_ = 0;
#endif
};

ClusterResult ClusterSim::run() {
  Rng rng(cfg_.seed);
  leaves_.reserve(cfg_.leaves);
  for (unsigned i = 0; i < cfg_.leaves; ++i) {
    leaves_.push_back(
        std::make_unique<des::Resource>(sim_, 1, cfg_.leaf_queue));
  }
  if (pol_.breaker.enabled) {
    breakers_.assign(cfg_.leaves, Breaker{});
    // A dedicated sub-stream: breaker jitter/redirect draws never perturb
    // workload, fault, or client-policy draws.
    brng_ = Rng(cfg_.seed, 0xB4EA);
  }
#if ARCH21_OBS_ENABLED
  if (cfg_.trace) attach_trace(cfg_.trace);
  {
    auto& mreg = obs::MetricsRegistry::global();
    if (mreg.enabled()) {
      mreg_ = &mreg;
      // Same layout as ClusterResult::query_ms so quantiles agree.
      m_query_ms_ = mreg.timer("cluster.query_ms", 1e-2, 1e5, 90);
    }
  }
#endif

  horizon_ms_ = cfg_.duration_s * 1000.0;
  window_ms_ = cfg_.goodput_window_s * 1000.0;
  res_.goodput_window_s = cfg_.goodput_window_s;
  if (window_ms_ > 0) {
    // Completions can straggle a little past the horizon; headroom keeps
    // note_answered()'s resize from reallocating in steady state.
    res_.answered_per_window.reserve(
        static_cast<std::size_t>(horizon_ms_ / window_ms_) + 4);
  }
  // All background arrivals and query starts are scheduled up front;
  // pre-size the event tiers for them (plus in-flight completions) so the
  // hot loop rarely reallocates.
  sim_.reserve(static_cast<std::size_t>(
                   cfg_.duration_s * (cfg_.background_rate_hz * cfg_.leaves +
                                      cfg_.query_rate_hz) * 1.1) +
               2 * cfg_.leaves + 64);
  const double mu_log = std::log(cfg_.leaf_service_ms) -
                        0.5 * cfg_.service_sigma * cfg_.service_sigma;

  // --- power-capped co-simulation (p-states, window energy contract) ---
  if (cfg_.powercap.enabled) {
    // Expected background busy fraction per leaf, for the governor's
    // admissible-rate estimate.
    const double bg_frac =
        cfg_.background_rate_hz * cfg_.background_ms * 1e-3;
    pcap_ = std::make_unique<PowercapRuntime>(
        cfg_.powercap, cfg_.leaves, cfg_.leaf_service_ms, bg_frac);
    pcap_->attach(leaves_);
    res_.power_cap_w = pcap_->cap_w();
    res_.power_window_s = cfg_.powercap.window_s;
    // One boundary per full window covering the horizon (the last may
    // land past it -- windows are never shortened, so every window's
    // charged power is comparable against the cap).  The final boundary
    // also detaches the gates: the post-horizon drain runs unconstrained
    // and unmetered.  The runtime draws no randomness, so none of this
    // perturbs workload/fault/policy streams.
    const auto nwin = static_cast<std::uint64_t>(
        std::ceil(horizon_ms_ / pcap_->window_ms()));
    for (std::uint64_t k = 1; k <= nwin; ++k) {
      const bool last = k == nwin;
      sim_.schedule_at(static_cast<double>(k) * pcap_->window_ms(),
                       [this, last] {
                         pcap_->on_window(sim_.now());
                         if (last) pcap_->detach();
                       });
    }
  }

  // --- failure injection (seeded trace replayed onto the DES) ---
  leaf_up_.assign(cfg_.leaves, 1);
  own_up_.assign(cfg_.leaves, 1);
  if (cfg_.faults.enabled) {
    fcfg_.leaves = cfg_.leaves;
    fcfg_.leaves_per_domain = cfg_.faults.leaves_per_domain;
    fcfg_.leaf = cfg_.faults.leaf;
    fcfg_.domain = cfg_.faults.domain;
    fcfg_.horizon_hours = horizon_ms_ / kMsPerHour;
    // A dedicated sub-stream so the trace never perturbs workload draws.
    fcfg_.seed = Rng(cfg_.seed, 0xFA17).next();
    const reliab::FailureTrace trace = reliab::generate_failure_trace(fcfg_);
    res_.leaf_failures = trace.leaf_failures;
    res_.domain_failures = trace.domain_failures;
    res_.availability_measured = trace.measured_leaf_availability(fcfg_);
    res_.availability_predicted = fcfg_.predicted_leaf_availability();
    domain_up_.assign(std::max(fcfg_.domains(), 1u), 1);
    for (const reliab::FailureEvent& ev : trace.events) {
      sim_.schedule_at(ev.t_hours * kMsPerHour,
                       [this, ev] { apply_transition(ev); });
    }
  }

  // --- deterministic transient fault burst (the E29 trigger) ---
  if (cfg_.faults.burst_enabled()) {
    const unsigned n = std::min(cfg_.faults.burst_leaves, cfg_.leaves);
    const double t0 = cfg_.faults.burst_start_s * 1000.0;
    sim_.schedule_at(t0, [this, n] {
      for (unsigned l = 0; l < n; ++l) {
        own_up_[l] = 0;
        set_effective(l, false);
      }
    });
    sim_.schedule_at(t0 + cfg_.faults.burst_duration_s * 1000.0, [this, n] {
      for (unsigned l = 0; l < n; ++l) {
        own_up_[l] = 1;
        const bool dom_ok = fcfg_.leaves_per_domain == 0 ||
                            domain_up_.empty() ||
                            domain_up_[l / fcfg_.leaves_per_domain];
        set_effective(l, dom_ok);
      }
    });
    res_.leaf_failures += n;
  }

  // --- gray (fail-slow) injection: seeded trace and/or planted burst ---
  gray_active_ = cfg_.gray.any();
  if (gray_active_) {
    gray_.assign(cfg_.leaves, LeafGray{});
    // Dedicated stream for the per-reply coins (loss, jitter spikes) so
    // gray injection never perturbs workload/fault/client draws.
    grng_ = Rng(cfg_.seed, 0x6417);
  }
  if (cfg_.gray.enabled) {
    reliab::GrayTraceConfig gcfg;
    gcfg.entities = cfg_.leaves;
    gcfg.episode = cfg_.gray.episode;
    gcfg.w_slow = cfg_.gray.w_slow;
    gcfg.w_lossy = cfg_.gray.w_lossy;
    gcfg.w_zombie = cfg_.gray.w_zombie;
    gcfg.w_jittery = cfg_.gray.w_jittery;
    gcfg.slow_factor_min = cfg_.gray.slow_factor_min;
    gcfg.slow_factor_max = cfg_.gray.slow_factor_max;
    gcfg.loss_fraction_min = cfg_.gray.loss_fraction_min;
    gcfg.loss_fraction_max = cfg_.gray.loss_fraction_max;
    gcfg.spike_ms_min = cfg_.gray.spike_ms_min;
    gcfg.spike_ms_max = cfg_.gray.spike_ms_max;
    gcfg.spike_prob = cfg_.gray.spike_prob;
    gcfg.horizon_hours = horizon_ms_ / kMsPerHour;
    // Its own sub-stream, like the fail-stop trace's 0xFA17.
    gcfg.seed = Rng(cfg_.seed, 0xFA51).next();
    const reliab::GrayTrace gtrace = reliab::generate_gray_trace(gcfg);
    for (const reliab::GrayEvent& ev : gtrace.events) {
      sim_.schedule_at(ev.t_hours * kMsPerHour, [this, ev] {
        apply_gray(ev.entity, ev.mode, ev.severity, ev.onset);
      });
    }
  }

  // --- deterministic gray burst (the E34 trigger, mirrors E29's) ---
  if (cfg_.gray.burst_enabled()) {
    const unsigned n = std::min(cfg_.gray.burst_leaves, cfg_.leaves);
    const double t0 = cfg_.gray.burst_start_s * 1000.0;
    const reliab::GrayMode mode = cfg_.gray.burst_mode;
    const double sev = cfg_.gray.burst_severity;
    sim_.schedule_at(t0, [this, n, mode, sev] {
      for (unsigned l = 0; l < n; ++l) apply_gray(l, mode, sev, true);
    });
    sim_.schedule_at(t0 + cfg_.gray.burst_duration_s * 1000.0,
                     [this, n, mode, sev] {
                       for (unsigned l = 0; l < n; ++l) {
                         apply_gray(l, mode, sev, false);
                       }
                     });
  }

  // --- client-side gray detection (eval cadence on the root) ---
  if (pol_.gray.enabled) {
    gdet_.init(pol_.gray, cfg_.leaves, pol_.retry.timeout_ms);
    const double step = pol_.gray.eval_interval_ms;
    const auto evals =
        static_cast<std::uint64_t>(std::ceil(horizon_ms_ / step));
    for (std::uint64_t k = 1; k <= evals; ++k) {
      sim_.schedule_at(static_cast<double>(k) * step,
                       [this] { gdet_.eval(sim_.now()); });
    }
  }

  // --- background load on each leaf (dropped while the leaf is down) ---
  for (unsigned l = 0; l < cfg_.leaves; ++l) {
    double t = 0;
    Rng brng = rng.split();
    if (cfg_.background_rate_hz <= 0) continue;
    while (true) {
      t += brng.exponential(1000.0 / cfg_.background_rate_hz);
      if (t >= horizon_ms_) break;
      const double sz = brng.exponential(cfg_.background_ms);
      des::Resource* leaf = leaves_[l].get();
      const char* up = &leaf_up_[l];
      sim_.schedule_at(t, [leaf, sz, up] {
        if (*up) leaf->request(sz, nullptr);
      });
    }
  }

  // --- fan-out queries through the policy engine ---
  Rng qrng = rng.split();
  crng_ = rng.split();
  budget_tokens_ = pol_.budget.burst;
  adm_tokens_ = pol_.admission.burst;
  quorum_needed_ = static_cast<unsigned>(
      std::ceil(pol_.quorum.quorum_fraction * static_cast<double>(cfg_.leaves)));

  double qt = 0;
  while (true) {
    qt += qrng.exponential(1000.0 / cfg_.query_rate_hz);
    if (qt >= horizon_ms_) break;
    // Pre-draw per-leaf service times so the workload is identical across
    // policy/fault variants of the same seed.  One flat vector for all
    // queries; the start event just remembers its slice's base index.
    const std::size_t base = services_.size();
    for (unsigned l = 0; l < cfg_.leaves; ++l) {
      services_.push_back(qrng.lognormal(mu_log, cfg_.service_sigma));
    }
    sim_.schedule_at(qt, [this, base] { on_query_start(base); });
  }

  sim_.run();

  res_.queries = started_;
  // Queries that neither completed nor resolved at a deadline (e.g. a
  // reply lost to a crash with no timeout armed) are failures too.
  res_.failed_queries += started_ - res_.ok_queries - res_.degraded_queries -
                         res_.failed_queries;

  // Server-side drop totals live in the leaves; fold them in once.
  for (const auto& leaf : leaves_) {
    res_.rejected_requests += leaf->rejected();
    res_.expired_drops += leaf->expired();
  }
  // Close the books on breakers still open at the end of the run.
  if (pol_.breaker.enabled) {
    const double end = sim_.now();
    for (const Breaker& b : breakers_) {
      if (b.state == Breaker::kOpen) {
        res_.breaker_open_ms += std::min(end, b.open_until) - b.opened_at;
      }
    }
  }

  // Fold the gray detector's books in once.
  if (gdet_.engaged()) {
    res_.gray_evictions = gdet_.evictions();
    res_.gray_probations = gdet_.probations();
    res_.gray_zombies = gdet_.zombies();
    res_.adaptive_deadline_ms =
        pol_.gray.adaptive_deadline ? gdet_.timeout_ms() : 0;
  }

  // Fold the powercap engine's telemetry in once.
  if (pcap_) {
    pcap_->finish();
    const PowercapStats& ps = pcap_->stats();
    res_.power_shed_queries = ps.shed_queries;
    res_.power_gate_stalls = ps.gate_stalls;
    res_.power_overruns = ps.overruns;
    res_.energy_j = ps.energy_j;
    res_.peak_window_w = ps.peak_window_w;
    res_.energy_j_per_window = ps.energy_j_per_window;
  }

  double util = 0;
  for (const auto& leaf : leaves_) {
    util += leaf->busy_time() / horizon_ms_;
  }
  res_.mean_leaf_utilization = util / static_cast<double>(cfg_.leaves);
  res_.hedge_fraction =
      res_.leaf_requests ? static_cast<double>(res_.hedges) /
                               static_cast<double>(res_.leaf_requests)
                         : 0;
  res_.retry_amplification =
      started_ ? static_cast<double>(res_.leaf_requests) /
                     (static_cast<double>(started_) *
                      static_cast<double>(cfg_.leaves))
               : 0;
  res_.goodput_qps =
      static_cast<double>(res_.ok_queries + res_.degraded_queries) /
      cfg_.duration_s;
  res_.frac_over_leaf_p99 =
      res_.query_ms.fraction_above(res_.leaf_ms.quantile(0.99));
#if ARCH21_OBS_ENABLED
  publish_metrics();
#endif
  return std::move(res_);
}

}  // namespace

ClusterResult simulate_cluster(const ClusterConfig& cfg) {
  cfg.validate();
  if (cfg.net_latency_ms > 0) return simulate_cluster_pdes(cfg);
  ClusterSim trial(cfg);
  return trial.run();
}

}  // namespace arch21::cloud
