#include "cloud/cluster.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "reliab/failure_trace.hpp"

namespace arch21::cloud {

// Simulation time unit: milliseconds.

namespace {

constexpr double kMsPerHour = 3.6e6;

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

}  // namespace

void ClusterFaultConfig::validate() const {
  if (!enabled) return;
  if (!(leaf.mtbf_hours > 0)) {
    bad("ClusterFaultConfig", "leaf.mtbf_hours must be > 0");
  }
  if (!(leaf.mttr_hours >= 0)) {
    bad("ClusterFaultConfig", "leaf.mttr_hours must be >= 0");
  }
  if (leaves_per_domain > 0) {
    if (!(domain.mtbf_hours > 0)) {
      bad("ClusterFaultConfig", "domain.mtbf_hours must be > 0");
    }
    if (!(domain.mttr_hours >= 0)) {
      bad("ClusterFaultConfig", "domain.mttr_hours must be >= 0");
    }
  }
}

void ClusterConfig::validate() const {
  if (leaves == 0) bad("ClusterConfig", "leaves must be > 0");
  if (!(query_rate_hz > 0)) bad("ClusterConfig", "query_rate_hz must be > 0");
  if (!(leaf_service_ms > 0)) {
    bad("ClusterConfig", "leaf_service_ms must be > 0");
  }
  if (!(service_sigma > 0)) bad("ClusterConfig", "service_sigma must be > 0");
  if (!(background_rate_hz >= 0)) {
    bad("ClusterConfig", "background_rate_hz must be >= 0");
  }
  if (background_rate_hz > 0 && !(background_ms > 0)) {
    bad("ClusterConfig", "background_ms must be > 0");
  }
  if (!(duration_s > 0)) bad("ClusterConfig", "duration_s must be > 0");
  if (!(hedge_after_ms >= 0)) {
    bad("ClusterConfig", "hedge_after_ms must be >= 0");
  }
  faults.validate();
  policy.validate();
}

void ClusterResult::merge(const ClusterResult& other) {
  const double w_self = static_cast<double>(trials);
  const double w_other = static_cast<double>(other.trials);
  const double w = w_self + w_other;
  auto avg = [&](double a, double b) { return (a * w_self + b * w_other) / w; };

  queries += other.queries;
  ok_queries += other.ok_queries;
  degraded_queries += other.degraded_queries;
  failed_queries += other.failed_queries;
  query_ms.merge(other.query_ms);
  leaf_ms.merge(other.leaf_ms);
  mean_leaf_utilization =
      avg(mean_leaf_utilization, other.mean_leaf_utilization);
  hedge_fraction = avg(hedge_fraction, other.hedge_fraction);
  leaf_requests += other.leaf_requests;
  retries += other.retries;
  hedges += other.hedges;
  timeouts += other.timeouts;
  lost_requests += other.lost_requests;
  budget_denials += other.budget_denials;
  leaf_failures += other.leaf_failures;
  domain_failures += other.domain_failures;
  retry_amplification = avg(retry_amplification, other.retry_amplification);
  goodput_qps = avg(goodput_qps, other.goodput_qps);
  availability_measured =
      avg(availability_measured, other.availability_measured);
  availability_predicted =
      avg(availability_predicted, other.availability_predicted);
  sum_result_quality += other.sum_result_quality;
  trials += other.trials;
  frac_over_leaf_p99 = query_ms.fraction_above(leaf_ms.quantile(0.99));
}

ClusterResult simulate_cluster(const ClusterConfig& cfg) {
  cfg.validate();
  des::Simulator sim;
  Rng rng(cfg.seed);
  std::vector<std::unique_ptr<des::Resource>> leaves;
  leaves.reserve(cfg.leaves);
  for (unsigned i = 0; i < cfg.leaves; ++i) {
    leaves.push_back(std::make_unique<des::Resource>(sim, 1));
  }

  // Effective policy: the legacy hedge knob feeds the unified engine.
  ResiliencePolicy pol = cfg.policy;
  if (pol.hedge_after_ms == 0 && cfg.hedge_after_ms > 0) {
    pol.hedge_after_ms = cfg.hedge_after_ms;
  }

  ClusterResult res;
  const double horizon_ms = cfg.duration_s * 1000.0;
  // All background arrivals and query starts are scheduled up front;
  // pre-size the event heap for them (plus in-flight completions) so the
  // hot loop rarely reallocates.
  sim.reserve(static_cast<std::size_t>(
                  cfg.duration_s * (cfg.background_rate_hz * cfg.leaves +
                                    cfg.query_rate_hz) * 1.1) +
              2 * cfg.leaves + 64);
  const double mu_log = std::log(cfg.leaf_service_ms) -
                        0.5 * cfg.service_sigma * cfg.service_sigma;

  // --- failure injection (seeded trace replayed onto the DES) ---
  // leaf_up[l] is the *effective* state: own state AND domain state.
  // All three state vectors live at function scope so the replayed trace
  // events (fired inside sim.run()) share them by reference.
  std::vector<char> leaf_up(cfg.leaves, 1);
  std::vector<char> own_up(cfg.leaves, 1);
  std::vector<char> domain_up;
  reliab::FailureTraceConfig fcfg;
  auto set_effective = [&](unsigned l, bool up) {
    if (leaf_up[l] && !up) {
      // Crash: everything queued or in service on this leaf is lost.
      res.lost_requests += leaves[l]->fail_all();
    }
    leaf_up[l] = up ? 1 : 0;
  };
  auto apply_transition = [&](const reliab::FailureEvent& ev) {
    if (ev.is_domain) {
      domain_up[ev.entity] = ev.up ? 1 : 0;
      const unsigned begin = ev.entity * fcfg.leaves_per_domain;
      const unsigned end = std::min(begin + fcfg.leaves_per_domain, cfg.leaves);
      for (unsigned l = begin; l < end; ++l) {
        set_effective(l, ev.up && own_up[l]);
      }
    } else {
      own_up[ev.entity] = ev.up ? 1 : 0;
      const bool dom_ok = fcfg.leaves_per_domain == 0 ||
                          domain_up[ev.entity / fcfg.leaves_per_domain];
      set_effective(ev.entity, ev.up && dom_ok);
    }
  };
  if (cfg.faults.enabled) {
    fcfg.leaves = cfg.leaves;
    fcfg.leaves_per_domain = cfg.faults.leaves_per_domain;
    fcfg.leaf = cfg.faults.leaf;
    fcfg.domain = cfg.faults.domain;
    fcfg.horizon_hours = horizon_ms / kMsPerHour;
    // A dedicated sub-stream so the trace never perturbs workload draws.
    fcfg.seed = Rng(cfg.seed, 0xFA17).next();
    const reliab::FailureTrace trace = reliab::generate_failure_trace(fcfg);
    res.leaf_failures = trace.leaf_failures;
    res.domain_failures = trace.domain_failures;
    res.availability_measured = trace.measured_leaf_availability(fcfg);
    res.availability_predicted = fcfg.predicted_leaf_availability();
    domain_up.assign(std::max(fcfg.domains(), 1u), 1);
    for (const reliab::FailureEvent& ev : trace.events) {
      sim.schedule_at(ev.t_hours * kMsPerHour,
                      [&apply_transition, ev] { apply_transition(ev); });
    }
  }

  std::uint64_t started = 0;

  // --- background load on each leaf (dropped while the leaf is down) ---
  for (unsigned l = 0; l < cfg.leaves; ++l) {
    double t = 0;
    Rng brng = rng.split();
    if (cfg.background_rate_hz <= 0) continue;
    while (true) {
      t += brng.exponential(1000.0 / cfg.background_rate_hz);
      if (t >= horizon_ms) break;
      const double sz = brng.exponential(cfg.background_ms);
      des::Resource* leaf = leaves[l].get();
      const char* up = &leaf_up[l];
      sim.schedule_at(t, [leaf, sz, up] {
        if (*up) leaf->request(sz, nullptr);
      });
    }
  }

  // --- fan-out queries through the policy engine ---
  struct QueryState {
    unsigned replied = 0;
    double start_ms = 0;
    bool closed = false;
    des::EventHandle deadline{};
  };
  struct LeafCall {
    bool done = false;
    unsigned attempts = 0;  // non-hedge issues so far
    bool hedged = false;
    des::EventHandle timeout{};
    des::EventHandle hedge{};
  };
  using QueryPtr = std::shared_ptr<QueryState>;
  using CallPtr = std::shared_ptr<LeafCall>;

  Rng qrng = rng.split();
  Rng crng = rng.split();  // client-side picks: hedge/retry targets, jitter
  double budget_tokens = pol.budget.burst;
  const unsigned quorum_needed = static_cast<unsigned>(
      std::ceil(pol.quorum.quorum_fraction * static_cast<double>(cfg.leaves)));

  // Issue one attempt (or hedge) of a leaf call against `target`.
  // Recursive through retry/hedge timers, hence the std::function.
  std::function<void(const QueryPtr&, const CallPtr&, double, unsigned, bool)>
      issue = [&](const QueryPtr& q, const CallPtr& call, double service,
                  unsigned target, bool is_hedge) {
        if (call->done || q->closed) return;
        ++res.leaf_requests;
        if (is_hedge) {
          ++res.hedges;
        } else {
          ++call->attempts;
          if (pol.budget.enabled && call->attempts == 1) {
            budget_tokens =
                std::min(budget_tokens + pol.budget.ratio, pol.budget.burst);
          }
        }

        if (leaf_up[target]) {
          leaves[target]->request(service, [&, q, call](double, double) {
            if (call->done) return;  // a faster attempt already answered
            call->done = true;
            sim.cancel(call->timeout);
            sim.cancel(call->hedge);
            const double lat = sim.now() - q->start_ms;
            res.leaf_ms.add(lat);
            if (q->closed) return;  // degraded/failed; reply arrived late
            if (++q->replied == cfg.leaves) {
              q->closed = true;
              sim.cancel(q->deadline);
              ++res.ok_queries;
              res.sum_result_quality += 1.0;
              res.query_ms.add(lat);
            }
          });
        } else {
          // The request vanishes into a dead leaf; only a timeout (or the
          // query deadline) will tell the client.
          ++res.lost_requests;
        }

        if (!is_hedge && pol.hedge_after_ms > 0 && !call->hedged &&
            call->attempts == 1) {
          call->hedge = sim.schedule_cancellable(
              pol.hedge_after_ms, [&, q, call, service] {
                if (call->done || q->closed) return;
                call->hedged = true;
                issue(q, call, service,
                      static_cast<unsigned>(crng.below(cfg.leaves)), true);
              });
        }
        if (!is_hedge && pol.retry.timeout_ms > 0) {
          call->timeout = sim.schedule_cancellable(
              pol.retry.timeout_ms, [&, q, call, service] {
                if (call->done || q->closed) return;
                ++res.timeouts;
                if (call->attempts > pol.retry.max_retries) return;
                if (pol.budget.enabled) {
                  if (budget_tokens < 1.0) {
                    ++res.budget_denials;
                    return;
                  }
                  budget_tokens -= 1.0;
                }
                ++res.retries;
                const double backoff =
                    pol.retry.backoff_ms(call->attempts - 1, crng);
                // Retry against a random replica, like the hedge path.
                const unsigned alt =
                    static_cast<unsigned>(crng.below(cfg.leaves));
                sim.schedule(backoff, [&, q, call, service, alt] {
                  issue(q, call, service, alt, false);
                });
              });
        }
      };

  double qt = 0;
  while (true) {
    qt += qrng.exponential(1000.0 / cfg.query_rate_hz);
    if (qt >= horizon_ms) break;
    // Pre-draw per-leaf service times so the workload is identical across
    // policy/fault variants of the same seed.
    auto services = std::make_shared<std::vector<double>>();
    services->reserve(cfg.leaves);
    for (unsigned l = 0; l < cfg.leaves; ++l) {
      services->push_back(qrng.lognormal(mu_log, cfg.service_sigma));
    }

    sim.schedule_at(qt, [&, services] {
      auto q = std::make_shared<QueryState>();
      q->start_ms = sim.now();
      ++started;
      if (pol.quorum.enabled()) {
        q->deadline = sim.schedule_cancellable(
            pol.quorum.deadline_ms, [&, q] {
              if (q->closed) return;
              q->closed = true;
              if (q->replied >= quorum_needed) {
                ++res.degraded_queries;
                res.sum_result_quality +=
                    static_cast<double>(q->replied) /
                    static_cast<double>(cfg.leaves);
                res.query_ms.add(sim.now() - q->start_ms);
              } else {
                ++res.failed_queries;
              }
            });
      }
      for (unsigned l = 0; l < cfg.leaves; ++l) {
        issue(q, std::make_shared<LeafCall>(), (*services)[l], l, false);
      }
    });
  }

  sim.run();

  res.queries = started;
  // Queries that neither completed nor resolved at a deadline (e.g. a
  // reply lost to a crash with no timeout armed) are failures too.
  res.failed_queries +=
      started - res.ok_queries - res.degraded_queries - res.failed_queries;

  double util = 0;
  for (const auto& leaf : leaves) {
    util += leaf->busy_time() / horizon_ms;
  }
  res.mean_leaf_utilization = util / static_cast<double>(cfg.leaves);
  res.hedge_fraction =
      res.leaf_requests ? static_cast<double>(res.hedges) /
                              static_cast<double>(res.leaf_requests)
                        : 0;
  res.retry_amplification =
      started ? static_cast<double>(res.leaf_requests) /
                    (static_cast<double>(started) *
                     static_cast<double>(cfg.leaves))
              : 0;
  res.goodput_qps =
      static_cast<double>(res.ok_queries + res.degraded_queries) /
      cfg.duration_s;
  res.frac_over_leaf_p99 =
      res.query_ms.fraction_above(res.leaf_ms.quantile(0.99));
  return res;
}

}  // namespace arch21::cloud
