#include "cloud/cluster.hpp"

#include <cmath>
#include <memory>

#include "des/resource.hpp"
#include "des/simulator.hpp"

namespace arch21::cloud {

// Simulation time unit: milliseconds.

ClusterResult simulate_cluster(const ClusterConfig& cfg) {
  des::Simulator sim;
  Rng rng(cfg.seed);
  std::vector<std::unique_ptr<des::Resource>> leaves;
  leaves.reserve(cfg.leaves);
  for (unsigned i = 0; i < cfg.leaves; ++i) {
    leaves.push_back(std::make_unique<des::Resource>(sim, 1));
  }

  ClusterResult res;
  const double horizon_ms = cfg.duration_s * 1000.0;
  // All background arrivals and query starts are scheduled up front;
  // pre-size the event heap for them (plus in-flight completions) so the
  // hot loop never reallocates.
  sim.reserve(static_cast<std::size_t>(
                  cfg.duration_s * (cfg.background_rate_hz * cfg.leaves +
                                    cfg.query_rate_hz) * 1.1) +
              2 * cfg.leaves + 64);
  const double mu_log = std::log(cfg.leaf_service_ms) -
                        0.5 * cfg.service_sigma * cfg.service_sigma;

  std::uint64_t leaf_requests = 0;
  std::uint64_t hedged = 0;

  // --- background load on each leaf ---
  for (unsigned l = 0; l < cfg.leaves; ++l) {
    double t = 0;
    Rng brng = rng.split();
    while (true) {
      t += brng.exponential(1000.0 / cfg.background_rate_hz);
      if (t >= horizon_ms) break;
      const double sz = brng.exponential(cfg.background_ms);
      des::Resource* leaf = leaves[l].get();
      sim.schedule_at(t, [leaf, sz] { leaf->request(sz, nullptr); });
    }
  }

  // --- fan-out queries ---
  struct QueryState {
    unsigned outstanding = 0;
    double start_ms = 0;
    double worst_ms = 0;
  };
  struct LeafCall {
    bool done = false;
    bool hedge_issued = false;
  };

  Rng qrng = rng.split();
  Rng hrng = rng.split();
  double qt = 0;
  while (true) {
    qt += qrng.exponential(1000.0 / cfg.query_rate_hz);
    if (qt >= horizon_ms) break;
    // Pre-draw per-leaf service times for determinism.
    auto services = std::make_shared<std::vector<double>>();
    services->reserve(cfg.leaves);
    for (unsigned l = 0; l < cfg.leaves; ++l) {
      services->push_back(qrng.lognormal(mu_log, cfg.service_sigma));
    }

    sim.schedule_at(qt, [&, services] {
      auto q = std::make_shared<QueryState>();
      q->outstanding = cfg.leaves;
      q->start_ms = sim.now();

      auto leaf_done = [&, q](double completion_ms) {
        const double lat = completion_ms - q->start_ms;
        res.leaf_ms.add(lat);
        q->worst_ms = std::max(q->worst_ms, lat);
        if (--q->outstanding == 0) {
          res.query_ms.add(q->worst_ms);
          ++res.queries;
        }
      };

      for (unsigned l = 0; l < cfg.leaves; ++l) {
        const double service = (*services)[l];
        auto call = std::make_shared<LeafCall>();
        ++leaf_requests;
        leaves[l]->request(service, [&, q, call, leaf_done](double, double) {
          if (call->done) return;  // hedge already answered
          call->done = true;
          leaf_done(sim.now());
        });
        if (cfg.hedge_after_ms > 0) {
          const unsigned alt =
              static_cast<unsigned>(hrng.below(cfg.leaves));
          sim.schedule(cfg.hedge_after_ms, [&, q, call, leaf_done, alt,
                                            service] {
            if (call->done || call->hedge_issued) return;
            call->hedge_issued = true;
            ++hedged;
            ++leaf_requests;
            leaves[alt]->request(service,
                                 [&, call, leaf_done](double, double) {
                                   if (call->done) return;
                                   call->done = true;
                                   leaf_done(sim.now());
                                 });
          });
        }
      }
    });
  }

  sim.run();

  double util = 0;
  for (const auto& leaf : leaves) {
    util += leaf->busy_time() / horizon_ms;
  }
  res.mean_leaf_utilization = util / static_cast<double>(cfg.leaves);
  res.hedge_fraction =
      leaf_requests ? static_cast<double>(hedged) /
                          static_cast<double>(leaf_requests)
                    : 0;
  return res;
}

}  // namespace arch21::cloud
