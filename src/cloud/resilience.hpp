#pragma once
// Multi-trial resilience experiments over the DES cluster.
//
// One cluster simulation is a single seeded sample path; resilience
// claims (availability, retry amplification, degraded-query quality)
// need many independent failure traces.  run_cluster_trials() runs
// `trials` independent simulations -- trial i reseeded via the repo-wide
// Rng(seed, i) sub-stream convention -- on the work-stealing pool and
// folds the ClusterResults in trial order, so the aggregate is
// bit-identical for ANY pool size (the PR-1 determinism contract).
//
// resilience_scenarios() packages the canonical experiment ladder
// (baseline -> failures -> naive retries -> retry budget -> hedging ->
// quorum degradation) used by bench_resilience, the resilience_drill
// example, and core::render_resilience_report.

#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "util/thread_pool.hpp"

namespace arch21::cloud {

/// Aggregate `trials` independent simulations of `cfg` (trial i runs with
/// seed Rng(cfg.seed, i).next()).  Trials run on `pool`
/// (ThreadPool::global() when null) and merge in trial order, so the
/// result does not depend on the worker count.
ClusterResult run_cluster_trials(const ClusterConfig& cfg, unsigned trials,
                                 ThreadPool* pool = nullptr);

/// One named scenario of the canonical resilience ladder.
struct ScenarioResult {
  std::string name;
  ClusterConfig config;
  ClusterResult result;
};

/// Knobs for the canonical ladder built on top of a base ClusterConfig.
struct ScenarioPolicies {
  double timeout_ms = 30;       ///< per-request timeout for retry scenarios
  unsigned naive_max_retries = 16;  ///< "unbounded" retries, no budget
  unsigned budget_max_retries = 3;
  double budget_ratio = 0.1;    ///< retry budget: retries per request
  double hedge_after_ms = 20;
  double quorum_fraction = 0.95;
  double quorum_deadline_ms = 60;
};

/// Run the six-step ladder, `trials` sims per step, on `pool`:
///   1. baseline            -- no faults, no mitigation
///   2. failures            -- fault injection, no mitigation
///   3. naive retries       -- timeout + many retries, NO budget
///   4. retry budget        -- timeout + bounded retries + budget
///   5. budget + hedging
///   6. budget + hedging + quorum degradation
ScenarioResult run_scenario(std::string name, const ClusterConfig& cfg,
                            unsigned trials, ThreadPool* pool = nullptr);
std::vector<ScenarioResult> resilience_scenarios(
    const ClusterConfig& base, unsigned trials,
    const ScenarioPolicies& knobs = {}, ThreadPool* pool = nullptr);

}  // namespace arch21::cloud
