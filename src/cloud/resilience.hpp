#pragma once
// Multi-trial resilience experiments over the DES cluster.
//
// One cluster simulation is a single seeded sample path; resilience
// claims (availability, retry amplification, degraded-query quality)
// need many independent failure traces.  run_cluster_trials() runs
// `trials` independent simulations -- trial i reseeded via the repo-wide
// Rng(seed, i) sub-stream convention -- on the work-stealing pool and
// folds the ClusterResults in trial order, so the aggregate is
// bit-identical for ANY pool size (the PR-1 determinism contract).
//
// resilience_scenarios() packages the canonical experiment ladder
// (baseline -> failures -> naive retries -> retry budget -> hedging ->
// quorum degradation) used by bench_resilience, the resilience_drill
// example, and core::render_resilience_report.

#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "util/thread_pool.hpp"

namespace arch21::cloud {

/// Aggregate `trials` independent simulations of `cfg` (trial i runs with
/// seed Rng(cfg.seed, i).next()).  Trials run on `pool`
/// (ThreadPool::global() when null) and merge in trial order, so the
/// result does not depend on the worker count.
ClusterResult run_cluster_trials(const ClusterConfig& cfg, unsigned trials,
                                 ThreadPool* pool = nullptr);

/// One named scenario of the canonical resilience ladder.
struct ScenarioResult {
  std::string name;
  ClusterConfig config;
  ClusterResult result;
};

/// Knobs for the canonical ladder built on top of a base ClusterConfig.
struct ScenarioPolicies {
  double timeout_ms = 30;       ///< per-request timeout for retry scenarios
  unsigned naive_max_retries = 16;  ///< "unbounded" retries, no budget
  unsigned budget_max_retries = 3;
  double budget_ratio = 0.1;    ///< retry budget: retries per request
  double hedge_after_ms = 20;
  double quorum_fraction = 0.95;
  double quorum_deadline_ms = 60;
};

/// Run the six-step ladder, `trials` sims per step, on `pool`:
///   1. baseline            -- no faults, no mitigation
///   2. failures            -- fault injection, no mitigation
///   3. naive retries       -- timeout + many retries, NO budget
///   4. retry budget        -- timeout + bounded retries + budget
///   5. budget + hedging
///   6. budget + hedging + quorum degradation
ScenarioResult run_scenario(std::string name, const ClusterConfig& cfg,
                            unsigned trials, ThreadPool* pool = nullptr);
std::vector<ScenarioResult> resilience_scenarios(
    const ClusterConfig& base, unsigned trials,
    const ScenarioPolicies& knobs = {}, ThreadPool* pool = nullptr);

/// Knobs for the overload-protection ladder (bench_overload, E29).  The
/// base ClusterConfig supplies the workload and the transient fault
/// burst; these knobs describe the client and the server edge at each
/// rung.
struct OverloadPolicies {
  // Client side, shared by every rung so the comparison isolates the
  // server-side protections: tight timeout plus a quorum deadline (every
  // query closes, protected or not).
  double timeout_ms = 12;
  double quorum_fraction = 0.5;
  double quorum_deadline_ms = 100;
  /// Unprotected rungs retry hard with no budget -- the storm fuel.
  unsigned naive_max_retries = 8;
  /// Protected rung: bounded retries under a budget.
  unsigned protected_max_retries = 2;
  double budget_ratio = 0.1;
  // Server edge.
  std::size_t queue_capacity = 4;   ///< bounded leaf queue depth
  double sojourn_target_ms = 12;    ///< kDeadline drop budget (~ timeout)
  double admission_rate_frac = 1.1; ///< token rate = frac * query_rate_hz
  /// Concurrency cap at the root; 0 derives 2x the queries a healthy
  /// root keeps open across a quorum deadline.
  unsigned max_in_flight = 0;
};

/// Run the four-rung overload ladder, `trials` sims per rung:
///   1. unprotected          -- unbounded FIFO leaves, naive retries
///   2. bounded queue        -- + per-leaf capacity with deadline drop
///   3. admission + budget   -- + root load shedding and a retry budget
///   4. circuit breakers     -- + per-replica breakers (full protection)
/// Every rung runs the same seeded workload and fault burst.
std::vector<ScenarioResult> overload_scenarios(
    const ClusterConfig& base, unsigned trials,
    const OverloadPolicies& knobs = {}, ThreadPool* pool = nullptr);

/// Knobs for the power-cap ladder (bench_power, E33): the E29
/// *unprotected* overload rung -- unbounded FIFO leaves, naive
/// unbudgeted retries, a quorum deadline so every query closes -- run
/// under an IT power cap.  The unprotected client is deliberate: it is
/// where HOW the cap is spent decides the outcome.  A uniform throttle
/// stretches every service time, pushes the cluster past its knee, and
/// the E29 fault burst tips it into the metastable regime -- goodput
/// gone but the idle floor still burning.  The shedding governor spends
/// the same budget by refusing queries at the root and keeps the leaves
/// fast, so the burst drains and goodput-per-joule survives.  The
/// powercap field is a template; enabled, cap_fraction and policy are
/// set per rung.
struct PowerLadderPolicies {
  OverloadPolicies overload;  ///< client knobs (timeout, naive retries, quorum)
  PowercapConfig powercap;
  /// Cap rungs as fractions of leaves * peak_w, ascending.
  std::vector<double> cap_fractions{0.6, 0.8, 1.0};
};

/// One rung's full config: the E29 unprotected client plus the power
/// cap.  Exposed so bench_power can re-run a single rung for the
/// determinism check.
ClusterConfig power_rung_config(const ClusterConfig& base,
                                const PowerLadderPolicies& knobs,
                                double cap_fraction, PowercapPolicy policy);

/// The E33 ladder, `trials` sims per rung: an uncapped reference (power
/// model off), then per cap fraction the naive uniform throttle vs the
/// shedding governor -- and at the tightest cap additionally the pace
/// and race-to-idle policies, so the four ways of spending a budget are
/// compared where the budget binds hardest.  Every rung runs the same
/// seeded workload and fault burst.
std::vector<ScenarioResult> power_scenarios(
    const ClusterConfig& base, unsigned trials,
    const PowerLadderPolicies& knobs = {}, ThreadPool* pool = nullptr);

/// Knobs for the gray-failure ladder (bench_grayfail, E34).  The base
/// ClusterConfig supplies the workload and the gray (fail-slow) burst;
/// every rung keeps the FULL E29 fail-stop protection stack -- bounded
/// deadline-drop queues, admission + retry budget, circuit breakers --
/// so the ladder isolates what the gray-aware client adds on top.  The
/// point of the drill: a fail-slow burst defeats the E29 stack (gray
/// replicas keep answering, just late, so breakers see successes and
/// never open) while the detection stack contains it.
struct GrayfailPolicies {
  // Client, shared by every rung: tight timeout, budgeted retries, and a
  // high quorum -- the fan-out needs nearly every leaf, so a handful of
  // gray replicas can hold the whole query hostage.
  double timeout_ms = 25;
  unsigned max_retries = 2;
  double budget_ratio = 0.1;
  double quorum_fraction = 0.9;
  double quorum_deadline_ms = 100;
  // Server edge, identical to the E29 protected rung.
  std::size_t queue_capacity = 4;
  double sojourn_target_ms = 25;
  double admission_rate_frac = 1.1;
  unsigned max_in_flight = 0;  ///< 0 derives from the quorum deadline
  /// Detection stack for the gray-aware rungs; `enabled`/`evict` are set
  /// per rung, the rest of the fields apply as given.
  GrayDetectionPolicy gray;
};

/// Run the four-rung gray-failure ladder, `trials` sims per rung:
///   1. control              -- E29 protections, NO gray burst
///   2. fail-stop ladder     -- gray burst vs the E29 stack (defeated)
///   3. + adaptive deadline  -- detection on, scoring + deadline only
///   4. + eviction/probation -- full adaptive mitigation
/// Every rung runs the same seeded workload; rungs 2-4 the same burst.
std::vector<ScenarioResult> grayfail_scenarios(
    const ClusterConfig& base, unsigned trials,
    const GrayfailPolicies& knobs = {}, ThreadPool* pool = nullptr);

/// Windowed-goodput summary of one fail-slow-burst run: mean goodput in
/// the complete windows strictly before the gray burst (window 0 is
/// warmup) vs the complete windows INSIDE the burst after `settle_s` of
/// onset slack, vs the complete windows after the burst cleared plus
/// `settle_s`.  containment_ratio() is the E34 headline: how much of
/// pre-burst goodput the client holds onto WHILE the burst is running.
struct GrayContainment {
  double pre_qps = 0;
  double during_qps = 0;
  double post_qps = 0;
  double containment_ratio() const noexcept {
    return pre_qps > 0 ? during_qps / pre_qps : 0;
  }
  double recovery_ratio() const noexcept {
    return pre_qps > 0 ? post_qps / pre_qps : 0;
  }
};

/// Requires cfg.goodput_window_s > 0 and an enabled gray burst; returns
/// zeros otherwise.  Windows with no answered queries count as zeros,
/// and multi-trial aggregates are normalized by ClusterResult::trials.
GrayContainment gray_containment(const ClusterResult& r,
                                 const ClusterConfig& cfg,
                                 double settle_s = 2.0);

/// Windowed-goodput summary of one metastable-failure run: mean goodput
/// over the complete windows strictly before the fault burst (skipping
/// window 0 as warmup) vs the complete windows after the burst cleared
/// plus `settle_s` of slack.  A protected cluster recovers
/// (recovery_ratio ~ 1); a metastable one does not (the burst is gone
/// but goodput is not coming back).
struct GoodputHysteresis {
  double pre_qps = 0;
  double post_qps = 0;
  double recovery_ratio() const noexcept {
    return pre_qps > 0 ? post_qps / pre_qps : 0;
  }
};

/// Requires cfg.goodput_window_s > 0 and an enabled fault burst;
/// returns zeros otherwise.  Windows with no answered queries count as
/// zeros (that IS the metastable signal), and multi-trial aggregates are
/// normalized by ClusterResult::trials.
GoodputHysteresis goodput_hysteresis(const ClusterResult& r,
                                     const ClusterConfig& cfg,
                                     double settle_s = 2.0);

}  // namespace arch21::cloud
