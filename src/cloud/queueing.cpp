#include "cloud/queueing.hpp"

#include <cmath>
#include <stdexcept>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "util/rng.hpp"

namespace arch21::cloud {

MmkResult mmk(double lambda, double mu, unsigned k) {
  if (lambda <= 0 || mu <= 0 || k == 0) {
    throw std::invalid_argument("mmk: bad parameters");
  }
  MmkResult r;
  const double a = lambda / mu;  // offered load in Erlangs
  r.rho = a / static_cast<double>(k);
  r.stable = r.rho < 1.0;
  if (!r.stable) {
    r.p_wait = 1.0;
    r.mean_wait = INFINITY;
    r.mean_sojourn = INFINITY;
    return r;
  }
  // Erlang C: iterate the sum in log-safe incremental form.
  double term = 1.0;  // a^0/0!
  double sum = term;
  for (unsigned n = 1; n < k; ++n) {
    term *= a / static_cast<double>(n);
    sum += term;
  }
  const double term_k = term * a / static_cast<double>(k);
  const double erlang_c =
      (term_k / (1.0 - r.rho)) / (sum + term_k / (1.0 - r.rho));
  r.p_wait = erlang_c;
  r.mean_wait = erlang_c / (static_cast<double>(k) * mu - lambda);
  r.mean_sojourn = r.mean_wait + 1.0 / mu;
  return r;
}

double simulate_mmk_sojourn(double lambda, double mu, unsigned k,
                            std::uint64_t jobs, std::uint64_t seed) {
  des::Simulator sim;
  des::Resource station(sim, k);
  Rng rng(seed);

  // Schedule all arrivals up front (Poisson process).
  double t = 0;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    t += rng.exponential(1.0 / lambda);
    const double service = rng.exponential(1.0 / mu);
    sim.schedule_at(t, [&station, service] {
      station.request(service, nullptr);
    });
  }
  sim.run();
  return station.sojourn_stats().mean();
}

}  // namespace arch21::cloud
