#pragma once
// Seeded WAN model connecting geo-distributed regions (E31).
//
// Regions exchange requests/replies over point-to-point links with a
// base one-way latency, multiplicative jitter, and -- the part that
// matters for failover -- seeded up/down traces reusing the
// reliab::FailureTrace machinery (the same MTBF/MTTR algebra + per-entity
// Rng streams the cluster's leaves fail along, applied to links).  A
// message routed over a down link is lost in transit; only the sender's
// timeout tells it.
//
// The latency matrix is either supplied explicitly (one-way ms,
// regions x regions) or derived from a ring topology: adjacent regions
// sit base_latency_ms apart and latency grows with ring distance, the
// classic continental layout (us-east <-> us-west <-> asia ...).
//
// Determinism: link l draws its whole up/down lifetime from the
// Rng(seed, l) sub-stream (via generate_failure_trace), and jitter draws
// come from whatever Rng stream the *caller* owns -- the Wan itself holds
// no hidden RNG state, so a simulation embedding it stays a pure function
// of its seed.

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "reliab/availability.hpp"
#include "reliab/failure_trace.hpp"
#include "reliab/gray.hpp"
#include "util/rng.hpp"

namespace arch21::cloud {

/// WAN topology + link-failure configuration.
struct WanConfig {
  unsigned regions = 3;
  /// Explicit one-way latency matrix, row-major regions x regions, in ms
  /// (diagonal ignored -- see intra_ms).  Empty = derive from the ring
  /// topology below.
  std::vector<double> latency_ms;
  /// Ring topology: one-way latency = base_latency_ms * ring distance.
  double base_latency_ms = 40;
  /// In-region (origin -> local region) one-way latency.
  double intra_ms = 1.0;
  /// Multiplicative jitter: each traversal samples
  /// latency * (1 + jitter_frac * U(-1, 1)).
  double jitter_frac = 0.1;
  /// Link up/down traces (off by default).  Components use the reliab
  /// MTBF/MTTR convention (hours); at simulation timescales the
  /// interesting regimes are fractions of an hour, like ClusterFaultConfig.
  bool link_faults = false;
  reliab::Component link{.mtbf_hours = 100.0 / 3600.0,
                         .mttr_hours = 2.0 / 3600.0};
  /// Gray-link degradation (off by default): links run fail-slow
  /// episodes from a reliab::GrayTrace on an independent sub-stream.
  /// While a link is degraded, every traversal's latency is inflated by
  /// the episode's severity (drawn from [gray_factor_min, gray_factor_max])
  /// and each traversal is independently dropped with gray_loss_fraction
  /// -- the link is *worse*, not down, which is exactly the signal
  /// fail-stop link traces cannot produce.
  bool gray_links = false;
  reliab::Component gray_link{.mtbf_hours = 50.0 / 3600.0,
                              .mttr_hours = 4.0 / 3600.0};
  double gray_factor_min = 2.0;
  double gray_factor_max = 4.0;
  double gray_loss_fraction = 0.2;

  /// Undirected links between distinct regions.
  unsigned links() const noexcept { return regions * (regions - 1) / 2; }
  /// Canonical index of the undirected link {a, b}, a != b.
  unsigned link_index(unsigned a, unsigned b) const noexcept;
  /// Base one-way latency a -> b (intra_ms when a == b).
  double base_latency(unsigned a, unsigned b) const noexcept;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// A WAN instance over one simulation horizon: the pre-generated link
/// trace plus live link state replayed onto a des::Simulator.
class Wan {
 public:
  /// Build the link trace for `horizon_ms` (validates cfg).  `seed`
  /// feeds the per-link Rng streams; pass a dedicated sub-stream so link
  /// faults never perturb workload draws.
  Wan(const WanConfig& cfg, double horizon_ms, std::uint64_t seed);

  /// Schedule every link up/down transition onto `sim` (time unit: ms).
  /// Call once, before sim.run().
  void install(des::Simulator& sim);

  /// Is the link a <-> b up right now?  Intra-region (a == b) paths never
  /// fail here (in-region failures are the region's own business).
  bool link_up(unsigned a, unsigned b) const noexcept;

  /// One sampled one-way traversal a -> b, jittered via the caller's rng.
  /// A gray-degraded link inflates the sample by its episode severity
  /// (no extra draws, so disabled gray stays byte-identical).
  double sample_latency_ms(unsigned a, unsigned b, Rng& rng) const noexcept;

  /// Is the link a <-> b currently running a gray episode?
  bool link_degraded(unsigned a, unsigned b) const noexcept;

  /// Does this traversal of a -> b survive partial gray loss?  Draws from
  /// `rng` ONLY while the link is degraded -- callers pass a dedicated
  /// stream and a healthy WAN consumes nothing from it.
  bool link_delivers(unsigned a, unsigned b, Rng& rng) const noexcept;

  /// Link failure events in the trace (for telemetry).
  std::uint64_t link_failures() const noexcept { return trace_.leaf_failures; }
  std::uint64_t gray_episodes() const noexcept { return gray_trace_.episodes; }
  const reliab::FailureTrace& trace() const noexcept { return trace_; }
  const reliab::GrayTrace& gray_trace() const noexcept { return gray_trace_; }
  const WanConfig& config() const noexcept { return cfg_; }

 private:
  WanConfig cfg_;
  reliab::FailureTrace trace_;
  reliab::GrayTrace gray_trace_;
  std::vector<char> link_up_;
  /// Per-link latency inflation while degraded; 0 = healthy.
  std::vector<double> gray_factor_;
};

}  // namespace arch21::cloud
