#include "cloud/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arch21::cloud {

namespace {

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

}  // namespace

void TrafficClass::validate() const {
  if (name.empty()) bad("TrafficClass", "name must be non-empty");
  if (!(slo_ms > 0)) bad("TrafficClass", "slo_ms must be > 0");
  if (!(weight > 0)) bad("TrafficClass", "weight must be > 0");
  if (!(service_scale > 0)) bad("TrafficClass", "service_scale must be > 0");
}

std::vector<TrafficClass> default_traffic_classes() {
  return {
      TrafficClass{.name = "interactive",
                   .slo_ms = 100,
                   .weight = 0.75,
                   .service_scale = 1.0},
      TrafficClass{.name = "bulk",
                   .slo_ms = 400,
                   .weight = 0.25,
                   .service_scale = 2.5},
  };
}

double TrafficConfig::session_rate_at(double t_s) const noexcept {
  const double phase =
      2.0 * std::numbers::pi * (t_s - diurnal_peak_s) / diurnal_period_s;
  return session_rate_hz * (1.0 + diurnal_amplitude * std::cos(phase));
}

void TrafficConfig::validate() const {
  if (!(session_rate_hz > 0)) {
    bad("TrafficConfig", "session_rate_hz must be > 0");
  }
  if (!(diurnal_amplitude >= 0) || !(diurnal_amplitude < 1)) {
    bad("TrafficConfig", "diurnal_amplitude must be in [0, 1)");
  }
  if (!(diurnal_period_s > 0)) {
    bad("TrafficConfig", "diurnal_period_s must be > 0");
  }
  if (!(diurnal_peak_s >= 0)) {
    bad("TrafficConfig", "diurnal_peak_s must be >= 0");
  }
  if (!(session_mean_queries >= 1)) {
    bad("TrafficConfig", "session_mean_queries must be >= 1");
  }
  if (!(session_alpha > 1)) {
    // alpha <= 1 has infinite mean: the truncation cap would silently
    // define the workload instead of the configured mean.
    bad("TrafficConfig", "session_alpha must be > 1");
  }
  if (session_max_queries == 0) {
    bad("TrafficConfig", "session_max_queries must be > 0");
  }
  if (!(think_time_ms >= 0)) {
    bad("TrafficConfig", "think_time_ms must be >= 0");
  }
  if (classes.size() < 2) {
    // The multi-SLO dimension is structural to the scenario, not
    // optional seasoning.
    bad("TrafficConfig", "classes must hold >= 2 request classes");
  }
  for (const TrafficClass& c : classes) c.validate();
}

std::vector<TrafficRequest> generate_traffic(const TrafficConfig& cfg,
                                             double duration_s,
                                             unsigned origins,
                                             std::uint64_t seed) {
  cfg.validate();
  if (!(duration_s > 0)) {
    throw std::invalid_argument("generate_traffic: duration_s must be > 0");
  }
  if (origins == 0) {
    throw std::invalid_argument("generate_traffic: origins must be > 0");
  }

  // Class-weight CDF for the per-session class draw.
  std::vector<double> cdf;
  cdf.reserve(cfg.classes.size());
  double wsum = 0;
  for (const TrafficClass& c : cfg.classes) {
    wsum += c.weight;
    cdf.push_back(wsum);
  }

  // Pareto scale so the *untruncated* mean matches session_mean_queries:
  // E[X] = xm * alpha / (alpha - 1).
  const double xm =
      cfg.session_mean_queries * (cfg.session_alpha - 1.0) / cfg.session_alpha;

  Rng rng(seed);
  std::vector<TrafficRequest> out;
  out.reserve(static_cast<std::size_t>(cfg.mean_query_rate_hz() * duration_s *
                                       1.2) +
              64);

  // Nonhomogeneous Poisson session arrivals by thinning against the
  // diurnal peak rate.
  const double peak_hz = cfg.session_rate_hz * (1.0 + cfg.diurnal_amplitude);
  const double horizon_ms = duration_s * 1000.0;
  double t_ms = 0;
  while (true) {
    t_ms += rng.exponential(1000.0 / peak_hz);
    if (t_ms >= horizon_ms) break;
    if (!rng.chance(cfg.session_rate_at(t_ms / 1000.0) / peak_hz)) continue;

    const auto origin = static_cast<std::uint32_t>(rng.below(origins));
    const double u = rng.uniform(0.0, wsum);
    std::uint32_t cls = 0;
    while (cls + 1 < cdf.size() && u >= cdf[cls]) ++cls;
    const double raw = rng.pareto(xm, cfg.session_alpha);
    const auto queries = static_cast<std::uint32_t>(std::min<double>(
        cfg.session_max_queries, std::max(1.0, std::ceil(raw))));

    double q_ms = t_ms;
    for (std::uint32_t q = 0; q < queries; ++q) {
      if (q > 0) q_ms += rng.exponential(cfg.think_time_ms);
      if (q_ms >= horizon_ms) break;  // sessions never outlive the horizon
      out.push_back(TrafficRequest{q_ms, cls, origin});
    }
  }

  // Sessions interleave, so the stream is only sorted per session;
  // stable_sort keeps equal-time arrivals in generation order (a fixed
  // tie-break, so the output is a pure function of the inputs).
  std::stable_sort(out.begin(), out.end(),
                   [](const TrafficRequest& a, const TrafficRequest& b) {
                     return a.t_ms < b.t_ms;
                   });
  return out;
}

}  // namespace arch21::cloud
