#include "cloud/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace arch21::cloud {

ClusterResult run_cluster_trials(const ClusterConfig& cfg, unsigned trials,
                                 ThreadPool* pool) {
  cfg.validate();
  if (trials == 0) {
    throw std::invalid_argument("run_cluster_trials: trials must be > 0");
  }
  if (cfg.workers > 0) {
    // Trials already parallelize across the pool; nesting a PDES worker
    // pool inside each trial would oversubscribe it.  Shard ACROSS
    // trials here, or WITHIN one big scenario via cfg.workers -- not
    // both.
    throw std::invalid_argument(
        "run_cluster_trials: cfg.workers must be 0 (trials are the "
        "parallelism axis here)");
  }
#if ARCH21_OBS_ENABLED
  if (cfg.trace) {
    // One TraceBuffer cannot absorb trials running concurrently on the
    // pool (the ring is single-writer); trace a single simulate_cluster()
    // call instead.
    throw std::invalid_argument(
        "run_cluster_trials: cfg.trace is only valid for a single "
        "simulate_cluster() run");
  }
#endif
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  ClusterResult identity;
  identity.trials = 0;
  return tp.parallel_reduce<ClusterResult>(
      trials, std::move(identity), /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        ClusterResult acc;
        acc.trials = 0;
        for (std::size_t i = begin; i < end; ++i) {
          ClusterConfig c = cfg;
          c.seed = Rng(cfg.seed, i).next();
          ClusterResult one = simulate_cluster(c);
          if (acc.trials == 0) {
            acc = std::move(one);
          } else {
            acc.merge(one);
          }
        }
        return acc;
      },
      [](ClusterResult acc, ClusterResult chunk) {
        if (acc.trials == 0) return chunk;
        if (chunk.trials == 0) return acc;
        acc.merge(chunk);
        return acc;
      });
}

ScenarioResult run_scenario(std::string name, const ClusterConfig& cfg,
                            unsigned trials, ThreadPool* pool) {
  return ScenarioResult{std::move(name), cfg,
                        run_cluster_trials(cfg, trials, pool)};
}

std::vector<ScenarioResult> resilience_scenarios(const ClusterConfig& base,
                                                 unsigned trials,
                                                 const ScenarioPolicies& knobs,
                                                 ThreadPool* pool) {
  std::vector<ScenarioResult> out;

  ClusterConfig baseline = base;
  baseline.faults.enabled = false;
  baseline.policy = {};
  baseline.hedge_after_ms = 0;
  out.push_back(run_scenario("baseline (no faults)", baseline, trials, pool));

  ClusterConfig injected = base;
  injected.faults.enabled = true;
  injected.policy = {};
  injected.hedge_after_ms = 0;
  out.push_back(run_scenario("failures, no mitigation", injected, trials,
                             pool));

  ClusterConfig naive = injected;
  naive.policy.retry.timeout_ms = knobs.timeout_ms;
  naive.policy.retry.max_retries = knobs.naive_max_retries;
  naive.policy.budget.enabled = false;
  out.push_back(run_scenario("naive retries (no budget)", naive, trials,
                             pool));

  ClusterConfig budgeted = injected;
  budgeted.policy.retry.timeout_ms = knobs.timeout_ms;
  budgeted.policy.retry.max_retries = knobs.budget_max_retries;
  budgeted.policy.budget.enabled = true;
  budgeted.policy.budget.ratio = knobs.budget_ratio;
  out.push_back(run_scenario("retry budget", budgeted, trials, pool));

  ClusterConfig hedged = budgeted;
  hedged.policy.hedge_after_ms = knobs.hedge_after_ms;
  out.push_back(run_scenario("budget + hedging", hedged, trials, pool));

  ClusterConfig quorum = hedged;
  quorum.policy.quorum.quorum_fraction = knobs.quorum_fraction;
  quorum.policy.quorum.deadline_ms = knobs.quorum_deadline_ms;
  out.push_back(
      run_scenario("budget + hedge + quorum", quorum, trials, pool));

  return out;
}

std::vector<ScenarioResult> overload_scenarios(const ClusterConfig& base,
                                               unsigned trials,
                                               const OverloadPolicies& knobs,
                                               ThreadPool* pool) {
  // Every rung shares the naive client so rungs 1-2 isolate the bounded
  // queue; the quorum deadline guarantees each query closes, which the
  // admission concurrency gate (rung 3+) relies on.
  ClusterConfig unprotected = base;
  unprotected.policy.retry.timeout_ms = knobs.timeout_ms;
  unprotected.policy.retry.max_retries = knobs.naive_max_retries;
  unprotected.policy.budget.enabled = false;
  unprotected.policy.quorum.quorum_fraction = knobs.quorum_fraction;
  unprotected.policy.quorum.deadline_ms = knobs.quorum_deadline_ms;
  unprotected.leaf_queue = {};  // unbounded FIFO

  std::vector<ScenarioResult> out;
  out.push_back(
      run_scenario("unprotected (unbounded FIFO)", unprotected, trials, pool));

  ClusterConfig bounded = unprotected;
  bounded.leaf_queue.capacity = knobs.queue_capacity;
  bounded.leaf_queue.discipline = des::QueueDiscipline::kDeadline;
  bounded.leaf_queue.sojourn_target = knobs.sojourn_target_ms;
  out.push_back(
      run_scenario("bounded queue + deadline drop", bounded, trials, pool));

  ClusterConfig admitted = bounded;
  admitted.policy.retry.max_retries = knobs.protected_max_retries;
  admitted.policy.budget.enabled = true;
  admitted.policy.budget.ratio = knobs.budget_ratio;
  admitted.policy.admission.enabled = true;
  admitted.policy.admission.rate_qps =
      knobs.admission_rate_frac * base.query_rate_hz;
  admitted.policy.admission.max_in_flight =
      knobs.max_in_flight > 0
          ? knobs.max_in_flight
          : static_cast<unsigned>(2.0 * base.query_rate_hz *
                                  knobs.quorum_deadline_ms / 1000.0) +
                1;
  out.push_back(
      run_scenario("+ admission + retry budget", admitted, trials, pool));

  ClusterConfig breakered = admitted;
  breakered.policy.breaker.enabled = true;
  out.push_back(
      run_scenario("+ circuit breakers", breakered, trials, pool));

  return out;
}

std::vector<ScenarioResult> grayfail_scenarios(const ClusterConfig& base,
                                               unsigned trials,
                                               const GrayfailPolicies& knobs,
                                               ThreadPool* pool) {
  // Every rung carries the full E29 fail-stop stack, so rungs 2-4 cannot
  // be accused of losing to the burst for lack of fail-stop protection.
  ClusterConfig prot = base;
  prot.policy.retry.timeout_ms = knobs.timeout_ms;
  prot.policy.retry.max_retries = knobs.max_retries;
  prot.policy.budget.enabled = true;
  prot.policy.budget.ratio = knobs.budget_ratio;
  prot.policy.quorum.quorum_fraction = knobs.quorum_fraction;
  prot.policy.quorum.deadline_ms = knobs.quorum_deadline_ms;
  prot.policy.admission.enabled = true;
  prot.policy.admission.rate_qps =
      knobs.admission_rate_frac * base.query_rate_hz;
  prot.policy.admission.max_in_flight =
      knobs.max_in_flight > 0
          ? knobs.max_in_flight
          : static_cast<unsigned>(2.0 * base.query_rate_hz *
                                  knobs.quorum_deadline_ms / 1000.0) +
                1;
  prot.policy.breaker.enabled = true;
  prot.leaf_queue.capacity = knobs.queue_capacity;
  prot.leaf_queue.discipline = des::QueueDiscipline::kDeadline;
  prot.leaf_queue.sojourn_target = knobs.sojourn_target_ms;

  std::vector<ScenarioResult> out;

  ClusterConfig control = prot;
  control.gray = {};  // same stack, nothing gray to contain
  out.push_back(run_scenario("control (no gray burst)", control, trials,
                             pool));

  out.push_back(run_scenario("fail-stop ladder (E29)", prot, trials, pool));

  ClusterConfig deadline_only = prot;
  deadline_only.policy.gray = knobs.gray;
  deadline_only.policy.gray.enabled = true;
  deadline_only.policy.gray.evict = false;
  out.push_back(
      run_scenario("+ adaptive deadline", deadline_only, trials, pool));

  ClusterConfig adaptive = prot;
  adaptive.policy.gray = knobs.gray;
  adaptive.policy.gray.enabled = true;
  adaptive.policy.gray.evict = true;
  out.push_back(
      run_scenario("+ eviction + probation", adaptive, trials, pool));

  return out;
}

ClusterConfig power_rung_config(const ClusterConfig& base,
                                const PowerLadderPolicies& knobs,
                                double cap_fraction, PowercapPolicy policy) {
  const OverloadPolicies& ov = knobs.overload;
  ClusterConfig cfg = base;
  // The E29 unprotected client (overload_scenarios rung 1): tight
  // timeout, naive unbudgeted retries, a quorum deadline so every query
  // closes, unbounded FIFO leaves.  The power ladder varies ONLY how the
  // cap is spent -- the cap-aware governor's root shedding is the sole
  // protection in play, which is exactly the comparison E33 wants.
  cfg.policy.retry.timeout_ms = ov.timeout_ms;
  cfg.policy.retry.max_retries = ov.naive_max_retries;
  cfg.policy.budget.enabled = false;
  cfg.policy.quorum.quorum_fraction = ov.quorum_fraction;
  cfg.policy.quorum.deadline_ms = ov.quorum_deadline_ms;
  cfg.leaf_queue = {};  // unbounded FIFO
  cfg.powercap = knobs.powercap;
  cfg.powercap.enabled = true;
  cfg.powercap.cap_fraction = cap_fraction;
  cfg.powercap.policy = policy;
  return cfg;
}

std::vector<ScenarioResult> power_scenarios(const ClusterConfig& base,
                                            unsigned trials,
                                            const PowerLadderPolicies& knobs,
                                            ThreadPool* pool) {
  std::vector<ScenarioResult> out;
  // Uncapped reference: same protection, power model off entirely (this
  // is the config whose results must stay byte-identical to pre-powercap
  // builds).
  ClusterConfig uncapped =
      power_rung_config(base, knobs, 1.0, PowercapPolicy::kGovernor);
  uncapped.powercap = PowercapConfig{};
  out.push_back(run_scenario("uncapped", uncapped, trials, pool));

  auto pct = [](double f) {
    return std::to_string(static_cast<int>(std::lround(f * 100)));
  };
  for (std::size_t i = 0; i < knobs.cap_fractions.size(); ++i) {
    const double cap = knobs.cap_fractions[i];
    const std::string tag = "cap " + pct(cap) + "% ";
    out.push_back(run_scenario(
        tag + "uniform",
        power_rung_config(base, knobs, cap, PowercapPolicy::kUniform),
        trials, pool));
    if (i == 0) {
      // Where the budget binds hardest, compare all four policies.
      out.push_back(run_scenario(
          tag + "pace",
          power_rung_config(base, knobs, cap, PowercapPolicy::kPace), trials,
          pool));
      out.push_back(run_scenario(
          tag + "race-to-idle",
          power_rung_config(base, knobs, cap, PowercapPolicy::kRaceToIdle),
          trials, pool));
    }
    out.push_back(run_scenario(
        tag + "governor",
        power_rung_config(base, knobs, cap, PowercapPolicy::kGovernor),
        trials, pool));
  }
  return out;
}

GrayContainment gray_containment(const ClusterResult& r,
                                 const ClusterConfig& cfg, double settle_s) {
  GrayContainment c;
  const double w = cfg.goodput_window_s;
  if (w <= 0 || !cfg.gray.burst_enabled()) return c;
  const auto& win = r.answered_per_window;
  auto count = [&](std::size_t i) {
    return i < win.size() ? static_cast<double>(win[i]) : 0.0;
  };
  const double per_win =
      w * static_cast<double>(std::max(r.trials, 1u));  // -> qps per trial
  auto mean_over = [&](std::size_t begin, std::size_t end) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = begin; i < end; ++i, ++n) sum += count(i);
    return n > 0 ? sum / (static_cast<double>(n) * per_win) : 0.0;
  };

  const double t0 = cfg.gray.burst_start_s;
  const double t1 = t0 + cfg.gray.burst_duration_s;
  // Complete windows strictly before the burst; window 0 is warmup.
  c.pre_qps = mean_over(1, static_cast<std::size_t>(t0 / w));
  // Complete windows inside the burst, past the onset settle (detection
  // needs a few eval intervals to converge -- the settle excludes the
  // transient both ladders pay, leaving the steady burst regime).
  c.during_qps =
      mean_over(static_cast<std::size_t>(std::ceil((t0 + settle_s) / w)),
                static_cast<std::size_t>(t1 / w));
  // Complete windows inside the horizon, after the burst plus settle.
  c.post_qps =
      mean_over(static_cast<std::size_t>(std::ceil((t1 + settle_s) / w)),
                static_cast<std::size_t>(cfg.duration_s / w));
  return c;
}

GoodputHysteresis goodput_hysteresis(const ClusterResult& r,
                                     const ClusterConfig& cfg,
                                     double settle_s) {
  GoodputHysteresis h;
  const double w = cfg.goodput_window_s;
  if (w <= 0 || !cfg.faults.burst_enabled()) return h;
  const auto& win = r.answered_per_window;
  auto count = [&](std::size_t i) {
    return i < win.size() ? static_cast<double>(win[i]) : 0.0;
  };
  const double per_win =
      w * static_cast<double>(std::max(r.trials, 1u));  // -> qps per trial

  // Complete windows strictly before the burst; window 0 is warmup.
  const auto pre_end =
      static_cast<std::size_t>(cfg.faults.burst_start_s / w);
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < pre_end; ++i, ++n) sum += count(i);
  if (n > 0) h.pre_qps = sum / (static_cast<double>(n) * per_win);

  // Complete windows inside the horizon, after the burst plus settle.
  const auto post_begin = static_cast<std::size_t>(
      std::ceil((cfg.faults.burst_start_s + cfg.faults.burst_duration_s +
                 settle_s) /
                w));
  const auto post_end = static_cast<std::size_t>(cfg.duration_s / w);
  sum = 0;
  n = 0;
  for (std::size_t i = post_begin; i < post_end; ++i, ++n) sum += count(i);
  if (n > 0) h.post_qps = sum / (static_cast<double>(n) * per_win);
  return h;
}

}  // namespace arch21::cloud
