#include "cloud/resilience.hpp"

#include <stdexcept>
#include <utility>

namespace arch21::cloud {

ClusterResult run_cluster_trials(const ClusterConfig& cfg, unsigned trials,
                                 ThreadPool* pool) {
  cfg.validate();
  if (trials == 0) {
    throw std::invalid_argument("run_cluster_trials: trials must be > 0");
  }
#if ARCH21_OBS_ENABLED
  if (cfg.trace) {
    // One TraceBuffer cannot absorb trials running concurrently on the
    // pool (the ring is single-writer); trace a single simulate_cluster()
    // call instead.
    throw std::invalid_argument(
        "run_cluster_trials: cfg.trace is only valid for a single "
        "simulate_cluster() run");
  }
#endif
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  ClusterResult identity;
  identity.trials = 0;
  return tp.parallel_reduce<ClusterResult>(
      trials, std::move(identity), /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        ClusterResult acc;
        acc.trials = 0;
        for (std::size_t i = begin; i < end; ++i) {
          ClusterConfig c = cfg;
          c.seed = Rng(cfg.seed, i).next();
          ClusterResult one = simulate_cluster(c);
          if (acc.trials == 0) {
            acc = std::move(one);
          } else {
            acc.merge(one);
          }
        }
        return acc;
      },
      [](ClusterResult acc, ClusterResult chunk) {
        if (acc.trials == 0) return chunk;
        if (chunk.trials == 0) return acc;
        acc.merge(chunk);
        return acc;
      });
}

ScenarioResult run_scenario(std::string name, const ClusterConfig& cfg,
                            unsigned trials, ThreadPool* pool) {
  return ScenarioResult{std::move(name), cfg,
                        run_cluster_trials(cfg, trials, pool)};
}

std::vector<ScenarioResult> resilience_scenarios(const ClusterConfig& base,
                                                 unsigned trials,
                                                 const ScenarioPolicies& knobs,
                                                 ThreadPool* pool) {
  std::vector<ScenarioResult> out;

  ClusterConfig baseline = base;
  baseline.faults.enabled = false;
  baseline.policy = {};
  baseline.hedge_after_ms = 0;
  out.push_back(run_scenario("baseline (no faults)", baseline, trials, pool));

  ClusterConfig injected = base;
  injected.faults.enabled = true;
  injected.policy = {};
  injected.hedge_after_ms = 0;
  out.push_back(run_scenario("failures, no mitigation", injected, trials,
                             pool));

  ClusterConfig naive = injected;
  naive.policy.retry.timeout_ms = knobs.timeout_ms;
  naive.policy.retry.max_retries = knobs.naive_max_retries;
  naive.policy.budget.enabled = false;
  out.push_back(run_scenario("naive retries (no budget)", naive, trials,
                             pool));

  ClusterConfig budgeted = injected;
  budgeted.policy.retry.timeout_ms = knobs.timeout_ms;
  budgeted.policy.retry.max_retries = knobs.budget_max_retries;
  budgeted.policy.budget.enabled = true;
  budgeted.policy.budget.ratio = knobs.budget_ratio;
  out.push_back(run_scenario("retry budget", budgeted, trials, pool));

  ClusterConfig hedged = budgeted;
  hedged.policy.hedge_after_ms = knobs.hedge_after_ms;
  out.push_back(run_scenario("budget + hedging", hedged, trials, pool));

  ClusterConfig quorum = hedged;
  quorum.policy.quorum.quorum_fraction = knobs.quorum_fraction;
  quorum.policy.quorum.deadline_ms = knobs.quorum_deadline_ms;
  out.push_back(
      run_scenario("budget + hedge + quorum", quorum, trials, pool));

  return out;
}

}  // namespace arch21::cloud
