#pragma once
// A DES-based search-style cluster: a root fans each query out to N leaf
// servers; each leaf is a single-server queue also absorbing background
// load; the query completes when the slowest leaf replies.  Unlike the
// closed-form fork-join sampler (cloud/tail.hpp), this model includes
// *queueing interference*, which is where real tails come from, and lets
// hedging be evaluated under induced extra load -- the feedback loop that
// makes naive hedging dangerous.
//
// Resilience layer (the paper's "break away from the dominant fault
// model"): leaves *fail and recover* along a seeded reliab failure trace
// with correlated rack/PSU failure domains; the client side runs a
// ResiliencePolicy (timeouts, budgeted retries, hedging, quorum
// degradation); and ClusterResult reports availability, goodput, retry
// amplification, and result quality next to the latency histograms, so
// the whole failure -> mitigation -> degradation loop is one
// reproducible experiment.
//
// Overload-protection layer (server side of "Tail at Scale"): each leaf
// can run a bounded queue with a pluggable discipline
// (des::QueuePolicy -- FIFO / adaptive LIFO / deadline drop), the root
// can shed load via AdmissionPolicy, and per-replica CircuitBreakers
// stop the client from hammering a failing leaf.  ClusterResult counts
// every shed/rejected/expired/short-circuited request, and an optional
// goodput time series (goodput_window_s) makes recovery after a fault
// burst -- or the lack of it, the metastable-failure signature -- a
// measurable quantity (experiment E29, bench_overload).

#include <cstdint>
#include <vector>

#include "cloud/policy.hpp"
#include "cloud/powercap.hpp"
#include "des/resource.hpp"
#include "obs/enabled.hpp"
#include "reliab/availability.hpp"
#include "reliab/gray.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

#if ARCH21_OBS_ENABLED
namespace arch21::obs {
class TraceBuffer;
}
#endif

namespace arch21::cloud {

/// Failure injection for the cluster's leaves.  Components use the
/// reliab MTBF/MTTR convention (hours); at simulation timescales the
/// interesting regimes are small fractions of an hour.  The defaults
/// give ~1% per-leaf unavailability (50 s MTBF, 0.5 s MTTR).
struct ClusterFaultConfig {
  bool enabled = false;
  reliab::Component leaf{.mtbf_hours = 50.0 / 3600.0,
                         .mttr_hours = 0.5 / 3600.0};
  /// Leaves per rack/PSU failure domain; one domain event takes the whole
  /// group down at once.  0 disables correlated failures.
  unsigned leaves_per_domain = 0;
  reliab::Component domain{.mtbf_hours = 500.0 / 3600.0,
                           .mttr_hours = 1.0 / 3600.0};

  /// Deterministic transient *burst*: leaves [0, burst_leaves) crash at
  /// burst_start_s and recover burst_duration_s later -- the controlled
  /// trigger the metastable-failure experiment (E29) needs, independent
  /// of the stochastic trace above (and usable alongside it).  Disabled
  /// while burst_leaves == 0.
  unsigned burst_leaves = 0;
  double burst_start_s = 0;
  double burst_duration_s = 0;

  bool burst_enabled() const noexcept {
    return burst_leaves > 0 && burst_duration_s > 0;
  }

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Gray-failure (fail-slow) injection for the cluster's leaves: the
/// degraded-but-not-dead hardware the fail-stop trace above cannot
/// express.  Episodes come from a seeded reliab::GrayTrace (per-leaf Rng
/// sub-streams on a dedicated salt) and/or the deterministic burst below;
/// both compose with ClusterFaultConfig (a leaf can be gray, crashed, or
/// both).  Modes and their severity semantics:
///   slow    -- leaf serves at 1/severity speed (Resource::set_speed);
///   lossy   -- each reply is dropped with probability severity;
///   zombie  -- the leaf accepts work but NO reply ever returns;
///   jittery -- with spike_prob, a reply is delayed by an exponential
///              spike of mean severity ms (the leaf itself keeps full
///              capacity -- a NIC/GC hiccup, not a saturated server).
/// All injection randomness (loss coins, spike draws) comes from a
/// dedicated Rng stream, so disabled gray is byte-identical.  Requires
/// the serial engine (net_latency_ms == 0) and is mutually exclusive
/// with powercap (both drive leaf speed).
struct ClusterGrayConfig {
  /// Stochastic episode trace (off by default).
  bool enabled = false;
  /// Episode process: mean healthy gap / mean episode length (hours, like
  /// every reliab Component; interesting regimes are fractions of an hour).
  reliab::Component episode{.mtbf_hours = 80.0 / 3600.0,
                            .mttr_hours = 8.0 / 3600.0};
  /// Relative mode weights and severity ranges (see GrayTraceConfig).
  double w_slow = 1.0;
  double w_lossy = 1.0;
  double w_zombie = 0.25;
  double w_jittery = 1.0;
  double slow_factor_min = 3.0;
  double slow_factor_max = 8.0;
  double loss_fraction_min = 0.3;
  double loss_fraction_max = 0.8;
  double spike_ms_min = 50.0;
  double spike_ms_max = 400.0;
  /// Per-reply spike probability while a jittery episode is active
  /// (trace episodes and deterministic bursts both use this).
  double spike_prob = 0.5;

  /// Deterministic gray *burst*: leaves [0, burst_leaves) degrade in
  /// burst_mode with burst_severity at burst_start_s and clear
  /// burst_duration_s later -- the controlled trigger of the gray-failure
  /// drill (E34), mirroring ClusterFaultConfig's crash burst.  Disabled
  /// while burst_leaves == 0.
  unsigned burst_leaves = 0;
  double burst_start_s = 0;
  double burst_duration_s = 0;
  reliab::GrayMode burst_mode = reliab::GrayMode::kSlow;
  double burst_severity = 6.0;

  bool burst_enabled() const noexcept {
    return burst_leaves > 0 && burst_duration_s > 0;
  }
  /// Any injection configured (trace or burst)?
  bool any() const noexcept { return enabled || burst_enabled(); }

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Cluster/workload configuration.
struct ClusterConfig {
  unsigned leaves = 100;
  double query_rate_hz = 100;       ///< fan-out query arrival rate
  double leaf_service_ms = 4.0;     ///< mean per-leaf work per query
  double service_sigma = 0.35;      ///< lognormal sigma of service time
  double background_rate_hz = 30;   ///< per-leaf background task rate
  double background_ms = 3.0;       ///< mean background task size
  double duration_s = 30;           ///< simulated time
  std::uint64_t seed = 2014;
  /// Hedging: reissue the straggling leaf request to a random other leaf
  /// when it exceeds this many ms (0 = disabled).  Legacy alias for
  /// policy.hedge_after_ms; used when the policy's own field is 0.
  double hedge_after_ms = 0;
  /// Server-side queue policy applied to every leaf (capacity 0 + FIFO =
  /// the historical unbounded station).  Time unit is ms, like the rest
  /// of the cluster (so sojourn_target is a millisecond budget).
  des::QueuePolicy leaf_queue;
  /// Goodput time series: when > 0, ClusterResult::answered_per_window
  /// counts answered queries per window of this many seconds -- the
  /// instrument that shows whether goodput *recovers* after a fault
  /// burst.  0 (default) records nothing.
  double goodput_window_s = 0;
  /// Network latency between the root and every leaf, one way, in ms.
  /// 0 (default) keeps the historical zero-latency model and the legacy
  /// serial simulator, bit-identical with prior builds.  > 0 switches
  /// simulate_cluster() to the LP-sharded scenario (cluster_pdes.cpp):
  /// requests and replies each travel net_latency_ms, and that latency is
  /// the conservative lookahead the parallel engine hides behind.
  double net_latency_ms = 0;
  /// Worker threads for the parallel engine.  0 (default) runs the
  /// LP-sharded scenario on the serial loopback reference engine; W >= 1
  /// runs it on des::ParallelEngine over a W-thread pool.  Results are
  /// bit-identical for every value of this knob (the determinism
  /// contract; pinned by tests/test_pdes.cpp).  Requires
  /// net_latency_ms > 0.
  unsigned workers = 0;
  /// Number of leaf-group LPs the PDES scenario shards the leaves into
  /// (the root is one more LP).  0 = min(leaves, 8).  Part of the MODEL,
  /// deliberately independent of `workers`: changing the partition may
  /// shift results at FP-tie granularity, changing workers never does.
  unsigned leaf_groups = 0;
  /// Failure injection (off by default).
  ClusterFaultConfig faults;
  /// Gray-failure (fail-slow) injection (off by default).
  ClusterGrayConfig gray;
  /// Client-side mitigation + server-edge overload policies (all off by
  /// default).
  ResiliencePolicy policy;
  /// Power-capped co-simulation (off by default; see cloud/powercap.hpp):
  /// every leaf gets a DVFS p-state whose speed divides its service times
  /// and whose power feeds a windowed energy contract against the
  /// datacenter cap.  Requires net_latency_ms == 0 (the serial engine;
  /// the cap's window accounting is cluster-global and has no LP
  /// sharding).  Disabled, results are byte-identical to pre-powercap
  /// builds.
  PowercapConfig powercap;
#if ARCH21_OBS_ENABLED
  /// Observability trace sink for ONE simulation (timestamps are ms, so
  /// construct it with ts_to_us = 1e3).  The DES kernel, every leaf
  /// Resource, and the query lifecycle emit into it: track 0 carries
  /// kernel instants plus retry/hedge/timeout/lost/denied/deadline and
  /// shed/rejected/breaker markers, track 1+l carries leaf l's serve
  /// spans, and queries are async "query" spans annotated with result
  /// quality.  Strictly read-only -- attaching a trace never changes
  /// simulation results.  Rejected (std::invalid_argument) by
  /// run_cluster_trials(): a single ring cannot absorb concurrent
  /// trials.
  obs::TraceBuffer* trace = nullptr;
#endif

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Simulation output.  Counters are raw so multi-trial aggregates can
/// merge(); ratio fields are averaged per-trial.
struct ClusterResult {
  std::uint64_t queries = 0;            ///< queries ADMITTED (sheds excluded)
  std::uint64_t ok_queries = 0;         ///< every leaf contributed
  std::uint64_t degraded_queries = 0;   ///< returned on quorum at deadline
  std::uint64_t failed_queries = 0;     ///< missed quorum / never completed
  LogHistogram query_ms{1e-2, 1e5, 90}; ///< answered (ok + degraded) queries
  LogHistogram leaf_ms{1e-2, 1e5, 90};
  double mean_leaf_utilization = 0;
  double hedge_fraction = 0;  ///< fraction of leaf requests that were hedges

  // --- resilience telemetry ---
  std::uint64_t leaf_requests = 0;   ///< first attempts + retries + hedges
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t lost_requests = 0;   ///< sent to a down leaf or killed by it
  std::uint64_t budget_denials = 0;  ///< retries suppressed by the budget
  std::uint64_t leaf_failures = 0;   ///< injected leaf failure events
  std::uint64_t domain_failures = 0; ///< injected domain failure events

  // --- overload-protection telemetry ---
  std::uint64_t shed_queries = 0;    ///< refused at the root by admission
  /// Requests bounced off a full bounded leaf queue (server-side total:
  /// query traffic and background load both count).
  std::uint64_t rejected_requests = 0;
  /// Waiters dropped at dequeue by the kDeadline discipline (sojourn
  /// target already blown; server-side total like rejected_requests).
  std::uint64_t expired_drops = 0;
  std::uint64_t breaker_open_transitions = 0;  ///< closed/half-open -> open
  std::uint64_t breaker_short_circuits = 0;    ///< sends blocked while open
  std::uint64_t breaker_probes = 0;            ///< half-open probe sends
  /// Summed per-replica milliseconds spent in the open state.
  double breaker_open_ms = 0;
  /// Answered (ok + degraded) queries per goodput_window_s window,
  /// indexed by floor(close_time / window).  Empty unless
  /// ClusterConfig::goodput_window_s > 0.  merge() sums element-wise.
  std::vector<std::uint64_t> answered_per_window;
  /// The window size answered_per_window was recorded on, copied from
  /// ClusterConfig::goodput_window_s by the simulators (0 = no series).
  /// merge() throws std::invalid_argument when two results carry
  /// different non-zero window sizes: summing counts recorded on
  /// different grids would silently corrupt every downstream hysteresis
  /// measurement.  A windowless result adopts the other's grid.
  double goodput_window_s = 0;

  // --- gray-failure telemetry (all zero unless gray/detection enabled) ---
  std::uint64_t gray_episodes = 0;        ///< injected degradation onsets
  std::uint64_t gray_dropped_replies = 0; ///< replies eaten by lossy/zombie leaves
  std::uint64_t gray_evictions = 0;       ///< detector evictions (incl. re-evictions)
  std::uint64_t gray_probations = 0;      ///< eviction -> probation re-admissions
  std::uint64_t gray_zombies = 0;         ///< zombie (zero-reply-rate) detections
  std::uint64_t gray_redirected_sends = 0;///< sends steered off evicted replicas
  /// Adaptive deadline at end of run, ms (per-trial average under merge();
  /// 0 = adaptive deadline off).
  double adaptive_deadline_ms = 0;

  // --- power-capping telemetry (all zero unless powercap.enabled) ---
  std::uint64_t power_shed_queries = 0;  ///< refused by cap-aware admission
  std::uint64_t power_gate_stalls = 0;   ///< leaf stalls on an exhausted window
  std::uint64_t power_overruns = 0;      ///< single-job-over-window exceptions
  /// Energy charged over the accounting horizon, joules (idle floor plus
  /// per-start dynamic contracts; see cloud/powercap.hpp).  merge() sums.
  double energy_j = 0;
  /// Max charged window power across the run, watts.  merge() takes the
  /// max, so a multi-trial aggregate still certifies "no window anywhere
  /// exceeded the cap" (peak_window_w <= power_cap_w).
  double peak_window_w = 0;
  /// The enforced IT cap, watts (0 = uncapped).  merge() throws on a
  /// mismatch of non-zero caps, like goodput_window_s.
  double power_cap_w = 0;
  /// Grid of energy_j_per_window (copied from powercap.window_s; 0 = no
  /// series).  Same adopt/mismatch rules as goodput_window_s.
  double power_window_s = 0;
  /// Charged joules per accounting window; merge() sums element-wise.
  std::vector<double> energy_j_per_window;

  /// Answered queries per charged joule (0 when nothing was metered).
  double goodput_per_joule() const noexcept {
    return energy_j > 0
               ? static_cast<double>(ok_queries + degraded_queries) / energy_j
               : 0;
  }

  /// leaf_requests / (queries * leaves): 1.0 = no extra load; a retry
  /// storm shows up here first.
  double retry_amplification = 0;
  double goodput_qps = 0;            ///< answered queries per second
  double availability_measured = 1;  ///< leaf up-fraction over the horizon
  double availability_predicted = 1; ///< steady-state availability algebra
  /// Sum over answered queries of (leaves contributing / leaves);
  /// ok queries contribute 1.0.  The result-quality metric.
  double sum_result_quality = 0;
  /// Fraction of answered queries at least as slow as the leaf p99 --
  /// the paper's 63%-at-fanout-100 claim, measured under queueing.
  double frac_over_leaf_p99 = 0;
  unsigned trials = 1;               ///< sims aggregated into this result

  double mean_result_quality() const noexcept {
    const std::uint64_t answered = ok_queries + degraded_queries;
    return answered ? sum_result_quality / static_cast<double>(answered) : 0;
  }

  /// Fold `other` into this result: counters add, histograms merge,
  /// goodput windows sum element-wise, per-trial ratios average
  /// (weighted by trial counts), and frac_over_leaf_p99 is recomputed
  /// from the merged histograms.
  void merge(const ClusterResult& other);
};

/// Run the cluster simulation.  Dispatches on net_latency_ms: 0 runs the
/// historical serial zero-latency model, > 0 the LP-sharded
/// network-latency model below.
ClusterResult simulate_cluster(const ClusterConfig& cfg);

/// The LP-sharded network-latency scenario (requires net_latency_ms > 0):
/// the root client engine is one logical process, the leaves are sharded
/// into leaf_groups more, and every root<->leaf exchange travels
/// net_latency_ms each way through the PDES engine's mailboxes.
/// cfg.workers picks the engine (0 = serial loopback reference, >= 1 =
/// des::ParallelEngine on that many threads) without affecting results.
/// simulate_cluster() calls this automatically; it is public so benches
/// and tests can name the path explicitly.
ClusterResult simulate_cluster_pdes(const ClusterConfig& cfg);

}  // namespace arch21::cloud
