#pragma once
// A DES-based search-style cluster: a root fans each query out to N leaf
// servers; each leaf is a single-server queue also absorbing background
// load; the query completes when the slowest leaf replies.  Unlike the
// closed-form fork-join sampler (cloud/tail.hpp), this model includes
// *queueing interference*, which is where real tails come from, and lets
// hedging be evaluated under induced extra load -- the feedback loop that
// makes naive hedging dangerous.

#include <cstdint>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace arch21::cloud {

/// Cluster/workload configuration.
struct ClusterConfig {
  unsigned leaves = 100;
  double query_rate_hz = 100;       ///< fan-out query arrival rate
  double leaf_service_ms = 4.0;     ///< mean per-leaf work per query
  double service_sigma = 0.35;      ///< lognormal sigma of service time
  double background_rate_hz = 30;   ///< per-leaf background task rate
  double background_ms = 3.0;       ///< mean background task size
  double duration_s = 30;           ///< simulated time
  std::uint64_t seed = 2014;
  /// Hedging: reissue the straggling leaf request to a random other leaf
  /// when it exceeds this many ms (0 = disabled).
  double hedge_after_ms = 0;
};

/// Simulation output.
struct ClusterResult {
  std::uint64_t queries = 0;
  LogHistogram query_ms{1e-2, 1e5, 90};
  LogHistogram leaf_ms{1e-2, 1e5, 90};
  double mean_leaf_utilization = 0;
  double hedge_fraction = 0;  ///< fraction of leaf requests that were hedged
};

/// Run the cluster simulation.
ClusterResult simulate_cluster(const ClusterConfig& cfg);

}  // namespace arch21::cloud
