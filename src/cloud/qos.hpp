#pragma once
// Quality-of-service colocation: a latency-critical (LC) service sharing
// a server with best-effort (BE) batch work.
//
// Paper hook (section 2.4): "how can applications express
// Quality-of-Service targets and have the underlying hardware, the
// operating system and the virtualization layers work together to ensure
// them?  Increasing virtualization ... requires coordinated resource
// management across ... computational resources, interconnect, and
// memory bandwidth."
//
// Model: the LC service is an M/M/1 queue whose *service time inflates*
// with BE pressure on the shared LLC and memory bandwidth.  With
// hardware QoS (cache/bandwidth partitioning) the interference
// coefficient drops sharply but the BE work loses some throughput to its
// smaller partition.  The experiment: how much BE work can be colocated
// while the LC p99 SLO holds -- with and without the QoS interface.

#include <vector>

namespace arch21::cloud {

/// Colocation model parameters.
struct QosConfig {
  double lc_rate_hz = 400;         ///< LC request arrival rate
  double lc_service_ms = 1.0;      ///< LC service time, unloaded
  double slo_p99_ms = 10.0;        ///< the LC latency objective
  /// Service-time inflation per unit of BE utilization, shared mode
  /// (LLC thrash + bandwidth contention).
  double interference_shared = 2.5;
  /// Residual inflation with partitioning (shared DRAM banks etc.).
  double interference_partitioned = 0.15;
  /// BE throughput penalty from running in a restricted partition.
  double be_partition_penalty = 0.15;
};

/// One row of the colocation sweep.
struct QosRow {
  double be_utilization = 0;   ///< offered best-effort load (0..1)
  double lc_p99_ms = 0;        ///< resulting LC tail latency
  bool slo_met = false;
  double machine_utilization = 0;  ///< LC + effective BE usage
  double be_goodput = 0;       ///< BE work accomplished (utilization units)
};

/// Sweep BE colocation levels for one mode.
std::vector<QosRow> colocation_sweep(const QosConfig& cfg, bool partitioned,
                                     int steps = 11);

/// Highest BE utilization whose colocation still meets the SLO
/// (granularity 0.01); 0 if even idle BE breaks it.
double max_safe_be_utilization(const QosConfig& cfg, bool partitioned);

}  // namespace arch21::cloud
