#pragma once
// Power-capped datacenter co-simulation: the energy model (tech DVFS
// curves, cloud::ServerPower, energy::PowerBudget) wired INTO the DES
// cluster instead of beside it.  "Energy first" (section 2.2): the power
// cap is the primary constraint, and the interesting question is what a
// capped cluster gives up -- interactive p99, goodput, or neither --
// depending on how the governor spends the budget.
//
// Model.  Every leaf is a server drawing
//     idle_w + (peak_w - idle_w) * u * power_ratio(p-state)
// where the p-state comes from a shared DVFS curve: speed = f(v)/f(vnom)
// divides service times, power_ratio = power(v)/power(vnom) scales the
// dynamic (above-idle) draw.  The datacenter cap is
// cap_fraction * leaves * peak_w of IT power, tracked against an
// energy::PowerBudget.
//
// Enforcement is an *energy contract* on accounting windows of window_s:
// each window owns a dynamic-energy budget (cap - idle floor) * window_s,
// and a job's whole dynamic energy -- pdyn * effective_service -- is
// charged to the window in which it STARTS, through a hard start gate on
// each des::Resource.  A start that would overdraw the window is refused
// and the leaf stalls until the boundary replenishes the budget.  Charged
// window energy therefore never exceeds the cap by construction (the one
// exception, a single job bigger than a whole window's budget, is counted
// in `overruns` and asserted zero by bench_power).  Utilization-based
// accounting cannot make that guarantee: work admitted in one window
// spills its watts into the next.
//
// Policies (PowercapPolicy):
//   kUniform    -- naive static throttle: every leaf pinned at the
//                  fastest p-state whose WORST-CASE draw fits the cap.
//                  Safe, oblivious, and the baseline the adaptive
//                  policies must beat on goodput-per-joule.
//   kPace       -- per-leaf DVFS pacing: each window picks the slowest
//                  p-state keeping that leaf's EWMA-projected utilization
//                  under a pace target.  Spends headroom on lower V.
//   kRaceToIdle -- all leaves at vnom; the window gate alone enforces the
//                  cap (run flat out, then stall).  Race-to-idle emerges
//                  from the contract with no per-leaf control at all.
//   kGovernor   -- race-to-idle speeds plus cap-aware admission at the
//                  root: the budget is converted into a sustainable query
//                  rate and excess queries are shed BEFORE they queue,
//                  so the cluster degrades by saying no, not by slowing
//                  down mid-flight (the metastable-collapse antidote).
//                  The rate is CLOSED-LOOP (AIMD): any window in which
//                  the energy gate had to backstop admission -- retry
//                  storms multiply the true joules per admitted query,
//                  so the static estimate over-admits exactly when it
//                  matters -- halves the rate; a clean window grows it
//                  1.25x back toward the static ceiling.
//
// Determinism: the runtime draws no random numbers, adapts only at
// deterministic window boundaries from deterministic inputs, and with
// enabled == false touches nothing -- results stay byte-identical with
// pre-powercap builds, and across thread-pool sizes as always.

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/power.hpp"
#include "des/resource.hpp"
#include "energy/budget.hpp"
#include "tech/dvfs.hpp"

namespace arch21::cloud {

/// One p-state of the leaf ladder: a legal supply with its speed
/// (f(v)/f(vnom), the factor service times divide by) and full-load
/// power ratio (power(v)/power(vnom), the factor the dynamic server draw
/// scales by).
struct Pstate {
  double v = 0;
  double speed = 0;
  double power_ratio = 0;
};

/// `n >= 2` evenly spaced supplies from the model's floor to vnom,
/// ascending in speed; back() is exactly {vnom, 1, 1} so the nominal
/// p-state carries no floating-point residue (des::Resource::set_speed(1)
/// must divide service times exactly).  Throws std::invalid_argument for
/// n < 2.
std::vector<Pstate> pstate_ladder(const tech::DvfsModel& dvfs, unsigned n);

/// Highest-speed ladder index whose worst-case server draw
/// idle_w + (peak_w - idle_w) * power_ratio fits `cap_w_per_server`; 0
/// (the floor) when nothing fits.  This IS the kUniform policy.
std::size_t capped_pstate(const std::vector<Pstate>& ladder, double idle_w,
                          double peak_w, double cap_w_per_server);

/// How the powercap runtime spends the budget (see file comment).
enum class PowercapPolicy : std::uint8_t {
  kUniform,
  kPace,
  kRaceToIdle,
  kGovernor,
};

/// Power-capping configuration carried by ClusterConfig.  Defaults model
/// a 40%-proportional server (ServerPower) on the default DVFS curve.
struct PowercapConfig {
  bool enabled = false;
  /// Per-leaf power model; peak_w is the per-leaf draw the cap fraction
  /// is quoted against.
  ServerPower server;
  /// Shared per-leaf DVFS curve (leaves are homogeneous).
  tech::DvfsModel::Params dvfs;
  /// IT-power cap as a fraction of leaves * server.peak_w.  Must satisfy
  /// cap_fraction * peak_w > idle_w -- a cap below the idle floor can
  /// never be met by throttling (the floor burns it standing still).
  double cap_fraction = 1.0;
  /// Accounting/adaptation window (seconds of simulated time).
  double window_s = 0.5;
  PowercapPolicy policy = PowercapPolicy::kGovernor;
  /// P-state ladder size (floor..vnom inclusive).
  unsigned pstates = 8;
  /// kPace: utilization ceiling the paced p-state aims for.
  double pace_target = 0.70;
  /// kGovernor: fraction of the sustainable query rate admitted as the
  /// AIMD ceiling (<= 1 leaves headroom for service-time variance, so a
  /// healthy cluster almost never trips the gate and the rate sits at
  /// the ceiling).
  double admit_margin = 0.85;

  /// Throws std::invalid_argument naming the offending field (only when
  /// enabled; a disabled config is never inspected).
  void validate() const;
};

/// Per-run power telemetry folded into ClusterResult.
struct PowercapStats {
  std::uint64_t shed_queries = 0;  ///< refused by cap-aware admission
  std::uint64_t gate_stalls = 0;   ///< leaf stalls on an exhausted window
  std::uint64_t overruns = 0;      ///< single-job-bigger-than-window starts
  double energy_j = 0;             ///< charged energy over all windows
  double peak_window_w = 0;        ///< max charged window power
  std::vector<double> energy_j_per_window;
};

/// The per-trial powercap engine ClusterSim embeds.  Owns the p-state
/// ladder, the per-leaf operating points, the window energy contract and
/// the cap-aware admission bucket; the cluster wires its leaves in via
/// attach() and calls on_window() at each boundary.
class PowercapRuntime {
 public:
  /// `background_dyn_frac`: expected busy fraction per leaf from
  /// background load (rate * mean size), used to discount the admissible
  /// query rate.  Throws what PowercapConfig::validate() throws.
  PowercapRuntime(const PowercapConfig& cfg, unsigned leaves,
                  double leaf_service_ms, double background_dyn_frac);

  double cap_w() const noexcept { return budget_.cap(); }
  double window_ms() const noexcept { return window_ms_; }
  /// Dynamic (above idle floor) energy budget of one window, joules.
  double window_budget_j() const noexcept { return window_budget_j_; }
  const std::vector<Pstate>& ladder() const noexcept { return ladder_; }
  const PowercapStats& stats() const noexcept { return stats_; }

  /// Set initial speeds and install the start gates.  `leaves` must
  /// outlive this runtime; detach() clears the gates again.
  void attach(const std::vector<std::unique_ptr<des::Resource>>& leaves);
  /// Remove the gates (end of the accounting horizon: the post-horizon
  /// drain runs unconstrained and uncharged).
  void detach();

  /// Cap-aware admission (kGovernor only; other policies always admit):
  /// a token bucket refilled at the sustainable query rate the window
  /// budget implies.  Counts refusals in stats().shed_queries.
  bool admit(double now_ms);

  /// Window boundary: close the window's energy accounting, let the
  /// policy move p-states, replenish the contract and un-stall the
  /// leaves.  Call exactly once per boundary, in simulation time order.
  void on_window(double now_ms);

  /// Fold the leaves' stall counters into stats() -- call once after the
  /// simulation ends (stalls live in des::Resource until then).
  void finish();

 private:
  bool gate(unsigned leaf, double effective_service_ms);
  void set_pstate(unsigned leaf, std::size_t p);
  void set_admit_rate(double qps);
  void adapt(double now_ms);

  PowercapConfig cfg_;
  unsigned leaves_n_;
  std::vector<Pstate> ladder_;
  energy::PowerBudget budget_;     ///< cap vs idle floor + window draw
  double idle_w_total_ = 0;
  double window_ms_ = 0;
  double window_budget_j_ = 0;     ///< dynamic joules per window
  double window_spent_j_ = 0;
  double last_window_ms_ = 0;      ///< start of the open window
  std::vector<des::Resource*> res_;
  std::vector<std::size_t> leaf_pstate_;
  std::vector<double> leaf_pdyn_w_;     ///< full-load dynamic W at p-state
  std::vector<double> leaf_busy_prev_;  ///< busy_time at last boundary
  std::vector<double> leaf_demand_ewma_;  ///< EWMA demand, NOMINAL units
  // kGovernor admission bucket (queries).  The rate is AIMD-controlled
  // in [max/64, max]: halved after any window the energy gate bound,
  // grown 1.25x after a clean one (see set_admit_rate / on_window).
  double admit_rate_max_ = 0;      ///< static ceiling from the budget
  double admit_rate_qps_ = 0;
  double admit_burst_ = 0;
  double admit_tokens_ = 0;
  double admit_last_ms_ = 0;
  std::uint64_t stalls_seen_ = 0;  ///< gate-stall total at last boundary
  PowercapStats stats_;
};

}  // namespace arch21::cloud
