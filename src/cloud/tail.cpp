#include "cloud/tail.hpp"

#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace arch21::cloud {

double tail_amplification(unsigned n, double q) {
  return 1.0 - std::pow(q, static_cast<double>(n));
}

LatencyDist make_leaf_distribution(double median_ms, double sigma,
                                   double p_straggler,
                                   double straggler_scale_ms,
                                   double straggler_alpha) {
  const double mu = std::log(median_ms);
  return [=](Rng& rng) {
    double v = rng.lognormal(mu, sigma);
    if (rng.chance(p_straggler)) {
      v += rng.pareto(straggler_scale_ms, straggler_alpha);
    }
    return v;
  };
}

namespace {

/// Draw one leaf completion under the given policy; returns {latency,
/// issued_backup}.
std::pair<double, bool> leaf_with_policy(const LatencyDist& leaf,
                                         const HedgePolicy& policy, Rng& rng) {
  const double primary = leaf(rng);
  switch (policy.kind) {
    case HedgePolicy::Kind::None:
      return {primary, false};
    case HedgePolicy::Kind::Hedged: {
      if (primary <= policy.hedge_delay_ms) return {primary, false};
      const double backup = policy.hedge_delay_ms + leaf(rng);
      return {std::min(primary, backup), true};
    }
    case HedgePolicy::Kind::Tied: {
      const double second = leaf(rng);
      return {std::min(primary, second) + policy.tied_overhead_ms, true};
    }
  }
  return {primary, false};
}

}  // namespace

namespace {

/// Requests per reduce chunk.  Fixed (never thread-count-dependent) so
/// chunked RNG streams and ordered merges reproduce at any pool size.
constexpr std::size_t kRequestGrain = 256;

}  // namespace

ForkJoinResult simulate_fork_join(unsigned fanout, std::uint64_t requests,
                                  const LatencyDist& leaf, HedgePolicy policy,
                                  std::uint64_t seed, ThreadPool* pool) {
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  // Samples land in pre-sized slots (request r -> request_lat[r], its
  // leaves -> leaf_lat[r*fanout ..]), so vector contents -- and the
  // summaries computed from them -- are independent of chunk scheduling.
  std::vector<double> request_lat(requests);
  std::vector<double> leaf_lat(requests * fanout);
  struct Counts {
    std::uint64_t backups = 0;
    std::uint64_t leaves = 0;
  };
  const Counts totals = tp.parallel_reduce<Counts>(
      requests, Counts{}, kRequestGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        Counts out;
        Rng rng(seed, chunk);
        for (std::uint64_t r = begin; r < end; ++r) {
          double worst = 0;
          for (unsigned f = 0; f < fanout; ++f) {
            const auto [lat, backup] = leaf_with_policy(leaf, policy, rng);
            worst = std::max(worst, lat);
            leaf_lat[r * fanout + f] = lat;
            out.backups += backup ? 1 : 0;
            ++out.leaves;
          }
          request_lat[r] = worst;
        }
        return out;
      },
      [](Counts acc, Counts c) {
        acc.backups += c.backups;
        acc.leaves += c.leaves;
        return acc;
      });
  const std::uint64_t backups = totals.backups;
  const std::uint64_t leaves = totals.leaves;

  ForkJoinResult res;
  res.request_latency_ms = Summary::of(request_lat);
  res.leaf_latency_ms = Summary::of(leaf_lat);
  res.extra_load_fraction =
      leaves ? static_cast<double>(backups) / static_cast<double>(leaves) : 0;

  const double leaf_p99 = res.leaf_latency_ms.p99;
  std::uint64_t over = 0;
  for (double v : request_lat) over += v >= leaf_p99 ? 1 : 0;
  res.frac_over_leaf_p99 =
      requests ? static_cast<double>(over) / static_cast<double>(requests) : 0;
  return res;
}

std::vector<FanoutRow> fanout_sweep(const std::vector<unsigned>& fanouts,
                                    std::uint64_t requests,
                                    const LatencyDist& leaf,
                                    std::uint64_t seed, ThreadPool* pool) {
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  std::vector<FanoutRow> rows;
  std::vector<double> lat(requests);
  for (unsigned n : fanouts) {
    // The per-leaf p99 reference comes from the SAME draws that form the
    // row's requests; numerator and denominator then share sampling noise
    // (important because a straggler mixture puts p99 on a sparse cliff).
    // A log histogram keeps memory bounded at large fan-out.  Each chunk
    // fills a private histogram from its Rng(seed + n, chunk) stream and
    // writes request maxima into its lat slots; histograms merge in chunk
    // order, so the row is bit-identical at any pool size.
    const LogHistogram leaf_hist = tp.parallel_reduce<LogHistogram>(
        requests, LogHistogram(1e-3, 1e6, 180), kRequestGrain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          LogHistogram hist(1e-3, 1e6, 180);
          Rng req_rng(seed + n, chunk);
          for (std::uint64_t r = begin; r < end; ++r) {
            double worst = 0;
            for (unsigned f = 0; f < n; ++f) {
              const double v = leaf(req_rng);
              hist.add(v);
              worst = std::max(worst, v);
            }
            lat[r] = worst;
          }
          return hist;
        },
        [](LogHistogram acc, const LogHistogram& h) {
          acc.merge(h);
          return acc;
        });
    const double leaf_p99 = leaf_hist.quantile(0.99);
    std::uint64_t over = 0;
    for (double worst : lat) over += worst >= leaf_p99 ? 1 : 0;
    FanoutRow row;
    row.fanout = n;
    row.analytic_frac = tail_amplification(n, 0.99);
    row.simulated_frac =
        static_cast<double>(over) / static_cast<double>(requests);
    row.p99_amplification = percentile(lat, 0.99) / leaf_p99;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace arch21::cloud
