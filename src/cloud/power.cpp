#include "cloud/power.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arch21::cloud {

double ServerPower::power(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  return idle_w + (peak_w - idle_w) * u;
}

double Facility::power(double utilization) const {
  return static_cast<double>(servers) * server.power(utilization) * pue;
}

double Facility::throughput(double utilization) const {
  return static_cast<double>(servers) * server.peak_ops_per_s *
         std::clamp(utilization, 0.0, 1.0);
}

double Facility::ops_per_joule(double utilization) const {
  const double p = power(utilization);
  return p > 0 ? throughput(utilization) / p : 0;
}

Facility::Sizing Facility::size_for(const ServerPower& srv, double pue,
                                    double target_ops, double utilization) {
  if (!(target_ops > 0) || !(utilization > 0)) {
    throw std::invalid_argument("Facility::size_for: bad parameters");
  }
  if (utilization > 1.0) {
    // A server cannot run above 1.0 utilization.  Sizing the fleet at
    // the raw value while srv.power() clamps to 1 used to undersize the
    // server count AND misprice its power; reject instead of guessing
    // which of the two the caller meant.
    throw std::invalid_argument(
        "Facility::size_for: utilization must be <= 1");
  }
  const double per_server = srv.peak_ops_per_s * utilization;
  const auto n =
      static_cast<std::uint64_t>(std::ceil(target_ops / per_server));
  Sizing s;
  s.servers = n;
  s.power_w = static_cast<double>(n) * srv.power(utilization) * pue;
  return s;
}

}  // namespace arch21::cloud
