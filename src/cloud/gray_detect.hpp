#pragma once
// Client-side gray-failure detector shared by the serial cluster
// simulator and the PDES root client (the root LP owns all client policy
// state, so both engines run the identical scoring code).
//
// The detector is a pure function of the replies the client observes: it
// draws NO randomness, keeps no wall-clock state, and is only consulted
// when GrayDetectionPolicy::enabled -- so a disabled detector leaves the
// simulation byte-identical, the repo-wide determinism contract.
//
// Scoring model (see GrayDetectionPolicy for the knobs):
//   * every observed reply updates the replica's EWMA latency and the
//     current eval window's latency histogram;
//   * every eval interval, the lower-quartile EWMA across scorable peers
//     is the "what healthy currently looks like" reference -- a replica
//     whose EWMA exceeds outlier_factor x max(reference, floor_ms) is a
//     fail-slow outlier (lower quartile, not mean/median, so the
//     reference survives a majority of replicas degrading at once);
//   * replies/sends per interval below reply_rate_floor evicts (lossy);
//     zombie_strikes consecutive zero-reply intervals with traffic flags
//     a zombie (accepts work, never answers);
//   * eviction redirects the replica's sends round-robin over healthy
//     peers; after evict_ms the replica enters probation with fresh
//     counters and is re-admitted after probation_samples clean replies
//     (or re-evicted the next eval it still scores bad);
//   * the adaptive deadline tracks deadline_factor x the eval window's
//     reply p99, clamped to [deadline_min_ms, fixed timeout].

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cloud/policy.hpp"
#include "util/histogram.hpp"

namespace arch21::cloud {

class GrayDetector {
 public:
  static constexpr unsigned kNone = 0xffffffffu;

  enum class State : std::uint8_t { kHealthy, kEvicted, kProbation };

  void init(const GrayDetectionPolicy& pol, unsigned replicas,
            double fixed_timeout_ms) {
    pol_ = pol;
    fixed_timeout_ms_ = fixed_timeout_ms;
    deadline_ms_ = fixed_timeout_ms;
    reps_.assign(replicas, Rep{});
    win_ms_ = LogHistogram(1e-2, 1e5, 90);
    rr_cursor_ = 0;
    evictions_ = probations_ = zombies_ = 0;
  }

  bool engaged() const noexcept { return pol_.enabled; }

  /// Record one actual send to replica `r` (reply-rate denominator).
  void on_sent(unsigned r) noexcept { ++reps_[r].sent; }

  /// Record an explicit rejection from replica `r` (bounced off a full
  /// bounded queue).  A reject is a LOUD refusal -- the replica answered
  /// immediately, which is fail-stop behavior the breaker already
  /// handles -- so it must not count as a silent no-reply here: under
  /// redirect concentration, healthy-but-busy replicas bounce sends, and
  /// treating those as gray evidence evicts the healthy majority (a
  /// self-sustaining eviction cascade).
  void on_rejected(unsigned r) noexcept { ++reps_[r].rejects; }

  /// Record one observed reply from replica `r` at `latency_ms` since the
  /// query started (late and duplicate replies included -- a late reply
  /// is exactly the fail-slow signal the breaker window launders away).
  void on_reply(unsigned r, double latency_ms) {
    Rep& rep = reps_[r];
    ++rep.replies;
    rep.ewma = rep.samples == 0
                   ? latency_ms
                   : (1.0 - pol_.ewma_alpha) * rep.ewma +
                         pol_.ewma_alpha * latency_ms;
    ++rep.samples;
    win_ms_.add(latency_ms);
  }

  /// Should sends to `r` be redirected away right now?
  bool evicted(unsigned r) const noexcept {
    return reps_[r].state == State::kEvicted;
  }

  /// Round-robin healthy peer to take an evicted replica's send; kNone
  /// when no healthy peer exists (the caller drops the send and lets the
  /// timeout recover the call).
  unsigned redirect_target(unsigned from) noexcept {
    const unsigned n = static_cast<unsigned>(reps_.size());
    for (unsigned k = 0; k < n; ++k) {
      const unsigned r = rr_cursor_;
      rr_cursor_ = (rr_cursor_ + 1) % n;
      if (r != from && reps_[r].state == State::kHealthy) return r;
    }
    return kNone;
  }

  /// Current effective per-attempt timeout.
  double timeout_ms() const noexcept { return deadline_ms_; }

  /// One scoring pass at simulation time `now_ms`; call every
  /// eval_interval_ms (the caller schedules the events, and only when
  /// the policy is enabled).
  void eval(double now_ms) {
    if (pol_.adaptive_deadline && win_ms_.count() >= pol_.min_window_samples) {
      deadline_ms_ = std::clamp(pol_.deadline_factor * win_ms_.quantile(0.99),
                                pol_.deadline_min_ms, fixed_timeout_ms_);
      win_ms_ = LogHistogram(1e-2, 1e5, 90);
    }
    if (!pol_.evict) {
      for (Rep& rep : reps_) rep.snapshot();
      return;
    }
    // Eviction expiry first: the replica gets a fresh probationary look
    // this same pass (and is re-evicted below if it still scores bad).
    for (Rep& rep : reps_) {
      if (rep.state == State::kEvicted && now_ms >= rep.evicted_until_ms) {
        rep.state = State::kProbation;
        rep.reset_scores();
        ++probations_;
      }
    }
    // Peer-relative reference: lower-quartile EWMA over scorable,
    // non-evicted replicas.
    scratch_.clear();
    for (const Rep& rep : reps_) {
      if (rep.state != State::kEvicted && rep.samples >= pol_.min_samples) {
        scratch_.push_back(rep.ewma);
      }
    }
    double reference = 0;
    if (scratch_.size() >= 2) {
      const std::size_t q1 = (scratch_.size() - 1) / 4;
      std::nth_element(scratch_.begin(), scratch_.begin() + q1,
                       scratch_.end());
      reference = scratch_[q1];
    }
    for (unsigned r = 0; r < reps_.size(); ++r) {
      Rep& rep = reps_[r];
      if (rep.state == State::kEvicted) {
        rep.snapshot();
        continue;
      }
      // Rejected sends never entered service; exclude them from the
      // reply-rate denominator (clamped -- a PDES reject can land in the
      // eval interval after its send).
      const std::uint64_t raw_sent = rep.sent - rep.sent_mark;
      const std::uint64_t sent_since =
          raw_sent - std::min(rep.rejects - rep.rejects_mark, raw_sent);
      const std::uint64_t replies_since = rep.replies - rep.replies_mark;
      bool flagged = false;
      if (sent_since >= pol_.min_rate_sends) {
        if (replies_since == 0) {
          if (++rep.zero_reply_streak >= pol_.zombie_strikes) {
            ++zombies_;
            flagged = true;
          }
        } else {
          rep.zero_reply_streak = 0;
          if (static_cast<double>(replies_since) <
              pol_.reply_rate_floor * static_cast<double>(sent_since)) {
            // Same hysteresis as the latency check: one interval of
            // reply lag (a clump of deadline drops on a busy-but-healthy
            // replica) is noise; a lossy replica stays under the floor.
            if (++rep.low_rate_streak >= pol_.outlier_strikes) flagged = true;
          } else {
            rep.low_rate_streak = 0;
          }
        }
      }
      if (!flagged && reference > 0 && rep.samples >= pol_.min_samples) {
        if (rep.ewma >
            pol_.outlier_factor * std::max(reference, pol_.floor_ms)) {
          // One slow reply can swing the EWMA past the threshold; only a
          // replica that stays over it across consecutive evals is gray.
          if (++rep.outlier_streak >= pol_.outlier_strikes) flagged = true;
        } else {
          rep.outlier_streak = 0;
        }
      }
      if (flagged) {
        rep.state = State::kEvicted;
        rep.evicted_until_ms = now_ms + pol_.evict_ms;
        rep.zero_reply_streak = 0;
        rep.low_rate_streak = 0;
        rep.outlier_streak = 0;
        ++evictions_;
      } else if (rep.state == State::kProbation &&
                 rep.samples >= pol_.probation_samples) {
        rep.state = State::kHealthy;
      }
      rep.snapshot();
    }
  }

  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t probations() const noexcept { return probations_; }
  std::uint64_t zombies() const noexcept { return zombies_; }
  State state(unsigned r) const noexcept { return reps_[r].state; }

 private:
  struct Rep {
    double ewma = 0;
    std::uint64_t samples = 0;
    std::uint64_t sent = 0;
    std::uint64_t replies = 0;
    std::uint64_t rejects = 0;
    std::uint64_t sent_mark = 0;
    std::uint64_t replies_mark = 0;
    std::uint64_t rejects_mark = 0;
    unsigned zero_reply_streak = 0;
    unsigned low_rate_streak = 0;
    unsigned outlier_streak = 0;
    State state = State::kHealthy;
    double evicted_until_ms = 0;

    void snapshot() noexcept {
      sent_mark = sent;
      replies_mark = replies;
      rejects_mark = rejects;
    }
    /// Fresh probationary look: score only what the replica does now.
    void reset_scores() noexcept {
      ewma = 0;
      samples = 0;
      zero_reply_streak = 0;
      low_rate_streak = 0;
      outlier_streak = 0;
    }
  };

  GrayDetectionPolicy pol_;
  double fixed_timeout_ms_ = 0;
  double deadline_ms_ = 0;
  std::vector<Rep> reps_;
  std::vector<double> scratch_;
  LogHistogram win_ms_{1e-2, 1e5, 90};
  unsigned rr_cursor_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t probations_ = 0;
  std::uint64_t zombies_ = 0;
};

}  // namespace arch21::cloud
