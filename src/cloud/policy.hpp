#pragma once
// Client-side resilience policies for the fork-join cluster: per-request
// timeouts, bounded retries with exponential backoff + jitter, a global
// retry *budget* that prevents retry storms under overload, hedged
// requests, and quorum-based graceful degradation.
//
// These are the standard production mitigations (Dean & Barroso's "Tail
// at Scale", SRE retry-budget practice) that the paper's datacenter
// agenda implies but never models; simulate_cluster() executes them
// against injected failures so their costs -- extra backend load, lost
// result quality -- are measured, not assumed.

#include "util/rng.hpp"

namespace arch21::cloud {

/// Per-request timeout + bounded retry with exponential backoff.
struct RetryPolicy {
  /// Give up on a leaf request after this long (0 disables timeouts, and
  /// with them retries -- a client that never times out never retries).
  double timeout_ms = 0;
  /// Maximum retries per leaf call after the initial attempt.
  unsigned max_retries = 0;
  double backoff_base_ms = 2.0;  ///< delay before the first retry
  double backoff_mult = 2.0;     ///< multiplier per subsequent retry
  double jitter_frac = 0.2;      ///< uniform +/- fraction on each backoff

  /// Backoff before retry `retry_index` (0-based), jittered via `rng`.
  /// Also records the chosen delay into the global metrics registry's
  /// "policy.backoff_ms" timer when metrics are enabled (which may
  /// allocate a per-thread shard on first use, hence not noexcept).
  double backoff_ms(unsigned retry_index, Rng& rng) const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Global token-bucket retry budget: every first-attempt leaf request
/// credits `ratio` tokens (capped at `burst`); every retry debits one.
/// A retry is only issued while a full token is available, so cluster-
/// wide retry traffic is bounded by ratio x regular traffic + burst --
/// the mechanism that keeps a failure burst from amplifying itself into
/// a retry storm.
struct RetryBudget {
  bool enabled = false;
  double ratio = 0.1;   ///< sustained retries per regular request
  double burst = 50;    ///< initial tokens / bucket cap

  void validate() const;
};

/// Quorum-based graceful degradation: at `deadline_ms` after the query
/// started, the root returns a *partial* result if at least
/// ceil(quorum_fraction * leaves) leaves have replied, trading result
/// quality (fraction of leaves contributing) for bounded tail latency.
struct QuorumPolicy {
  double quorum_fraction = 1.0;  ///< 1.0 = only full results
  double deadline_ms = 0;        ///< 0 = wait for every leaf

  bool enabled() const noexcept {
    return deadline_ms > 0 && quorum_fraction < 1.0;
  }
  void validate() const;
};

/// The full client-side policy stack for one cluster configuration.
struct ResiliencePolicy {
  RetryPolicy retry;
  RetryBudget budget;
  /// Hedging: reissue a straggling leaf request to a random other leaf
  /// after this delay (0 = disabled).  Same semantics as the historical
  /// ClusterConfig::hedge_after_ms, now unified with retries/timeouts.
  double hedge_after_ms = 0;
  QuorumPolicy quorum;

  void validate() const;
};

}  // namespace arch21::cloud
