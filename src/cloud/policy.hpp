#pragma once
// Resilience policies for the fork-join cluster.  Client side: per-request
// timeouts, bounded retries with exponential backoff + jitter, a global
// retry *budget* that prevents retry storms under overload, hedged
// requests, and quorum-based graceful degradation.  Server/edge side:
// admission control at the root (token-bucket rate limit + max-concurrent
// in-flight, with counted sheds) and per-replica circuit breakers
// (rolling failure window, closed -> open -> half-open with probes).
//
// These are the standard production mitigations (Dean & Barroso's "Tail
// at Scale", SRE retry-budget practice, and the metastable-failure
// literature's load-shedding prescriptions) that the paper's datacenter
// agenda implies but never models; simulate_cluster() executes them
// against injected failures so their costs -- extra backend load, shed
// traffic, lost result quality -- are measured, not assumed.

#include <cstdint>

#include "util/rng.hpp"

namespace arch21::cloud {

/// Per-request timeout + bounded retry with exponential backoff.
struct RetryPolicy {
  /// Give up on a leaf request after this long (0 disables timeouts, and
  /// with them retries -- a client that never times out never retries).
  double timeout_ms = 0;
  /// Maximum retries per leaf call after the initial attempt.
  unsigned max_retries = 0;
  double backoff_base_ms = 2.0;  ///< delay before the first retry
  double backoff_mult = 2.0;     ///< multiplier per subsequent retry
  double jitter_frac = 0.2;      ///< uniform +/- fraction on each backoff

  /// Backoff before retry `retry_index` (0-based), jittered via `rng` and
  /// clamped to >= 0 (a jittered backoff must never schedule into the
  /// past, whatever the jitter draw).  Also records the chosen delay into
  /// the global metrics registry's "policy.backoff_ms" timer when metrics
  /// are enabled (which may allocate a per-thread shard on first use,
  /// hence not noexcept).
  double backoff_ms(unsigned retry_index, Rng& rng) const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Global token-bucket retry budget: every first-attempt leaf request
/// credits `ratio` tokens (capped at `burst`); every retry debits one.
/// A retry is only issued while a full token is available, so cluster-
/// wide retry traffic is bounded by ratio x regular traffic + burst --
/// the mechanism that keeps a failure burst from amplifying itself into
/// a retry storm.
struct RetryBudget {
  bool enabled = false;
  double ratio = 0.1;   ///< sustained retries per regular request
  double burst = 50;    ///< initial tokens / bucket cap

  void validate() const;
};

/// Quorum-based graceful degradation: at `deadline_ms` after the query
/// started, the root returns a *partial* result if at least
/// ceil(quorum_fraction * leaves) leaves have replied, trading result
/// quality (fraction of leaves contributing) for bounded tail latency.
struct QuorumPolicy {
  double quorum_fraction = 1.0;  ///< 1.0 = only full results
  double deadline_ms = 0;        ///< 0 = wait for every leaf

  bool enabled() const noexcept {
    return deadline_ms > 0 && quorum_fraction < 1.0;
  }
  void validate() const;
};

/// Admission control at the query root: the load shedder that keeps
/// accepted work inside the cluster's capacity so it completes, instead
/// of letting every arrival in to queue forever (the unbounded-queue
/// half of a metastable failure).  Two independent gates, both counted
/// as sheds in ClusterResult::shed_queries:
///   * a token bucket over arrivals (`rate_qps` sustained, `burst` deep,
///     0 = no rate gate), and
///   * a concurrency cap (`max_in_flight` queries open at the root,
///     0 = no cap).
/// Note: the concurrency gate frees a slot when a query *closes* (all
/// leaves replied, or the quorum deadline resolved it); pair it with a
/// QuorumPolicy deadline so every accepted query eventually closes, or
/// replies lost to crashes can pin slots for the rest of the run.
struct AdmissionPolicy {
  bool enabled = false;
  double rate_qps = 0;          ///< sustained accepted-query rate; 0 = off
  double burst = 10;            ///< token-bucket depth for the rate gate
  unsigned max_in_flight = 0;   ///< concurrent open queries; 0 = off

  void validate() const;
};

/// Per-replica circuit breaker (client-side bookkeeping, one state
/// machine per leaf): a rolling window of the last `window` observed
/// outcomes per replica -- a reply is a success, a timeout against that
/// replica is a failure.  When at least `min_samples` outcomes are in
/// the window and the failure fraction reaches `failure_threshold`, the
/// breaker *opens*: sends to that replica are short-circuited (and
/// redirected to another replica when one is available) for `open_ms`,
/// jittered by +/- `open_jitter_frac` so replicas do not re-probe in
/// lockstep.  After the cooldown the breaker goes *half-open* and lets
/// `half_open_probes` probe requests through: the first probe outcome
/// decides -- success closes the breaker (window reset), failure re-opens
/// it with a fresh cooldown.
///
/// Determinism: all breaker randomness (cooldown jitter, redirect
/// targets) draws from a dedicated Rng stream, so enabling the breaker
/// never perturbs workload/fault draws, and a disabled breaker leaves
/// the simulation byte-identical to pre-breaker builds.  Failures are
/// *observed* via timeouts, so a breaker without RetryPolicy::timeout_ms
/// can never open (validate() rejects that combination).
struct CircuitBreakerPolicy {
  bool enabled = false;
  unsigned window = 16;           ///< rolling outcomes kept per replica (1..64)
  double failure_threshold = 0.5; ///< failure fraction that opens, in (0, 1]
  unsigned min_samples = 8;       ///< outcomes required before opening
  double open_ms = 50;            ///< cooldown before half-open
  double open_jitter_frac = 0.1;  ///< +/- fraction on each cooldown, [0, 1)
  unsigned half_open_probes = 1;  ///< probes admitted while half-open

  void validate() const;
};

/// Client-side gray-failure (fail-slow) detection and mitigation.  The
/// breaker above is blind to gray replicas by construction: a slow or
/// jittery replica eventually *replies*, and every late reply lands a
/// success in the breaker window, so the failure fraction never reaches
/// the threshold ("successes, just late").  This detector scores what
/// breakers ignore:
///
///   * per-replica EWMA latency with PEER-RELATIVE outlier detection --
///     a replica is evicted when its EWMA exceeds `outlier_factor` times
///     the lower-quartile EWMA of its peers (robust even when a majority
///     of replicas degrade at once, where mean/median references fail);
///   * reply-rate accounting -- a replica whose replies/sends ratio over
///     an eval interval drops below `reply_rate_floor` is evicted, and
///     one that stops replying entirely for `zombie_strikes` consecutive
///     intervals is flagged a *zombie* (accepts work, never answers);
///   * eviction redirects the replica's sends round-robin across healthy
///     peers (down-weighting to zero without the breaker's random
///     redirect storm); after `evict_ms` the replica enters *probation*
///     with fresh counters -- it is re-admitted after `probation_samples`
///     clean replies or re-evicted on the next eval it still scores bad;
///   * an ADAPTIVE DEADLINE: the effective per-attempt timeout tracks
///     `deadline_factor` x the observed reply-latency p99 of the last
///     eval interval, clamped to [deadline_min_ms, retry.timeout_ms] --
///     under a fail-slow burst the fixed timeout is either too tight
///     (healthy tail) or too loose (gray tail); tracking p99 keeps it
///     matched to what the fleet currently delivers.
///
/// Scoring is a pure function of observed replies -- the detector draws
/// NO randomness -- and the eval events are only scheduled when enabled,
/// so disabled detection leaves results byte-identical.
struct GrayDetectionPolicy {
  bool enabled = false;
  double eval_interval_ms = 100;  ///< scoring/eviction cadence
  double ewma_alpha = 0.1;        ///< EWMA weight of each new reply latency
  unsigned min_samples = 8;       ///< replies required before outlier calls
  double outlier_factor = 4.0;    ///< eviction ratio vs peer lower quartile
  double floor_ms = 2.0;          ///< reference floor (ignore sub-ms noise)
  /// Consecutive evals a replica must score bad (latency outlier OR
  /// below the reply-rate floor) before it is evicted -- one slow reply
  /// can swing a fresh EWMA past the threshold and one clump of server
  /// deadline-drops can dent an interval's reply rate, but both decay
  /// within an eval interval; a genuinely gray replica scores bad on
  /// every pass.
  unsigned outlier_strikes = 2;
  bool evict = true;              ///< false = score/telemetry only
  double evict_ms = 1000;         ///< eviction duration before probation
  unsigned probation_samples = 8; ///< clean replies that re-admit
  double reply_rate_floor = 0.75; ///< min replies/sends per interval
  unsigned min_rate_sends = 12;   ///< sends required before rate calls
  unsigned zombie_strikes = 2;    ///< zero-reply intervals = zombie
  bool adaptive_deadline = true;  ///< timeout tracks observed p99
  double deadline_factor = 1.5;   ///< x observed p99
  double deadline_min_ms = 2.0;   ///< adaptive timeout lower clamp
  unsigned min_window_samples = 16;  ///< replies needed to move deadline

  void validate() const;
};

/// The full resilience policy stack for one cluster configuration:
/// client-side mitigation (retry/budget/hedge/quorum) plus the
/// server-edge overload protections (admission, breakers) and gray
/// (fail-slow) detection.
struct ResiliencePolicy {
  RetryPolicy retry;
  RetryBudget budget;
  /// Hedging: reissue a straggling leaf request to a random other leaf
  /// after this delay (0 = disabled).  Same semantics as the historical
  /// ClusterConfig::hedge_after_ms, now unified with retries/timeouts.
  double hedge_after_ms = 0;
  QuorumPolicy quorum;
  AdmissionPolicy admission;
  CircuitBreakerPolicy breaker;
  GrayDetectionPolicy gray;

  void validate() const;
};

}  // namespace arch21::cloud
