#pragma once
// Analytic M/M/k queueing (Erlang-C) with a DES cross-check.  Leaf
// servers in the cluster model are queueing systems; predictable
// performance ("architectural innovations can guarantee strict worst-case
// latency requirements") starts with knowing where the queueing knee is.

#include <cstdint>

namespace arch21::cloud {

/// M/M/k results for arrival rate lambda, per-server service rate mu.
struct MmkResult {
  double rho = 0;         ///< utilization lambda / (k mu)
  double p_wait = 0;      ///< Erlang-C probability of queueing
  double mean_wait = 0;   ///< expected queueing delay
  double mean_sojourn = 0;///< wait + service
  bool stable = false;
};

/// Closed-form M/M/k.
MmkResult mmk(double lambda, double mu, unsigned k);

/// DES validation: simulate an M/M/k station for `jobs` jobs and return
/// the measured mean sojourn.
double simulate_mmk_sojourn(double lambda, double mu, unsigned k,
                            std::uint64_t jobs, std::uint64_t seed = 99);

}  // namespace arch21::cloud
