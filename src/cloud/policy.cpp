#include "cloud/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/enabled.hpp"
#if ARCH21_OBS_ENABLED
#include "obs/metrics.hpp"
#endif

namespace arch21::cloud {

namespace {

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

}  // namespace

double RetryPolicy::backoff_ms(unsigned retry_index, Rng& rng) const {
  const double base =
      backoff_base_ms * std::pow(backoff_mult, static_cast<double>(retry_index));
  // Clamp after jitter: validate() keeps jitter_frac < 1, so the product
  // stays positive in exact arithmetic, but the clamp makes "never
  // schedule into the past" unconditional (jitter_frac at the top of its
  // range leaves delays within rounding of zero).
  const double delay =
      std::max(0.0, base * (1.0 + jitter_frac * rng.uniform(-1.0, 1.0)));
#if ARCH21_OBS_ENABLED
  auto& m = obs::MetricsRegistry::global();
  if (m.enabled()) {
    // Registration is idempotent; the id lookup is mutex-protected but
    // retries are rare by design (the budget bounds them), so this stays
    // off the per-request hot path.
    m.record(m.timer("policy.backoff_ms", 1e-2, 1e5, 30), delay);
  }
#endif
  return delay;
}

void RetryPolicy::validate() const {
  if (timeout_ms < 0) bad("RetryPolicy", "timeout_ms must be >= 0");
  if (max_retries > 0 && timeout_ms == 0) {
    bad("RetryPolicy", "max_retries requires timeout_ms > 0");
  }
  if (backoff_base_ms < 0) bad("RetryPolicy", "backoff_base_ms must be >= 0");
  if (backoff_mult < 1.0) bad("RetryPolicy", "backoff_mult must be >= 1");
  if (jitter_frac < 0 || jitter_frac >= 1.0) {
    bad("RetryPolicy", "jitter_frac must be in [0, 1)");
  }
}

void RetryBudget::validate() const {
  if (!enabled) return;
  if (ratio <= 0) bad("RetryBudget", "ratio must be > 0 when enabled");
  if (burst < 1.0) bad("RetryBudget", "burst must be >= 1 when enabled");
}

void QuorumPolicy::validate() const {
  if (deadline_ms < 0) bad("QuorumPolicy", "deadline_ms must be >= 0");
  if (quorum_fraction <= 0 || quorum_fraction > 1.0) {
    bad("QuorumPolicy", "quorum_fraction must be in (0, 1]");
  }
}

void AdmissionPolicy::validate() const {
  if (!enabled) return;
  if (rate_qps < 0) bad("AdmissionPolicy", "rate_qps must be >= 0");
  if (rate_qps > 0 && burst < 1.0) {
    bad("AdmissionPolicy", "burst must be >= 1 when rate_qps > 0");
  }
  if (rate_qps == 0 && max_in_flight == 0) {
    bad("AdmissionPolicy",
        "enabled admission needs rate_qps > 0 or max_in_flight > 0");
  }
}

void CircuitBreakerPolicy::validate() const {
  if (!enabled) return;
  if (window < 1 || window > 64) {
    bad("CircuitBreakerPolicy", "window must be in [1, 64]");
  }
  if (failure_threshold <= 0 || failure_threshold > 1.0) {
    bad("CircuitBreakerPolicy", "failure_threshold must be in (0, 1]");
  }
  if (min_samples < 1 || min_samples > window) {
    bad("CircuitBreakerPolicy", "min_samples must be in [1, window]");
  }
  if (!(open_ms > 0)) bad("CircuitBreakerPolicy", "open_ms must be > 0");
  if (open_jitter_frac < 0 || open_jitter_frac >= 1.0) {
    bad("CircuitBreakerPolicy", "open_jitter_frac must be in [0, 1)");
  }
  if (half_open_probes < 1) {
    bad("CircuitBreakerPolicy", "half_open_probes must be >= 1");
  }
}

void GrayDetectionPolicy::validate() const {
  if (!enabled) return;
  if (!(eval_interval_ms > 0) || !std::isfinite(eval_interval_ms)) {
    bad("GrayDetectionPolicy", "eval_interval_ms must be finite and > 0");
  }
  if (!(ewma_alpha > 0) || ewma_alpha > 1.0) {
    bad("GrayDetectionPolicy", "ewma_alpha must be in (0, 1]");
  }
  if (min_samples < 1) {
    bad("GrayDetectionPolicy", "min_samples must be >= 1");
  }
  if (!(outlier_factor > 1)) {
    bad("GrayDetectionPolicy", "outlier_factor must be > 1");
  }
  if (!(floor_ms >= 0)) bad("GrayDetectionPolicy", "floor_ms must be >= 0");
  if (outlier_strikes < 1) {
    bad("GrayDetectionPolicy", "outlier_strikes must be >= 1");
  }
  if (evict && !(evict_ms > 0)) {
    bad("GrayDetectionPolicy", "evict_ms must be > 0 when evict is set");
  }
  if (probation_samples < 1) {
    bad("GrayDetectionPolicy", "probation_samples must be >= 1");
  }
  if (!(reply_rate_floor >= 0) || reply_rate_floor > 1.0) {
    bad("GrayDetectionPolicy", "reply_rate_floor must be in [0, 1]");
  }
  if (min_rate_sends < 1) {
    bad("GrayDetectionPolicy", "min_rate_sends must be >= 1");
  }
  if (zombie_strikes < 1) {
    bad("GrayDetectionPolicy", "zombie_strikes must be >= 1");
  }
  if (adaptive_deadline) {
    if (!(deadline_factor > 0) || !std::isfinite(deadline_factor)) {
      bad("GrayDetectionPolicy", "deadline_factor must be finite and > 0");
    }
    if (!(deadline_min_ms > 0)) {
      bad("GrayDetectionPolicy", "deadline_min_ms must be > 0");
    }
    if (min_window_samples < 1) {
      bad("GrayDetectionPolicy", "min_window_samples must be >= 1");
    }
  }
}

void ResiliencePolicy::validate() const {
  retry.validate();
  budget.validate();
  if (hedge_after_ms < 0) {
    bad("ResiliencePolicy", "hedge_after_ms must be >= 0");
  }
  quorum.validate();
  admission.validate();
  breaker.validate();
  gray.validate();
  if (breaker.enabled && retry.timeout_ms == 0) {
    // Failures reach the breaker only through timeouts; without them the
    // window never records a failure and the breaker is dead weight.
    bad("ResiliencePolicy", "breaker requires retry.timeout_ms > 0");
  }
  if (gray.enabled && retry.timeout_ms == 0) {
    // The adaptive deadline replaces the fixed timeout; with timeouts off
    // there is nothing to adapt and zombie sends would dangle forever.
    bad("ResiliencePolicy", "gray detection requires retry.timeout_ms > 0");
  }
  if (gray.enabled && !quorum.enabled()) {
    // Eviction down-weights replicas to zero traffic; only quorum-based
    // degradation lets queries close without every leaf's reply.
    bad("ResiliencePolicy", "gray detection requires an enabled quorum");
  }
}

}  // namespace arch21::cloud
