#pragma once
// Tail latency at scale.  The white paper's datacenter section states the
// arithmetic directly: "if 100 systems must jointly respond to a request,
// 63% of requests will incur the 99-percentile delay of the individual
// systems due to waiting for stragglers".  That is order statistics:
// P(max of N draws exceeds the per-server p99) = 1 - 0.99^N.
//
// This module provides the closed form, a Monte-Carlo fork-join simulator
// over configurable leaf-latency distributions, and the standard
// mitigations from Dean's "Tail at Scale": hedged requests (send a backup
// copy after a delay) and tied requests (issue two, cancel the loser,
// modeled as min of two draws with a small fixed overhead).

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace arch21::cloud {

/// Closed form: probability a fan-out-N request waits at least the
/// per-leaf `q`-quantile (q in (0,1)).
double tail_amplification(unsigned n, double q);

/// A leaf-latency distribution: callable drawing one service time.
using LatencyDist = std::function<double(Rng&)>;

/// Lognormal body with a Pareto straggler tail: the classic shape of
/// production leaf latencies.  `p_straggler` of requests take the slow
/// path.
LatencyDist make_leaf_distribution(double median_ms = 5.0,
                                   double sigma = 0.4,
                                   double p_straggler = 0.01,
                                   double straggler_scale_ms = 50.0,
                                   double straggler_alpha = 1.5);

/// Mitigation policy for a fan-out request.
struct HedgePolicy {
  enum class Kind { None, Hedged, Tied } kind = Kind::None;
  double hedge_delay_ms = 10;  ///< backup issued if no reply by this delay
  double tied_overhead_ms = 0.5;  ///< cancellation/propagation overhead
};

/// Result of a fork-join experiment.
struct ForkJoinResult {
  Summary request_latency_ms;   ///< end-to-end (max over leaves)
  Summary leaf_latency_ms;      ///< individual leaf samples
  double extra_load_fraction = 0;  ///< additional backend load from backups
  /// Fraction of requests that waited >= the leaf p99.
  double frac_over_leaf_p99 = 0;
};

/// Run `requests` fork-join requests over `fanout` leaves.  Request
/// chunks run on `pool` (ThreadPool::global() when null); chunk i draws
/// from Rng(seed, i), so the result is bit-identical for any pool size.
ForkJoinResult simulate_fork_join(unsigned fanout, std::uint64_t requests,
                                  const LatencyDist& leaf,
                                  HedgePolicy policy = {},
                                  std::uint64_t seed = 7,
                                  ThreadPool* pool = nullptr);

/// Sweep fan-out values and report 1 - 0.99^N alongside the simulation.
struct FanoutRow {
  unsigned fanout;
  double analytic_frac;   ///< 1 - 0.99^N
  double simulated_frac;  ///< measured fraction over leaf p99
  double p99_amplification;  ///< request p99 / leaf p99
};
/// Request chunks of row N run on `pool`; chunk i of that row draws from
/// Rng(seed + N, i) (the historical per-row stream, chunk-derived).
std::vector<FanoutRow> fanout_sweep(const std::vector<unsigned>& fanouts,
                                    std::uint64_t requests,
                                    const LatencyDist& leaf,
                                    std::uint64_t seed = 7,
                                    ThreadPool* pool = nullptr);

}  // namespace arch21::cloud
