#pragma once
// Warehouse-scale power modeling: server energy proportionality, PUE, and
// fleet-level power/cost.  "Memory and storage systems consume an
// increasing fraction of the total data center power budget" -- the model
// carries a per-server power breakdown so that fraction is visible, and
// the exa-op ladder rung (10 MW) can be checked against concrete fleets.

#include <cstdint>

namespace arch21::cloud {

/// Per-server power model with an idle floor (non-proportionality).
struct ServerPower {
  double idle_w = 120;
  double peak_w = 300;
  double mem_fraction = 0.30;   ///< share of dynamic power in memory/storage
  double peak_ops_per_s = 1e11; ///< server throughput at full load

  /// Power at utilization u in [0,1] (linear between idle and peak).
  double power(double u) const;
  /// Energy proportionality index: 1 - idle/peak.
  double proportionality() const { return 1.0 - idle_w / peak_w; }
};

/// Facility model.
struct Facility {
  ServerPower server;
  std::uint64_t servers = 10'000;
  double pue = 1.5;  ///< total facility power / IT power

  /// Facility power (W) at a given fleet utilization.
  double power(double utilization) const;

  /// Aggregate ops/s at utilization.
  double throughput(double utilization) const;

  /// Facility-level ops/joule at utilization (includes PUE overhead).
  double ops_per_joule(double utilization) const;

  /// Servers needed to deliver `target_ops` at `utilization` -- and the
  /// facility power that implies.  Throws std::invalid_argument unless
  /// 0 < utilization <= 1 (sizing at u > 1 would count throughput the
  /// servers cannot deliver while power() clamps, silently undersizing
  /// the fleet and mispricing its power).
  struct Sizing {
    std::uint64_t servers;
    double power_w;
  };
  static Sizing size_for(const ServerPower& srv, double pue, double target_ops,
                         double utilization);
};

}  // namespace arch21::cloud
