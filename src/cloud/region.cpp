#include "cloud/region.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "cloud/qos.hpp"
#include "cloud/queueing.hpp"
#include "cloud/tail.hpp"
#include "des/simulator.hpp"

namespace arch21::cloud {

// Simulation time unit: milliseconds (as in cluster.cpp).

namespace {

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

// Dedicated Rng sub-stream salts (cluster.cpp uses 0xB4EA/0xFA17 the
// same way): each stochastic component draws from its own stream so
// enabling one never perturbs the draws of another.
constexpr std::uint64_t kTrafficStream = 0x7F1C;
constexpr std::uint64_t kWanTraceStream = 0xAB1E;
constexpr std::uint64_t kWanJitterStream = 0x1A7E;
constexpr std::uint64_t kServiceStreamBase = 0x5E00;  // + region index
constexpr std::uint64_t kBreakerStream = 0xB4EA;

}  // namespace

const char* to_string(RoutePolicy p) noexcept {
  switch (p) {
    case RoutePolicy::kLatencyWeighted:
      return "latency-weighted";
    case RoutePolicy::kCapacityAware:
      return "capacity-aware";
    case RoutePolicy::kStickySpillover:
      return "sticky-spillover";
  }
  return "?";
}

double RegionConfig::qos_inflation() const noexcept {
  // The cloud/qos.hpp colocation model's interference coefficients:
  // service inflates linearly with colocated BE pressure, sharply when
  // the LLC/bandwidth are shared, mildly under hardware partitioning.
  const QosConfig q;
  const double coeff =
      qos_partitioned ? q.interference_partitioned : q.interference_shared;
  return 1.0 + be_utilization * coeff;
}

double RegionConfig::mean_service_ms() const noexcept {
  // Lognormal body mean = median * exp(sigma^2 / 2); Pareto straggler
  // mean = scale * alpha / (alpha - 1) (alpha > 1 by validate()).
  const double body =
      service_median_ms * std::exp(0.5 * service_sigma * service_sigma);
  const double straggler =
      straggler_scale_ms * straggler_alpha / (straggler_alpha - 1.0);
  return ((1.0 - p_straggler) * body + p_straggler * straggler) *
         qos_inflation();
}

double RegionConfig::predicted_sojourn_ms(double rate_qps) const {
  const MmkResult m = mmk(rate_qps, 1000.0 / mean_service_ms(), servers);
  if (!m.stable) return std::numeric_limits<double>::infinity();
  return m.mean_sojourn * 1000.0;
}

void RegionConfig::validate() const {
  if (servers == 0) bad("RegionConfig", "servers must be > 0");
  if (!(service_median_ms > 0)) {
    bad("RegionConfig", "service_median_ms must be > 0");
  }
  if (!(service_sigma > 0)) bad("RegionConfig", "service_sigma must be > 0");
  if (!(p_straggler >= 0) || !(p_straggler <= 1)) {
    bad("RegionConfig", "p_straggler must be in [0, 1]");
  }
  if (!(straggler_scale_ms > 0)) {
    bad("RegionConfig", "straggler_scale_ms must be > 0");
  }
  if (!(straggler_alpha > 1)) {
    // alpha <= 1 makes the straggler mean (and capacity_qps) undefined.
    bad("RegionConfig", "straggler_alpha must be > 1");
  }
  if (!(be_utilization >= 0) || !(be_utilization <= 1)) {
    bad("RegionConfig", "be_utilization must be in [0, 1]");
  }
  queue.validate();
}

void FailoverPolicy::validate() const {
  if (!(health_interval_s > 0)) {
    bad("FailoverPolicy", "health_interval_s must be > 0");
  }
  if (!(probe_timeout_ms > 0)) {
    bad("FailoverPolicy", "probe_timeout_ms must be > 0");
  }
  if (unhealthy_after == 0) {
    bad("FailoverPolicy", "unhealthy_after must be >= 1");
  }
  if (healthy_after == 0) bad("FailoverPolicy", "healthy_after must be >= 1");
  if (!(admission_cap_frac >= 0)) {
    bad("FailoverPolicy", "admission_cap_frac must be >= 0");
  }
  if (admission_cap_frac > 0 && !(admission_burst > 0)) {
    bad("FailoverPolicy", "admission_burst must be > 0 when caps are on");
  }
  if (!(timeout_ms > 0)) bad("FailoverPolicy", "timeout_ms must be > 0");
  if (budget_enabled) {
    if (!(budget_ratio > 0)) {
      bad("FailoverPolicy", "budget_ratio must be > 0");
    }
    if (!(budget_burst > 0)) {
      bad("FailoverPolicy", "budget_burst must be > 0");
    }
  }
  breaker.validate();
}

double MultiRegionConfig::total_capacity_qps() const noexcept {
  double sum = 0;
  for (const RegionConfig& r : regions) sum += r.capacity_qps();
  return sum;
}

void MultiRegionConfig::validate() const {
  if (regions.size() < 2) bad("MultiRegionConfig", "regions must hold >= 2");
  if (regions.size() > 32) {
    // The retry ladder tracks tried regions in a 32-bit mask.
    bad("MultiRegionConfig", "regions must hold <= 32");
  }
  for (const RegionConfig& r : regions) r.validate();
  if (wan.regions != regions.size()) {
    bad("MultiRegionConfig", "wan.regions must equal regions.size()");
  }
  wan.validate();
  traffic.validate();
  failover.validate();
  if (!(duration_s > 0)) bad("MultiRegionConfig", "duration_s must be > 0");
  if (!(goodput_window_s >= 0)) {
    bad("MultiRegionConfig", "goodput_window_s must be >= 0");
  }
  if (blackout_region != kNoBlackout) {
    if (blackout_region >= regions.size()) {
      bad("MultiRegionConfig", "blackout_region must index regions");
    }
    if (!(blackout_start_s >= 0)) {
      bad("MultiRegionConfig", "blackout_start_s must be >= 0");
    }
    if (!(blackout_duration_s >= 0)) {
      bad("MultiRegionConfig", "blackout_duration_s must be >= 0");
    }
  }
  if (grayout_region != kNoBlackout) {
    if (grayout_region >= regions.size()) {
      bad("MultiRegionConfig", "grayout_region must index regions");
    }
    if (!(grayout_start_s >= 0)) {
      bad("MultiRegionConfig", "grayout_start_s must be >= 0");
    }
    if (!(grayout_duration_s >= 0)) {
      bad("MultiRegionConfig", "grayout_duration_s must be >= 0");
    }
    if (!(std::isfinite(grayout_slow_factor) && grayout_slow_factor > 1)) {
      bad("MultiRegionConfig", "grayout_slow_factor must be finite and > 1");
    }
  }
  if (blackout_enabled() && grayout_enabled()) {
    bad("MultiRegionConfig",
        "blackout and grayout are mutually exclusive (the hysteresis "
        "windows measure around a single disruption)");
  }
}

void MultiRegionResult::merge(const MultiRegionResult& other) {
  if (regions.size() != other.regions.size() ||
      classes.size() != other.classes.size()) {
    throw std::invalid_argument(
        "MultiRegionResult::merge: region/class shape mismatch");
  }
  // Summing per-window counts recorded on different grids would silently
  // corrupt the hysteresis measurement, so mismatched window sizes are a
  // hard error (a windowless result adopts the other's grid).
  if (goodput_window_s > 0 && other.goodput_window_s > 0 &&
      goodput_window_s != other.goodput_window_s) {
    throw std::invalid_argument(
        "MultiRegionResult::merge: goodput_window_s mismatch");
  }
  if (goodput_window_s == 0) goodput_window_s = other.goodput_window_s;

  const double w_self = static_cast<double>(trials);
  const double w_other = static_cast<double>(other.trials);
  const double w = w_self + w_other;
  auto avg = [&](double a, double b) { return (a * w_self + b * w_other) / w; };

  requests += other.requests;
  answered += other.answered;
  failed += other.failed;
  shed += other.shed;
  attempts += other.attempts;
  retries += other.retries;
  timeouts += other.timeouts;
  budget_denials += other.budget_denials;
  lost_requests += other.lost_requests;
  breaker_open_transitions += other.breaker_open_transitions;
  breaker_short_circuits += other.breaker_short_circuits;
  link_failures += other.link_failures;
  request_ms.merge(other.request_ms);
  service_ms.merge(other.service_ms);
  goodput_qps = avg(goodput_qps, other.goodput_qps);
  attempt_amplification =
      avg(attempt_amplification, other.attempt_amplification);

  for (std::size_t r = 0; r < regions.size(); ++r) {
    RegionStats& a = regions[r];
    const RegionStats& b = other.regions[r];
    a.routed += b.routed;
    a.capped += b.capped;
    a.rejected += b.rejected;
    a.expired += b.expired;
    a.completed += b.completed;
    a.lost += b.lost;
    a.probes += b.probes;
    a.probe_failures += b.probe_failures;
    a.evictions += b.evictions;
    a.readmissions += b.readmissions;
    a.busy_ms += b.busy_ms;
    a.utilization = avg(a.utilization, b.utilization);
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    classes[c].answered += other.classes[c].answered;
    classes[c].slo_met += other.classes[c].slo_met;
  }

  auto sum_windows = [](std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b) {
    if (a.size() < b.size()) a.resize(b.size(), 0);
    for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
  };
  sum_windows(answered_per_window, other.answered_per_window);
  if (region_answered_per_window.size() <
      other.region_answered_per_window.size()) {
    region_answered_per_window.resize(other.region_answered_per_window.size());
  }
  for (std::size_t r = 0; r < other.region_answered_per_window.size(); ++r) {
    sum_windows(region_answered_per_window[r],
                other.region_answered_per_window[r]);
  }

  trials += other.trials;
  frac_over_service_p99 = request_ms.fraction_above(service_ms.quantile(0.99));
}

namespace {

// One multi-region trial: a serial DES over pre-generated open-loop
// traffic.  Per-request state lives in a generation-checked slab
// (epochs advance on every retry AND on slot reuse, so in-flight WAN /
// completion events for an abandoned attempt always miss), and every
// event closure captures at most (this, handle, epoch, region) --
// inside both Simulator::Action's and Resource::DoneFn's inline
// buffers, so the steady-state request flow allocates nothing.
class MultiRegionSim {
 public:
  explicit MultiRegionSim(const MultiRegionConfig& cfg)
      : cfg_(cfg),
        fo_(cfg.failover),
        horizon_ms_(cfg.duration_s * 1000.0),
        wan_(cfg.wan, cfg.duration_s * 1000.0,
             Rng(cfg.seed, kWanTraceStream).next()),
        wrng_(cfg.seed, kWanJitterStream),
        brng_(cfg.seed, kBreakerStream) {
    const auto nr = static_cast<unsigned>(cfg_.regions.size());
    stations_.reserve(nr);
    dists_.reserve(nr);
    srng_.reserve(nr);
    for (unsigned r = 0; r < nr; ++r) {
      const RegionConfig& rc = cfg_.regions[r];
      stations_.push_back(
          std::make_unique<des::Resource>(sim_, rc.servers, rc.queue));
      dists_.push_back(make_leaf_distribution(
          rc.service_median_ms, rc.service_sigma, rc.p_straggler,
          rc.straggler_scale_ms, rc.straggler_alpha));
      srng_.emplace_back(cfg_.seed, kServiceStreamBase + r);
      qos_mult_.push_back(rc.qos_inflation());
      cap_rate_qps_.push_back(fo_.admission_cap_frac * rc.capacity_qps());
      mean_service_ms_.push_back(rc.mean_service_ms());
    }
    down_.assign(nr, 0);
    healthy_.assign(nr, 1);
    consec_fail_.assign(nr, 0);
    consec_ok_.assign(nr, 0);
    cap_tokens_.assign(nr, fo_.admission_burst);
    cap_last_ms_.assign(nr, 0.0);
    if (fo_.breaker.enabled) breakers_.assign(nr, Breaker{});
    btokens_ = fo_.budget_burst;

    // Static preference orders: region indices by base origin->region
    // latency (ties by index).  Sticky routing pins the home region
    // (origin zone i is near region i) in front of the same order.
    pref_.resize(nr);
    sticky_pref_.resize(nr);
    for (unsigned o = 0; o < nr; ++o) {
      std::vector<unsigned>& p = pref_[o];
      p.resize(nr);
      for (unsigned r = 0; r < nr; ++r) p[r] = r;
      std::sort(p.begin(), p.end(), [&](unsigned a, unsigned b) {
        const double la = cfg_.wan.base_latency(o, a);
        const double lb = cfg_.wan.base_latency(o, b);
        if (la != lb) return la < lb;
        return a < b;
      });
      std::vector<unsigned>& s = sticky_pref_[o];
      s.reserve(nr);
      s.push_back(o);
      for (unsigned r : p) {
        if (r != o) s.push_back(r);
      }
    }

    res_.regions.assign(nr, RegionStats{});
    res_.classes.assign(cfg_.traffic.classes.size(), ClassStats{});
    res_.region_answered_per_window.assign(nr, {});
    res_.goodput_window_s = cfg_.goodput_window_s;
    window_ms_ = cfg_.goodput_window_s * 1000.0;
  }

  MultiRegionResult run() {
    const std::vector<TrafficRequest> traffic = generate_traffic(
        cfg_.traffic, cfg_.duration_s, static_cast<unsigned>(down_.size()),
        Rng(cfg_.seed, kTrafficStream).next());
    res_.requests = traffic.size();
    recs_.reserve(1024);
    free_.reserve(1024);
    sim_.reserve(traffic.size() / 4 + 1024);

    wan_.install(sim_);
    res_.link_failures = wan_.link_failures();

    if (cfg_.blackout_enabled()) {
      const unsigned br = cfg_.blackout_region;
      sim_.schedule_at(cfg_.blackout_start_s * 1000.0, [this, br] {
        down_[br] = 1;
        // Everything queued or in service in the region dies with it;
        // client timeouts recover the survivors' copies.
        const std::size_t n = stations_[br]->fail_all();
        res_.regions[br].lost += n;
        res_.lost_requests += n;
      });
      sim_.schedule_at(
          (cfg_.blackout_start_s + cfg_.blackout_duration_s) * 1000.0,
          [this, br] { down_[br] = 0; });
    }

    if (cfg_.grayout_enabled()) {
      const unsigned gr = cfg_.grayout_region;
      // Fail-slow, not fail-stop: the station keeps accepting work and
      // answering -- just grayout_slow_factor x later.  Nothing is lost
      // and no RNG stream is touched, so a disabled grayout leaves the
      // run byte-identical; only the probe's sojourn estimate (which
      // reads the station speed) can notice the degradation.
      sim_.schedule_at(cfg_.grayout_start_s * 1000.0, [this, gr] {
        stations_[gr]->set_speed(1.0 / cfg_.grayout_slow_factor);
      });
      sim_.schedule_at(
          (cfg_.grayout_start_s + cfg_.grayout_duration_s) * 1000.0,
          [this, gr] { stations_[gr]->set_speed(1.0); });
    }

    const double interval_ms = fo_.health_interval_s * 1000.0;
    for (unsigned r = 0; r < down_.size(); ++r) {
      schedule_probe(r, interval_ms);
    }

    for (std::size_t i = 0; i < traffic.size(); ++i) {
      const TrafficRequest& rq = traffic[i];
      sim_.schedule_at(rq.t_ms, [this, rq] { start_request(rq); });
    }

    // Probes and WAN events end at the horizon; requests resolve via
    // timeouts, so the queue drains on its own.
    sim_.run();

    for (std::size_t r = 0; r < stations_.size(); ++r) {
      RegionStats& s = res_.regions[r];
      s.expired = stations_[r]->expired();
      s.busy_ms = stations_[r]->busy_time();
      s.utilization =
          s.busy_ms /
          (horizon_ms_ * static_cast<double>(cfg_.regions[r].servers));
    }
    res_.goodput_qps = static_cast<double>(res_.answered) / cfg_.duration_s;
    res_.attempt_amplification =
        res_.requests > 0 ? static_cast<double>(res_.attempts) /
                                static_cast<double>(res_.requests)
                          : 0.0;
    res_.frac_over_service_p99 =
        res_.request_ms.fraction_above(res_.service_ms.quantile(0.99));
    return std::move(res_);
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct ReqRec {
    double t_arrival = 0;
    // Attempt parity: bumped on every retry and on slot reuse, so a
    // deliver/serve/reply/NACK event from an abandoned attempt (or a
    // previous occupant of the slot) compares stale and does nothing.
    std::uint64_t epoch = 0;
    std::uint32_t cls = 0;
    std::uint32_t origin = 0;
    std::uint32_t tried = 0;   // bitmask of regions attempted
    std::uint32_t region = 0;  // current attempt's target
    std::uint32_t attempts = 0;
    des::EventHandle timeout;
  };

  /// Per-region circuit breaker (bit-window state machine, as
  /// cluster.cpp keeps per leaf; CircuitBreakerPolicy caps window at 64).
  struct Breaker {
    enum State : std::uint8_t { kClosed, kOpen, kHalfOpen };
    State state = kClosed;
    std::uint64_t bits = 0;
    std::uint32_t filled = 0;
    std::uint32_t idx = 0;
    std::uint32_t fails = 0;
    std::uint32_t probes_left = 0;
    double open_until = 0;
  };

  std::uint32_t alloc_rec() {
    if (!free_.empty()) {
      const std::uint32_t h = free_.back();
      free_.pop_back();
      return h;
    }
    recs_.emplace_back();
    return static_cast<std::uint32_t>(recs_.size() - 1);
  }

  void free_rec(std::uint32_t h) {
    ReqRec& rec = recs_[h];
    sim_.cancel(rec.timeout);
    rec.timeout = {};
    ++rec.epoch;  // epochs never reset, so stale events can never match
    free_.push_back(h);
  }

  // --- failover machinery ------------------------------------------

  void schedule_probe(unsigned r, double t_ms) {
    if (t_ms > horizon_ms_) return;
    sim_.schedule_at(t_ms, [this, r, t_ms] {
      probe(r);
      schedule_probe(r, t_ms + fo_.health_interval_s * 1000.0);
    });
  }

  /// One health check against region r from the balancer's vantage
  /// (region 0): fails when the region is dark, its link is down, or its
  /// estimated queue sojourn blows the probe budget -- an overloaded
  /// region is an unhealthy region, which is what lets eviction act on
  /// overload, not just on blackouts.
  void probe(unsigned r) {
    RegionStats& s = res_.regions[r];
    ++s.probes;
    // The probe estimates sojourn from the *delivered* service rate:
    // a grayed-out station at speed 1/k serves k x slower, so the same
    // queue depth means k x the wait.  Dividing by speed() is what lets
    // the health check see a fail-SLOW region (speed 1.0 divides
    // exactly, so pre-grayout runs are bit-identical).
    const double est_sojourn =
        mean_service_ms_[r] / stations_[r]->speed() *
        (1.0 + static_cast<double>(stations_[r]->queue_length()) /
                   static_cast<double>(cfg_.regions[r].servers));
    const bool ok =
        !down_[r] && wan_.link_up(0, r) && est_sojourn <= fo_.probe_timeout_ms;
    if (ok) {
      consec_fail_[r] = 0;
      if (!healthy_[r] && ++consec_ok_[r] >= fo_.healthy_after) {
        healthy_[r] = 1;
        ++s.readmissions;
      }
    } else {
      ++s.probe_failures;
      consec_ok_[r] = 0;
      if (healthy_[r] && ++consec_fail_[r] >= fo_.unhealthy_after) {
        healthy_[r] = 0;
        ++s.evictions;
      }
    }
  }

  bool caps_on() const noexcept { return fo_.admission_cap_frac > 0; }

  /// Take one admission token for region r (token bucket at the
  /// balancer, rate = admission_cap_frac * capacity_qps).
  bool cap_take(unsigned r) {
    const double now = sim_.now();
    cap_tokens_[r] =
        std::min(fo_.admission_burst,
                 cap_tokens_[r] +
                     (now - cap_last_ms_[r]) * cap_rate_qps_[r] / 1000.0);
    cap_last_ms_[r] = now;
    if (cap_tokens_[r] < 1.0) return false;
    cap_tokens_[r] -= 1.0;
    return true;
  }

  void budget_credit() {
    if (fo_.budget_enabled) {
      btokens_ = std::min(fo_.budget_burst, btokens_ + fo_.budget_ratio);
    }
  }

  bool budget_take() {
    if (btokens_ < 1.0) return false;
    btokens_ -= 1.0;
    return true;
  }

  void breaker_open(Breaker& b) {
    b.state = Breaker::kOpen;
    b.open_until =
        sim_.now() +
        fo_.breaker.open_ms *
            (1.0 + fo_.breaker.open_jitter_frac * brng_.uniform(-1.0, 1.0));
    ++res_.breaker_open_transitions;
  }

  bool breaker_allows(unsigned r) {
    Breaker& b = breakers_[r];
    if (b.state == Breaker::kClosed) return true;
    if (b.state == Breaker::kOpen) {
      if (sim_.now() < b.open_until) return false;
      b.state = Breaker::kHalfOpen;
      b.probes_left = fo_.breaker.half_open_probes;
    }
    if (b.probes_left == 0) return false;
    --b.probes_left;
    return true;
  }

  void breaker_record(unsigned r, bool ok) {
    if (!fo_.breaker.enabled) return;
    Breaker& b = breakers_[r];
    switch (b.state) {
      case Breaker::kOpen:
        return;
      case Breaker::kHalfOpen:
        if (ok) {
          b = Breaker{};
        } else {
          breaker_open(b);
        }
        return;
      case Breaker::kClosed: {
        const CircuitBreakerPolicy& p = fo_.breaker;
        const std::uint64_t bit = std::uint64_t{1} << b.idx;
        if (b.filled == p.window) {
          if (b.bits & bit) --b.fails;
        } else {
          ++b.filled;
        }
        if (ok) {
          b.bits &= ~bit;
        } else {
          b.bits |= bit;
          ++b.fails;
        }
        b.idx = (b.idx + 1) % p.window;
        if (b.filled >= p.min_samples &&
            static_cast<double>(b.fails) >=
                p.failure_threshold * static_cast<double>(b.filled)) {
          breaker_open(b);
        }
        return;
      }
    }
  }

  // --- routing ------------------------------------------------------

  /// Candidate preference order for one request.  Latency/sticky use the
  /// precomputed static orders; capacity-aware sorts by instantaneous
  /// in-flight-per-server (ties by origin latency, then index) -- a
  /// pure function of simulation state, so determinism holds.
  const std::vector<unsigned>& candidate_order(const ReqRec& rec) {
    switch (cfg_.route) {
      case RoutePolicy::kLatencyWeighted:
        return pref_[rec.origin];
      case RoutePolicy::kStickySpillover:
        return sticky_pref_[rec.origin];
      case RoutePolicy::kCapacityAware:
        break;
    }
    scratch_order_ = pref_[rec.origin];
    const unsigned o = rec.origin;
    std::sort(scratch_order_.begin(), scratch_order_.end(),
              [&](unsigned a, unsigned b) {
                const double la = load_of(a);
                const double lb = load_of(b);
                if (la != lb) return la < lb;
                const double wa = cfg_.wan.base_latency(o, a);
                const double wb = cfg_.wan.base_latency(o, b);
                if (wa != wb) return wa < wb;
                return a < b;
              });
    return scratch_order_;
  }

  double load_of(unsigned r) const {
    return (static_cast<double>(stations_[r]->busy()) +
            static_cast<double>(stations_[r]->queue_length())) /
           static_cast<double>(cfg_.regions[r].servers);
  }

  /// Pick the region for one attempt: the first untried healthy
  /// candidate with admission tokens whose breaker admits traffic.  When
  /// nothing qualifies: with caps on the request is shed (return kNone);
  /// with caps off the balancer FAILS OPEN -- it routes to the first
  /// untried candidate ignoring health and breakers.  Fail-open is what
  /// an uncapped balancer really does (it has nowhere to shed to), and
  /// it is the behaviour that lets the rung-1 cascade happen at all.
  std::uint32_t pick_region(const ReqRec& rec) {
    const std::vector<unsigned>& order = candidate_order(rec);
    for (unsigned r : order) {
      if (rec.tried & (1u << r)) continue;
      if (!healthy_[r]) continue;
      if (caps_on() && !cap_take(r)) {
        ++res_.regions[r].capped;
        continue;
      }
      if (fo_.breaker.enabled && !breaker_allows(r)) {
        ++res_.breaker_short_circuits;
        continue;
      }
      return r;
    }
    if (!caps_on()) {
      for (unsigned r : order) {
        if (!(rec.tried & (1u << r))) return r;
      }
    }
    return kNone;
  }

  // --- request flow -------------------------------------------------

  void start_request(const TrafficRequest& rq) {
    const std::uint32_t h = alloc_rec();
    ReqRec& rec = recs_[h];
    rec.t_arrival = sim_.now();
    rec.cls = rq.cls;
    rec.origin = rq.origin;
    rec.tried = 0;
    rec.attempts = 0;
    budget_credit();  // first attempts fund the retry budget
    route_and_send(h);
  }

  void route_and_send(std::uint32_t h) {
    ReqRec& rec = recs_[h];
    const std::uint32_t r = pick_region(rec);
    if (r == kNone) {
      ++res_.shed;
      free_rec(h);
      return;
    }
    send(h, r);
  }

  void send(std::uint32_t h, std::uint32_t r) {
    ReqRec& rec = recs_[h];
    rec.region = r;
    rec.tried |= 1u << r;
    ++rec.attempts;
    ++res_.attempts;
    if (rec.attempts > 1) ++res_.retries;
    ++res_.regions[r].routed;
    const std::uint64_t epoch = rec.epoch;
    rec.timeout = sim_.schedule_cancellable(
        fo_.timeout_ms, [this, h, epoch] { on_timeout(h, epoch); });
    if (down_[r] || !wan_.link_up(rec.origin, r)) {
      // Lost in transit / at a dark region: only the timeout tells us.
      ++res_.regions[r].lost;
      ++res_.lost_requests;
      return;
    }
    const double hop = wan_.sample_latency_ms(rec.origin, r, wrng_);
    sim_.schedule(hop, [this, h, epoch] { deliver(h, epoch); });
  }

  void deliver(std::uint32_t h, std::uint64_t epoch) {
    ReqRec& rec = recs_[h];
    if (rec.epoch != epoch) return;
    const std::uint32_t r = rec.region;
    if (down_[r]) {  // went dark while the request was in flight
      ++res_.regions[r].lost;
      ++res_.lost_requests;
      return;
    }
    const double svc = dists_[r](srng_[r]) *
                       cfg_.traffic.classes[rec.cls].service_scale *
                       qos_mult_[r];
    res_.service_ms.add(svc);
    const bool ok = stations_[r]->request(
        svc, [this, h, epoch, r](des::Time, des::Time) {
          on_served(h, epoch, r);
        });
    if (!ok) {
      // Bounded queue full: synchronous NACK, heard after the return hop
      // -- much sooner than the timeout, which is the point of bounding.
      ++res_.regions[r].rejected;
      const double back = wan_.sample_latency_ms(r, rec.origin, wrng_);
      sim_.schedule(back, [this, h, epoch] { on_nack(h, epoch); });
    }
  }

  void on_served(std::uint32_t h, std::uint64_t epoch, std::uint32_t r) {
    ++res_.regions[r].completed;
    ReqRec& rec = recs_[h];
    if (rec.epoch != epoch) return;  // client moved on: wasted work
    const double back = wan_.sample_latency_ms(r, rec.origin, wrng_);
    sim_.schedule(back, [this, h, epoch] { on_reply(h, epoch); });
  }

  void on_reply(std::uint32_t h, std::uint64_t epoch) {
    ReqRec& rec = recs_[h];
    if (rec.epoch != epoch) return;
    sim_.cancel(rec.timeout);
    rec.timeout = {};
    const std::uint32_t r = rec.region;
    breaker_record(r, true);
    const double latency = sim_.now() - rec.t_arrival;
    res_.request_ms.add(latency);
    ++res_.answered;
    ClassStats& cs = res_.classes[rec.cls];
    ++cs.answered;
    if (latency <= cfg_.traffic.classes[rec.cls].slo_ms) ++cs.slo_met;
    note_answered(r);
    free_rec(h);
  }

  void on_nack(std::uint32_t h, std::uint64_t epoch) {
    ReqRec& rec = recs_[h];
    if (rec.epoch != epoch) return;
    sim_.cancel(rec.timeout);
    rec.timeout = {};
    ++rec.epoch;
    breaker_record(rec.region, false);
    retry(h);
  }

  void on_timeout(std::uint32_t h, std::uint64_t epoch) {
    ReqRec& rec = recs_[h];
    if (rec.epoch != epoch) return;
    rec.timeout = {};
    ++res_.timeouts;
    ++rec.epoch;  // abandon the in-flight attempt
    breaker_record(rec.region, false);
    retry(h);
  }

  void retry(std::uint32_t h) {
    ReqRec& rec = recs_[h];
    if (rec.attempts > fo_.max_retries) {
      ++res_.failed;
      free_rec(h);
      return;
    }
    if (fo_.budget_enabled && !budget_take()) {
      ++res_.budget_denials;
      ++res_.failed;
      free_rec(h);
      return;
    }
    // Prefer an untried region; once every region has been tried, the
    // ladder starts over (the blackout may have cleared).
    if (rec.tried == (1u << down_.size()) - 1u) rec.tried = 0;
    route_and_send(h);
  }

  void note_answered(std::uint32_t serving_region) {
    if (window_ms_ <= 0) return;
    const auto idx = static_cast<std::size_t>(sim_.now() / window_ms_);
    if (idx >= res_.answered_per_window.size()) {
      res_.answered_per_window.resize(idx + 1, 0);
    }
    ++res_.answered_per_window[idx];
    std::vector<std::uint64_t>& rw =
        res_.region_answered_per_window[serving_region];
    if (idx >= rw.size()) rw.resize(idx + 1, 0);
    ++rw[idx];
  }

  const MultiRegionConfig& cfg_;
  const FailoverPolicy& fo_;
  const double horizon_ms_;
  des::Simulator sim_;
  Wan wan_;
  Rng wrng_;  // WAN jitter only
  Rng brng_;  // breaker cooldown jitter only
  std::vector<std::unique_ptr<des::Resource>> stations_;
  std::vector<LatencyDist> dists_;
  std::vector<Rng> srng_;  // per-region service draws
  std::vector<double> qos_mult_;
  std::vector<double> cap_rate_qps_;
  std::vector<double> mean_service_ms_;
  std::vector<char> down_;
  std::vector<char> healthy_;
  std::vector<unsigned> consec_fail_;
  std::vector<unsigned> consec_ok_;
  std::vector<double> cap_tokens_;
  std::vector<double> cap_last_ms_;
  std::vector<Breaker> breakers_;
  double btokens_ = 0;
  std::vector<std::vector<unsigned>> pref_;
  std::vector<std::vector<unsigned>> sticky_pref_;
  std::vector<unsigned> scratch_order_;
  std::vector<ReqRec> recs_;
  std::vector<std::uint32_t> free_;
  double window_ms_ = 0;
  MultiRegionResult res_;
};

}  // namespace

MultiRegionResult simulate_multiregion(const MultiRegionConfig& cfg) {
  cfg.validate();
  MultiRegionSim sim(cfg);
  return sim.run();
}

MultiRegionResult run_multiregion_trials(const MultiRegionConfig& cfg,
                                         unsigned trials, ThreadPool* pool) {
  cfg.validate();
  if (trials == 0) {
    throw std::invalid_argument("run_multiregion_trials: trials must be > 0");
  }
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  MultiRegionResult identity;
  identity.trials = 0;
  return tp.parallel_reduce<MultiRegionResult>(
      trials, std::move(identity), /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        MultiRegionResult acc;
        acc.trials = 0;
        for (std::size_t i = begin; i < end; ++i) {
          MultiRegionConfig c = cfg;
          c.seed = Rng(cfg.seed, i).next();
          MultiRegionResult one = simulate_multiregion(c);
          if (acc.trials == 0) {
            acc = std::move(one);
          } else {
            acc.merge(one);
          }
        }
        return acc;
      },
      [](MultiRegionResult acc, MultiRegionResult chunk) {
        if (acc.trials == 0) return chunk;
        if (chunk.trials == 0) return acc;
        acc.merge(chunk);
        return acc;
      });
}

std::vector<MultiRegionScenario> failover_scenarios(
    const MultiRegionConfig& base, unsigned trials, ThreadPool* pool) {
  // `base` carries the FULL protection stack (rung 3); lower rungs strip
  // it so every rung shares the same workload, WAN, and blackout draws.
  MultiRegionConfig full = base;
  if (full.failover.admission_cap_frac <= 0) {
    full.failover.admission_cap_frac = 0.9;
  }

  MultiRegionConfig naked = full;
  for (RegionConfig& r : naked.regions) r.queue = {};  // unbounded FIFO
  naked.failover.admission_cap_frac = 0;
  naked.failover.budget_enabled = false;
  naked.failover.breaker.enabled = false;
  naked.failover.healthy_after = 1;

  MultiRegionConfig capped = full;
  capped.failover.budget_enabled = false;
  capped.failover.breaker.enabled = false;
  capped.failover.healthy_after = 1;

  std::vector<MultiRegionScenario> out;
  out.push_back({"no caps (fail-open)", naked,
                 run_multiregion_trials(naked, trials, pool)});
  out.push_back({"admission caps + bounded queues", capped,
                 run_multiregion_trials(capped, trials, pool)});
  out.push_back({"caps + hysteresis + breakers", full,
                 run_multiregion_trials(full, trials, pool)});

  // Rung 4: the same disruption window as a GRAY failure -- the region
  // does not go dark, it goes fail-slow (E34's fault model at region
  // scale).  Breakers cannot see it (a slow region still replies), so
  // containment rides on the probe's speed-aware sojourn estimate
  // feeding the same eviction/re-admission hysteresis as the blackout.
  if (full.blackout_enabled()) {
    MultiRegionConfig gray = full;
    gray.grayout_region = gray.blackout_region;
    gray.grayout_start_s = gray.blackout_start_s;
    gray.grayout_duration_s = gray.blackout_duration_s;
    gray.blackout_region = MultiRegionConfig::kNoBlackout;
    gray.blackout_start_s = 0;
    gray.blackout_duration_s = 0;
    out.push_back({"gray-out (fail-slow region) + full stack", gray,
                   run_multiregion_trials(gray, trials, pool)});
  }
  return out;
}

RegionalHysteresis multiregion_hysteresis(const MultiRegionResult& r,
                                          const MultiRegionConfig& cfg,
                                          bool surviving_only,
                                          double settle_s) {
  RegionalHysteresis h;
  const double w = cfg.goodput_window_s;
  if (w <= 0 || !(cfg.blackout_enabled() || cfg.grayout_enabled())) return h;

  // The measured disruption: blackout or grayout, whichever is enabled
  // (validate() rejects both at once).
  const bool black = cfg.blackout_enabled();
  const unsigned ev_region = black ? cfg.blackout_region : cfg.grayout_region;
  const double ev_start = black ? cfg.blackout_start_s : cfg.grayout_start_s;
  const double ev_duration =
      black ? cfg.blackout_duration_s : cfg.grayout_duration_s;

  auto count = [&](std::size_t i) -> double {
    if (!surviving_only) {
      return i < r.answered_per_window.size()
                 ? static_cast<double>(r.answered_per_window[i])
                 : 0.0;
    }
    double sum = 0;
    for (std::size_t reg = 0; reg < r.region_answered_per_window.size();
         ++reg) {
      if (reg == ev_region) continue;
      const auto& win = r.region_answered_per_window[reg];
      if (i < win.size()) sum += static_cast<double>(win[i]);
    }
    return sum;
  };
  const double per_win = w * static_cast<double>(std::max(r.trials, 1u));

  // Complete windows strictly before the disruption; window 0 is warmup.
  const auto pre_end = static_cast<std::size_t>(ev_start / w);
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < pre_end; ++i, ++n) sum += count(i);
  if (n > 0) h.pre_qps = sum / (static_cast<double>(n) * per_win);

  // Complete windows inside the horizon, after the disruption plus settle.
  const auto post_begin = static_cast<std::size_t>(
      std::ceil((ev_start + ev_duration + settle_s) / w));
  const auto post_end = static_cast<std::size_t>(cfg.duration_s / w);
  sum = 0;
  n = 0;
  for (std::size_t i = post_begin; i < post_end; ++i, ++n) sum += count(i);
  if (n > 0) h.post_qps = sum / (static_cast<double>(n) * per_win);
  return h;
}

}  // namespace arch21::cloud
