#include "cloud/wan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace arch21::cloud {

namespace {

constexpr double kMsPerHour = 3.6e6;

[[noreturn]] void bad(const char* strct, const char* field) {
  throw std::invalid_argument(std::string(strct) + "::" + field);
}

}  // namespace

unsigned WanConfig::link_index(unsigned a, unsigned b) const noexcept {
  if (a > b) std::swap(a, b);
  // Row-packed upper triangle: pairs (a, *) start after the
  // a * regions - a*(a+1)/2 pairs of earlier rows.
  return a * regions - a * (a + 1) / 2 + (b - a - 1);
}

double WanConfig::base_latency(unsigned a, unsigned b) const noexcept {
  if (a == b) return intra_ms;
  if (!latency_ms.empty()) return latency_ms[a * regions + b];
  const unsigned d = a > b ? a - b : b - a;
  const unsigned ring = std::min(d, regions - d);
  return base_latency_ms * static_cast<double>(ring);
}

void WanConfig::validate() const {
  if (regions < 2) bad("WanConfig", "regions must be >= 2");
  if (!latency_ms.empty()) {
    if (latency_ms.size() !=
        static_cast<std::size_t>(regions) * static_cast<std::size_t>(regions)) {
      bad("WanConfig", "latency_ms must be regions x regions (or empty)");
    }
    for (unsigned a = 0; a < regions; ++a) {
      for (unsigned b = 0; b < regions; ++b) {
        const double l = latency_ms[a * regions + b];
        if (a != b && (!(l > 0) || !std::isfinite(l))) {
          bad("WanConfig", "latency_ms entries must be finite and > 0");
        }
      }
    }
  } else if (!(base_latency_ms > 0)) {
    bad("WanConfig", "base_latency_ms must be > 0");
  }
  if (!(intra_ms >= 0)) bad("WanConfig", "intra_ms must be >= 0");
  if (!(jitter_frac >= 0) || !(jitter_frac < 1)) {
    bad("WanConfig", "jitter_frac must be in [0, 1)");
  }
  if (link_faults) {
    if (!(link.mtbf_hours > 0)) {
      bad("WanConfig", "link.mtbf_hours must be > 0");
    }
    if (!(link.mttr_hours >= 0)) {
      bad("WanConfig", "link.mttr_hours must be >= 0");
    }
  }
  if (gray_links) {
    if (!(gray_link.mtbf_hours > 0)) {
      bad("WanConfig", "gray_link.mtbf_hours must be > 0");
    }
    if (!(gray_link.mttr_hours >= 0)) {
      bad("WanConfig", "gray_link.mttr_hours must be >= 0");
    }
    if (!(gray_factor_min >= 1) || !std::isfinite(gray_factor_min)) {
      bad("WanConfig", "gray_factor_min must be finite and >= 1");
    }
    if (!(gray_factor_max >= gray_factor_min) ||
        !std::isfinite(gray_factor_max)) {
      bad("WanConfig", "gray_factor_max must be finite and >= gray_factor_min");
    }
    if (!(gray_loss_fraction >= 0) || !(gray_loss_fraction < 1)) {
      bad("WanConfig", "gray_loss_fraction must be in [0, 1)");
    }
  }
}

Wan::Wan(const WanConfig& cfg, double horizon_ms, std::uint64_t seed)
    : cfg_(cfg) {
  cfg_.validate();
  if (!(horizon_ms > 0)) {
    throw std::invalid_argument("Wan: horizon_ms must be > 0");
  }
  link_up_.assign(cfg_.links(), 1);
  if (cfg_.link_faults) {
    // Links are the "leaves" of a domain-free failure trace: link l draws
    // its lifetime from the Rng(seed, l) sub-stream inside
    // generate_failure_trace, so the trace is a pure function of
    // (cfg, horizon, seed).
    reliab::FailureTraceConfig fcfg;
    fcfg.leaves = cfg_.links();
    fcfg.leaves_per_domain = 0;
    fcfg.leaf = cfg_.link;
    fcfg.horizon_hours = horizon_ms / kMsPerHour;
    fcfg.seed = seed;
    trace_ = reliab::generate_failure_trace(fcfg);
  }
  gray_factor_.assign(cfg_.links(), 0.0);
  if (cfg_.gray_links) {
    // Gray episodes live on a sub-stream derived from `seed` so they can
    // never collide with the fail-stop trace's per-link Rng(seed, l)
    // streams: slow-mode severities double as the latency inflation.
    reliab::GrayTraceConfig gcfg;
    gcfg.entities = cfg_.links();
    gcfg.episode = cfg_.gray_link;
    gcfg.w_slow = 1;
    gcfg.w_lossy = 0;
    gcfg.w_zombie = 0;
    gcfg.w_jittery = 0;
    gcfg.slow_factor_min = cfg_.gray_factor_min;
    gcfg.slow_factor_max = cfg_.gray_factor_max;
    gcfg.horizon_hours = horizon_ms / kMsPerHour;
    gcfg.seed = Rng(seed, 0x6A41).next();
    gray_trace_ = reliab::generate_gray_trace(gcfg);
  }
}

void Wan::install(des::Simulator& sim) {
  for (const reliab::FailureEvent& ev : trace_.events) {
    sim.schedule_at(ev.t_hours * kMsPerHour, [this, ev] {
      link_up_[ev.entity] = ev.up ? 1 : 0;
    });
  }
  for (const reliab::GrayEvent& ev : gray_trace_.events) {
    sim.schedule_at(ev.t_hours * kMsPerHour, [this, ev] {
      gray_factor_[ev.entity] = ev.onset ? ev.severity : 0.0;
    });
  }
}

bool Wan::link_up(unsigned a, unsigned b) const noexcept {
  if (a == b) return true;
  return link_up_[cfg_.link_index(a, b)] != 0;
}

double Wan::sample_latency_ms(unsigned a, unsigned b,
                              Rng& rng) const noexcept {
  double base = cfg_.base_latency(a, b);
  if (a != b) {
    const double factor = gray_factor_[cfg_.link_index(a, b)];
    if (factor > 0) base *= factor;
  }
  if (cfg_.jitter_frac <= 0 || base <= 0) return base;
  return base * (1.0 + cfg_.jitter_frac * rng.uniform(-1.0, 1.0));
}

bool Wan::link_degraded(unsigned a, unsigned b) const noexcept {
  if (a == b) return false;
  return gray_factor_[cfg_.link_index(a, b)] > 0;
}

bool Wan::link_delivers(unsigned a, unsigned b, Rng& rng) const noexcept {
  if (!link_degraded(a, b) || cfg_.gray_loss_fraction <= 0) return true;
  return !rng.chance(cfg_.gray_loss_fraction);
}

}  // namespace arch21::cloud
