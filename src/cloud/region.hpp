#pragma once
// Multi-region failover simulator (E31): 3-5 geo-distributed serving
// regions behind a global load balancer, connected by the seeded WAN
// model (cloud/wan.hpp) and fed by the open-loop traffic generator
// (cloud/traffic.hpp).
//
// This is ROADMAP item 2 -- the paper's datacenter/tail-at-scale agenda
// at its stated regional scale.  Each region is an M/G/k station
// (des::Resource with `servers` servers) whose per-query service times
// come from cloud/tail.hpp's make_leaf_distribution (lognormal body +
// Pareto stragglers, the production leaf shape) inflated by colocated
// best-effort load through the cloud/qos.hpp interference model, and
// whose queueing knee is predicted by cloud/queueing.hpp's Erlang-C
// closed form.  The previously underexercised qos/queueing/tail modules
// are the per-region physics here.
//
// The global load balancer routes each arriving query by a pluggable
// policy (latency-weighted, capacity-aware, sticky-with-spillover),
// drives health-check eviction of unhealthy regions with hysteresis on
// re-admission, enforces optional per-region admission caps (so failover
// traffic cannot metastabilize a healthy region), and runs per-region
// circuit breakers + a retry budget on the client side.  When every
// candidate region is unhealthy the balancer *fails open* (routes by
// preference anyway) unless caps are on -- capped excess is shed fast.
//
// The headline drill (bench_multiregion): blackout one region
// mid-diurnal-peak and sweep the failover-policy ladder.  Without caps
// the failover wave overloads the survivors, retry amplification keeps
// the queues full of work nobody is waiting for, and goodput stays
// collapsed long after the region returns -- the regional metastable
// cascade.  With caps + hysteresis + breakers the excess is shed at the
// edge and global goodput snaps back.
//
// Determinism: one simulation is a serial DES; every stochastic
// component (traffic, WAN jitter, link faults, service draws, breaker
// jitter) draws from a dedicated Rng sub-stream of the config seed, and
// run_multiregion_trials() aggregates Rng(seed, i)-reseeded trials in
// trial order on the work-stealing pool -- bit-identical for any pool
// size, the contract every bench in this repo gates on.

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/policy.hpp"
#include "cloud/traffic.hpp"
#include "cloud/wan.hpp"
#include "des/resource.hpp"
#include "util/histogram.hpp"
#include "util/thread_pool.hpp"

namespace arch21::cloud {

/// Global load-balancer routing policy.
enum class RoutePolicy : std::uint8_t {
  /// Prefer the region with the lowest WAN latency from the query's
  /// origin zone (ties by region index).
  kLatencyWeighted,
  /// Prefer the region with the most spare serving capacity right now
  /// (lowest in-flight-per-server), ties by origin latency.
  kCapacityAware,
  /// Pin each origin zone to its home region; spill to the latency
  /// order only when the home region is unhealthy, capped, or tried.
  kStickySpillover,
};

const char* to_string(RoutePolicy p) noexcept;

/// One serving region: an M/G/k station whose service-time shape is the
/// cloud/tail.hpp leaf distribution, degraded by colocated best-effort
/// work per the cloud/qos.hpp interference model.
struct RegionConfig {
  std::string name = "region";
  unsigned servers = 8;
  double service_median_ms = 3.0;  ///< lognormal body median
  double service_sigma = 0.4;
  double p_straggler = 0.01;       ///< Pareto straggler fraction
  double straggler_scale_ms = 30.0;
  double straggler_alpha = 1.5;    ///< straggler tail shape, > 1
  /// Colocated best-effort utilization (0 = dedicated machines) and
  /// whether hardware QoS partitioning caps its interference -- the
  /// cloud/qos.hpp model applied per region.
  double be_utilization = 0.0;
  bool qos_partitioned = true;
  /// Per-region server queue (shared by the `servers` servers).
  /// Defaults to the unbounded FIFO station.
  des::QueuePolicy queue;

  /// QoS service-time inflation factor (>= 1) from be_utilization.
  double qos_inflation() const noexcept;
  /// Mean per-query service time: lognormal-body mean + straggler mean,
  /// times the QoS inflation.
  double mean_service_ms() const noexcept;
  /// Steady-state serving capacity, queries/s (servers / mean service).
  double capacity_qps() const noexcept {
    return static_cast<double>(servers) * 1000.0 / mean_service_ms();
  }
  /// Erlang-C predicted mean sojourn at `rate_qps` (cloud/queueing.hpp);
  /// +inf when the rate exceeds capacity.
  double predicted_sojourn_ms(double rate_qps) const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Global-balancer failover behaviour: health checks, eviction
/// hysteresis, per-region admission caps, client retries + budget, and
/// per-region circuit breakers.
struct FailoverPolicy {
  // --- health checking ---
  double health_interval_s = 0.25;  ///< probe period per region
  /// A probe fails when the region is down, its link from the balancer's
  /// vantage (region 0) is down, or the region's estimated queue sojourn
  /// exceeds this budget -- an overloaded region is an unhealthy region.
  double probe_timeout_ms = 60;
  unsigned unhealthy_after = 2;  ///< consecutive failures -> evict
  /// Consecutive successes before an evicted region is re-admitted.
  /// 1 = immediate re-admission; > 1 is the hysteresis that stops a
  /// recovering region from being slammed and re-evicted in a flap loop.
  unsigned healthy_after = 1;

  // --- per-region admission caps (0 = uncapped) ---
  /// Token-bucket rate per region = admission_cap_frac * capacity_qps().
  /// A capped region NACKs at the balancer (no WAN round trip) and the
  /// query spills to the next candidate; if every region refuses, the
  /// query is shed.  This is the cap that keeps failover traffic from
  /// metastabilizing the surviving regions.
  double admission_cap_frac = 0;
  double admission_burst = 32;  ///< token-bucket depth

  // --- client behaviour at the balancer ---
  double timeout_ms = 120;    ///< per-attempt timeout
  unsigned max_retries = 2;   ///< re-routes after the first attempt
  /// Retry budget (token bucket, cloud/policy.hpp semantics): first
  /// attempts credit `budget_ratio` tokens, retries debit one.
  bool budget_enabled = false;
  double budget_ratio = 0.1;
  double budget_burst = 50;
  /// Per-region circuit breaker (reuses CircuitBreakerPolicy; failures
  /// are observed timeouts/NACKs against that region).
  CircuitBreakerPolicy breaker;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// The full multi-region scenario.
struct MultiRegionConfig {
  static constexpr unsigned kNoBlackout = 0xffffffffu;

  std::vector<RegionConfig> regions;  ///< 2..32 regions
  WanConfig wan;                      ///< wan.regions must match
  TrafficConfig traffic;              ///< origin zone i is near region i
  RoutePolicy route = RoutePolicy::kLatencyWeighted;
  FailoverPolicy failover;
  double duration_s = 60;
  /// Windowed goodput series (0 records nothing), as in ClusterConfig.
  double goodput_window_s = 1.0;
  std::uint64_t seed = 2014;

  /// Deterministic regional blackout (the E31 trigger): region
  /// `blackout_region` goes dark at blackout_start_s for
  /// blackout_duration_s -- its station crashes (fail_all) and every
  /// request sent there is lost until it recovers.
  unsigned blackout_region = kNoBlackout;
  double blackout_start_s = 0;
  double blackout_duration_s = 0;

  /// Deterministic regional GRAY-out -- the fail-slow twin of the
  /// blackout (E34's fault model at region scale): region
  /// `grayout_region` serves `grayout_slow_factor`x slower from
  /// grayout_start_s for grayout_duration_s.  Nothing crashes and no
  /// request is lost; the station keeps accepting work and answering
  /// late, so the only thing that can see it is the health probe's
  /// queue-sojourn estimate.  Mutually exclusive with the blackout
  /// (the hysteresis windows need a single disruption to measure
  /// around); draws no randomness, so a disabled grayout is
  /// byte-identical.
  unsigned grayout_region = kNoBlackout;
  double grayout_start_s = 0;
  double grayout_duration_s = 0;
  double grayout_slow_factor = 4.0;

  bool blackout_enabled() const noexcept {
    return blackout_region != kNoBlackout && blackout_duration_s > 0;
  }
  bool grayout_enabled() const noexcept {
    return grayout_region != kNoBlackout && grayout_duration_s > 0;
  }
  /// Total steady-state capacity across regions, queries/s.
  double total_capacity_qps() const noexcept;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Per-region telemetry (raw counters; merge() sums).
struct RegionStats {
  std::uint64_t routed = 0;     ///< attempts the balancer aimed here
  std::uint64_t capped = 0;     ///< refused by the admission cap
  std::uint64_t rejected = 0;   ///< bounced off a full bounded queue
  std::uint64_t expired = 0;    ///< deadline-dropped at dequeue
  std::uint64_t completed = 0;  ///< served to completion
  std::uint64_t lost = 0;       ///< sent into a blackout / dead link
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t evictions = 0;
  std::uint64_t readmissions = 0;
  double busy_ms = 0;          ///< server-ms of rendered service
  double utilization = 0;      ///< busy / (horizon x servers), per-trial avg
};

/// Per-traffic-class telemetry.
struct ClassStats {
  std::uint64_t answered = 0;
  std::uint64_t slo_met = 0;  ///< answered within the class SLO
};

/// Simulation output.  Counters are raw so multi-trial aggregates can
/// merge(); ratio fields are averaged per-trial.
struct MultiRegionResult {
  std::uint64_t requests = 0;  ///< offered by the traffic generator
  std::uint64_t answered = 0;
  std::uint64_t failed = 0;    ///< timed out past the retry ladder
  std::uint64_t shed = 0;      ///< fast-failed at the balancer (all capped)
  std::uint64_t attempts = 0;  ///< sends, including retries
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t budget_denials = 0;
  std::uint64_t lost_requests = 0;  ///< vanished into blackouts/dead links
  std::uint64_t breaker_open_transitions = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t link_failures = 0;  ///< WAN link failure events in the trace
  LogHistogram request_ms{1e-2, 1e6, 90};  ///< end-to-end answered latency
  LogHistogram service_ms{1e-3, 1e6, 90};  ///< per-attempt service draws
  /// Fraction of answered requests at least as slow as the service p99
  /// (compare tail_amplification()'s closed form).
  double frac_over_service_p99 = 0;
  double goodput_qps = 0;  ///< answered per second, per-trial average
  /// attempts / requests: 1.0 = no extra WAN load; the storm metric.
  double attempt_amplification = 0;

  std::vector<RegionStats> regions;
  std::vector<ClassStats> classes;

  /// Window size the series below were recorded on (0 = none recorded).
  /// merge() throws std::invalid_argument when two results disagree --
  /// summing misaligned windows would silently corrupt the hysteresis
  /// measurement.
  double goodput_window_s = 0;
  /// Answered requests per window, global and by *serving* region.
  std::vector<std::uint64_t> answered_per_window;
  std::vector<std::vector<std::uint64_t>> region_answered_per_window;

  unsigned trials = 1;

  /// Fold `other` in: counters add, histograms merge, windows sum
  /// element-wise (after the window/shape checks), per-trial ratios
  /// average weighted by trial counts.
  void merge(const MultiRegionResult& other);
};

/// Run one seeded multi-region simulation.
MultiRegionResult simulate_multiregion(const MultiRegionConfig& cfg);

/// Aggregate `trials` independent simulations (trial i reseeded with
/// Rng(cfg.seed, i).next()) on `pool` (ThreadPool::global() when null),
/// merged in trial order: bit-identical for any pool size.
MultiRegionResult run_multiregion_trials(const MultiRegionConfig& cfg,
                                         unsigned trials,
                                         ThreadPool* pool = nullptr);

/// One named rung of the failover-policy ladder.
struct MultiRegionScenario {
  std::string name;
  MultiRegionConfig config;
  MultiRegionResult result;
};

/// The E31 ladder, every rung on the same seeded workload + blackout:
///   1. no caps        -- fail-open balancer, naive retries, unbounded
///                        FIFO regions (the cascade rung)
///   2. admission caps  -- per-region token caps + bounded deadline queues
///   3. caps + hysteresis + breakers -- re-admission hysteresis, retry
///                        budget, per-region circuit breakers (full)
///   4. gray-out       -- the full stack again, but the disrupted region
///                        goes fail-SLOW instead of dark (same region,
///                        start, and duration as the blackout, served at
///                        grayout_slow_factor x slower).  Appended only
///                        when `base` blacks out a region.  What contains
///                        it is the probe's sojourn estimate tripping the
///                        same eviction/re-admission hysteresis the
///                        blackout exercises.
std::vector<MultiRegionScenario> failover_scenarios(
    const MultiRegionConfig& base, unsigned trials, ThreadPool* pool = nullptr);

/// Windowed-goodput hysteresis around the regional disruption (blackout
/// or grayout, whichever the config enables), as cloud::goodput_hysteresis
/// does for E29: mean goodput over complete windows strictly before the
/// disruption (window 0 is warmup) vs complete windows after it cleared
/// plus `settle_s`.  With `surviving_only` the per-serving-region series
/// excludes the disrupted region on both sides -- the "did the failover
/// wave wreck the healthy regions" measurement.  Returns zeros unless the
/// config records windows and disrupts a region.
struct RegionalHysteresis {
  double pre_qps = 0;
  double post_qps = 0;
  double recovery_ratio() const noexcept {
    return pre_qps > 0 ? post_qps / pre_qps : 0;
  }
};

RegionalHysteresis multiregion_hysteresis(const MultiRegionResult& r,
                                          const MultiRegionConfig& cfg,
                                          bool surviving_only,
                                          double settle_s = 2.0);

}  // namespace arch21::cloud
