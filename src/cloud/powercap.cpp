#include "cloud/powercap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace arch21::cloud {

namespace {

[[noreturn]] void bad(const char* field) {
  throw std::invalid_argument(std::string("PowercapConfig::") + field);
}

}  // namespace

std::vector<Pstate> pstate_ladder(const tech::DvfsModel& dvfs, unsigned n) {
  if (n < 2) {
    throw std::invalid_argument("pstate_ladder: need at least 2 p-states");
  }
  const double fnom = dvfs.frequency(dvfs.params().vnom);
  const double pnom = dvfs.power(dvfs.params().vnom);
  std::vector<Pstate> out;
  out.reserve(n);
  for (const tech::DvfsModel::Point& pt : dvfs.sweep(static_cast<int>(n))) {
    out.push_back({pt.v, pt.f_hz / fnom, pt.power_w / pnom});
  }
  // The sweep's top supply IS vnom, but reconstructing 1.0 through the
  // divisions above could leave residue; pin the nominal state exactly
  // (Resource::set_speed(1.0) must divide service times exactly).
  out.back() = {dvfs.params().vnom, 1.0, 1.0};
  return out;
}

std::size_t capped_pstate(const std::vector<Pstate>& ladder, double idle_w,
                          double peak_w, double cap_w_per_server) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const double worst = idle_w + (peak_w - idle_w) * ladder[i].power_ratio;
    if (worst <= cap_w_per_server) best = i;  // ladder ascends in speed
  }
  return best;
}

void PowercapConfig::validate() const {
  if (!enabled) return;
  if (!(server.idle_w >= 0)) bad("server.idle_w must be >= 0");
  if (!(server.peak_w > server.idle_w)) {
    bad("server.peak_w must exceed server.idle_w");
  }
  if (!(cap_fraction > 0) || !(cap_fraction <= 1.0)) {
    bad("cap_fraction must be in (0, 1]");
  }
  if (!(cap_fraction * server.peak_w > server.idle_w)) {
    bad("cap_fraction * peak_w must exceed idle_w "
        "(a cap below the idle floor cannot be met by throttling)");
  }
  if (!(window_s > 0) || !std::isfinite(window_s)) {
    bad("window_s must be finite and > 0");
  }
  if (pstates < 2) bad("pstates must be >= 2");
  if (!(pace_target > 0) || !(pace_target <= 1.0)) {
    bad("pace_target must be in (0, 1]");
  }
  if (!(admit_margin > 0) || !(admit_margin <= 1.0)) {
    bad("admit_margin must be in (0, 1]");
  }
  const tech::DvfsModel model(dvfs);  // throws on a malformed curve
  (void)model;
}

PowercapRuntime::PowercapRuntime(const PowercapConfig& cfg, unsigned leaves,
                                 double leaf_service_ms,
                                 double background_dyn_frac)
    : cfg_((cfg.validate(), cfg)),
      leaves_n_(leaves),
      ladder_(pstate_ladder(tech::DvfsModel(cfg.dvfs), cfg.pstates)),
      budget_("datacenter-it", cfg.cap_fraction *
                                  static_cast<double>(leaves) *
                                  cfg.server.peak_w) {
  if (leaves == 0) {
    throw std::invalid_argument("PowercapRuntime: need at least one leaf");
  }
  idle_w_total_ = static_cast<double>(leaves) * cfg_.server.idle_w;
  window_ms_ = cfg_.window_s * 1000.0;
  window_budget_j_ = (budget_.cap() - idle_w_total_) * cfg_.window_s;
  // The idle floor is a standing component of the budget; the per-window
  // dynamic draw is added/removed each boundary (remove() recomputes the
  // total, so the churn never drifts).
  budget_.add("idle-floor", idle_w_total_);

  const double pdyn_full = cfg_.server.peak_w - cfg_.server.idle_w;
  leaf_pstate_.assign(leaves, ladder_.size() - 1);
  leaf_pdyn_w_.assign(leaves, pdyn_full);
  leaf_busy_prev_.assign(leaves, 0.0);
  leaf_demand_ewma_.assign(leaves, 0.0);

  if (cfg_.policy == PowercapPolicy::kUniform) {
    // The naive static throttle: the fastest p-state that is safe even
    // with every leaf flat out for a whole window.
    const std::size_t p =
        capped_pstate(ladder_, cfg_.server.idle_w, cfg_.server.peak_w,
                      budget_.cap() / static_cast<double>(leaves));
    for (unsigned l = 0; l < leaves; ++l) set_pstate(l, p);
  }

  if (cfg_.policy == PowercapPolicy::kGovernor) {
    // Convert the window budget into a sustainable query rate: each
    // admitted query costs every leaf one service at vnom dynamic power,
    // and the background load (also at vnom) gets first claim.  This is
    // the AIMD *ceiling*; the live rate backs off whenever the energy
    // gate reports that the estimate over-admitted (one joule per query
    // is a healthy-cluster number -- a retry storm multiplies it).
    const double bg_w =
        static_cast<double>(leaves) * background_dyn_frac * pdyn_full;
    const double query_j = static_cast<double>(leaves) *
                           (leaf_service_ms * 1e-3) * pdyn_full;
    const double avail_w =
        std::max(0.0, (budget_.cap() - idle_w_total_) - bg_w);
    admit_rate_max_ =
        query_j > 0 ? cfg_.admit_margin * avail_w / query_j : 0;
    set_admit_rate(admit_rate_max_);
    // Start with one token, not a full burst: an initial burst admits
    // ~2x the sustainable rate into the first window, trips the gate,
    // and AIMD then punishes the cluster for the inrush.
    admit_tokens_ = 1.0;
  }
}

void PowercapRuntime::set_admit_rate(double qps) {
  admit_rate_qps_ = std::clamp(qps, admit_rate_max_ / 64.0, admit_rate_max_);
  admit_burst_ = std::max(1.0, admit_rate_qps_ * cfg_.window_s);
  admit_tokens_ = std::min(admit_tokens_, admit_burst_);
}

void PowercapRuntime::set_pstate(unsigned leaf, std::size_t p) {
  leaf_pstate_[leaf] = p;
  leaf_pdyn_w_[leaf] =
      (cfg_.server.peak_w - cfg_.server.idle_w) * ladder_[p].power_ratio;
  if (!res_.empty()) res_[leaf]->set_speed(ladder_[p].speed);
}

void PowercapRuntime::attach(
    const std::vector<std::unique_ptr<des::Resource>>& leaves) {
  res_.clear();
  res_.reserve(leaves.size());
  for (const auto& l : leaves) res_.push_back(l.get());
  for (unsigned l = 0; l < leaves_n_; ++l) {
    res_[l]->set_speed(ladder_[leaf_pstate_[l]].speed);
    res_[l]->set_start_gate(
        [this, l](des::Time eff) { return gate(l, eff); });
  }
}

void PowercapRuntime::detach() {
  for (des::Resource* r : res_) r->set_start_gate(nullptr);
}

bool PowercapRuntime::gate(unsigned leaf, double effective_service_ms) {
  const double e = leaf_pdyn_w_[leaf] * effective_service_ms * 1e-3;
  if (window_spent_j_ + e <= window_budget_j_) {
    window_spent_j_ += e;
    return true;
  }
  if (e > window_budget_j_ && window_spent_j_ == 0) {
    // A job bigger than a whole window's budget could never start under
    // the strict contract; admit it at a fresh window and count the
    // overrun (bench_power asserts this stays zero at sane windows).
    window_spent_j_ += e;
    ++stats_.overruns;
    return true;
  }
  return false;
}

bool PowercapRuntime::admit(double now_ms) {
  if (cfg_.policy != PowercapPolicy::kGovernor) return true;
  if (admit_rate_qps_ <= 0) {
    ++stats_.shed_queries;
    return false;
  }
  admit_tokens_ = std::min(
      admit_burst_,
      admit_tokens_ + (now_ms - admit_last_ms_) * admit_rate_qps_ * 1e-3);
  admit_last_ms_ = now_ms;
  if (admit_tokens_ < 1.0) {
    ++stats_.shed_queries;
    return false;
  }
  admit_tokens_ -= 1.0;
  return true;
}

void PowercapRuntime::adapt(double /*now_ms*/) {
  if (cfg_.policy != PowercapPolicy::kPace) return;
  for (unsigned l = 0; l < leaves_n_; ++l) {
    const double busy = res_[l]->busy_time();
    const double u =
        std::clamp((busy - leaf_busy_prev_[l]) / window_ms_, 0.0, 1.0);
    leaf_busy_prev_[l] = busy;
    const std::size_t cur = leaf_pstate_[l];
    // Demand in NOMINAL work units (u * speed): invariant across
    // p-states, so the EWMA stays meaningful when the rung changes.
    leaf_demand_ewma_[l] =
        0.5 * leaf_demand_ewma_[l] + 0.5 * u * ladder_[cur].speed;
    if (u >= cfg_.pace_target) {
      // At or past the target the busy fraction stops measuring demand
      // (a backlogged leaf reads 1.0 no matter how deep the queue), so
      // the only safe move is straight back to nominal -- the classic
      // ondemand shape: jump up, trickle down.
      leaf_demand_ewma_[l] = ladder_[cur].speed;  // at least a full window
      set_pstate(l, ladder_.size() - 1);
      continue;
    }
    // The slowest p-state whose PREDICTED utilization (demand / speed)
    // stays under the target is speed >= demand / target; picking it
    // directly means pace converges instead of cycling through
    // saturation.  Downward moves are clamped to one rung per window so
    // one quiet window cannot fling the leaf to the floor.
    const double need = leaf_demand_ewma_[l] / cfg_.pace_target;
    std::size_t p = 0;
    while (p + 1 < ladder_.size() && ladder_[p].speed < need) ++p;
    if (cur > 0 && p < cur - 1) p = cur - 1;
    set_pstate(l, p);
  }
}

void PowercapRuntime::on_window(double now_ms) {
  const double win_s = (now_ms - last_window_ms_) * 1e-3;
  const double e = idle_w_total_ * win_s + window_spent_j_;
  stats_.energy_j += e;
  stats_.energy_j_per_window.push_back(e);
  if (win_s > 0) {
    const double w = e / win_s;
    stats_.peak_window_w = std::max(stats_.peak_window_w, w);
    budget_.remove("window-dynamic");
    budget_.add("window-dynamic", window_spent_j_ / win_s);
  }
  last_window_ms_ = now_ms;
  window_spent_j_ = 0;
  if (cfg_.policy == PowercapPolicy::kGovernor && !res_.empty()) {
    // AIMD feedback: a window the gate had to backstop means the static
    // joules-per-query estimate under-priced admission (retry storms do
    // exactly this), so back off hard; a clean window earns the rate
    // back toward the ceiling.
    std::uint64_t stalls = 0;
    for (des::Resource* r : res_) stalls += r->gate_stalls();
    set_admit_rate(stalls > stalls_seen_ ? admit_rate_qps_ * 0.5
                                         : admit_rate_qps_ * 1.25);
    stalls_seen_ = stalls;
  }
  adapt(now_ms);
  for (des::Resource* r : res_) r->release_gate();
}

void PowercapRuntime::finish() {
  for (des::Resource* r : res_) stats_.gate_stalls += r->gate_stalls();
}

}  // namespace arch21::cloud
