#include "cloud/qos.hpp"

#include <cmath>
#include <limits>

#include "cloud/queueing.hpp"

namespace arch21::cloud {

namespace {

/// LC p99 under a given BE load: M/M/1 with inflated service time.
/// Exponential sojourn: p99 = mean * ln(100).
double lc_p99_ms(const QosConfig& cfg, double be_util, bool partitioned) {
  const double inflate =
      1.0 + be_util * (partitioned ? cfg.interference_partitioned
                                   : cfg.interference_shared);
  const double service_s = cfg.lc_service_ms * 1e-3 * inflate;
  const double mu = 1.0 / service_s;
  const auto q = mmk(cfg.lc_rate_hz, mu, 1);
  if (!q.stable) return std::numeric_limits<double>::infinity();
  return q.mean_sojourn * std::log(100.0) * 1e3;
}

}  // namespace

std::vector<QosRow> colocation_sweep(const QosConfig& cfg, bool partitioned,
                                     int steps) {
  std::vector<QosRow> rows;
  for (int i = 0; i < steps; ++i) {
    const double be =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    QosRow r;
    r.be_utilization = be;
    r.lc_p99_ms = lc_p99_ms(cfg, be, partitioned);
    r.slo_met = r.lc_p99_ms <= cfg.slo_p99_ms;
    const double lc_util = cfg.lc_rate_hz * cfg.lc_service_ms * 1e-3;
    r.be_goodput =
        be * (partitioned ? 1.0 - cfg.be_partition_penalty : 1.0);
    r.machine_utilization = std::min(1.0, lc_util + r.be_goodput);
    rows.push_back(r);
  }
  return rows;
}

double max_safe_be_utilization(const QosConfig& cfg, bool partitioned) {
  double best = 0;
  for (double be = 0; be <= 1.0 + 1e-9; be += 0.01) {
    if (lc_p99_ms(cfg, be, partitioned) <= cfg.slo_p99_ms) {
      best = be;
    }
  }
  return best;
}

}  // namespace arch21::cloud
