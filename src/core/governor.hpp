#pragma once
// Intent-driven energy governor: the consumer side of the SR1 `hint`
// instruction (section 2.4, "Better Interfaces for High-Level
// Information": "current ISAs ... have no way of specifying when a
// program requires energy efficiency ... New, higher-level interfaces
// are needed to encapsulate and convey programmer and compiler knowledge
// to the hardware, resulting in major efficiency gains").
//
// The machine attributes executed instructions to the active Intent;
// the governor maps each intent to a DVFS operating point and compares
// the hinted schedule against intent-blind static policies, quantifying
// exactly the "major efficiency gains" the interface buys.

#include <array>

#include "isa/machine.hpp"
#include "tech/dvfs.hpp"

namespace arch21::core {

/// Cost of executing a phase plan at some operating-point assignment.
struct PhaseCost {
  double time_s = 0;
  double energy_j = 0;
  double edp = 0;  ///< energy-delay product (J*s)
};

/// Governor output: hinted schedule vs static baselines.
///
/// The decisive comparison is constraint-based, not a global product
/// metric: Performance-intent phases carry a deadline (their time at
/// nominal V/f).  A policy is *admissible* when it honors that deadline.
/// `static_efficient` is fast to compute and frugal but inadmissible --
/// it slows the latency-critical phase; `static_nominal` is admissible
/// but wastes energy on the other phases.  The hinted policy is
/// admissible by construction and strictly cheaper, which is the "major
/// efficiency gains" the intent interface buys.
struct GovernorReport {
  PhaseCost hinted;            ///< per-intent operating points
  PhaseCost static_nominal;    ///< everything at nominal V/f
  PhaseCost static_efficient;  ///< everything at the min-energy point
  std::array<double, isa::kNumIntents> chosen_v{};  ///< per-intent supply

  /// Time of the Performance-intent phase under each policy (seconds).
  double perf_time_hinted = 0;
  double perf_time_nominal = 0;    ///< the deadline
  double perf_time_efficient = 0;

  double energy_saving_vs_nominal() const {
    return static_nominal.energy_j > 0
               ? 1.0 - hinted.energy_j / static_nominal.energy_j
               : 0;
  }
  double slowdown_vs_nominal() const {
    return static_nominal.time_s > 0 ? hinted.time_s / static_nominal.time_s
                                     : 1;
  }
  /// Does a policy's performance phase meet the nominal-speed deadline
  /// (with 1% slack)?
  bool hinted_admissible() const {
    return perf_time_hinted <= perf_time_nominal * 1.01;
  }
  bool efficient_admissible() const {
    return perf_time_efficient <= perf_time_nominal * 1.01;
  }
};

/// Map each intent's instruction count to an operating point and price
/// the plan:
///   Default     -> balanced point (geometric middle of Vmin-energy..Vnom)
///   Efficiency  -> the min-energy supply
///   Performance -> nominal supply
GovernorReport govern(const std::array<std::uint64_t, isa::kNumIntents>&
                          instrs_by_intent,
                      const tech::DvfsModel& dvfs);

// ---------------------------------------------------------------------------
// Power-capping hook: govern() under a per-core power ceiling.  The
// datacenter powercap governor (cloud/powercap.hpp) caps whole leaf
// servers; this is the same idea one layer down -- the intent schedule
// must also respect the socket's power budget.

/// govern() with every chosen supply clamped so a core running flat out
/// there fits `core_cap_w`.  Built on
/// tech::DvfsModel::fit_voltage_for_power, so a cap below even the
/// floor's draw is *reported* (feasible == false) instead of silently
/// running at the floor over budget.
struct CappedGovernorReport {
  GovernorReport base;    ///< costs at the capped operating points
  double cap_v = 0;       ///< highest supply fitting core_cap_w
  bool feasible = false;  ///< can any legal supply fit the cap?
  bool clamped = false;   ///< did the cap lower at least one chosen point?
};
CappedGovernorReport govern_capped(
    const std::array<std::uint64_t, isa::kNumIntents>& instrs_by_intent,
    const tech::DvfsModel& dvfs, double core_cap_w);

}  // namespace arch21::core
