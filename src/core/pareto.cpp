#include "core/pareto.hpp"

#include <algorithm>

namespace arch21::core {

bool ParetoFrontier::dominates(const Metrics& a, const Metrics& b) {
  const bool ge = a.throughput_ops >= b.throughput_ops && a.power_w <= b.power_w;
  const bool strict =
      a.throughput_ops > b.throughput_ops || a.power_w < b.power_w;
  return ge && strict;
}

bool ParetoFrontier::offer(EvaluatedPoint p) {
  for (const auto& q : pts_) {
    if (dominates(q.metrics, p.metrics)) return false;
    // Exact metric ties add no information; keep the incumbent.
    if (q.metrics.throughput_ops == p.metrics.throughput_ops &&
        q.metrics.power_w == p.metrics.power_w) {
      return false;
    }
  }
  std::erase_if(pts_, [&](const EvaluatedPoint& q) {
    return dominates(p.metrics, q.metrics);
  });
  pts_.push_back(std::move(p));
  return true;
}

void ParetoFrontier::merge(const ParetoFrontier& other) {
  for (const auto& p : other.pts_) offer(p);
}

const EvaluatedPoint* ParetoFrontier::best_throughput() const {
  const EvaluatedPoint* best = nullptr;
  for (const auto& p : pts_) {
    if (!best || p.metrics.throughput_ops > best->metrics.throughput_ops) {
      best = &p;
    }
  }
  return best;
}

const EvaluatedPoint* ParetoFrontier::best_efficiency() const {
  const EvaluatedPoint* best = nullptr;
  for (const auto& p : pts_) {
    if (!best || p.metrics.ops_per_watt > best->metrics.ops_per_watt) {
      best = &p;
    }
  }
  return best;
}

std::vector<EvaluatedPoint> ParetoFrontier::sorted_by_power() const {
  auto copy = pts_;
  std::sort(copy.begin(), copy.end(),
            [](const EvaluatedPoint& a, const EvaluatedPoint& b) {
              return a.metrics.power_w < b.metrics.power_w;
            });
  return copy;
}

}  // namespace arch21::core
