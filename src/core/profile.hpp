#pragma once
// Application profiles and platform classes for cross-layer design-space
// exploration.  A profile is the contract between the application layer
// and the architecture: how much work, what mix, how parallel, how
// regular, how memory-hungry.  The paper's "better interfaces for
// high-level information" is exactly the argument that this information
// should cross the layer boundary -- here it does, explicitly.

#include <string>

namespace arch21::core {

/// Where the platform lives (the four rungs of the efficiency ladder).
enum class PlatformClass { Sensor, Portable, Departmental, Datacenter };

const char* to_string(PlatformClass c);

/// Power cap for each platform class (the ladder's denominators).
double power_cap_w(PlatformClass c);

/// Throughput target for each platform class (the ladder's numerators).
double target_ops(PlatformClass c);

/// An application's architectural contract.
struct AppProfile {
  std::string name = "app";
  double parallel_fraction = 0.95;   ///< Amdahl f
  double data_parallel = 0.8;        ///< fraction expressible as SIMD/SIMT
  double regularity = 0.8;           ///< control regularity
  double mem_bytes_per_op = 0.5;     ///< DRAM-side traffic per operation
  double working_set_bytes = 64e6;
  double comm_bytes_per_op = 0.05;   ///< inter-core traffic per operation
  double accel_coverage = 0.6;       ///< fraction of ops offloadable to a
                                     ///< fixed-function accelerator
};

/// Built-in profiles for the paper's motivating applications (Table A.1).
AppProfile profile_health_monitor();   ///< on-sensor biosignal filtering
AppProfile profile_mobile_vision();    ///< AR / vision on a portable device
AppProfile profile_graph_analytics();  ///< human-network analysis (irregular)
AppProfile profile_scientific_sim();   ///< dense stencil simulation

}  // namespace arch21::core
