#pragma once
// Umbrella header: the arch21 public API in one include.
//
// arch21 is a cross-layer architectural modeling and simulation toolkit
// reproducing the agenda of "21st Century Computer Architecture" (CCC
// white paper, 2012 / PPoPP 2014 keynote) as executable models: see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// experiment-by-experiment reproduction record.

// Infrastructure
#include "des/resource.hpp"      // IWYU pragma: export
#include "des/simulator.hpp"     // IWYU pragma: export
#include "util/fixed_point.hpp"  // IWYU pragma: export
#include "util/histogram.hpp"    // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
#include "util/units.hpp"        // IWYU pragma: export

// Technology and energy
#include "energy/budget.hpp"     // IWYU pragma: export
#include "energy/catalogue.hpp"  // IWYU pragma: export
#include "energy/ladder.hpp"     // IWYU pragma: export
#include "tech/cpudb.hpp"        // IWYU pragma: export
#include "tech/dark_silicon.hpp" // IWYU pragma: export
#include "tech/dvfs.hpp"         // IWYU pragma: export
#include "tech/node.hpp"         // IWYU pragma: export
#include "tech/ntv.hpp"          // IWYU pragma: export

// Memory and interconnect
#include "mem/cache.hpp"          // IWYU pragma: export
#include "mem/coherence.hpp"      // IWYU pragma: export
#include "mem/compression.hpp"    // IWYU pragma: export
#include "mem/dram.hpp"           // IWYU pragma: export
#include "mem/hierarchy.hpp"      // IWYU pragma: export
#include "mem/hybrid.hpp"         // IWYU pragma: export
#include "mem/nvm.hpp"            // IWYU pragma: export
#include "mem/prefetch.hpp"       // IWYU pragma: export
#include "mem/sidechannel.hpp"    // IWYU pragma: export
#include "mem/wear_leveling.hpp"  // IWYU pragma: export
#include "noc/link.hpp"           // IWYU pragma: export
#include "noc/mesh.hpp"           // IWYU pragma: export
#include "noc/rent.hpp"           // IWYU pragma: export
#include "noc/stacking.hpp"       // IWYU pragma: export

// ISA, security, reliability
#include "isa/assembler.hpp"          // IWYU pragma: export
#include "isa/machine.hpp"            // IWYU pragma: export
#include "isa/programs.hpp"           // IWYU pragma: export
#include "isa/sr1.hpp"                // IWYU pragma: export
#include "reliab/availability.hpp"    // IWYU pragma: export
#include "reliab/checkpoint.hpp"      // IWYU pragma: export
#include "reliab/ecc.hpp"             // IWYU pragma: export
#include "reliab/fault_injection.hpp" // IWYU pragma: export
#include "reliab/fit.hpp"             // IWYU pragma: export

// Parallelism and specialization
#include "accel/cgra.hpp"     // IWYU pragma: export
#include "accel/models.hpp"   // IWYU pragma: export
#include "accel/nre.hpp"      // IWYU pragma: export
#include "accel/offload.hpp"  // IWYU pragma: export
#include "par/laws.hpp"       // IWYU pragma: export
#include "par/scaling.hpp"    // IWYU pragma: export
#include "par/schedule.hpp"   // IWYU pragma: export
#include "par/stm.hpp"        // IWYU pragma: export
#include "par/sync.hpp"       // IWYU pragma: export
#include "par/taskgraph.hpp"  // IWYU pragma: export

// Cloud and sensor platforms
#include "cloud/cluster.hpp"      // IWYU pragma: export
#include "cloud/power.hpp"        // IWYU pragma: export
#include "cloud/qos.hpp"          // IWYU pragma: export
#include "cloud/queueing.hpp"     // IWYU pragma: export
#include "cloud/tail.hpp"         // IWYU pragma: export
#include "sensor/approx.hpp"      // IWYU pragma: export
#include "sensor/battery.hpp"     // IWYU pragma: export
#include "sensor/intermittent.hpp"// IWYU pragma: export
#include "sensor/tradeoff.hpp"    // IWYU pragma: export

// Cross-layer design-space exploration (the capstone)
#include "core/design.hpp"     // IWYU pragma: export
#include "core/dse.hpp"        // IWYU pragma: export
#include "core/governor.hpp"   // IWYU pragma: export
#include "core/evaluator.hpp"  // IWYU pragma: export
#include "core/pareto.hpp"     // IWYU pragma: export
#include "core/report.hpp"     // IWYU pragma: export
#include "core/profile.hpp"    // IWYU pragma: export
