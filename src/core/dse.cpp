#include "core/dse.hpp"

#include <array>

#include "util/rng.hpp"

namespace arch21::core {

std::uint64_t DesignSpace::cardinality() const {
  return static_cast<std::uint64_t>(nodes.size()) * vdd_scales.size() *
         core_counts.size() * bces.size() * accels.size() *
         accel_areas.size() * llc_mibs.size() * stacking.size();
}

DesignPoint DesignSpace::point(std::uint64_t index) const {
  DesignPoint d;
  auto pick = [&index](const auto& dim) -> decltype(auto) {
    const auto i = index % dim.size();
    index /= dim.size();
    return dim[i];
  };
  d.node = pick(nodes);
  d.vdd_scale = pick(vdd_scales);
  d.cores = pick(core_counts);
  d.bce_per_core = pick(bces);
  d.accel = pick(accels);
  d.accel_area_fraction = pick(accel_areas);
  d.llc_mib = pick(llc_mibs);
  d.stacked_dram = pick(stacking);
  return d;
}

namespace {

void consider(DseResult& res, const DesignSpace&, const AppProfile& app,
              PlatformClass pc, const DesignPoint& d) {
  const Metrics m = evaluate(d, app, pc);
  ++res.evaluated;
  if (!m.meets_power_cap || m.throughput_ops <= 0) return;
  ++res.feasible;
  res.frontier.offer({d, m});
}

}  // namespace

DseResult grid_search(const DesignSpace& space, const AppProfile& app,
                      PlatformClass pc) {
  DseResult res;
  const std::uint64_t n = space.cardinality();
  for (std::uint64_t i = 0; i < n; ++i) {
    consider(res, space, app, pc, space.point(i));
  }
  return res;
}

DseResult random_search(const DesignSpace& space, const AppProfile& app,
                        PlatformClass pc, std::uint64_t budget,
                        std::uint64_t seed) {
  DseResult res;
  Rng rng(seed);
  const std::uint64_t n = space.cardinality();
  for (std::uint64_t i = 0; i < budget; ++i) {
    consider(res, space, app, pc, space.point(rng.below(n)));
  }
  return res;
}

DseResult hill_climb(const DesignSpace& space, const AppProfile& app,
                     PlatformClass pc, std::uint64_t restarts,
                     std::uint64_t seed) {
  DseResult res;
  Rng rng(seed);
  const std::uint64_t n = space.cardinality();

  // Dimension strides for neighbor moves in the mixed-radix index.
  const std::array<std::uint64_t, 8> radices = {
      space.nodes.size(),      space.vdd_scales.size(),
      space.core_counts.size(), space.bces.size(),
      space.accels.size(),     space.accel_areas.size(),
      space.llc_mibs.size(),   space.stacking.size()};

  auto objective = [&](std::uint64_t idx) -> double {
    const Metrics m = evaluate(space.point(idx), app, pc);
    ++res.evaluated;
    if (!m.meets_power_cap || m.throughput_ops <= 0) return -1;
    ++res.feasible;
    res.frontier.offer({space.point(idx), m});
    return m.throughput_ops;
  };

  for (std::uint64_t r = 0; r < restarts; ++r) {
    std::uint64_t cur = rng.below(n);
    double cur_val = objective(cur);
    bool improved = true;
    while (improved) {
      improved = false;
      // Explore +/-1 in each dimension.
      std::uint64_t stride = 1;
      std::uint64_t rem = cur;
      for (std::size_t dim = 0; dim < radices.size(); ++dim) {
        const std::uint64_t radix = radices[dim];
        const std::uint64_t digit = rem % radix;
        for (int delta : {-1, +1}) {
          const std::int64_t nd = static_cast<std::int64_t>(digit) + delta;
          if (nd < 0 || nd >= static_cast<std::int64_t>(radix)) continue;
          const std::uint64_t neighbor =
              cur + (static_cast<std::uint64_t>(nd) - digit) * stride;
          const double val = objective(neighbor);
          if (val > cur_val) {
            cur = neighbor;
            cur_val = val;
            improved = true;
          }
        }
        rem /= radix;
        stride *= radix;
      }
    }
  }
  return res;
}

}  // namespace arch21::core
