#include "core/dse.hpp"

#include <array>

#include "util/rng.hpp"

namespace arch21::core {

std::uint64_t DesignSpace::cardinality() const {
  return static_cast<std::uint64_t>(nodes.size()) * vdd_scales.size() *
         core_counts.size() * bces.size() * accels.size() *
         accel_areas.size() * llc_mibs.size() * stacking.size();
}

DesignPoint DesignSpace::point(std::uint64_t index) const {
  DesignPoint d;
  auto pick = [&index](const auto& dim) -> decltype(auto) {
    const auto i = index % dim.size();
    index /= dim.size();
    return dim[i];
  };
  d.node = pick(nodes);
  d.vdd_scale = pick(vdd_scales);
  d.cores = pick(core_counts);
  d.bce_per_core = pick(bces);
  d.accel = pick(accels);
  d.accel_area_fraction = pick(accel_areas);
  d.llc_mib = pick(llc_mibs);
  d.stacked_dram = pick(stacking);
  return d;
}

namespace {

void consider(DseResult& res, const DesignSpace&, const AppProfile& app,
              PlatformClass pc, const DesignPoint& d) {
  const Metrics m = evaluate(d, app, pc);
  ++res.evaluated;
  if (!m.meets_power_cap || m.throughput_ops <= 0) return;
  ++res.feasible;
  res.frontier.offer({d, m});
}

// Design points evaluated per reduce chunk.  Chunk counts depend only on
// (trip count, grain), so the deterministic-merge contract holds at any
// thread count; a grain this size keeps fork overhead ~0.1% of the work.
constexpr std::size_t kGridGrain = 512;
constexpr std::size_t kRandomGrain = 256;

DseResult combine_dse(DseResult acc, DseResult chunk) {
  acc.frontier.merge(chunk.frontier);
  acc.evaluated += chunk.evaluated;
  acc.feasible += chunk.feasible;
  return acc;
}

}  // namespace

DseResult grid_search(const DesignSpace& space, const AppProfile& app,
                      PlatformClass pc, ThreadPool* pool) {
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  const std::uint64_t n = space.cardinality();
  return tp.parallel_reduce<DseResult>(
      n, DseResult{}, kGridGrain,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        DseResult out;
        for (std::uint64_t i = begin; i < end; ++i) {
          consider(out, space, app, pc, space.point(i));
        }
        return out;
      },
      combine_dse);
}

DseResult random_search(const DesignSpace& space, const AppProfile& app,
                        PlatformClass pc, std::uint64_t budget,
                        std::uint64_t seed, ThreadPool* pool) {
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  const std::uint64_t n = space.cardinality();
  return tp.parallel_reduce<DseResult>(
      budget, DseResult{}, kRandomGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        DseResult out;
        Rng rng(seed, chunk);
        for (std::uint64_t i = begin; i < end; ++i) {
          consider(out, space, app, pc, space.point(rng.below(n)));
        }
        return out;
      },
      combine_dse);
}

DseResult hill_climb(const DesignSpace& space, const AppProfile& app,
                     PlatformClass pc, std::uint64_t restarts,
                     std::uint64_t seed) {
  DseResult res;
  Rng rng(seed);
  const std::uint64_t n = space.cardinality();

  // Dimension strides for neighbor moves in the mixed-radix index.
  const std::array<std::uint64_t, 8> radices = {
      space.nodes.size(),      space.vdd_scales.size(),
      space.core_counts.size(), space.bces.size(),
      space.accels.size(),     space.accel_areas.size(),
      space.llc_mibs.size(),   space.stacking.size()};

  auto objective = [&](std::uint64_t idx) -> double {
    const Metrics m = evaluate(space.point(idx), app, pc);
    ++res.evaluated;
    if (!m.meets_power_cap || m.throughput_ops <= 0) return -1;
    ++res.feasible;
    res.frontier.offer({space.point(idx), m});
    return m.throughput_ops;
  };

  for (std::uint64_t r = 0; r < restarts; ++r) {
    std::uint64_t cur = rng.below(n);
    double cur_val = objective(cur);
    bool improved = true;
    while (improved) {
      improved = false;
      // Explore +/-1 in each dimension.
      std::uint64_t stride = 1;
      std::uint64_t rem = cur;
      for (std::size_t dim = 0; dim < radices.size(); ++dim) {
        const std::uint64_t radix = radices[dim];
        const std::uint64_t digit = rem % radix;
        for (int delta : {-1, +1}) {
          const std::int64_t nd = static_cast<std::int64_t>(digit) + delta;
          if (nd < 0 || nd >= static_cast<std::int64_t>(radix)) continue;
          const std::uint64_t neighbor =
              cur + (static_cast<std::uint64_t>(nd) - digit) * stride;
          const double val = objective(neighbor);
          if (val > cur_val) {
            cur = neighbor;
            cur_val = val;
            improved = true;
          }
        }
        rem /= radix;
        stride *= radix;
      }
    }
  }
  return res;
}

}  // namespace arch21::core
