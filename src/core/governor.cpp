#include "core/governor.hpp"

#include <cmath>

namespace arch21::core {

namespace {

PhaseCost price(const std::array<std::uint64_t, isa::kNumIntents>& instrs,
                const std::array<double, isa::kNumIntents>& v,
                const tech::DvfsModel& dvfs) {
  PhaseCost c;
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const double n = static_cast<double>(instrs[i]);
    if (n == 0) continue;
    const double f = dvfs.frequency(v[i]);
    c.time_s += n / f;
    c.energy_j += n * dvfs.energy_per_op(v[i]);
  }
  c.edp = c.time_s * c.energy_j;
  return c;
}

}  // namespace

GovernorReport govern(
    const std::array<std::uint64_t, isa::kNumIntents>& instrs_by_intent,
    const tech::DvfsModel& dvfs) {
  GovernorReport r;
  const double vnom = dvfs.params().vnom;
  const double vmin = dvfs.min_energy_voltage();
  const double vbal = std::sqrt(vmin * vnom);  // geometric middle

  r.chosen_v[static_cast<std::size_t>(isa::Intent::Default)] = vbal;
  r.chosen_v[static_cast<std::size_t>(isa::Intent::Efficiency)] = vmin;
  r.chosen_v[static_cast<std::size_t>(isa::Intent::Performance)] = vnom;

  r.hinted = price(instrs_by_intent, r.chosen_v, dvfs);
  r.static_nominal =
      price(instrs_by_intent, {vnom, vnom, vnom}, dvfs);
  r.static_efficient =
      price(instrs_by_intent, {vmin, vmin, vmin}, dvfs);

  // Performance-phase (deadline) time under each policy.
  const double perf_instrs = static_cast<double>(
      instrs_by_intent[static_cast<std::size_t>(isa::Intent::Performance)]);
  if (perf_instrs > 0) {
    r.perf_time_hinted = perf_instrs / dvfs.frequency(vnom);  // hinted = vnom
    r.perf_time_nominal = perf_instrs / dvfs.frequency(vnom);
    r.perf_time_efficient = perf_instrs / dvfs.frequency(vmin);
  }
  return r;
}

CappedGovernorReport govern_capped(
    const std::array<std::uint64_t, isa::kNumIntents>& instrs_by_intent,
    const tech::DvfsModel& dvfs, double core_cap_w) {
  CappedGovernorReport r;
  const tech::DvfsModel::PowerFit fit =
      dvfs.fit_voltage_for_power(core_cap_w);
  r.cap_v = fit.v;
  r.feasible = fit.feasible;

  r.base = govern(instrs_by_intent, dvfs);
  for (double& v : r.base.chosen_v) {
    if (v > r.cap_v) {
      v = r.cap_v;
      r.clamped = true;
    }
  }
  if (r.clamped) {
    r.base.hinted = price(instrs_by_intent, r.base.chosen_v, dvfs);
    // The deadline (perf time at nominal) is unchanged; the capped
    // Performance point may now miss it -- that is the report's point.
    const double perf_instrs = static_cast<double>(instrs_by_intent[
        static_cast<std::size_t>(isa::Intent::Performance)]);
    if (perf_instrs > 0) {
      r.base.perf_time_hinted =
          perf_instrs /
          dvfs.frequency(r.base.chosen_v[static_cast<std::size_t>(
              isa::Intent::Performance)]);
    }
  }
  return r;
}

}  // namespace arch21::core
