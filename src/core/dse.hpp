#pragma once
// Design-space exploration engines.  Three searchers over the DesignPoint
// space, all constrained to the platform's power cap:
//   * grid_search  -- exhaustive over a discretized space (ground truth)
//   * random_search -- uniform sampling (budgeted baseline)
//   * hill_climb   -- local search from a seed with restarts
// Each returns the Pareto frontier plus the best feasible design by
// throughput and by efficiency.

#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/pareto.hpp"
#include "util/thread_pool.hpp"

namespace arch21::core {

/// Discretized design space.
struct DesignSpace {
  std::vector<std::string> nodes = {"45nm", "32nm", "22nm"};
  std::vector<double> vdd_scales = {0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<std::uint32_t> core_counts = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<double> bces = {1, 4, 16};
  std::vector<accel::EngineClass> accels = {
      accel::EngineClass::ScalarCpu, accel::EngineClass::GpuSimt,
      accel::EngineClass::Asic};
  std::vector<double> accel_areas = {0.0, 0.25, 0.5};
  std::vector<double> llc_mibs = {2, 8, 32};
  std::vector<bool> stacking = {false, true};

  std::uint64_t cardinality() const;
  /// The i-th point in row-major order.
  DesignPoint point(std::uint64_t index) const;
};

/// DSE outcome.
struct DseResult {
  ParetoFrontier frontier;
  std::uint64_t evaluated = 0;
  std::uint64_t feasible = 0;
};

// grid_search and random_search evaluate design-point chunks on `pool`
// (ThreadPool::global() when null).  Each chunk builds a local
// ParetoFrontier, merged in ascending chunk order; random_search chunk i
// draws from Rng(seed, i).  Results are bit-identical for any pool size.

DseResult grid_search(const DesignSpace& space, const AppProfile& app,
                      PlatformClass pc, ThreadPool* pool = nullptr);

DseResult random_search(const DesignSpace& space, const AppProfile& app,
                        PlatformClass pc, std::uint64_t budget,
                        std::uint64_t seed, ThreadPool* pool = nullptr);

DseResult hill_climb(const DesignSpace& space, const AppProfile& app,
                     PlatformClass pc, std::uint64_t restarts,
                     std::uint64_t seed);

}  // namespace arch21::core
