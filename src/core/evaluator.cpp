#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "energy/catalogue.hpp"
#include "noc/mesh.hpp"
#include "tech/dvfs.hpp"
#include "tech/node.hpp"
#include "util/units.hpp"

namespace arch21::core {

std::string DesignPoint::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s v=%.2f cores=%u r=%.0f accel=%s/%.0f%% llc=%.0fMiB %s",
                node.c_str(), vdd_scale, cores, bce_per_core,
                accel::to_string(accel), accel_area_fraction * 100, llc_mib,
                stacked_dram ? "3D" : "ddr");
  return buf;
}

Metrics evaluate(const DesignPoint& d, const AppProfile& a, PlatformClass pc) {
  const auto node = tech::find_node(d.node);
  if (!node) throw std::invalid_argument("evaluate: unknown node " + d.node);
  if (d.cores == 0 || d.bce_per_core < 1) {
    throw std::invalid_argument("evaluate: bad core organization");
  }

  const energy::Catalogue cat(*node);
  const tech::DvfsModel dvfs = tech::DvfsModel::for_node(*node);

  // --- operating point -------------------------------------------------
  const double vfloor = node->vth + 0.05;
  const double v = std::max(vfloor, d.vdd_scale * node->vdd);
  const double freq = dvfs.frequency(std::min(v, node->vdd * 1.1));
  if (freq <= 0) {
    return {};  // below threshold: nothing runs
  }

  // --- throughput: 3-phase Hill-Marty ----------------------------------
  const double r = d.bce_per_core;
  const double core_rate = freq * std::sqrt(r);  // ops/s of one core
  const double all_cores_rate = core_rate * static_cast<double>(d.cores);

  // Accelerator rate scales with the area devoted to it.
  const auto ladder = accel::specialization_ladder();
  const accel::Engine* eng = nullptr;
  for (const auto& e : ladder) {
    if (e.cls == d.accel) eng = &e;
  }
  accel::KernelProfile kp;
  kp.data_parallel = a.data_parallel;
  kp.regularity = a.regularity;
  double accel_rate = 0;
  double cov = 0;
  if (eng && d.accel != accel::EngineClass::ScalarCpu &&
      d.accel_area_fraction > 0) {
    // Peak scales with area fraction relative to a 25%-of-die reference,
    // and with the node's frequency relative to the engine's 22nm-era
    // calibration.
    accel_rate = eng->peak_ops_per_s * (d.accel_area_fraction / 0.25) *
                 eng->utilization(kp) * (freq / (3.8 * units::giga));
    cov = std::min(a.accel_coverage, a.parallel_fraction);
  }

  const double f = a.parallel_fraction;
  const double serial = 1.0 - f;
  const double par_cpu = f - cov;
  double denom = serial / core_rate + par_cpu / all_cores_rate;
  if (cov > 0) {
    denom += cov / std::max(accel_rate, 1e3);
  }
  double throughput = 1.0 / denom;

  // --- energy per operation --------------------------------------------
  const double vscale = (v * v) / (node->vdd * node->vdd);
  const double cpu_overhead = ladder.front().overhead_factor;  // scalar CPU
  const double e_cpu_op = cat.fp_fma() * cpu_overhead * vscale;
  const double e_acc_op =
      eng ? cat.fp_fma() * eng->overhead_factor * vscale : e_cpu_op;
  const double e_compute = (1.0 - cov) * e_cpu_op + cov * e_acc_op;

  // Memory: locality model -- LLC capture grows as sqrt of the capacity
  // ratio (a standard concave capture curve), floor 2% / cap 98%.
  const double llc_bytes = d.llc_mib * units::MiB;
  const double capture = std::clamp(
      std::sqrt(llc_bytes / std::max(a.working_set_bytes, llc_bytes)), 0.02,
      0.98);
  const double e_llc_byte = cat.access(energy::Level::LLC) / 8.0;
  const double e_dram_byte =
      cat.move_per_bit(d.stacked_dram ? energy::Distance::ToStackedDram
                                      : energy::Distance::ToDram) *
      8.0;
  const double e_mem =
      a.mem_bytes_per_op * (capture * e_llc_byte + (1 - capture) * e_dram_byte);

  // Communication: mesh sized to the core count.
  double e_comm = 0;
  if (d.cores > 1 && a.comm_bytes_per_op > 0) {
    const auto side = static_cast<std::uint32_t>(
        std::max(2.0, std::ceil(std::sqrt(static_cast<double>(d.cores)))));
    noc::MeshConfig mc;
    mc.width = side;
    mc.height = side;
    const noc::Mesh mesh(mc);
    e_comm = a.comm_bytes_per_op * 8.0 * mesh.mean_energy_per_bit() * vscale;
  }

  const double e_op = e_compute + e_mem + e_comm;

  // --- leakage and the power cap ----------------------------------------
  const double leak =
      dvfs.leakage_power(v) * static_cast<double>(d.cores) * (r / 4.0);
  const double cap = power_cap_w(pc);

  Metrics m;
  m.p_leak_w = leak;
  double dyn_power = throughput * e_op;
  if (leak >= cap) {
    // Even idle leakage busts the budget: infeasible design.
    m.meets_power_cap = false;
    m.throughput_ops = 0;
    m.power_w = leak;
    m.energy_per_op_j = e_op;
    return m;
  }
  if (leak + dyn_power > cap) {
    // Energy-first: throttle to the cap (duty-cycling / DVFS governor).
    throughput = (cap - leak) / e_op;
    dyn_power = cap - leak;
  }
  m.throughput_ops = throughput;
  m.energy_per_op_j = e_op;
  m.p_compute_w = throughput * e_compute;
  m.p_memory_w = throughput * e_mem;
  m.p_comm_w = throughput * e_comm;
  m.power_w = leak + dyn_power;
  m.ops_per_watt = m.power_w > 0 ? m.throughput_ops / m.power_w : 0;
  m.meets_power_cap = m.power_w <= cap * 1.0000001;
  return m;
}

}  // namespace arch21::core
