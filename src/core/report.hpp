#pragma once
// Markdown report generation for DSE runs: the artifact a design team
// would actually circulate.  Renders the search summary, the efficiency-
// ladder verdict, the Pareto frontier, and the recommended designs.

#include <string>

#include "core/dse.hpp"

namespace arch21::core {

/// Render a DSE outcome as a self-contained markdown document.
std::string render_report(const DseResult& result, const AppProfile& app,
                          PlatformClass pc);

}  // namespace arch21::core
