#pragma once
// Markdown report generation: the artifacts a design team would actually
// circulate.  Renders DSE runs (search summary, efficiency-ladder
// verdict, Pareto frontier, recommended designs) and resilience-ladder
// experiments (availability / tail latency / retry amplification /
// result quality across mitigation policies).

#include <string>
#include <vector>

#include "cloud/region.hpp"
#include "cloud/resilience.hpp"
#include "core/dse.hpp"
#include "obs/metrics.hpp"

namespace arch21::core {

/// Render a DSE outcome as a self-contained markdown document.
std::string render_report(const DseResult& result, const AppProfile& app,
                          PlatformClass pc);

/// Render a resilience scenario ladder (see cloud::resilience_scenarios)
/// as a self-contained markdown document.
std::string render_resilience_report(
    const std::vector<cloud::ScenarioResult>& scenarios);

/// Render an overload-protection ladder (see cloud::overload_scenarios)
/// as a self-contained markdown document: per-rung goodput before/after
/// the fault burst (the metastability check), shed/rejected/expired
/// drop counters, and breaker activity.
std::string render_overload_report(
    const std::vector<cloud::ScenarioResult>& scenarios,
    double settle_s = 2.0);

/// Render a power-cap ladder (see cloud::power_scenarios) as a
/// self-contained markdown document: per-rung energy, charged peak
/// window power vs the cap, goodput-per-joule, post-burst recovery, and
/// how each rung's budget was spent (throttle vs shed vs stall).
std::string render_power_report(
    const std::vector<cloud::ScenarioResult>& scenarios,
    double settle_s = 2.0);

/// Render a gray-failure ladder (see cloud::grayfail_scenarios) as a
/// self-contained markdown document: per-rung goodput before / during /
/// after the fail-slow burst (containment is the headline), detector
/// activity (evictions, probations, zombie flags, redirected sends), and
/// the breaker activity that shows why fail-stop protection is blind.
std::string render_grayfail_report(
    const std::vector<cloud::ScenarioResult>& scenarios,
    double settle_s = 2.0);

/// Render a multi-region failover ladder (see cloud::failover_scenarios)
/// as a self-contained markdown document: per-rung global and
/// surviving-region goodput around the regional blackout, shed/lost/
/// timeout counters, eviction/re-admission activity, and per-class SLO
/// attainment.
std::string render_multiregion_report(
    const std::vector<cloud::MultiRegionScenario>& scenarios,
    double settle_s = 2.0);

/// Render a metrics snapshot (obs::MetricsRegistry::snapshot()) as a
/// markdown section: one table row per metric in registration order;
/// timers show count / mean / p50 / p99 / max.
std::string render_metrics_report(const obs::MetricsSnapshot& snap);

}  // namespace arch21::core
