#pragma once
// Markdown report generation: the artifacts a design team would actually
// circulate.  Renders DSE runs (search summary, efficiency-ladder
// verdict, Pareto frontier, recommended designs) and resilience-ladder
// experiments (availability / tail latency / retry amplification /
// result quality across mitigation policies).

#include <string>
#include <vector>

#include "cloud/resilience.hpp"
#include "core/dse.hpp"

namespace arch21::core {

/// Render a DSE outcome as a self-contained markdown document.
std::string render_report(const DseResult& result, const AppProfile& app,
                          PlatformClass pc);

/// Render a resilience scenario ladder (see cloud::resilience_scenarios)
/// as a self-contained markdown document.
std::string render_resilience_report(
    const std::vector<cloud::ScenarioResult>& scenarios);

}  // namespace arch21::core
