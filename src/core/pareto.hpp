#pragma once
// Pareto frontier over (throughput up, power down).  The DSE engine keeps
// every non-dominated design; reports print the frontier as the menu of
// defensible machines for a platform class.

#include <vector>

#include "core/design.hpp"

namespace arch21::core {

/// A design point with its evaluated metrics.
struct EvaluatedPoint {
  DesignPoint design;
  Metrics metrics;
};

/// Maintains the set of non-dominated (throughput, power) points.
/// A point dominates another when it has >= throughput and <= power, with
/// at least one strict.
class ParetoFrontier {
 public:
  /// Offer a point; returns true if it joined the frontier.
  bool offer(EvaluatedPoint p);

  /// Offer every point of `other`, in its stored order.  The parallel DSE
  /// engines build one frontier per chunk and merge them in ascending
  /// chunk-index order, which keeps the result bit-identical for any
  /// thread count (offer order resolves exact-tie cases).
  void merge(const ParetoFrontier& other);

  const std::vector<EvaluatedPoint>& points() const noexcept { return pts_; }
  std::size_t size() const noexcept { return pts_.size(); }

  /// Highest-throughput point (nullptr if empty).
  const EvaluatedPoint* best_throughput() const;
  /// Best ops/W point (nullptr if empty).
  const EvaluatedPoint* best_efficiency() const;

  /// Sorted copy by ascending power.
  std::vector<EvaluatedPoint> sorted_by_power() const;

 private:
  static bool dominates(const Metrics& a, const Metrics& b);
  std::vector<EvaluatedPoint> pts_;
};

}  // namespace arch21::core
