#include "core/profile.hpp"

#include "energy/ladder.hpp"

namespace arch21::core {

const char* to_string(PlatformClass c) {
  switch (c) {
    case PlatformClass::Sensor: return "sensor";
    case PlatformClass::Portable: return "portable";
    case PlatformClass::Departmental: return "departmental";
    case PlatformClass::Datacenter: return "datacenter";
  }
  return "?";
}

double power_cap_w(PlatformClass c) {
  return energy::ladder()[static_cast<std::size_t>(c)].power_cap_w;
}

double target_ops(PlatformClass c) {
  return energy::ladder()[static_cast<std::size_t>(c)].target_ops;
}

AppProfile profile_health_monitor() {
  AppProfile p;
  p.name = "health-monitor";
  p.parallel_fraction = 0.85;
  p.data_parallel = 0.9;
  p.regularity = 0.95;   // fixed DSP pipeline
  p.mem_bytes_per_op = 0.1;
  p.working_set_bytes = 256e3;
  p.comm_bytes_per_op = 0.01;
  p.accel_coverage = 0.9;
  return p;
}

AppProfile profile_mobile_vision() {
  AppProfile p;
  p.name = "mobile-vision";
  p.parallel_fraction = 0.97;
  p.data_parallel = 0.92;
  p.regularity = 0.85;
  p.mem_bytes_per_op = 0.4;
  p.working_set_bytes = 32e6;
  p.comm_bytes_per_op = 0.03;
  p.accel_coverage = 0.8;
  return p;
}

AppProfile profile_graph_analytics() {
  AppProfile p;
  p.name = "graph-analytics";
  p.parallel_fraction = 0.99;
  p.data_parallel = 0.3;    // pointer chasing
  p.regularity = 0.25;
  p.mem_bytes_per_op = 2.0; // memory bound
  p.working_set_bytes = 8e9;
  p.comm_bytes_per_op = 0.3;
  p.accel_coverage = 0.2;
  return p;
}

AppProfile profile_scientific_sim() {
  AppProfile p;
  p.name = "scientific-sim";
  p.parallel_fraction = 0.995;
  p.data_parallel = 0.95;
  p.regularity = 0.95;
  p.mem_bytes_per_op = 0.8;
  p.working_set_bytes = 4e9;
  p.comm_bytes_per_op = 0.1;
  p.accel_coverage = 0.6;
  return p;
}

}  // namespace arch21::core
