#pragma once
// Design points and evaluated metrics for cross-layer DSE.  A design
// point fixes one choice in every layer the paper says must co-operate:
// technology node and supply (circuit), core count/size and accelerator
// provisioning (architecture), cache capacity and 3D memory (memory
// system).  The evaluator (core/evaluator.hpp) composes the substrate
// models into throughput/power/energy for an application profile.

#include <cstdint>
#include <string>

#include "accel/models.hpp"

namespace arch21::core {

/// One candidate machine.
struct DesignPoint {
  std::string node = "22nm";     ///< technology node name
  double vdd_scale = 1.0;        ///< supply relative to nominal (DVFS/NTV)
  std::uint32_t cores = 16;      ///< core count
  double bce_per_core = 4;       ///< core size in base-core equivalents
  accel::EngineClass accel = accel::EngineClass::ScalarCpu;  ///< accelerator
  double accel_area_fraction = 0.0;  ///< die share given to the accelerator
  double llc_mib = 8;            ///< last-level cache capacity
  bool stacked_dram = false;     ///< 3D DRAM instead of off-package

  /// Human-readable one-liner.
  std::string to_string() const;
};

/// Evaluated metrics.
struct Metrics {
  double throughput_ops = 0;   ///< sustained ops/s on the profile
  double power_w = 0;          ///< total platform power at that throughput
  double energy_per_op_j = 0;
  double ops_per_watt = 0;
  bool meets_power_cap = false;
  // Power breakdown (for reports).
  double p_compute_w = 0;
  double p_memory_w = 0;
  double p_comm_w = 0;
  double p_leak_w = 0;
};

}  // namespace arch21::core
