#pragma once
// The cross-layer evaluator: composes technology (node + supply), the
// multicore organization (Hill-Marty), the accelerator (specialization
// ladder), the memory system (locality model + DRAM/3D), and the on-chip
// network (mesh) into end-to-end metrics for one application profile.
//
// Model summary (each term built from the corresponding substrate):
//   * per-core rate      = f(Vdd) x sqrt(BCEs)           [tech/dvfs, par/laws]
//   * job throughput     = 3-phase Hill-Marty: serial, parallel-on-cores,
//                          parallel-on-accelerator
//   * compute energy/op  = raw op energy x engine overhead x (V/Vnom)^2
//   * memory energy/op   = bytes/op priced by an LLC-capacity locality
//                          model over LLC/DRAM (or stacked-DRAM) energies
//   * comm energy/op     = bytes/op x mesh mean energy/byte
//   * leakage            = per-core leakage(V) x cores x size
//   * power cap          = platform class rung; throughput throttles to fit
//                          (energy-first: the cap is the constraint).

#include "core/design.hpp"
#include "core/profile.hpp"

namespace arch21::core {

/// Evaluate a design point on an application for a platform class.
Metrics evaluate(const DesignPoint& d, const AppProfile& a, PlatformClass pc);

}  // namespace arch21::core
