#include "core/report.hpp"

#include <cmath>
#include <sstream>

#include "energy/ladder.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace arch21::core {

std::string render_report(const DseResult& result, const AppProfile& app,
                          PlatformClass pc) {
  std::ostringstream os;
  const auto& rung = energy::ladder()[static_cast<std::size_t>(pc)];

  os << "# Design-space exploration report\n\n"
     << "* application: **" << app.name << "** (f = " << app.parallel_fraction
     << ", " << app.mem_bytes_per_op << " B/op memory, working set "
     << units::bytes_format(app.working_set_bytes, 1) << ")\n"
     << "* platform class: **" << to_string(pc) << "** (cap "
     << units::si_format(rung.power_cap_w, "W", 0) << ", ladder target "
     << units::si_format(rung.required_ops_per_watt(), "op/W", 0) << ")\n"
     << "* searched " << result.evaluated << " designs, " << result.feasible
     << " feasible, frontier size " << result.frontier.size() << "\n\n";

  const auto* best_t = result.frontier.best_throughput();
  const auto* best_e = result.frontier.best_efficiency();
  if (best_t == nullptr || best_e == nullptr) {
    os << "**No feasible design.** Every candidate exceeded the power cap "
          "or delivered no throughput; widen the space (lower Vdd, fewer "
          "cores, more specialization).\n";
    return os.str();
  }

  os << "## Recommendations\n\n"
     << "* max throughput: `" << best_t->design.to_string() << "` -> "
     << units::si_format(best_t->metrics.throughput_ops, "op/s", 2) << " at "
     << units::si_format(best_t->metrics.power_w, "W", 2) << "\n"
     << "* max efficiency: `" << best_e->design.to_string() << "` -> "
     << units::si_format(best_e->metrics.ops_per_watt, "op/W", 2) << "\n";
  const auto verdict = energy::assess(rung, best_e->metrics.ops_per_watt);
  os << "* ladder verdict: "
     << (verdict.met ? "**target met**"
                     : "**" + TextTable::num(verdict.gap, 3) +
                           "x short of the rung**")
     << "\n\n";

  os << "## Pareto frontier (by power)\n\n";
  TextTable t({"design", "throughput", "power", "ops/W"});
  for (const auto& p : result.frontier.sorted_by_power()) {
    t.row({p.design.to_string(),
           units::si_format(p.metrics.throughput_ops, "op/s", 2),
           units::si_format(p.metrics.power_w, "W", 2),
           units::si_format(p.metrics.ops_per_watt, "op/W", 2)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  // Power breakdown of the efficiency pick: where do the joules go?
  const auto& m = best_e->metrics;
  os << "## Power breakdown of the efficiency pick\n\n"
     << "| component | watts | share |\n|---|---|---|\n";
  const double total = m.power_w > 0 ? m.power_w : 1;
  auto row = [&](const char* name, double w) {
    os << "| " << name << " | " << units::si_format(w, "W", 2) << " | "
       << TextTable::num(w / total * 100, 3) << "% |\n";
  };
  row("compute", m.p_compute_w);
  row("memory", m.p_memory_w);
  row("interconnect", m.p_comm_w);
  row("leakage", m.p_leak_w);
  return os.str();
}

std::string render_resilience_report(
    const std::vector<cloud::ScenarioResult>& scenarios) {
  std::ostringstream os;
  os << "# Cluster resilience report\n\n";
  if (scenarios.empty()) {
    os << "**No scenarios.**\n";
    return os.str();
  }

  const auto& base = scenarios.front();
  os << "* cluster: " << base.config.leaves << " leaves, "
     << TextTable::num(base.config.query_rate_hz, 4) << " qps fan-out, "
     << TextTable::num(base.config.duration_s, 4) << " s per trial, "
     << base.result.trials << " trial(s) per scenario, seed "
     << base.config.seed << "\n"
     << "* each row re-runs the same seeded workload under one more "
        "mitigation layer\n\n";

  TextTable t({"scenario", "avail", "goodput", "ok/degr/fail", "amp",
               "p50 ms", "p99 ms", "quality"});
  for (const auto& s : scenarios) {
    const auto& r = s.result;
    t.row({s.name, TextTable::num(r.availability_measured, 5),
           TextTable::num(r.goodput_qps, 4) + " qps",
           std::to_string(r.ok_queries) + "/" +
               std::to_string(r.degraded_queries) + "/" +
               std::to_string(r.failed_queries),
           TextTable::num(r.retry_amplification, 4),
           TextTable::num(r.query_ms.quantile(0.5), 4),
           TextTable::num(r.query_ms.quantile(0.99), 4),
           TextTable::num(r.mean_result_quality(), 4)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  os << "## Reading the ladder\n\n"
     << "* **avail** -- measured leaf up-fraction; the fault-free row "
        "stays at 1.\n"
     << "* **amp** -- leaf requests per (query x fan-out); a retry storm "
        "shows up here before it shows up in p99.\n"
     << "* **quality** -- mean fraction of leaves contributing to "
        "answered queries; quorum degradation trades this against the "
        "deadline.\n"
     << "* at fan-out " << base.config.leaves
     << ", the fraction of queries at least as slow as the leaf p99 was "
     << TextTable::num(base.result.frac_over_leaf_p99 * 100, 4)
     << "% in the baseline (the tail-at-scale effect; 1 - 0.99^"
     << base.config.leaves << " = "
     << TextTable::num(
            (1.0 - std::pow(0.99, static_cast<double>(base.config.leaves))) *
                100,
            4)
     << "% under independence).\n";
  return os.str();
}

std::string render_overload_report(
    const std::vector<cloud::ScenarioResult>& scenarios, double settle_s) {
  std::ostringstream os;
  os << "# Overload-protection report (metastable-failure drill)\n\n";
  if (scenarios.empty()) {
    os << "**No scenarios.**\n";
    return os.str();
  }

  const auto& base = scenarios.front();
  os << "* cluster: " << base.config.leaves << " leaves, "
     << TextTable::num(base.config.query_rate_hz, 4) << " qps fan-out, "
     << TextTable::num(base.config.duration_s, 4) << " s per trial, "
     << base.result.trials << " trial(s) per rung, seed " << base.config.seed
     << "\n"
     << "* fault burst: " << base.config.faults.burst_leaves
     << " leaves down at t = "
     << TextTable::num(base.config.faults.burst_start_s, 4) << " s for "
     << TextTable::num(base.config.faults.burst_duration_s, 4) << " s; "
     << "recovery measured " << TextTable::num(settle_s, 4)
     << " s after it clears\n\n";

  TextTable t({"rung", "pre qps", "post qps", "recovery", "shed", "rej",
               "expired", "brk open", "amp", "p99 ms"});
  for (const auto& s : scenarios) {
    const auto& r = s.result;
    const auto h = cloud::goodput_hysteresis(r, s.config, settle_s);
    t.row({s.name, TextTable::num(h.pre_qps, 4), TextTable::num(h.post_qps, 4),
           TextTable::num(h.recovery_ratio() * 100, 4) + "%",
           std::to_string(r.shed_queries), std::to_string(r.rejected_requests),
           std::to_string(r.expired_drops),
           std::to_string(r.breaker_open_transitions),
           TextTable::num(r.retry_amplification, 4),
           TextTable::num(r.query_ms.quantile(0.99), 4)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  os << "## Reading the drill\n\n"
     << "* **recovery** -- post-burst goodput as a fraction of pre-burst "
        "goodput.  The burst itself is identical in every rung; only the "
        "aftermath differs.  A rung stuck far below 100% after the fault "
        "cleared is in the metastable regime: queues full of work nobody "
        "is waiting for, retries regenerating the load.\n"
     << "* **shed / rej / expired** -- queries refused at the root, "
        "requests bounced off full bounded queues, and waiters dropped at "
        "dequeue past the sojourn target.  Protection is *visible* work "
        "refused early instead of invisible work served late.\n"
     << "* **brk open** -- circuit-breaker open transitions; short-"
        "circuited sends skip the timeout wait entirely.\n"
     << "* **amp** -- leaf requests per (query x fan-out); the storm "
        "metric.\n";
  return os.str();
}

std::string render_grayfail_report(
    const std::vector<cloud::ScenarioResult>& scenarios, double settle_s) {
  std::ostringstream os;
  os << "# Gray-failure report (fail-slow drill)\n\n";
  if (scenarios.empty()) {
    os << "**No scenarios.**\n";
    return os.str();
  }

  // The burst parameters live on the rungs that carry it (the control
  // rung clears them), so describe the drill from the last rung.
  const auto& base = scenarios.back();
  os << "* cluster: " << base.config.leaves << " leaves, "
     << TextTable::num(base.config.query_rate_hz, 4) << " qps fan-out, "
     << TextTable::num(base.config.duration_s, 4) << " s per trial, "
     << base.result.trials << " trial(s) per rung, seed " << base.config.seed
     << "\n"
     << "* gray burst: " << base.config.gray.burst_leaves << " leaves "
     << reliab::to_string(base.config.gray.burst_mode) << " at t = "
     << TextTable::num(base.config.gray.burst_start_s, 4) << " s for "
     << TextTable::num(base.config.gray.burst_duration_s, 4)
     << " s; containment measured " << TextTable::num(settle_s, 4)
     << " s into the burst\n\n";

  TextTable t({"rung", "pre qps", "during", "contain", "post", "evict",
               "prob", "zomb", "redir", "brk open", "amp", "p99 ms"});
  for (const auto& s : scenarios) {
    const auto& r = s.result;
    // The control rung has no burst of its own; window it on the drill's
    // timing so its row is comparable (same pre/during/post intervals).
    const auto& timing =
        s.config.gray.burst_enabled() ? s.config : base.config;
    const auto c = cloud::gray_containment(r, timing, settle_s);
    t.row({s.name, TextTable::num(c.pre_qps, 4),
           TextTable::num(c.during_qps, 4),
           TextTable::num(c.containment_ratio() * 100, 4) + "%",
           TextTable::num(c.post_qps, 4), std::to_string(r.gray_evictions),
           std::to_string(r.gray_probations), std::to_string(r.gray_zombies),
           std::to_string(r.gray_redirected_sends),
           std::to_string(r.breaker_open_transitions),
           TextTable::num(r.retry_amplification, 4),
           TextTable::num(r.query_ms.quantile(0.99), 4)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  os << "## Reading the drill\n\n"
     << "* **contain** -- goodput inside the burst (past the settle) as a "
        "fraction of pre-burst goodput.  This is where fail-slow differs "
        "from fail-stop: the E29 rung's breakers stay closed because "
        "every late reply still lands a *success* in their windows, so "
        "the burst runs its full course against an unsuspecting client.\n"
     << "* **evict / prob / zomb** -- gray-detector actions: outlier or "
        "reply-rate evictions, probationary re-admissions, and "
        "zero-reply zombie flags.\n"
     << "* **redir** -- sends steered round-robin from evicted replicas "
        "to healthy peers.\n"
     << "* **brk open** -- circuit-breaker open transitions.  On the "
        "fail-stop rungs the windows *flicker*: a spiked attempt counts "
        "one timeout (failure) and one late reply (success), so the "
        "failure fraction hovers below the open threshold and breakers "
        "spend the large majority of the burst closed -- blind, not "
        "broken.\n";
  return os.str();
}

std::string render_power_report(
    const std::vector<cloud::ScenarioResult>& scenarios, double settle_s) {
  std::ostringstream os;
  os << "# Power-cap report (energy x overload co-simulation)\n\n";
  if (scenarios.empty()) {
    os << "**No scenarios.**\n";
    return os.str();
  }

  const auto& base = scenarios.front();
  os << "* cluster: " << base.config.leaves << " leaves, "
     << TextTable::num(base.config.query_rate_hz, 4) << " qps fan-out, "
     << TextTable::num(base.config.duration_s, 4) << " s per trial, "
     << base.result.trials << " trial(s) per rung, seed " << base.config.seed
     << "\n"
     << "* fault burst: " << base.config.faults.burst_leaves
     << " leaves down at t = "
     << TextTable::num(base.config.faults.burst_start_s, 4) << " s for "
     << TextTable::num(base.config.faults.burst_duration_s, 4) << " s; "
     << "recovery measured " << TextTable::num(settle_s, 4)
     << " s after it clears\n\n";

  TextTable t({"rung", "cap W", "peak W", "energy kJ", "goodput/J",
               "recovery", "p99 ms", "pshed", "stalls"});
  for (const auto& s : scenarios) {
    const auto& r = s.result;
    const auto h = cloud::goodput_hysteresis(r, s.config, settle_s);
    const double trials = static_cast<double>(std::max(r.trials, 1u));
    t.row({s.name,
           r.power_cap_w > 0 ? TextTable::num(r.power_cap_w, 5) : "-",
           r.power_cap_w > 0 ? TextTable::num(r.peak_window_w, 5) : "-",
           r.power_cap_w > 0 ? TextTable::num(r.energy_j / trials / 1e3, 4)
                             : "-",
           r.power_cap_w > 0 ? TextTable::num(r.goodput_per_joule(), 4)
                             : "-",
           TextTable::num(h.recovery_ratio() * 100, 4) + "%",
           TextTable::num(r.query_ms.quantile(0.99), 4),
           std::to_string(r.power_shed_queries),
           std::to_string(r.power_gate_stalls)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  os << "## Reading the ladder\n\n"
     << "* **peak W vs cap W** -- the enforcement check: the maximum "
        "charged accounting-window power must never exceed the cap (a "
        "job's whole dynamic energy is charged to the window it starts "
        "in, so this holds by construction of the start gate).\n"
     << "* **goodput/J** -- answered queries per charged joule, the "
        "figure of merit the policies compete on.  The idle floor burns "
        "whether or not work is served, so a policy that collapses "
        "(recovery near 0%) pays the floor for nothing.\n"
     << "* **pshed / stalls** -- how the budget was enforced: queries "
        "refused up front by cap-aware admission vs leaf starts stalled "
        "mid-queue by the window gate.  The governor sheds; the naive "
        "throttle and race-to-idle stall.\n";
  return os.str();
}

std::string render_multiregion_report(
    const std::vector<cloud::MultiRegionScenario>& scenarios,
    double settle_s) {
  std::ostringstream os;
  os << "# Multi-region failover report (regional cascade drill)\n\n";
  if (scenarios.empty()) {
    os << "**No scenarios.**\n";
    return os.str();
  }

  const auto& base = scenarios.front();
  const auto& bc = base.config;
  os << "* topology: " << bc.regions.size() << " regions ("
     << TextTable::num(bc.total_capacity_qps(), 5) << " qps total capacity), "
     << cloud::to_string(bc.route) << " routing, "
     << TextTable::num(bc.duration_s, 4) << " s per trial, "
     << base.result.trials << " trial(s) per rung, seed " << bc.seed << "\n"
     << "* offered load: " << TextTable::num(
            bc.traffic.mean_query_rate_hz(), 5)
     << " qps mean, diurnal swing +/-"
     << TextTable::num(bc.traffic.diurnal_amplitude * 100, 3)
     << "% peaking at t = " << TextTable::num(bc.traffic.diurnal_peak_s, 4)
     << " s\n";
  if (bc.blackout_enabled()) {
    os << "* blackout: region " << bc.blackout_region << " (\""
       << bc.regions[bc.blackout_region].name << "\") dark at t = "
       << TextTable::num(bc.blackout_start_s, 4) << " s for "
       << TextTable::num(bc.blackout_duration_s, 4) << " s; recovery "
       << "measured " << TextTable::num(settle_s, 4)
       << " s after it clears\n";
  }
  const auto& lc = scenarios.back().config;
  if (lc.grayout_enabled()) {
    os << "* gray-out rung: region " << lc.grayout_region << " (\""
       << lc.regions[lc.grayout_region].name << "\") serves "
       << TextTable::num(lc.grayout_slow_factor, 3)
       << "x slow over the same window -- fail-slow, not fail-stop: "
          "nothing is lost in the region, it just answers late\n";
  }
  os << "\n";

  TextTable t({"rung", "pre qps", "post qps", "recovery", "surv pre",
               "surv post", "shed", "timeouts", "lost", "evict", "amp",
               "p99 ms"});
  for (const auto& s : scenarios) {
    const auto& r = s.result;
    const auto g =
        cloud::multiregion_hysteresis(r, s.config, false, settle_s);
    const auto sv =
        cloud::multiregion_hysteresis(r, s.config, true, settle_s);
    std::uint64_t evictions = 0;
    for (const auto& reg : r.regions) evictions += reg.evictions;
    t.row({s.name, TextTable::num(g.pre_qps, 5), TextTable::num(g.post_qps, 5),
           TextTable::num(g.recovery_ratio() * 100, 4) + "%",
           TextTable::num(sv.pre_qps, 5), TextTable::num(sv.post_qps, 5),
           std::to_string(r.shed), std::to_string(r.timeouts),
           std::to_string(r.lost_requests), std::to_string(evictions),
           TextTable::num(r.attempt_amplification, 4),
           TextTable::num(r.request_ms.quantile(0.99), 4)});
  }
  os << "```\n" << t.to_string(0) << "```\n\n";

  os << "## Per-class SLO attainment (last rung)\n\n";
  const auto& last = scenarios.back();
  TextTable ct({"class", "slo ms", "answered", "slo met", "attainment"});
  for (std::size_t c = 0; c < last.result.classes.size(); ++c) {
    const auto& cs = last.result.classes[c];
    const auto& tc = last.config.traffic.classes[c];
    const double att =
        cs.answered ? static_cast<double>(cs.slo_met) /
                          static_cast<double>(cs.answered)
                    : 0.0;
    ct.row({tc.name, TextTable::num(tc.slo_ms, 4),
            std::to_string(cs.answered), std::to_string(cs.slo_met),
            TextTable::num(att * 100, 4) + "%"});
  }
  os << "```\n" << ct.to_string(0) << "```\n\n";

  os << "## Reading the drill\n\n"
     << "* **recovery** -- post-blackout global goodput as a fraction of "
        "pre-blackout.  The blackout is identical in every rung; a rung "
        "stuck low after the region returned is in the metastable regime "
        "(survivor queues full of abandoned work, retries regenerating "
        "the overload).\n"
     << "* **surv pre / surv post** -- goodput served by the surviving "
        "regions only.  Without admission caps the failover wave drags "
        "the *healthy* regions down too; with caps their goodput holds.\n"
     << "* **shed / lost** -- requests fast-failed at the balancer (all "
        "regions capped) vs vanished into the dark region or a down WAN "
        "link (recovered only by client timeout).\n"
     << "* **evict** -- health-check evictions; with re-admission "
        "hysteresis the recovering region is not slammed and re-evicted "
        "in a flap loop.\n"
     << "* **amp** -- send attempts per request; the retry-storm "
        "metric.\n"
     << "* **gray-out rung** -- the disrupted region never goes down, it "
        "goes slow, so breakers (which see late *successes*) cannot trip "
        "on it; eviction rides on the health probe's speed-aware sojourn "
        "estimate, and recovery proves the re-admission hysteresis "
        "converges on fail-slow exactly as it does on fail-stop.\n";
  return os.str();
}

std::string render_metrics_report(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "## Metrics\n\n";
  if (snap.entries.empty()) {
    os << "*(no metrics registered)*\n";
    return os.str();
  }
  TextTable t({"metric", "kind", "value", "p50", "p99", "max"});
  for (const auto& e : snap.entries) {
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        t.row({e.name, "counter", std::to_string(e.count), "", "", ""});
        break;
      case obs::MetricKind::kGauge:
        t.row({e.name, "gauge", TextTable::num(e.value, 6), "", "", ""});
        break;
      case obs::MetricKind::kTimer:
        t.row({e.name, "timer",
               std::to_string(e.count) + " x " + TextTable::num(e.hist.mean(), 4),
               TextTable::num(e.hist.quantile(0.5), 4),
               TextTable::num(e.hist.quantile(0.99), 4),
               TextTable::num(e.hist.max_seen(), 4)});
        break;
    }
  }
  os << "```\n" << t.to_string(0) << "```\n";
  return os.str();
}

}  // namespace arch21::core
