#pragma once
// Synthetic CPU-generation database and the Danowitz-style decomposition
// of single-thread performance growth into technology and architecture
// factors.
//
// Paper hook (section 1): "Danowitz et al. apportioned computer
// performance growth roughly equally between technology and architecture,
// with architecture credited with ~80x improvement since 1985."
//
// SUBSTITUTION NOTE: the real CPU DB is a curated dataset of hundreds of
// commercial parts.  We embed a 12-generation synthetic series calibrated
// to the public trend (frequency, IPC-proxy, and FO4 gate-delay by year).
// The *decomposition arithmetic* -- performance = frequency x IPC;
// technology factor = gate-speed (FO4) improvement; architecture factor =
// everything else (pipelining beyond gate speed, superscalar issue, caches,
// branch prediction folded into the IPC proxy) -- is exactly the published
// methodology, so the experiment exercises the same computation.

#include <span>
#include <string>
#include <vector>

namespace arch21::tech {

/// One processor generation in the synthetic CPU DB.
struct CpuGeneration {
  int year;
  std::string label;     ///< generic label, e.g. "gen1993-superscalar"
  double feature_nm;
  double freq_mhz;       ///< shipping clock frequency
  double ipc;            ///< sustained instructions/cycle proxy on SPEC-like work
  double fo4_ps;         ///< fanout-of-4 inverter delay (technology speed)

  /// Relative single-thread performance (freq x IPC).
  double performance() const noexcept { return freq_mhz * ipc; }
};

/// The built-in series, 1985..2012, ordered by year.
std::span<const CpuGeneration> cpu_db();

/// Growth decomposition against the 1985 baseline.
struct PerfDecomposition {
  int year;
  double total_gain;  ///< perf(year) / perf(1985)
  double tech_gain;   ///< fo4(1985) / fo4(year): raw gate-speed improvement
  double arch_gain;   ///< total / tech: pipeline depth beyond gate speed + IPC
};

/// Decomposition for each generation in the table.
std::vector<PerfDecomposition> decompose_performance();

/// Decomposition at the final (2012) generation -- the paper's claim point.
PerfDecomposition decomposition_2012();

}  // namespace arch21::tech
