#pragma once
// Near-threshold-voltage (NTV) reliability model.  Lowering supply toward
// threshold multiplies energy efficiency but amplifies the effect of
// process variation: the slowest path's delay spread grows, producing
// timing faults.  This module couples the DvfsModel's energy valley with
// a variation-induced failure-rate curve and computes the *resilience-
// compensated* optimum: the supply that minimizes energy per
// *successfully completed* operation when every detected fault costs a
// replay (or stronger: a checkpoint restore).
//
// Paper hook (section 2.3): "Near-threshold voltage operation has
// tremendous potential to reduce power but at the cost of reliability,
// driving a new discipline of resiliency-centered design."

#include <vector>

#include "tech/dvfs.hpp"

namespace arch21::tech {

/// Timing-fault probability per operation as a function of supply.
/// Modeled as a log-logistic ramp centered a configurable margin above
/// threshold: negligible at nominal supply, growing steeply through the
/// near-threshold region.
class NtvReliability {
 public:
  struct Params {
    double vth = 0.30;        ///< device threshold, V
    double v50_margin = 0.08; ///< supply margin above vth where p_fault = 0.5
    double steep = 0.02;      ///< logistic steepness, V (smaller = sharper)
    double floor = 1e-12;     ///< fault probability floor at nominal supply
  };

  explicit NtvReliability(Params p) : p_(p) {}

  /// Per-operation timing-fault probability at supply `v`, in [floor, 1).
  double fault_probability(double v) const noexcept;

  const Params& params() const noexcept { return p_; }

 private:
  Params p_;
};

/// Energy per *correct* operation when faults cost `replay_ops` extra
/// operations each (detection + replay):
///     E_eff(V) = E_op(V) * (1 + replay_ops * p(V)) / (1 - p(V))
struct NtvPoint {
  double v = 0;
  double f_hz = 0;
  double e_op_j = 0;        ///< raw energy/op
  double p_fault = 0;       ///< per-op fault probability
  double e_effective_j = 0; ///< energy per successfully completed op
};

/// Sweep supply and return the resilience-compensated curve.
std::vector<NtvPoint> ntv_sweep(const DvfsModel& dvfs,
                                const NtvReliability& rel,
                                double replay_ops = 10.0, int steps = 40);

/// Supply minimizing e_effective over the sweep.
NtvPoint ntv_optimum(const DvfsModel& dvfs, const NtvReliability& rel,
                     double replay_ops = 10.0, int steps = 400);

}  // namespace arch21::tech
