#pragma once
// Technology-node database and classical scaling laws.  This module
// operationalizes Table 1 of the white paper ("Technology's Challenges to
// Computer Architecture"): Moore's law continues to deliver transistors,
// but Dennard scaling -- constant power per chip -- ended around the
// 90/65 nm generations.  The node table below is a first-order synthesis
// of public ITRS/industry data; absolute values are representative, and
// the *ratios between generations* are what the scaling experiments rely
// on.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace arch21::tech {

/// One CMOS process generation.
struct TechNode {
  std::string name;           ///< e.g. "65nm"
  double feature_nm;          ///< drawn feature size, nm
  int year;                   ///< approximate year of volume production
  double vdd;                 ///< nominal supply voltage, V
  double vth;                 ///< threshold voltage, V
  double density_mtx_mm2;     ///< transistor density, million tx / mm^2
  double cgate_rel;           ///< switched capacitance per gate, relative to 180 nm
  double freq_ghz;            ///< representative peak core frequency, GHz
  double leak_rel;            ///< leakage power per transistor, relative to 180 nm

  /// Transistors on a fixed 100 mm^2 logic die at this node (millions).
  double transistors_100mm2() const noexcept { return density_mtx_mm2 * 100.0; }

  /// Dynamic switching energy per gate toggle, relative to 180 nm:
  /// E = C V^2 (alpha and f enter at the chip level).
  double switch_energy_rel() const noexcept;
};

/// The built-in node table, 180 nm (1999) through 5 nm (2021), ordered
/// old-to-new.
std::span<const TechNode> node_table();

/// Look up a node by name ("45nm"); nullopt if unknown.
std::optional<TechNode> find_node(std::string_view name);

/// Node closest to a given year (clamped to table range).
const TechNode& node_for_year(int year);

/// --- Classical scaling laws ------------------------------------------
/// Scale factor conventions: s > 1 is the linear shrink per generation
/// (canonically s = sqrt(2) ~ 1.4x per ~2 years).

/// Under *Dennard* scaling, one generation with linear shrink s gives:
///   density x s^2, frequency x s, Vdd / s, C/gate / s
///   => power per chip constant at fixed die area.
struct GenerationScaling {
  double density = 1;       ///< transistor density multiplier
  double frequency = 1;     ///< frequency multiplier
  double vdd = 1;           ///< supply multiplier
  double cap_per_gate = 1;  ///< capacitance-per-gate multiplier
  double power_fixed_area = 1;  ///< chip power multiplier at fixed die area

  /// Energy per switch multiplier (C V^2).
  double switch_energy() const noexcept {
    return cap_per_gate * vdd * vdd;
  }
};

/// Ideal Dennard generation (linear shrink s).
GenerationScaling dennard_generation(double s = 1.4);

/// Post-Dennard ("leakage-limited") generation: density and capacitance
/// still scale, but Vdd is stuck (vdd_scale ~= 1) and frequency gains are
/// modest.  Power at fixed area *grows* by density * freq * C * V^2 --
/// the power wall.
GenerationScaling post_dennard_generation(double s = 1.4,
                                          double vdd_scale = 0.97,
                                          double freq_scale = 1.05);

/// Compound `gens` generations of a scaling law.
GenerationScaling compound(const GenerationScaling& g, int gens);

}  // namespace arch21::tech
