#include "tech/node.hpp"

#include <array>
#include <cmath>
#include <cstdlib>

namespace arch21::tech {

namespace {

// Representative industry trajectory.  Sources: ITRS roadmaps and public
// product data, smoothed to first order.  The pre-90nm rows follow
// Dennard scaling closely (Vdd dropping with feature size, frequency
// riding the shrink); from 65 nm on, Vdd flattens and frequency saturates
// near 4 GHz while density keeps doubling -- exactly the Table 1 story.
constexpr int kNodeCount = 11;
const std::array<TechNode, kNodeCount>& nodes() {
  static const std::array<TechNode, kNodeCount> t = {{
      {"180nm", 180, 1999, 1.80, 0.45, 0.4, 1.000, 0.60, 1.0},
      {"130nm", 130, 2001, 1.50, 0.40, 0.8, 0.720, 1.20, 2.0},
      {"90nm", 90, 2004, 1.30, 0.38, 1.6, 0.520, 2.40, 6.0},
      {"65nm", 65, 2006, 1.20, 0.35, 3.2, 0.380, 3.00, 10.0},
      {"45nm", 45, 2008, 1.10, 0.33, 6.5, 0.270, 3.40, 14.0},
      {"32nm", 32, 2010, 1.00, 0.31, 13.0, 0.200, 3.60, 18.0},
      {"22nm", 22, 2012, 0.90, 0.30, 25.0, 0.140, 3.80, 20.0},
      {"14nm", 14, 2014, 0.80, 0.29, 45.0, 0.100, 4.00, 22.0},
      {"10nm", 10, 2017, 0.75, 0.28, 80.0, 0.075, 4.20, 24.0},
      {"7nm", 7, 2019, 0.70, 0.27, 130.0, 0.055, 4.50, 25.0},
      {"5nm", 5, 2021, 0.65, 0.26, 200.0, 0.040, 4.70, 26.0},
  }};
  return t;
}

}  // namespace

double TechNode::switch_energy_rel() const noexcept {
  const double v180 = 1.80;
  return cgate_rel * (vdd * vdd) / (v180 * v180);
}

std::span<const TechNode> node_table() {
  return {nodes().data(), nodes().size()};
}

std::optional<TechNode> find_node(std::string_view name) {
  for (const auto& n : nodes()) {
    if (n.name == name) return n;
  }
  return std::nullopt;
}

const TechNode& node_for_year(int year) {
  const TechNode* best = &nodes().front();
  for (const auto& n : nodes()) {
    if (std::abs(n.year - year) < std::abs(best->year - year)) best = &n;
  }
  return *best;
}

GenerationScaling dennard_generation(double s) {
  GenerationScaling g;
  g.density = s * s;
  g.frequency = s;
  g.vdd = 1.0 / s;
  g.cap_per_gate = 1.0 / s;
  // P ~ N * C * V^2 * f = s^2 * (1/s) * (1/s^2) * s = 1.
  g.power_fixed_area = g.density * g.cap_per_gate * g.vdd * g.vdd * g.frequency;
  return g;
}

GenerationScaling post_dennard_generation(double s, double vdd_scale,
                                          double freq_scale) {
  GenerationScaling g;
  g.density = s * s;
  g.frequency = freq_scale;
  g.vdd = vdd_scale;
  g.cap_per_gate = 1.0 / s;
  g.power_fixed_area = g.density * g.cap_per_gate * g.vdd * g.vdd * g.frequency;
  return g;
}

GenerationScaling compound(const GenerationScaling& g, int gens) {
  GenerationScaling out;
  for (int i = 0; i < gens; ++i) {
    out.density *= g.density;
    out.frequency *= g.frequency;
    out.vdd *= g.vdd;
    out.cap_per_gate *= g.cap_per_gate;
    out.power_fixed_area *= g.power_fixed_area;
  }
  return out;
}

}  // namespace arch21::tech
