#include "tech/ntv.hpp"

#include <algorithm>
#include <cmath>

namespace arch21::tech {

double NtvReliability::fault_probability(double v) const noexcept {
  const double v50 = p_.vth + p_.v50_margin;
  // Logistic in supply: p -> 1 below v50, -> floor well above it.
  const double p = 1.0 / (1.0 + std::exp((v - v50) / p_.steep));
  return std::clamp(p + p_.floor, p_.floor, 1.0 - 1e-15);
}

namespace {

NtvPoint make_point(const DvfsModel& dvfs, const NtvReliability& rel,
                    double replay_ops, double v) {
  NtvPoint pt;
  pt.v = v;
  pt.f_hz = dvfs.frequency(v);
  pt.e_op_j = dvfs.energy_per_op(v);
  pt.p_fault = rel.fault_probability(v);
  // Each attempt costs E_op; a fault wastes the attempt plus replay_ops
  // overhead operations.  Expected attempts per success = 1/(1-p).
  pt.e_effective_j =
      pt.e_op_j * (1.0 + replay_ops * pt.p_fault) / (1.0 - pt.p_fault);
  return pt;
}

}  // namespace

std::vector<NtvPoint> ntv_sweep(const DvfsModel& dvfs,
                                const NtvReliability& rel, double replay_ops,
                                int steps) {
  std::vector<NtvPoint> out;
  steps = std::max(steps, 2);
  const double lo = rel.params().vth + 0.02;
  const double hi = dvfs.params().vnom;
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double v =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    out.push_back(make_point(dvfs, rel, replay_ops, v));
  }
  return out;
}

NtvPoint ntv_optimum(const DvfsModel& dvfs, const NtvReliability& rel,
                     double replay_ops, int steps) {
  const auto pts = ntv_sweep(dvfs, rel, replay_ops, steps);
  const auto it =
      std::min_element(pts.begin(), pts.end(), [](const auto& a, const auto& b) {
        return a.e_effective_j < b.e_effective_j;
      });
  return *it;
}

}  // namespace arch21::tech
