#include "tech/dark_silicon.hpp"

#include <algorithm>
#include <stdexcept>

namespace arch21::tech {

namespace {

double power_metric(const TechNode& n) {
  // Per-mm^2 switching power proxy: transistors * C/gate * V^2 * f.
  return n.density_mtx_mm2 * n.cgate_rel * n.vdd * n.vdd * n.freq_ghz;
}

}  // namespace

DarkSiliconModel::DarkSiliconModel(Params p) : p_(std::move(p)) {
  const auto ref = find_node(p_.reference_node);
  if (!ref) {
    throw std::invalid_argument("DarkSiliconModel: unknown reference node");
  }
  ref_metric_ = power_metric(*ref);
  if (ref_metric_ <= 0) {
    throw std::invalid_argument("DarkSiliconModel: degenerate reference node");
  }
}

double DarkSiliconModel::full_power(const TechNode& n) const {
  // By construction the reference node exactly fills the budget.
  return p_.power_budget_w * power_metric(n) / ref_metric_;
}

double DarkSiliconModel::utilization(const TechNode& n) const {
  const double fp = full_power(n);
  if (fp <= 0) return 1.0;
  return std::min(1.0, p_.power_budget_w / fp);
}

std::vector<DarkSiliconModel::Row> DarkSiliconModel::project() const {
  std::vector<Row> rows;
  for (const auto& n : node_table()) {
    Row r;
    r.node = &n;
    r.full_power_w = full_power(n);
    r.utilization = utilization(n);
    r.dark_fraction = 1.0 - r.utilization;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace arch21::tech
