#pragma once
// Dark-silicon / utilization-wall model.  Post-Dennard, transistor count
// doubles per generation but the per-transistor power drop no longer
// keeps pace, so at a fixed chip power budget a shrinking fraction of the
// die can switch at full voltage/frequency.  This quantifies the paper's
// motivation for "energy first" and for specialization (dim/dark area is
// exactly where accelerators go).

#include <vector>

#include "tech/node.hpp"

namespace arch21::tech {

/// Dark-silicon projection for a fixed die area and fixed power budget.
class DarkSiliconModel {
 public:
  struct Params {
    double die_mm2 = 100.0;       ///< die area held constant across nodes
    double power_budget_w = 100;  ///< package/thermal budget (TDP)
    /// Power of a full chip at the *reference* node when 100% of the die
    /// switches at nominal V/f.  Calibrated so utilization is 1.0 there.
    std::string reference_node = "90nm";
    double activity = 0.1;        ///< average switching activity factor
  };

  explicit DarkSiliconModel(Params p);

  /// Full-die power (W) at a node when everything runs at nominal V/f.
  /// Scales as density * C_gate * Vdd^2 * f relative to the reference.
  double full_power(const TechNode& n) const;

  /// Fraction of the die that can be simultaneously active at nominal V/f
  /// within the power budget (clamped to [0,1]).  1 - this is "dark".
  double utilization(const TechNode& n) const;

  struct Row {
    const TechNode* node;
    double full_power_w;
    double utilization;
    double dark_fraction;
  };

  /// Evaluate every node in the table.
  std::vector<Row> project() const;

 private:
  Params p_;
  double ref_metric_;  ///< density*C*V^2*f at the reference node
};

}  // namespace arch21::tech
